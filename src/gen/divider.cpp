#include "gen/divider.h"

#include "gen/wordlib.h"
#include "netlist/transform.h"
#include "util/error.h"

namespace wrpt {

netlist make_divider(std::size_t dividend_width, std::size_t divisor_width,
                     const std::string& name) {
    require(dividend_width >= 1 && divisor_width >= 1,
            "make_divider: widths must be positive");
    require(dividend_width + divisor_width <= 62,
            "make_divider: widths beyond reference-model range");
    netlist nl(name);
    const bus d = add_input_bus(nl, "D", dividend_width);
    const bus v = add_input_bus(nl, "V", divisor_width);

    // Restoring division, one array row per quotient bit (MSB first).
    // Partial remainder R (divisor_width bits) starts at zero; each row
    // shifts in the next dividend bit, subtracts V, and restores on borrow.
    bus r = constant_bus(nl, 0, divisor_width);
    bus v_ext = v;
    v_ext.push_back(nl.add_const(false));  // zero-extend V to width+1

    bus q(dividend_width, null_node);
    for (std::size_t step = 0; step < dividend_width; ++step) {
        const std::size_t i = dividend_width - 1 - step;
        // Rext = (R << 1) | d_i, width divisor_width + 1.
        bus r_ext;
        r_ext.reserve(divisor_width + 1);
        r_ext.push_back(d[i]);
        for (std::size_t k = 0; k < divisor_width; ++k) r_ext.push_back(r[k]);

        const sub_result sub = ripple_sub(nl, r_ext, v_ext);
        const node_id q_i = nl.add_unary(gate_kind::not_, sub.borrow_out);
        q[i] = q_i;
        // Restore: keep Rext when the subtraction underflowed.
        const bus r_next = mux2_bus(nl, q_i, r_ext, sub.diff);
        r = slice(r_next, 0, divisor_width);
    }

    mark_output_bus(nl, q, "Q");
    mark_output_bus(nl, r, "R");
    const node_id any_v = any_set(nl, v);
    nl.mark_output(nl.add_unary(gate_kind::not_, any_v), "DIVBY0");
    nl.validate();
    // Fold the constant first-row logic away, as synthesis would; this is
    // the paper's "some redundancies are removed" for the array circuits.
    return propagate_constants(nl);
}

netlist make_s2() { return make_divider(32, 16, "S2"); }

divider_verdict divide_reference(std::uint64_t dividend, std::uint64_t divisor,
                                 std::size_t dividend_width,
                                 std::size_t divisor_width) {
    require(dividend_width >= 1 && divisor_width >= 1 &&
                dividend_width + divisor_width <= 62,
            "divide_reference: widths out of range");
    const std::uint64_t d_mask = (dividend_width == 64)
                                     ? ~0ULL
                                     : ((1ULL << dividend_width) - 1);
    const std::uint64_t v_mask = (1ULL << divisor_width) - 1;
    dividend &= d_mask;
    divisor &= v_mask;

    divider_verdict out;
    out.div_by_zero = (divisor == 0);
    // Mirror the hardware algorithm bit for bit (also covers divisor == 0,
    // where every row "subtracts zero" and the quotient saturates to ones).
    std::uint64_t r = 0;
    std::uint64_t q = 0;
    for (std::size_t step = 0; step < dividend_width; ++step) {
        const std::size_t i = dividend_width - 1 - step;
        const std::uint64_t r_ext = (r << 1) | ((dividend >> i) & 1ULL);
        if (r_ext >= divisor) {
            q |= (1ULL << i);
            r = (r_ext - divisor) & v_mask;
        } else {
            r = r_ext & v_mask;
        }
    }
    out.quotient = q;
    out.remainder = r;
    return out;
}

}  // namespace wrpt
