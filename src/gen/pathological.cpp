#include "gen/pathological.h"

#include "gen/wordlib.h"
#include "util/error.h"

namespace wrpt {

netlist make_pathological(std::size_t width, const std::string& name) {
    require(width >= 2, "make_pathological: width must be >= 2");
    netlist nl(name);
    const bus x = add_input_bus(nl, "X", width);
    nl.mark_output(nl.add_tree(gate_kind::and_, x), "ALLONE");
    nl.mark_output(nl.add_tree(gate_kind::nor_, x), "ALLZERO");
    nl.mark_output(parity(nl, x), "PAR");
    nl.validate();
    return nl;
}

}  // namespace wrpt
