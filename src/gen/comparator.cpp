#include "gen/comparator.h"

#include "util/error.h"

namespace wrpt {

comparator_cascade add_comparator_slice(netlist& nl, const bus& a, const bus& b,
                                        const comparator_cascade& in) {
    require(a.size() == 4 && b.size() == 4, "comparator slice is 4 bits wide");
    const bool cascaded = in.eq != null_node;
    if (cascaded)
        require(in.gt != null_node && in.lt != null_node,
                "comparator slice: partial cascade inputs");

    // Per-bit equality and strict comparisons.
    node_id e[4], g[4], l[4];
    for (int i = 0; i < 4; ++i) {
        e[i] = nl.add_binary(gate_kind::xnor_, a[i], b[i]);
        const node_id nb = nl.add_unary(gate_kind::not_, b[i]);
        const node_id na = nl.add_unary(gate_kind::not_, a[i]);
        g[i] = nl.add_binary(gate_kind::and_, a[i], nb);
        l[i] = nl.add_binary(gate_kind::and_, na, b[i]);
    }
    // Prefix-equality products from the MSB (bit 3) downwards, as in the
    // 7485 sum-of-products: gt = g3 + e3 g2 + e3 e2 g1 + e3 e2 e1 g0
    //                            (+ e3 e2 e1 e0 * gt_in).
    const node_id e32 = nl.add_binary(gate_kind::and_, e[3], e[2]);
    const node_id e321 = nl.add_binary(gate_kind::and_, e32, e[1]);
    const node_id eq4 = nl.add_binary(gate_kind::and_, e321, e[0]);

    std::vector<node_id> gt_terms = {
        g[3],
        nl.add_binary(gate_kind::and_, e[3], g[2]),
        nl.add_binary(gate_kind::and_, e32, g[1]),
        nl.add_binary(gate_kind::and_, e321, g[0]),
    };
    std::vector<node_id> lt_terms = {
        l[3],
        nl.add_binary(gate_kind::and_, e[3], l[2]),
        nl.add_binary(gate_kind::and_, e32, l[1]),
        nl.add_binary(gate_kind::and_, e321, l[0]),
    };
    comparator_cascade out;
    if (cascaded) {
        gt_terms.push_back(nl.add_binary(gate_kind::and_, eq4, in.gt));
        lt_terms.push_back(nl.add_binary(gate_kind::and_, eq4, in.lt));
        out.eq = nl.add_binary(gate_kind::and_, eq4, in.eq);
    } else {
        out.eq = eq4;
    }
    out.gt = nl.add_tree(gate_kind::or_, gt_terms);
    out.lt = nl.add_tree(gate_kind::or_, lt_terms);
    return out;
}

netlist make_cascaded_comparator(std::size_t slices, const std::string& name) {
    require(slices >= 1, "make_cascaded_comparator: need at least one slice");
    netlist nl(name);
    const std::size_t width = slices * 4;
    const bus a = add_input_bus(nl, "A", width);
    const bus b = add_input_bus(nl, "B", width);
    comparator_cascade c;  // least significant slice: no cascade inputs
    for (std::size_t s = 0; s < slices; ++s)
        c = add_comparator_slice(nl, slice(a, 4 * s, 4), slice(b, 4 * s, 4), c);
    nl.mark_output(c.gt, "AgtB");
    nl.mark_output(c.eq, "AeqB");
    nl.mark_output(c.lt, "AltB");
    nl.validate();
    return nl;
}

netlist make_s1() { return make_cascaded_comparator(6, "S1"); }

comparator_verdict compare_reference(std::uint64_t a, std::uint64_t b) {
    return {a > b, a == b, a < b};
}

}  // namespace wrpt
