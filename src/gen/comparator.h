// SN7485-style 4-bit magnitude comparator slices and the paper's S1 circuit.
//
// S1 is described in the paper as "a 24-bit comparator constructed by six
// Texas Instruments comparators SN 7485, where some redundancies are
// removed". We build a faithful gate-level 4-bit cascadable slice
// (prefix-equality sum-of-products structure, as in the 7485 data sheet)
// and ripple-cascade six of them. "Redundancies removed" corresponds to
// constant-folding the cascade inputs of the least significant slice
// instead of tying them to constants.

#pragma once

#include <cstdint>

#include "gen/wordlib.h"
#include "netlist/netlist.h"

namespace wrpt {

/// Cascade signals between comparator slices.
struct comparator_cascade {
    node_id gt = null_node;
    node_id eq = null_node;
    node_id lt = null_node;
};

/// Append one 4-bit cascadable comparator slice over a[0..3], b[0..3]
/// (LSB first) with cascade inputs `in` (pass nodes from the previous,
/// less significant slice; pass all null for a least-significant slice,
/// which constant-folds to the plain 4-bit comparison).
comparator_cascade add_comparator_slice(netlist& nl, const bus& a, const bus& b,
                                        const comparator_cascade& in);

/// Build an n*4-bit comparator from `slices` cascaded 4-bit slices.
/// Inputs A0..A<4s-1>, B0.., outputs "AgtB", "AeqB", "AltB".
netlist make_cascaded_comparator(std::size_t slices,
                                 const std::string& name = "comparator");

/// The paper's S1: 24-bit comparator, six SN7485-style slices, 48 inputs,
/// 3 outputs.
netlist make_s1();

/// Reference model for tests: compare `a` and `b` as unsigned integers.
/// Returns {gt, eq, lt}.
struct comparator_verdict {
    bool gt = false, eq = false, lt = false;
};
comparator_verdict compare_reference(std::uint64_t a, std::uint64_t b);

}  // namespace wrpt
