// Sharded comparator array with a parity compactor — the wide, locally
// coned circuit shape that dominates large BIST designs: many independent
// slices tested under one weighted-random session, compacted into a
// signature.
//
// Each slice compares a private a-bus against a b-bus shared with its
// neighbor slice (mild reconvergence); the slice equality bits feed one
// global xor compactor. Equality comparison is random-pattern resistant
// (the paper's S1 flavor), so weight optimization is meaningful, and every
// input's fanout cone is confined to its slice pair plus the compactor
// tail — the O(cone) regime the incremental COP engine targets, in
// contrast to the near-global cones of the deep S2.

#pragma once

#include <cstddef>

#include "netlist/netlist.h"

namespace wrpt {

/// Build `slices` comparator slices of `width` bits each. Adjacent slice
/// pairs share one b-bus. Nodes ~= slices * (1.5 * width + 2 * width - 1);
/// inputs = slices * width + (slices/2) * width.
netlist make_sharded_comparators(std::size_t slices, std::size_t width);

}  // namespace wrpt
