#include "gen/wordlib.h"

#include <algorithm>

#include "util/error.h"

namespace wrpt {

bus add_input_bus(netlist& nl, const std::string& prefix, std::size_t width) {
    bus b;
    b.reserve(width);
    for (std::size_t i = 0; i < width; ++i)
        b.push_back(nl.add_input(prefix + std::to_string(i)));
    return b;
}

void mark_output_bus(netlist& nl, const bus& b, const std::string& prefix) {
    for (std::size_t i = 0; i < b.size(); ++i)
        nl.mark_output(b[i], prefix + std::to_string(i));
}

bus constant_bus(netlist& nl, std::uint64_t value, std::size_t width) {
    bus b;
    b.reserve(width);
    for (std::size_t i = 0; i < width; ++i)
        b.push_back(nl.add_const(((value >> i) & 1ULL) != 0));
    return b;
}

node_id mux2(netlist& nl, node_id sel, node_id a0, node_id a1) {
    const node_id nsel = nl.add_unary(gate_kind::not_, sel);
    const node_id t0 = nl.add_binary(gate_kind::and_, nsel, a0);
    const node_id t1 = nl.add_binary(gate_kind::and_, sel, a1);
    return nl.add_binary(gate_kind::or_, t0, t1);
}

bus mux2_bus(netlist& nl, node_id sel, const bus& a0, const bus& a1) {
    require(a0.size() == a1.size(), "mux2_bus: width mismatch");
    // Share the select inverter across all bits.
    const node_id nsel = nl.add_unary(gate_kind::not_, sel);
    bus out;
    out.reserve(a0.size());
    for (std::size_t i = 0; i < a0.size(); ++i) {
        const node_id t0 = nl.add_binary(gate_kind::and_, nsel, a0[i]);
        const node_id t1 = nl.add_binary(gate_kind::and_, sel, a1[i]);
        out.push_back(nl.add_binary(gate_kind::or_, t0, t1));
    }
    return out;
}

bus invert_bus(netlist& nl, const bus& a) {
    bus out;
    out.reserve(a.size());
    for (node_id n : a) out.push_back(nl.add_unary(gate_kind::not_, n));
    return out;
}

bus xor_bus(netlist& nl, const bus& a, const bus& b) {
    require(a.size() == b.size(), "xor_bus: width mismatch");
    bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out.push_back(nl.add_binary(gate_kind::xor_, a[i], b[i]));
    return out;
}

bus and_bus(netlist& nl, const bus& a, const bus& b) {
    require(a.size() == b.size(), "and_bus: width mismatch");
    bus out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out.push_back(nl.add_binary(gate_kind::and_, a[i], b[i]));
    return out;
}

adder_bits half_adder(netlist& nl, node_id a, node_id b) {
    return {nl.add_binary(gate_kind::xor_, a, b),
            nl.add_binary(gate_kind::and_, a, b)};
}

adder_bits full_adder(netlist& nl, node_id a, node_id b, node_id cin) {
    const node_id axb = nl.add_binary(gate_kind::xor_, a, b);
    const node_id sum = nl.add_binary(gate_kind::xor_, axb, cin);
    const node_id t0 = nl.add_binary(gate_kind::and_, a, b);
    const node_id t1 = nl.add_binary(gate_kind::and_, axb, cin);
    const node_id carry = nl.add_binary(gate_kind::or_, t0, t1);
    return {sum, carry};
}

add_result ripple_add(netlist& nl, const bus& a, const bus& b, node_id cin) {
    require(!a.empty() && !b.empty(), "ripple_add: empty bus");
    const std::size_t width = std::max(a.size(), b.size());
    add_result r;
    r.sum.reserve(width);
    node_id carry = cin;
    for (std::size_t i = 0; i < width; ++i) {
        const node_id ai = i < a.size() ? a[i] : null_node;
        const node_id bi = i < b.size() ? b[i] : null_node;
        adder_bits cell{};
        if (ai != null_node && bi != null_node) {
            cell = (carry == null_node) ? half_adder(nl, ai, bi)
                                        : full_adder(nl, ai, bi, carry);
        } else {
            const node_id present = ai != null_node ? ai : bi;
            if (carry == null_node) {
                cell = {present, null_node};
            } else {
                cell = half_adder(nl, present, carry);
            }
        }
        r.sum.push_back(cell.sum);
        carry = cell.carry;
    }
    r.carry_out =
        (carry == null_node) ? nl.add_const(false) : carry;
    return r;
}

sub_result ripple_sub(netlist& nl, const bus& a, const bus& b) {
    require(a.size() == b.size() && !a.empty(), "ripple_sub: width mismatch");
    sub_result r;
    r.diff.reserve(a.size());
    node_id borrow = null_node;  // no borrow yet
    for (std::size_t i = 0; i < a.size(); ++i) {
        // diff = a ^ b ^ borrow ; borrow' = (~a & b) | (~(a ^ b) & borrow)
        const node_id axb = nl.add_binary(gate_kind::xor_, a[i], b[i]);
        const node_id na = nl.add_unary(gate_kind::not_, a[i]);
        const node_id nab = nl.add_binary(gate_kind::and_, na, b[i]);
        if (borrow == null_node) {
            r.diff.push_back(axb);
            borrow = nab;
        } else {
            r.diff.push_back(nl.add_binary(gate_kind::xor_, axb, borrow));
            const node_id naxb = nl.add_unary(gate_kind::not_, axb);
            const node_id keep = nl.add_binary(gate_kind::and_, naxb, borrow);
            borrow = nl.add_binary(gate_kind::or_, nab, keep);
        }
    }
    r.borrow_out = borrow;
    return r;
}

node_id equality(netlist& nl, const bus& a, const bus& b) {
    require(a.size() == b.size() && !a.empty(), "equality: width mismatch");
    std::vector<node_id> eq_bits;
    eq_bits.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        eq_bits.push_back(nl.add_binary(gate_kind::xnor_, a[i], b[i]));
    return nl.add_tree(gate_kind::and_, eq_bits);
}

compare_result magnitude_compare(netlist& nl, const bus& a, const bus& b) {
    require(a.size() == b.size() && !a.empty(),
            "magnitude_compare: width mismatch");
    // MSB-first prefix chain: gt = OR_i (eq_{msb..i+1} & a_i & ~b_i).
    const std::size_t w = a.size();
    std::vector<node_id> eq_bits(w);
    for (std::size_t i = 0; i < w; ++i)
        eq_bits[i] = nl.add_binary(gate_kind::xnor_, a[i], b[i]);
    std::vector<node_id> gt_terms, lt_terms;
    node_id prefix_eq = null_node;  // equality of all bits above current
    for (std::size_t k = 0; k < w; ++k) {
        const std::size_t i = w - 1 - k;  // from MSB down
        const node_id nb = nl.add_unary(gate_kind::not_, b[i]);
        const node_id na = nl.add_unary(gate_kind::not_, a[i]);
        node_id gt_i = nl.add_binary(gate_kind::and_, a[i], nb);
        node_id lt_i = nl.add_binary(gate_kind::and_, na, b[i]);
        if (prefix_eq != null_node) {
            gt_i = nl.add_binary(gate_kind::and_, prefix_eq, gt_i);
            lt_i = nl.add_binary(gate_kind::and_, prefix_eq, lt_i);
        }
        gt_terms.push_back(gt_i);
        lt_terms.push_back(lt_i);
        prefix_eq = (prefix_eq == null_node)
                        ? eq_bits[i]
                        : nl.add_binary(gate_kind::and_, prefix_eq, eq_bits[i]);
    }
    compare_result r;
    r.eq = prefix_eq;
    r.gt = nl.add_tree(gate_kind::or_, gt_terms);
    r.lt = nl.add_tree(gate_kind::or_, lt_terms);
    return r;
}

node_id parity(netlist& nl, const bus& b) {
    require(!b.empty(), "parity: empty bus");
    return nl.add_tree(gate_kind::xor_, b);
}

node_id any_set(netlist& nl, const bus& b) {
    require(!b.empty(), "any_set: empty bus");
    return nl.add_tree(gate_kind::or_, b);
}

node_id all_set(netlist& nl, const bus& b) {
    require(!b.empty(), "all_set: empty bus");
    return nl.add_tree(gate_kind::and_, b);
}

bus slice(const bus& b, std::size_t lo, std::size_t len) {
    require(lo + len <= b.size(), "slice: out of range");
    return bus(b.begin() + static_cast<std::ptrdiff_t>(lo),
               b.begin() + static_cast<std::ptrdiff_t>(lo + len));
}

namespace ref {

std::vector<bool> to_bits(std::uint64_t value, std::size_t width) {
    std::vector<bool> bits(width);
    for (std::size_t i = 0; i < width; ++i) bits[i] = ((value >> i) & 1ULL) != 0;
    return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        if (bits[i]) v |= (1ULL << i);
    return v;
}

}  // namespace ref
}  // namespace wrpt
