#include "gen/multiplier.h"

#include "gen/wordlib.h"
#include "util/error.h"

namespace wrpt {

netlist make_multiplier(std::size_t width_a, std::size_t width_b,
                        const std::string& name) {
    require(width_a >= 2 && width_b >= 1, "make_multiplier: width_a >= 2");
    require(width_a + width_b <= 62, "make_multiplier: width beyond reference");
    netlist nl(name);
    const bus a = add_input_bus(nl, "A", width_a);
    const bus b = add_input_bus(nl, "B", width_b);

    const std::size_t pw = width_a + width_b;
    bus product(pw, null_node);

    // Accumulate partial products row by row: acc holds the running sum of
    // rows 0..j-1 shifted right so that acc[0] aligns with product bit j.
    bus acc;
    for (std::size_t j = 0; j < width_b; ++j) {
        bus row;
        row.reserve(width_a);
        for (std::size_t i = 0; i < width_a; ++i)
            row.push_back(nl.add_binary(gate_kind::and_, a[i], b[j]));
        if (j == 0) {
            acc = row;
        } else {
            const add_result sum = ripple_add(nl, acc, row);
            acc = sum.sum;
            acc.push_back(sum.carry_out);
        }
        // The low bit of the accumulator is final: it is product bit j.
        product[j] = acc.front();
        acc.erase(acc.begin());
    }
    // Remaining accumulator bits are the high product bits.
    for (std::size_t k = 0; k < acc.size() && width_b + k < pw; ++k)
        product[width_b + k] = acc[k];
    for (std::size_t k = 0; k < pw; ++k)
        if (product[k] == null_node) product[k] = nl.add_const(false);

    mark_output_bus(nl, product, "P");
    nl.validate();
    return nl;
}

netlist make_c6288_like() { return make_multiplier(16, 16, "c6288_like"); }

std::uint64_t multiply_reference(std::uint64_t a, std::uint64_t b,
                                 std::size_t width_a, std::size_t width_b) {
    const std::uint64_t ma = (1ULL << width_a) - 1;
    const std::uint64_t mb = (1ULL << width_b) - 1;
    return (a & ma) * (b & mb);
}

}  // namespace wrpt
