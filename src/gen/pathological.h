// The pathological circuit class of the paper's section 5.3.
//
// "Circuits can be constructed which cannot be processed by optimization
//  ... if there are pairs of faults [where] each has a very low detection
//  probability and the Hamming distance between the test sets of these
//  faults is very large."
//
// make_pathological builds exactly that: one wide AND (detected only near
// the all-ones input) and one wide NOR (detected only near all-zeros) over
// the same inputs. A single weight tuple cannot make both likely; the
// partitioned optimizer (src/opt/partition.h) solves it with two sessions.

#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace wrpt {

/// Inputs X0..X<width-1>; outputs ALLONE = AND(X), ALLZERO = NOR(X), and
/// PAR = parity(X) (so every input fault stays detectable).
netlist make_pathological(std::size_t width,
                          const std::string& name = "pathological");

}  // namespace wrpt
