#include "gen/sharded.h"

#include <string>
#include <vector>

#include "util/error.h"
#include "util/label.h"

namespace wrpt {

netlist make_sharded_comparators(std::size_t slices, std::size_t width) {
    require(slices >= 2 && slices % 2 == 0,
            "make_sharded_comparators: slices must be even and >= 2");
    require(width >= 1, "make_sharded_comparators: width must be >= 1");
    netlist nl(label("sharded_cmp_", slices, 'x', width));

    // One shared b-bus per slice pair.
    std::vector<std::vector<node_id>> b(slices / 2);
    for (std::size_t p = 0; p < slices / 2; ++p) {
        b[p].reserve(width);
        for (std::size_t j = 0; j < width; ++j)
            b[p].push_back(nl.add_input(label("b", p, '_', j)));
    }

    std::vector<node_id> eq;
    eq.reserve(slices);
    for (std::size_t s = 0; s < slices; ++s) {
        std::vector<node_id> bits;
        bits.reserve(width);
        for (std::size_t j = 0; j < width; ++j) {
            const node_id a = nl.add_input(label("a", s, '_', j));
            bits.push_back(nl.add_binary(gate_kind::xnor_, a, b[s / 2][j]));
        }
        eq.push_back(nl.add_tree(gate_kind::and_, bits));
    }

    nl.mark_output(nl.add_tree(gate_kind::xor_, eq), "parity");
    return nl;
}

}  // namespace wrpt
