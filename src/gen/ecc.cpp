#include "gen/ecc.h"

#include <bit>

#include "gen/wordlib.h"
#include "netlist/transform.h"
#include "util/error.h"

namespace wrpt {
namespace {

/// Code layout: positions 1..n (1-based); powers of two carry check bits,
/// the rest carry data bits in increasing order.
struct code_layout {
    std::size_t data_bits;
    std::size_t check_bits;
    std::vector<std::size_t> data_pos;  ///< position of data bit i
};

code_layout layout_for(std::size_t data_bits) {
    code_layout lay;
    lay.data_bits = data_bits;
    lay.check_bits = hamming_check_bits(data_bits);
    std::size_t pos = 1;
    while (lay.data_pos.size() < data_bits) {
        if (!std::has_single_bit(pos)) lay.data_pos.push_back(pos);
        ++pos;
    }
    return lay;
}

}  // namespace

std::size_t hamming_check_bits(std::size_t data_bits) {
    require(data_bits >= 1 && data_bits <= 57, "hamming: data width out of range");
    std::size_t c = 0;
    while ((1ULL << c) < data_bits + c + 1) ++c;
    return c;
}

netlist make_sec_corrector(std::size_t data_bits, const std::string& name) {
    const code_layout lay = layout_for(data_bits);
    netlist nl(name);
    const bus d = add_input_bus(nl, "D", data_bits);
    const bus c = add_input_bus(nl, "C", lay.check_bits);

    // Syndrome bit j = parity of all received positions with bit j set
    // (check bit at position 2^j included).
    bus syndrome;
    for (std::size_t j = 0; j < lay.check_bits; ++j) {
        std::vector<node_id> taps{c[j]};
        for (std::size_t i = 0; i < data_bits; ++i)
            if ((lay.data_pos[i] >> j) & 1u) taps.push_back(d[i]);
        syndrome.push_back(nl.add_tree(gate_kind::xor_, taps));
    }
    // Invert once per syndrome bit, shared by all decoder terms.
    const bus nsyndrome = invert_bus(nl, syndrome);

    // Decode + correct each data position.
    bus corrected;
    corrected.reserve(data_bits);
    for (std::size_t i = 0; i < data_bits; ++i) {
        std::vector<node_id> match;
        for (std::size_t j = 0; j < lay.check_bits; ++j)
            match.push_back(((lay.data_pos[i] >> j) & 1u) ? syndrome[j]
                                                          : nsyndrome[j]);
        const node_id hit = nl.add_tree(gate_kind::and_, match);
        corrected.push_back(nl.add_binary(gate_kind::xor_, d[i], hit));
    }
    mark_output_bus(nl, corrected, "O");
    nl.mark_output(any_set(nl, syndrome), "ERR");
    nl.validate();
    return nl;
}

netlist make_secded_corrector(std::size_t data_bits, const std::string& name) {
    const code_layout lay = layout_for(data_bits);
    netlist nl(name);
    const bus d = add_input_bus(nl, "D", data_bits);
    const bus c = add_input_bus(nl, "C", lay.check_bits);
    const node_id op = nl.add_input("OP");

    bus syndrome;
    for (std::size_t j = 0; j < lay.check_bits; ++j) {
        std::vector<node_id> taps{c[j]};
        for (std::size_t i = 0; i < data_bits; ++i)
            if ((lay.data_pos[i] >> j) & 1u) taps.push_back(d[i]);
        syndrome.push_back(nl.add_tree(gate_kind::xor_, taps));
    }
    const bus nsyndrome = invert_bus(nl, syndrome);

    bus corrected;
    for (std::size_t i = 0; i < data_bits; ++i) {
        std::vector<node_id> match;
        for (std::size_t j = 0; j < lay.check_bits; ++j)
            match.push_back(((lay.data_pos[i] >> j) & 1u) ? syndrome[j]
                                                          : nsyndrome[j]);
        const node_id hit = nl.add_tree(gate_kind::and_, match);
        corrected.push_back(nl.add_binary(gate_kind::xor_, d[i], hit));
    }
    const node_id err = any_set(nl, syndrome);

    // Overall parity over every received bit including OP; even parity code.
    std::vector<node_id> all_bits;
    for (node_id x : d) all_bits.push_back(x);
    for (node_id x : c) all_bits.push_back(x);
    all_bits.push_back(op);
    const node_id parity_mismatch = nl.add_tree(gate_kind::xor_, all_bits);

    // Double error: syndrome nonzero but overall parity still even.
    const node_id parity_even = nl.add_unary(gate_kind::not_, parity_mismatch);
    const node_id derr = nl.add_binary(gate_kind::and_, err, parity_even);

    mark_output_bus(nl, corrected, "O");
    nl.mark_output(err, "ERR");
    nl.mark_output(derr, "DERR");
    nl.validate();
    return nl;
}

netlist make_c499_like() {
    netlist nl = make_sec_corrector(32, "c499_like");
    return nl;
}

netlist make_c1355_like() {
    netlist nl = expand_xor(make_sec_corrector(32, "c1355_like"));
    nl.set_name("c1355_like");
    return nl;
}

netlist make_c1908_like() { return make_secded_corrector(16, "c1908_like"); }

std::uint64_t hamming_encode(std::uint64_t data, std::size_t data_bits) {
    const code_layout lay = layout_for(data_bits);
    std::uint64_t check = 0;
    for (std::size_t j = 0; j < lay.check_bits; ++j) {
        bool p = false;
        for (std::size_t i = 0; i < data_bits; ++i)
            if (((lay.data_pos[i] >> j) & 1u) && ((data >> i) & 1ULL)) p = !p;
        if (p) check |= (1ULL << j);
    }
    return check;
}

sec_verdict hamming_decode(std::uint64_t data, std::uint64_t check,
                           std::size_t data_bits, bool ded,
                           bool overall_parity) {
    const code_layout lay = layout_for(data_bits);
    std::uint64_t syndrome = 0;
    for (std::size_t j = 0; j < lay.check_bits; ++j) {
        bool p = ((check >> j) & 1ULL) != 0;
        for (std::size_t i = 0; i < data_bits; ++i)
            if (((lay.data_pos[i] >> j) & 1u) && ((data >> i) & 1ULL)) p = !p;
        if (p) syndrome |= (1ULL << j);
    }
    sec_verdict v;
    v.error = (syndrome != 0);
    v.corrected = data;
    for (std::size_t i = 0; i < data_bits; ++i)
        if (syndrome == lay.data_pos[i]) v.corrected ^= (1ULL << i);
    if (ded) {
        bool par = overall_parity;
        for (std::size_t i = 0; i < data_bits; ++i)
            if ((data >> i) & 1ULL) par = !par;
        for (std::size_t j = 0; j < lay.check_bits; ++j)
            if ((check >> j) & 1ULL) par = !par;
        v.double_error = v.error && !par;
    }
    return v;
}

}  // namespace wrpt
