// Hamming single-error-correcting (SEC) and SEC/DED circuits.
//
// The ISCAS'85 benchmarks c499/c1355 are a 32-bit single-error-correcting
// circuit (c1355 is c499 with XORs expanded to NANDs) and c1908 is a 16-bit
// SEC/DED circuit. We generate the standard Hamming decoder/corrector:
// syndrome XOR trees, a syndrome decoder, and correction XORs.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

/// Number of Hamming check bits for `data_bits` of payload.
std::size_t hamming_check_bits(std::size_t data_bits);

/// Build a Hamming SEC corrector: inputs D0..D<d-1> (received data) and
/// C0..C<c-1> (received check bits); outputs O0.. (corrected data) and ERR
/// (syndrome nonzero).
netlist make_sec_corrector(std::size_t data_bits,
                           const std::string& name = "sec");

/// SEC/DED variant with an overall parity input "OP" and an extra output
/// "DERR" flagging an (uncorrectable) double error.
netlist make_secded_corrector(std::size_t data_bits,
                              const std::string& name = "secded");

/// c499-like: 32-bit SEC in XOR form; c1355-like: same function with XORs
/// expanded to NAND networks; c1908-like: 16-bit SEC/DED.
netlist make_c499_like();
netlist make_c1355_like();
netlist make_c1908_like();

// --- reference model ---------------------------------------------------------

/// Check bits for a data word (encoder side of the same code).
std::uint64_t hamming_encode(std::uint64_t data, std::size_t data_bits);

struct sec_verdict {
    std::uint64_t corrected = 0;
    bool error = false;        ///< syndrome nonzero
    bool double_error = false; ///< SEC/DED only
};

/// Decode a received (data, check) pair; `overall_parity` is the received
/// overall parity bit for SEC/DED (ignored when ded == false).
sec_verdict hamming_decode(std::uint64_t data, std::uint64_t check,
                           std::size_t data_bits, bool ded = false,
                           bool overall_parity = false);

}  // namespace wrpt
