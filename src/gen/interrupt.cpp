#include "gen/interrupt.h"

#include "gen/wordlib.h"
#include "util/error.h"

namespace wrpt {

netlist make_interrupt_controller(const std::string& name) {
    netlist nl(name);
    const bus e = add_input_bus(nl, "E", 9);
    const bus a = add_input_bus(nl, "A", 9);
    const bus b = add_input_bus(nl, "B", 9);
    const bus c = add_input_bus(nl, "C", 9);

    const bus ea = and_bus(nl, a, e);
    const bus eb = and_bus(nl, b, e);
    const bus ec = and_bus(nl, c, e);

    const node_id any_a = any_set(nl, ea);
    const node_id any_b = any_set(nl, eb);
    const node_id any_c = any_set(nl, ec);

    const node_id not_a = nl.add_unary(gate_kind::not_, any_a);
    const node_id not_b = nl.add_unary(gate_kind::not_, any_b);
    const node_id grant_a = any_a;
    const node_id grant_b = nl.add_binary(gate_kind::and_, not_a, any_b);
    const node_id grant_c =
        nl.add_gate(gate_kind::and_, {not_a, not_b, any_c});

    // Winning bank's request lines.
    bus win(9);
    for (std::size_t i = 0; i < 9; ++i) {
        const node_id ta = nl.add_binary(gate_kind::and_, grant_a, ea[i]);
        const node_id tb = nl.add_binary(gate_kind::and_, grant_b, eb[i]);
        const node_id tc = nl.add_binary(gate_kind::and_, grant_c, ec[i]);
        win[i] = nl.add_gate(gate_kind::or_, {ta, tb, tc});
    }

    // Priority encode: highest index wins. hi[i] = win[i] & ~(win above i).
    bus hi(9);
    node_id above = null_node;  // OR of win[8..i+1]
    for (std::size_t k = 0; k < 9; ++k) {
        const std::size_t i = 8 - k;
        if (above == null_node) {
            hi[i] = win[i];
        } else {
            const node_id none_above = nl.add_unary(gate_kind::not_, above);
            hi[i] = nl.add_binary(gate_kind::and_, win[i], none_above);
        }
        above = (above == null_node) ? win[i]
                                     : nl.add_binary(gate_kind::or_, above, win[i]);
    }

    // Binary channel index from the one-hot vector.
    bus ch;
    for (std::size_t j = 0; j < 4; ++j) {
        std::vector<node_id> taps;
        for (std::size_t i = 0; i < 9; ++i)
            if ((i >> j) & 1u) taps.push_back(hi[i]);
        ch.push_back(taps.empty() ? nl.add_const(false)
                                  : nl.add_tree(gate_kind::or_, taps));
    }

    nl.mark_output(grant_a, "PA");
    nl.mark_output(grant_b, "PB");
    nl.mark_output(grant_c, "PC");
    mark_output_bus(nl, ch, "CH");
    nl.validate();
    return nl;
}

netlist make_c432_like() { return make_interrupt_controller("c432_like"); }

interrupt_verdict interrupt_reference(unsigned enable, unsigned req_a,
                                      unsigned req_b, unsigned req_c) {
    const unsigned mask = 0x1ffu;
    enable &= mask;
    const unsigned ea = req_a & enable & mask;
    const unsigned eb = req_b & enable & mask;
    const unsigned ec = req_c & enable & mask;
    interrupt_verdict v;
    unsigned win = 0;
    if (ea != 0) {
        v.grant_a = true;
        win = ea;
    } else if (eb != 0) {
        v.grant_b = true;
        win = eb;
    } else if (ec != 0) {
        v.grant_c = true;
        win = ec;
    }
    if (win != 0) {
        unsigned i = 8;
        while (((win >> i) & 1u) == 0) --i;
        v.channel = i;
    }
    return v;
}

}  // namespace wrpt
