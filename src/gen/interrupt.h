// Priority interrupt controller — the c432-like suite member.
//
// The ISCAS'85 benchmark c432 is a 27-channel interrupt controller
// (36 inputs, 7 outputs). We generate a controller with the same shape:
// three banks of nine request lines plus a nine-bit channel enable mask.
// Bank A has priority over B over C; within the winning bank the highest
// enabled channel wins. Outputs: per-bank grant flags and the 4-bit binary
// index of the winning channel.

#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace wrpt {

/// Build the controller. Inputs: E0..E8 (channel enables), A0..A8, B0..B8,
/// C0..C8 (requests). Outputs: PA, PB, PC (grants), CH0..CH3 (channel).
netlist make_interrupt_controller(const std::string& name = "intctl");

/// c432-like suite member (36 inputs, 7 outputs).
netlist make_c432_like();

/// Reference model for tests.
struct interrupt_verdict {
    bool grant_a = false, grant_b = false, grant_c = false;
    unsigned channel = 0;  ///< 4-bit index; 0 when no grant
};
interrupt_verdict interrupt_reference(unsigned enable, unsigned req_a,
                                      unsigned req_b, unsigned req_c);

}  // namespace wrpt
