// Registry of the paper's benchmark suite (Tables 1-5).
//
// Each entry names the circuit as the paper does, the generator that builds
// our substitute (see DESIGN.md section 2), and the values the paper
// reports, so the benches can print paper-vs-measured side by side.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

struct suite_entry {
    std::string name;        ///< paper's circuit name (S1, S2, c432, ...)
    bool hard = false;       ///< starred in the paper: random-pattern resistant
    std::function<netlist()> build;
    std::string substitution;  ///< one-line note: what we build instead

    // Paper-reported numbers (0 when the paper gives none for this circuit).
    double paper_table1_length = 0.0;       ///< conventional test length
    std::uint64_t paper_sim_patterns = 0;   ///< Tables 2/4 pattern count
    double paper_conventional_coverage = 0.0;  ///< Table 2 (%)
    double paper_optimized_length = 0.0;       ///< Table 3
    double paper_optimized_coverage = 0.0;     ///< Table 4 (%)
    double paper_cpu_seconds = 0.0;            ///< Table 5 (Siemens 7561)
};

/// The twelve circuits of Table 1 in paper order.
const std::vector<suite_entry>& benchmark_suite();

/// The four starred (random-pattern-resistant) circuits of Tables 2-5.
std::vector<suite_entry> hard_suite();

/// Build a suite circuit by its paper name; throws invalid_input if unknown.
netlist build_suite_circuit(const std::string& name);

}  // namespace wrpt
