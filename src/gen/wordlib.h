// Shared word-level building blocks for the circuit generators.
//
// A `bus` is a little-endian vector of node ids (index 0 = LSB). All
// builders append gates to a caller-supplied netlist and return the nodes
// carrying the result.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

/// Little-endian word of netlist nodes (index 0 = least significant bit).
using bus = std::vector<node_id>;

/// Create `width` primary inputs named "<prefix>0".."<prefix><width-1>".
bus add_input_bus(netlist& nl, const std::string& prefix, std::size_t width);

/// Mark each bus bit as primary output "<prefix>0"...
void mark_output_bus(netlist& nl, const bus& b, const std::string& prefix);

/// Bus of constant nodes carrying `value` (LSB first).
bus constant_bus(netlist& nl, std::uint64_t value, std::size_t width);

/// 2:1 multiplexer: returns a0 when sel=0, a1 when sel=1.
node_id mux2(netlist& nl, node_id sel, node_id a0, node_id a1);

/// Bitwise 2:1 multiplexer over equally sized buses.
bus mux2_bus(netlist& nl, node_id sel, const bus& a0, const bus& a1);

/// Bitwise unary/binary operations over buses.
bus invert_bus(netlist& nl, const bus& a);
bus xor_bus(netlist& nl, const bus& a, const bus& b);
bus and_bus(netlist& nl, const bus& a, const bus& b);

struct adder_bits {
    node_id sum = null_node;
    node_id carry = null_node;
};

/// Half adder (sum, carry) and full adder.
adder_bits half_adder(netlist& nl, node_id a, node_id b);
adder_bits full_adder(netlist& nl, node_id a, node_id b, node_id cin);

struct add_result {
    bus sum;             ///< width = max(|a|, |b|)
    node_id carry_out = null_node;
};

/// Ripple-carry adder a + b (+ cin). Buses may differ in width; the shorter
/// one is zero-extended.
add_result ripple_add(netlist& nl, const bus& a, const bus& b,
                      node_id cin = null_node);

struct sub_result {
    bus diff;            ///< width = |a|
    node_id borrow_out = null_node;  ///< 1 iff a < b (unsigned)
};

/// Ripple-borrow subtractor a - b (unsigned); buses must have equal width.
sub_result ripple_sub(netlist& nl, const bus& a, const bus& b);

/// Wide equality: AND-tree over bitwise XNOR. Buses must have equal width.
node_id equality(netlist& nl, const bus& a, const bus& b);

struct compare_result {
    node_id eq = null_node;
    node_id gt = null_node;  ///< a > b (unsigned)
    node_id lt = null_node;  ///< a < b (unsigned)
};

/// Unsigned magnitude comparator built from a prefix-equality chain
/// (the classic cascadable comparator structure, MSB first).
compare_result magnitude_compare(netlist& nl, const bus& a, const bus& b);

/// Parity (XOR tree) over a bus.
node_id parity(netlist& nl, const bus& b);

/// OR-tree "any bit set" / AND-tree "all bits set".
node_id any_set(netlist& nl, const bus& b);
node_id all_set(netlist& nl, const bus& b);

/// Select a slice [lo, lo+len) of a bus.
bus slice(const bus& b, std::size_t lo, std::size_t len);

/// Evaluate reference arithmetic helpers used by generator tests.
namespace ref {
/// Extract `width` bits from `value` as vector<bool>, LSB first.
std::vector<bool> to_bits(std::uint64_t value, std::size_t width);
/// Assemble bits (LSB first) into an integer.
std::uint64_t from_bits(const std::vector<bool>& bits);
}  // namespace ref

}  // namespace wrpt
