// 74181-inspired ALU slice and n-bit ALU generator.
//
// Several ISCAS'85 benchmarks are ALU/control circuits (c880: 8-bit ALU,
// c3540: 8-bit ALU with BCD, c5315: 9-bit ALU). This module provides a
// documented, verifiable ALU with the same interface character as the
// TI 74181 (operand buses, mode bit, function select, carry chain, group
// propagate/generate, A=B output). The function table below is our own
// clean spec; the substitution is documented in DESIGN.md.
//
// Function table (M = mode, S = select):
//   M=1 (logic)     S=00: F = A AND B     S=01: F = A OR B
//                   S=10: F = A XOR B     S=11: F = NOT A
//   M=0 (arlogicth) S=00: F = A + B + Cin S=01: F = A + ~B + Cin  (A-B-1+Cin)
//                   S=10: F = A + Cin     S=11: F = A - 1 + Cin
//
// Arithmetic is unsigned modulo 2^width with carry-out.

#pragma once

#include <cstdint>

#include "gen/wordlib.h"
#include "netlist/netlist.h"

namespace wrpt {

/// Signals produced by an ALU component instantiated into a host netlist.
struct alu_signals {
    bus f;                         ///< result bus
    node_id carry_out = null_node;
    node_id group_p = null_node;   ///< AND of per-bit propagate
    node_id group_g = null_node;   ///< group generate (carry-lookahead form)
    node_id a_eq_b = null_node;    ///< wide equality of raw operands
    node_id zero = null_node;      ///< NOR of the result bits
};

/// Instantiate an ALU over existing nodes. `s` must have 2 bits (s[0] = S0).
alu_signals add_alu(netlist& nl, const bus& a, const bus& b, node_id s0,
                    node_id s1, node_id m, node_id cin);

/// Standalone ALU netlist with inputs A*, B*, S0, S1, M, CIN and outputs
/// F*, COUT, PG, GG, AEQB, ZERO.
netlist make_alu(std::size_t width, const std::string& name = "alu");

/// Reference model matching the function table above.
struct alu_verdict {
    std::uint64_t f = 0;
    bool carry_out = false;
    bool a_eq_b = false;
    bool zero = false;
};
alu_verdict alu_reference(std::uint64_t a, std::uint64_t b, unsigned s,
                          bool m, bool cin, std::size_t width);

}  // namespace wrpt
