// Combinational restoring array divider — the paper's S2 substrate.
//
// S2 is "the combinational part of a 32 bit divider" [KuWu85]. We build the
// classic restoring division array: one row per quotient bit, each row a
// ripple-borrow subtractor plus a restore multiplexer. Quotient bits of
// high weight are almost never 1 under equiprobable inputs (they require a
// tiny divisor), which creates the extremely low detection probabilities
// that give S2 its 10^11-class conventional test length in the paper.

#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace wrpt {

/// Build a restoring array divider: dividend_width-bit dividend divided by
/// divisor_width-bit divisor. Outputs: quotient ("Q*", dividend_width bits),
/// remainder ("R*", divisor_width bits), plus "DIVBY0" flag.
/// Semantics match unsigned integer division for divisor != 0.
netlist make_divider(std::size_t dividend_width, std::size_t divisor_width,
                     const std::string& name = "divider");

/// The paper's S2: combinational part of a 32-bit divider
/// (32-bit dividend, 16-bit divisor).
netlist make_s2();

/// Reference model for tests. For divisor == 0 the hardware returns
/// quotient = all-ones and remainder = dividend (documented convention).
struct divider_verdict {
    std::uint64_t quotient = 0;
    std::uint64_t remainder = 0;
    bool div_by_zero = false;
};
divider_verdict divide_reference(std::uint64_t dividend, std::uint64_t divisor,
                                 std::size_t dividend_width,
                                 std::size_t divisor_width);

}  // namespace wrpt
