#include "gen/alu.h"

#include "util/error.h"

namespace wrpt {

alu_signals add_alu(netlist& nl, const bus& a, const bus& b, node_id s0,
                    node_id s1, node_id m, node_id cin) {
    require(a.size() == b.size() && !a.empty(), "add_alu: width mismatch");
    const std::size_t w = a.size();

    // Operand selection for the arithmetic chain:
    //   bsel = S1 ? S0 : (B XOR S0)
    // which yields B, ~B, 0, 1 for S = 00, 01, 10, 11.
    bus bsel;
    bsel.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
        const node_id bx = nl.add_binary(gate_kind::xor_, b[i], s0);
        bsel.push_back(mux2(nl, s1, bx, s0));
    }

    // Ripple carry over propagate/generate pairs.
    bus p(w), g(w), sum(w);
    for (std::size_t i = 0; i < w; ++i) {
        p[i] = nl.add_binary(gate_kind::xor_, a[i], bsel[i]);
        g[i] = nl.add_binary(gate_kind::and_, a[i], bsel[i]);
    }
    node_id carry = cin;
    for (std::size_t i = 0; i < w; ++i) {
        sum[i] = nl.add_binary(gate_kind::xor_, p[i], carry);
        const node_id t = nl.add_binary(gate_kind::and_, p[i], carry);
        carry = nl.add_binary(gate_kind::or_, g[i], t);
    }

    // Logic unit: AND / OR / XOR / NOT A selected by S.
    bus logic(w);
    for (std::size_t i = 0; i < w; ++i) {
        const node_id l_and = nl.add_binary(gate_kind::and_, a[i], b[i]);
        const node_id l_or = nl.add_binary(gate_kind::or_, a[i], b[i]);
        const node_id l_xor = nl.add_binary(gate_kind::xor_, a[i], b[i]);
        const node_id l_not = nl.add_unary(gate_kind::not_, a[i]);
        const node_id lo = mux2(nl, s0, l_and, l_or);
        const node_id hi = mux2(nl, s0, l_xor, l_not);
        logic[i] = mux2(nl, s1, lo, hi);
    }

    alu_signals out;
    out.f = mux2_bus(nl, m, sum, logic);
    out.carry_out = carry;
    out.group_p = all_set(nl, p);
    // Group generate: G_{w-1} + P_{w-1} G_{w-2} + ... (lookahead form).
    {
        std::vector<node_id> terms;
        node_id prefix = null_node;
        for (std::size_t k = 0; k < w; ++k) {
            const std::size_t i = w - 1 - k;
            node_id term = g[i];
            if (prefix != null_node)
                term = nl.add_binary(gate_kind::and_, prefix, term);
            terms.push_back(term);
            prefix = (prefix == null_node)
                         ? p[i]
                         : nl.add_binary(gate_kind::and_, prefix, p[i]);
        }
        out.group_g = nl.add_tree(gate_kind::or_, terms);
    }
    out.a_eq_b = equality(nl, a, b);
    const node_id any_f = any_set(nl, out.f);
    out.zero = nl.add_unary(gate_kind::not_, any_f);
    return out;
}

netlist make_alu(std::size_t width, const std::string& name) {
    require(width >= 1 && width <= 32, "make_alu: width out of range");
    netlist nl(name);
    const bus a = add_input_bus(nl, "A", width);
    const bus b = add_input_bus(nl, "B", width);
    const node_id s0 = nl.add_input("S0");
    const node_id s1 = nl.add_input("S1");
    const node_id m = nl.add_input("M");
    const node_id cin = nl.add_input("CIN");
    const alu_signals sig = add_alu(nl, a, b, s0, s1, m, cin);
    mark_output_bus(nl, sig.f, "F");
    nl.mark_output(sig.carry_out, "COUT");
    nl.mark_output(sig.group_p, "PG");
    nl.mark_output(sig.group_g, "GG");
    nl.mark_output(sig.a_eq_b, "AEQB");
    nl.mark_output(sig.zero, "ZERO");
    nl.validate();
    return nl;
}

alu_verdict alu_reference(std::uint64_t a, std::uint64_t b, unsigned s, bool m,
                          bool cin, std::size_t width) {
    require(width >= 1 && width <= 32, "alu_reference: width out of range");
    const std::uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
    a &= mask;
    b &= mask;
    alu_verdict v;
    // The carry chain is evaluated by the hardware in both modes (it only
    // feeds F in arithmetic mode), so the reference computes it always.
    std::uint64_t bsel = 0;
    switch (s & 3u) {
        case 0: bsel = b; break;
        case 1: bsel = ~b & mask; break;
        case 2: bsel = 0; break;
        case 3: bsel = mask; break;
    }
    const std::uint64_t total = a + bsel + (cin ? 1 : 0);
    v.carry_out = (total >> width) != 0;
    if (m) {
        switch (s & 3u) {
            case 0: v.f = a & b; break;
            case 1: v.f = a | b; break;
            case 2: v.f = a ^ b; break;
            case 3: v.f = ~a; break;
        }
        v.f &= mask;
    } else {
        v.f = total & mask;
    }
    v.a_eq_b = (a == b);
    v.zero = (v.f == 0);
    return v;
}

}  // namespace wrpt
