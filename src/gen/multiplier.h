// Combinational array multiplier — the c6288-like suite member.
//
// The ISCAS'85 benchmark c6288 is a 16x16 array multiplier (2406 gates).
// We generate the classic parallel array: an AND partial-product matrix
// accumulated row by row with ripple-carry adders. Same function, same
// structural character (deep reconvergent carry logic), comparable size.

#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace wrpt {

/// Build an n x m array multiplier. Inputs "A0..", "B0..";
/// outputs "P0..P<n+m-1>".
netlist make_multiplier(std::size_t width_a, std::size_t width_b,
                        const std::string& name = "multiplier");

/// 16x16 array multiplier, the c6288-like suite member.
netlist make_c6288_like();

/// Reference model for tests.
std::uint64_t multiply_reference(std::uint64_t a, std::uint64_t b,
                                 std::size_t width_a, std::size_t width_b);

}  // namespace wrpt
