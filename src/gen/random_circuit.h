// Seeded random combinational circuits for property-based tests.

#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace wrpt {

struct random_circuit_spec {
    std::size_t inputs = 8;
    std::size_t gates = 64;
    std::size_t max_arity = 4;     ///< for and/or/nand/nor (xor capped at 3)
    std::uint64_t seed = 1;
    bool allow_xor = true;
};

/// Generate a random DAG respecting the spec. Every fanout-free node is
/// exported as a primary output, so no logic is dead.
netlist make_random_circuit(const random_circuit_spec& spec);

}  // namespace wrpt
