// Composite datapath circuits standing in for the remaining ISCAS'85
// benchmarks. Each mirrors the documented function and the random-pattern
// character (hard-fault mechanisms) of its original; see DESIGN.md.

#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace wrpt {

/// c880-like: 8-bit ALU datapath. ALU(A,B) -> Y; Z = T ? Y : C;
/// W = Z + D. Outputs W, carries, parity and flags.
netlist make_c880_like();

/// c2670-like: 12-bit ALU whose result is gated by a 16-bit equality
/// comparator (the hard-fault mechanism: observing ALU faults requires
/// E == F, probability 2^-16 under equiprobable inputs).
netlist make_c2670_like();

/// c3540-like: 8-bit binary/BCD ALU with decimal-adjust stage.
netlist make_c3540_like();

/// c5315-like: dual 9-bit ALU datapath with comparator and parity outputs.
netlist make_c5315_like();

/// c7552-like: 34-bit adder/comparator/parity datapath. The 34-bit equality
/// (probability 2^-34) reproduces the benchmark's extreme conventional test
/// length.
netlist make_c7552_like();

// --- reference models (bit-accurate, used by the generator tests) ----------

struct c880_verdict {
    std::uint64_t w = 0;
    bool carry = false;
    bool parity_y = false;
    bool zero_z = false;
};
c880_verdict c880_reference(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                            std::uint64_t d, unsigned s, bool m, bool cin,
                            bool t);

struct c2670_verdict {
    std::uint64_t out = 0;
    bool eq = false;
    bool parity_e = false;
    bool parity_f = false;
    bool zero = false;
};
c2670_verdict c2670_reference(std::uint64_t a, std::uint64_t b, unsigned s,
                              bool m, bool cin, std::uint64_t e,
                              std::uint64_t f, std::uint64_t d);

struct c3540_verdict {
    std::uint64_t f = 0;
    bool carry = false;
    bool zero = false;
};
/// mode_bcd selects decimal adjust; op: 0 add, 1 subtract (A - B).
c3540_verdict c3540_reference(std::uint64_t a, std::uint64_t b, bool op,
                              bool mode_bcd, bool cin);

struct c5315_verdict {
    std::uint64_t f1 = 0, f2 = 0;
    bool gt = false, eq = false, lt = false;
    bool parity1 = false, parity2 = false;
};
c5315_verdict c5315_reference(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              std::uint64_t d, unsigned s1, bool m1, bool cin1,
                              unsigned s2, bool m2, bool cin2);

struct c7552_verdict {
    std::uint64_t sum = 0;
    bool carry = false;
    std::uint64_t out = 0;
    bool eq = false, gt = false;
    bool parity_a = false, parity_b = false;
};
c7552_verdict c7552_reference(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              bool cin);

}  // namespace wrpt
