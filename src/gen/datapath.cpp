#include "gen/datapath.h"

#include <bit>

#include "gen/alu.h"
#include "gen/wordlib.h"
#include "netlist/transform.h"
#include "util/error.h"

namespace wrpt {
namespace {

bool parity_of(std::uint64_t v) { return (std::popcount(v) & 1) != 0; }

/// gt9 detect on a 4-bit nibble: value > 9  <=>  b3 & (b2 | b1).
node_id nibble_gt9(netlist& nl, const bus& nib) {
    const node_id or21 = nl.add_binary(gate_kind::or_, nib[2], nib[1]);
    return nl.add_binary(gate_kind::and_, nib[3], or21);
}

}  // namespace

// --- c880-like ---------------------------------------------------------------

netlist make_c880_like() {
    netlist nl("c880_like");
    const bus a = add_input_bus(nl, "A", 8);
    const bus b = add_input_bus(nl, "B", 8);
    const bus c = add_input_bus(nl, "C", 8);
    const bus d = add_input_bus(nl, "D", 8);
    const node_id s0 = nl.add_input("S0");
    const node_id s1 = nl.add_input("S1");
    const node_id m = nl.add_input("M");
    const node_id cin = nl.add_input("CIN");
    const node_id t = nl.add_input("T");

    const alu_signals alu = add_alu(nl, a, b, s0, s1, m, cin);
    const bus z = mux2_bus(nl, t, alu.f, c);
    const add_result w = ripple_add(nl, z, d);

    mark_output_bus(nl, w.sum, "W");
    nl.mark_output(w.carry_out, "WCOUT");
    nl.mark_output(alu.carry_out, "YCOUT");
    nl.mark_output(parity(nl, alu.f), "PY");
    const node_id anyz = any_set(nl, z);
    nl.mark_output(nl.add_unary(gate_kind::not_, anyz), "ZZERO");
    nl.mark_output(alu.a_eq_b, "AEQB");
    nl.validate();
    // The embedded ALU also produces group P/G signals this datapath does
    // not export; sweep the dead logic so every fault site is observable.
    return sweep_dead(nl);
}

c880_verdict c880_reference(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                            std::uint64_t d, unsigned s, bool m, bool cin,
                            bool t) {
    const std::uint64_t mask = 0xff;
    a &= mask; b &= mask; c &= mask; d &= mask;
    const alu_verdict y = alu_reference(a, b, s, m, cin, 8);
    const std::uint64_t z = t ? c : y.f;
    const std::uint64_t total = z + d;
    c880_verdict v;
    v.w = total & mask;
    v.carry = (total >> 8) != 0;
    v.parity_y = parity_of(y.f);
    v.zero_z = (z == 0);
    return v;
}

// --- c2670-like --------------------------------------------------------------

netlist make_c2670_like() {
    netlist nl("c2670_like");
    const bus a = add_input_bus(nl, "A", 12);
    const bus b = add_input_bus(nl, "B", 12);
    const node_id s0 = nl.add_input("S0");
    const node_id s1 = nl.add_input("S1");
    const node_id m = nl.add_input("M");
    const node_id cin = nl.add_input("CIN");
    const bus e = add_input_bus(nl, "E", 16);
    const bus f = add_input_bus(nl, "F", 16);
    const bus d = add_input_bus(nl, "D", 12);

    const alu_signals alu = add_alu(nl, a, b, s0, s1, m, cin);
    const node_id eq = equality(nl, e, f);
    // The controller only exposes the ALU result when E == F; otherwise the
    // bypass data D is routed through. This is the hard-fault mechanism.
    const bus out = mux2_bus(nl, eq, d, alu.f);
    const node_id gcout = nl.add_binary(gate_kind::and_, eq, alu.carry_out);

    mark_output_bus(nl, out, "OUT");
    nl.mark_output(eq, "EQ");
    nl.mark_output(gcout, "GCOUT");
    nl.mark_output(parity(nl, e), "PE");
    nl.mark_output(parity(nl, f), "PF");
    const node_id anyo = any_set(nl, out);
    nl.mark_output(nl.add_unary(gate_kind::not_, anyo), "ZERO");
    nl.validate();
    return sweep_dead(nl);
}

c2670_verdict c2670_reference(std::uint64_t a, std::uint64_t b, unsigned s,
                              bool m, bool cin, std::uint64_t e,
                              std::uint64_t f, std::uint64_t d) {
    a &= 0xfff; b &= 0xfff; d &= 0xfff;
    e &= 0xffff; f &= 0xffff;
    const alu_verdict alu = alu_reference(a, b, s, m, cin, 12);
    c2670_verdict v;
    v.eq = (e == f);
    v.out = v.eq ? alu.f : d;
    v.parity_e = parity_of(e);
    v.parity_f = parity_of(f);
    v.zero = (v.out == 0);
    return v;
}

// --- c3540-like --------------------------------------------------------------

netlist make_c3540_like() {
    netlist nl("c3540_like");
    const bus a = add_input_bus(nl, "A", 8);
    const bus b = add_input_bus(nl, "B", 8);
    const bus t = add_input_bus(nl, "T", 8);
    const bus u = add_input_bus(nl, "U", 8);
    const node_id op = nl.add_input("OP");
    const node_id mode = nl.add_input("MODE");
    const node_id cin = nl.add_input("CIN");

    // Binary stage, split into nibbles so the half carry is available.
    bus bsel;
    for (std::size_t i = 0; i < 8; ++i)
        bsel.push_back(nl.add_binary(gate_kind::xor_, b[i], op));
    const add_result lo =
        ripple_add(nl, slice(a, 0, 4), slice(bsel, 0, 4), cin);
    const add_result hi =
        ripple_add(nl, slice(a, 4, 4), slice(bsel, 4, 4), lo.carry_out);

    // Decimal adjust, addition semantics (see header and DESIGN.md):
    // low nibble += 6 when (low > 9 or half-carry) and MODE.
    const node_id adj_lo_cond =
        nl.add_binary(gate_kind::or_, nibble_gt9(nl, lo.sum), lo.carry_out);
    const node_id adj_lo = nl.add_binary(gate_kind::and_, mode, adj_lo_cond);
    bus six_lo{nl.add_const(false), adj_lo, adj_lo, nl.add_const(false)};
    const add_result lo_adj = ripple_add(nl, lo.sum, six_lo);

    // Propagate the adjustment carry into the high nibble, then adjust it.
    bus zero4 = constant_bus(nl, 0, 4);
    const add_result hi1 = ripple_add(nl, hi.sum, zero4, lo_adj.carry_out);
    const node_id adj_hi_cond = nl.add_binary(
        gate_kind::or_, nibble_gt9(nl, hi1.sum),
        nl.add_binary(gate_kind::or_, hi.carry_out, hi1.carry_out));
    const node_id adj_hi = nl.add_binary(gate_kind::and_, mode, adj_hi_cond);
    bus six_hi{nl.add_const(false), adj_hi, adj_hi, nl.add_const(false)};
    const add_result hi_adj = ripple_add(nl, hi1.sum, six_hi);

    bus f = lo_adj.sum;
    f.insert(f.end(), hi_adj.sum.begin(), hi_adj.sum.end());
    const node_id carry = nl.add_gate(
        gate_kind::or_, {hi.carry_out, hi1.carry_out, hi_adj.carry_out});

    // Wide-equality block (16 bits) for the hard-fault tail.
    const node_id eq_at = equality(nl, a, t);
    const node_id eq_bu = equality(nl, b, u);
    const node_id eq16 = nl.add_binary(gate_kind::and_, eq_at, eq_bu);

    mark_output_bus(nl, f, "F");
    nl.mark_output(carry, "CARRY");
    const node_id anyf = any_set(nl, f);
    nl.mark_output(nl.add_unary(gate_kind::not_, anyf), "ZERO");
    nl.mark_output(eq16, "EQ16");
    nl.mark_output(parity(nl, t), "PT");
    nl.mark_output(parity(nl, u), "PU");
    nl.validate();
    return propagate_constants(nl);
}

c3540_verdict c3540_reference(std::uint64_t a, std::uint64_t b, bool op,
                              bool mode_bcd, bool cin) {
    a &= 0xff; b &= 0xff;
    const std::uint64_t bsel = (op ? ~b : b) & 0xff;
    const std::uint64_t lo =
        (a & 0xf) + (bsel & 0xf) + (cin ? 1 : 0);               // up to 0x1f
    const bool hc = lo > 0xf;
    const std::uint64_t hi = ((a >> 4) & 0xf) + ((bsel >> 4) & 0xf) + (hc ? 1 : 0);
    const bool bin_carry = hi > 0xf;

    std::uint64_t lo4 = lo & 0xf;
    bool adj_lo = mode_bcd && (lo4 > 9 || hc);
    std::uint64_t lo_adj = lo4 + (adj_lo ? 6 : 0);
    const bool c_lo_adj = lo_adj > 0xf;
    lo_adj &= 0xf;

    std::uint64_t hi4 = (hi & 0xf) + (c_lo_adj ? 1 : 0);
    const bool c_hi1 = hi4 > 0xf;
    hi4 &= 0xf;
    const bool adj_hi = mode_bcd && (hi4 > 9 || bin_carry || c_hi1);
    std::uint64_t hi_adj = hi4 + (adj_hi ? 6 : 0);
    const bool c_hi_adj = hi_adj > 0xf;
    hi_adj &= 0xf;

    c3540_verdict v;
    v.f = (hi_adj << 4) | lo_adj;
    v.carry = bin_carry || c_hi1 || c_hi_adj;
    v.zero = (v.f == 0);
    return v;
}

// --- c5315-like --------------------------------------------------------------

netlist make_c5315_like() {
    netlist nl("c5315_like");
    const bus a = add_input_bus(nl, "A", 9);
    const bus b = add_input_bus(nl, "B", 9);
    const bus c = add_input_bus(nl, "C", 9);
    const bus d = add_input_bus(nl, "D", 9);
    const node_id s10 = nl.add_input("S10");
    const node_id s11 = nl.add_input("S11");
    const node_id m1 = nl.add_input("M1");
    const node_id cin1 = nl.add_input("CIN1");
    const node_id s20 = nl.add_input("S20");
    const node_id s21 = nl.add_input("S21");
    const node_id m2 = nl.add_input("M2");
    const node_id cin2 = nl.add_input("CIN2");

    const alu_signals alu1 = add_alu(nl, a, b, s10, s11, m1, cin1);
    const alu_signals alu2 = add_alu(nl, c, d, s20, s21, m2, cin2);
    const compare_result cmp = magnitude_compare(nl, alu1.f, alu2.f);

    mark_output_bus(nl, alu1.f, "F1_");
    mark_output_bus(nl, alu2.f, "F2_");
    nl.mark_output(cmp.gt, "GT");
    nl.mark_output(cmp.eq, "EQ");
    nl.mark_output(cmp.lt, "LT");
    nl.mark_output(parity(nl, alu1.f), "P1");
    nl.mark_output(parity(nl, alu2.f), "P2");
    nl.mark_output(alu1.carry_out, "COUT1");
    nl.mark_output(alu2.carry_out, "COUT2");
    nl.mark_output(alu1.zero, "ZERO1");
    nl.validate();
    return sweep_dead(nl);
}

c5315_verdict c5315_reference(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              std::uint64_t d, unsigned s1, bool m1, bool cin1,
                              unsigned s2, bool m2, bool cin2) {
    const alu_verdict v1 = alu_reference(a, b, s1, m1, cin1, 9);
    const alu_verdict v2 = alu_reference(c, d, s2, m2, cin2, 9);
    c5315_verdict v;
    v.f1 = v1.f;
    v.f2 = v2.f;
    v.gt = v1.f > v2.f;
    v.eq = v1.f == v2.f;
    v.lt = v1.f < v2.f;
    v.parity1 = parity_of(v1.f);
    v.parity2 = parity_of(v2.f);
    return v;
}

// --- c7552-like --------------------------------------------------------------

netlist make_c7552_like() {
    netlist nl("c7552_like");
    const bus a = add_input_bus(nl, "A", 34);
    const bus b = add_input_bus(nl, "B", 34);
    const bus c = add_input_bus(nl, "C", 34);
    const node_id cin = nl.add_input("CIN");

    const add_result sum1 = ripple_add(nl, a, b, cin);
    const node_id ncin = nl.add_unary(gate_kind::not_, cin);
    const add_result sum2 = ripple_add(nl, b, c, ncin);
    const compare_result cmp1 = magnitude_compare(nl, a, b);
    const compare_result cmp2 = magnitude_compare(nl, b, c);

    // OUT shows SUM1 xor C only when A == B (probability 2^-34 conventional);
    // OUT2 shows A and C only when B == C.
    const bus out = mux2_bus(nl, cmp1.eq, c, xor_bus(nl, sum1.sum, c));
    const bus out2 = mux2_bus(nl, cmp2.eq, sum2.sum, and_bus(nl, a, c));

    mark_output_bus(nl, sum1.sum, "S");
    nl.mark_output(sum1.carry_out, "COUT");
    mark_output_bus(nl, out, "X");
    mark_output_bus(nl, out2, "Y");
    nl.mark_output(cmp1.eq, "EQ1");
    nl.mark_output(cmp1.gt, "GT1");
    nl.mark_output(cmp2.eq, "EQ2");
    nl.mark_output(cmp2.gt, "GT2");
    nl.mark_output(parity(nl, a), "PA");
    nl.mark_output(parity(nl, b), "PB");
    nl.mark_output(parity(nl, c), "PC");
    nl.validate();
    return sweep_dead(nl);
}

c7552_verdict c7552_reference(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              bool cin) {
    const std::uint64_t mask = (1ULL << 34) - 1;
    a &= mask; b &= mask; c &= mask;
    c7552_verdict v;
    const std::uint64_t total = a + b + (cin ? 1 : 0);
    v.sum = total & mask;
    v.carry = (total >> 34) != 0;
    v.eq = (a == b);
    v.gt = (a > b);
    v.out = v.eq ? (v.sum ^ c) : c;
    v.parity_a = parity_of(a);
    v.parity_b = parity_of(b);
    return v;
}

}  // namespace wrpt
