#include "gen/random_circuit.h"

#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/label.h"

namespace wrpt {

netlist make_random_circuit(const random_circuit_spec& spec) {
    require(spec.inputs >= 2, "random circuit: need at least two inputs");
    require(spec.max_arity >= 2, "random circuit: max_arity >= 2");
    rng r(spec.seed);
    netlist nl(label("random_", spec.seed));

    std::vector<node_id> pool;
    for (std::size_t i = 0; i < spec.inputs; ++i)
        pool.push_back(nl.add_input(label("X", i)));

    static constexpr gate_kind choices[] = {
        gate_kind::and_, gate_kind::or_,  gate_kind::nand_, gate_kind::nor_,
        gate_kind::xor_, gate_kind::not_, gate_kind::xnor_, gate_kind::buf,
    };
    const std::size_t kind_count = spec.allow_xor ? 8 : 6;

    for (std::size_t g = 0; g < spec.gates; ++g) {
        const gate_kind k = choices[r.next_below(kind_count)];
        std::size_t arity;
        if (k == gate_kind::not_ || k == gate_kind::buf) {
            arity = 1;
        } else if (k == gate_kind::xor_ || k == gate_kind::xnor_) {
            arity = 2 + r.next_below(2);  // 2..3
        } else {
            arity = 2 + r.next_below(spec.max_arity - 1);  // 2..max_arity
        }
        std::vector<node_id> fi;
        for (std::size_t i = 0; i < arity; ++i)
            fi.push_back(pool[r.next_below(pool.size())]);
        pool.push_back(nl.add_gate(k, fi));
    }

    // Export every fanout-free node so nothing is dead. (There is always at
    // least one: the last gate.)
    std::size_t out_index = 0;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.fanout_count(n) == 0 && nl.kind(n) != gate_kind::input)
            nl.mark_output(n, label("Y", out_index++));
    }
    if (out_index == 0)  // degenerate: everything consumed (gates == 0)
        nl.mark_output(pool.back(), "Y0");
    nl.validate();
    return nl;
}

}  // namespace wrpt
