#include "gen/suite.h"

#include "gen/comparator.h"
#include "gen/datapath.h"
#include "gen/divider.h"
#include "gen/ecc.h"
#include "gen/interrupt.h"
#include "gen/multiplier.h"
#include "util/error.h"

namespace wrpt {

const std::vector<suite_entry>& benchmark_suite() {
    static const std::vector<suite_entry> suite = [] {
        std::vector<suite_entry> s;

        suite_entry s1;
        s1.name = "S1";
        s1.hard = true;
        s1.build = [] { return make_s1(); };
        s1.substitution =
            "24-bit comparator, six SN7485-style slices (as in the paper)";
        s1.paper_table1_length = 5.6e8;
        s1.paper_sim_patterns = 12000;
        s1.paper_conventional_coverage = 80.7;
        s1.paper_optimized_length = 3.5e4;
        s1.paper_optimized_coverage = 99.7;
        s1.paper_cpu_seconds = 300;
        s.push_back(std::move(s1));

        suite_entry s2;
        s2.name = "S2";
        s2.hard = true;
        s2.build = [] { return make_s2(); };
        s2.substitution =
            "combinational restoring array divider, 32-bit dividend / "
            "16-bit divisor";
        s2.paper_table1_length = 2.0e11;
        s2.paper_sim_patterns = 12000;
        s2.paper_conventional_coverage = 77.2;
        s2.paper_optimized_length = 4.0e4;
        s2.paper_optimized_coverage = 99.7;
        s2.paper_cpu_seconds = 600;
        s.push_back(std::move(s2));

        suite_entry c432;
        c432.name = "c432";
        c432.build = [] { return make_c432_like(); };
        c432.substitution = "27-channel priority interrupt controller";
        c432.paper_table1_length = 2.5e3;
        s.push_back(std::move(c432));

        suite_entry c499;
        c499.name = "c499";
        c499.build = [] { return make_c499_like(); };
        c499.substitution = "32-bit Hamming SEC corrector (XOR form)";
        c499.paper_table1_length = 1.9e3;
        s.push_back(std::move(c499));

        suite_entry c880;
        c880.name = "c880";
        c880.build = [] { return make_c880_like(); };
        c880.substitution = "8-bit ALU datapath";
        c880.paper_table1_length = 3.7e4;
        s.push_back(std::move(c880));

        suite_entry c1355;
        c1355.name = "c1355";
        c1355.build = [] { return make_c1355_like(); };
        c1355.substitution = "32-bit Hamming SEC corrector, XORs as NANDs";
        c1355.paper_table1_length = 2.2e6;
        s.push_back(std::move(c1355));

        suite_entry c1908;
        c1908.name = "c1908";
        c1908.build = [] { return make_c1908_like(); };
        c1908.substitution = "16-bit Hamming SEC/DED corrector";
        c1908.paper_table1_length = 6.2e4;
        s.push_back(std::move(c1908));

        suite_entry c2670;
        c2670.name = "c2670";
        c2670.hard = true;
        c2670.build = [] { return make_c2670_like(); };
        c2670.substitution =
            "12-bit ALU gated by a 16-bit equality comparator";
        c2670.paper_table1_length = 1.1e7;
        c2670.paper_sim_patterns = 4000;
        c2670.paper_conventional_coverage = 88.0;
        c2670.paper_optimized_length = 6.9e4;
        c2670.paper_optimized_coverage = 99.7;
        c2670.paper_cpu_seconds = 1200;
        s.push_back(std::move(c2670));

        suite_entry c3540;
        c3540.name = "c3540";
        c3540.build = [] { return make_c3540_like(); };
        c3540.substitution = "8-bit binary/BCD ALU with 16-bit equality block";
        c3540.paper_table1_length = 2.3e6;
        s.push_back(std::move(c3540));

        suite_entry c5315;
        c5315.name = "c5315";
        c5315.build = [] { return make_c5315_like(); };
        c5315.substitution = "dual 9-bit ALU datapath with comparator";
        c5315.paper_table1_length = 5.3e4;
        s.push_back(std::move(c5315));

        suite_entry c6288;
        c6288.name = "c6288";
        c6288.build = [] { return make_c6288_like(); };
        c6288.substitution = "16x16 array multiplier (as the original)";
        c6288.paper_table1_length = 1.9e3;
        s.push_back(std::move(c6288));

        suite_entry c7552;
        c7552.name = "c7552";
        c7552.hard = true;
        c7552.build = [] { return make_c7552_like(); };
        c7552.substitution =
            "34-bit adder/comparator/parity datapath with equality-gated "
            "outputs";
        c7552.paper_table1_length = 4.9e11;
        c7552.paper_sim_patterns = 4096;
        c7552.paper_conventional_coverage = 93.9;
        c7552.paper_optimized_length = 1.2e5;
        c7552.paper_optimized_coverage = 98.9;
        c7552.paper_cpu_seconds = 2000;
        s.push_back(std::move(c7552));

        return s;
    }();
    return suite;
}

std::vector<suite_entry> hard_suite() {
    std::vector<suite_entry> out;
    for (const auto& e : benchmark_suite())
        if (e.hard) out.push_back(e);
    return out;
}

netlist build_suite_circuit(const std::string& name) {
    for (const auto& e : benchmark_suite())
        if (e.name == name) return e.build();
    throw invalid_input("build_suite_circuit: unknown circuit '" + name + "'");
}

}  // namespace wrpt
