#include "bist/misr.h"

#include <bit>
#include <cmath>

#include "util/error.h"

namespace wrpt {

misr::misr(unsigned degree, std::uint64_t seed)
    : degree_(degree), tap_mask_(lfsr::primitive_taps(degree)) {
    require(degree >= 2 && degree <= 32, "misr: degree must be in [2,32]");
    state_ = seed & ((1ULL << degree) - 1);
}

void misr::feed(std::uint64_t response_bits) {
    const std::uint64_t mask = (1ULL << degree_) - 1;
    const bool fb = (std::popcount(state_ & tap_mask_) & 1) != 0;
    state_ = ((state_ << 1) | (fb ? 1ULL : 0ULL)) & mask;
    state_ ^= response_bits & mask;
}

void misr::feed_bits(const std::vector<bool>& response) {
    std::uint64_t folded = 0;
    for (std::size_t i = 0; i < response.size(); ++i)
        if (response[i]) folded ^= (1ULL << (i % degree_));
    feed(folded);
}

double misr::aliasing_probability() const {
    return std::ldexp(1.0, -static_cast<int>(degree_));
}

}  // namespace wrpt
