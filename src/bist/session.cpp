#include "bist/session.h"

#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "util/error.h"

namespace wrpt {
namespace {

lfsr_pattern_source make_source(const netlist& nl,
                                const weight_vector& target_weights,
                                const bist_session_options& options) {
    require(target_weights.size() == nl.input_count(),
            "bist session: weight count mismatch");
    lfsr gen = lfsr::max_length(options.lfsr_degree, options.lfsr_seed);
    return lfsr_pattern_source(
        gen, taps_for_weights(target_weights, options.max_weight_stages));
}

}  // namespace

std::uint64_t compute_golden_signature(const netlist& nl,
                                       const weight_vector& target_weights,
                                       const bist_session_options& options) {
    lfsr_pattern_source source = make_source(nl, target_weights, options);
    simulator sim(nl);
    misr sig(options.misr_degree);
    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < options.patterns) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block =
            std::min<std::uint64_t>(64, options.patterns - applied);
        for (std::uint64_t b = 0; b < block; ++b) {
            std::uint64_t folded = 0;
            for (std::size_t o = 0; o < nl.output_count(); ++o) {
                if ((sim.value(nl.outputs()[o]) >> b) & 1ULL)
                    folded ^= (1ULL << (o % options.misr_degree));
            }
            sig.feed(folded);
        }
        applied += block;
    }
    return sig.signature();
}

bist_session_result run_bist_session(const netlist& nl,
                                     const std::vector<fault>& faults,
                                     const weight_vector& target_weights,
                                     const bist_session_options& options) {
    bist_session_result res;
    res.golden_signature = compute_golden_signature(nl, target_weights, options);

    lfsr_pattern_source source = make_source(nl, target_weights, options);
    res.realized_weights = source.realized_weights();

    fault_sim_options fopts;
    fopts.max_patterns = options.patterns;
    // Fresh source with the same seed: the fault simulator must see the
    // exact sequence the chip would apply.
    lfsr_pattern_source grading = make_source(nl, target_weights, options);
    const fault_sim_result fr =
        run_fault_simulation(nl, faults, grading, fopts);

    res.patterns_applied = fr.patterns_applied;
    res.faults_detected = fr.detected_count;
    res.faults_total = faults.size();
    res.aliasing_probability =
        misr(options.misr_degree).aliasing_probability();
    return res;
}

}  // namespace wrpt
