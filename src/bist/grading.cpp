#include "bist/grading.h"

#include "bist/misr.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "util/error.h"

namespace wrpt {

signature_grading_result grade_by_signature(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, const signature_grading_options& options) {
    require(weights.size() == nl.input_count(),
            "grade_by_signature: weight count mismatch");
    signature_grading_result res;
    res.faults_total = faults.size();

    simulator sim(nl);
    weighted_random_source source(weights, options.seed,
                                  options.weight_resolution_bits);

    // One MISR per fault plus the golden one; every fault is carried
    // through the whole session (no dropping — aliasing is a whole-session
    // property).
    misr golden(options.misr_degree);
    std::vector<misr> faulty(faults.size(), misr(options.misr_degree));
    std::vector<bool> output_detected(faults.size(), false);

    const std::size_t outs = nl.output_count();
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> faulty_outputs(outs);
    std::uint64_t applied = 0;
    while (applied < options.patterns) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block =
            std::min<std::uint64_t>(64, options.patterns - applied);

        // Golden signature update.
        for (std::uint64_t b = 0; b < block; ++b) {
            std::uint64_t folded = 0;
            for (std::size_t o = 0; o < outs; ++o)
                if ((sim.value(nl.outputs()[o]) >> b) & 1ULL)
                    folded ^= (1ULL << (o % options.misr_degree));
            golden.feed(folded);
        }

        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            const std::uint64_t mask = sim.detect_mask(faults[fi]);
            if (mask != 0) output_detected[fi] = true;
            const auto diff = sim.last_output_diff();
            for (std::size_t o = 0; o < outs; ++o)
                faulty_outputs[o] =
                    sim.value(nl.outputs()[o]) ^ (mask ? diff[o] : 0);
            for (std::uint64_t b = 0; b < block; ++b) {
                std::uint64_t folded = 0;
                for (std::size_t o = 0; o < outs; ++o)
                    if ((faulty_outputs[o] >> b) & 1ULL)
                        folded ^= (1ULL << (o % options.misr_degree));
                faulty[fi].feed(folded);
            }
        }
        applied += block;
    }

    res.golden_signature = golden.signature();
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const bool sig_diff = faulty[fi].signature() != golden.signature();
        if (output_detected[fi]) {
            ++res.detected_by_outputs;
            if (sig_diff)
                ++res.detected_by_signature;
            else
                ++res.aliased;
        }
    }
    return res;
}

}  // namespace wrpt
