// Multiple-input signature register for test response compaction.

#pragma once

#include <cstdint>
#include <vector>

#include "bist/lfsr.h"

namespace wrpt {

/// Classic MISR: a maximal-length LFSR whose cells additionally XOR one
/// response bit each clock. Aliasing probability approaches 2^-degree.
class misr {
public:
    explicit misr(unsigned degree, std::uint64_t seed = 0);

    unsigned degree() const { return degree_; }
    std::uint64_t signature() const { return state_; }

    /// Clock once, folding up to `degree` response bits (bit i of
    /// `response_bits` enters cell i).
    void feed(std::uint64_t response_bits);

    /// Fold a whole response vector (wider than degree allowed: the vector
    /// is XOR-folded into degree columns first).
    void feed_bits(const std::vector<bool>& response);

    /// Estimated aliasing probability 2^-degree.
    double aliasing_probability() const;

private:
    unsigned degree_;
    std::uint64_t tap_mask_;
    std::uint64_t state_;
};

}  // namespace wrpt
