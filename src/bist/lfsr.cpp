#include "bist/lfsr.h"

#include <bit>

#include "util/error.h"

namespace wrpt {
namespace {

/// Maximal-length tap positions (1-based, XAPP052-style table).
constexpr std::uint8_t tap_table[][4] = {
    /* 2*/ {2, 1, 0, 0},   /* 3*/ {3, 2, 0, 0},   /* 4*/ {4, 3, 0, 0},
    /* 5*/ {5, 3, 0, 0},   /* 6*/ {6, 5, 0, 0},   /* 7*/ {7, 6, 0, 0},
    /* 8*/ {8, 6, 5, 4},   /* 9*/ {9, 5, 0, 0},   /*10*/ {10, 7, 0, 0},
    /*11*/ {11, 9, 0, 0},  /*12*/ {12, 6, 4, 1},  /*13*/ {13, 4, 3, 1},
    /*14*/ {14, 5, 3, 1},  /*15*/ {15, 14, 0, 0}, /*16*/ {16, 15, 13, 4},
    /*17*/ {17, 14, 0, 0}, /*18*/ {18, 11, 0, 0}, /*19*/ {19, 6, 2, 1},
    /*20*/ {20, 17, 0, 0}, /*21*/ {21, 19, 0, 0}, /*22*/ {22, 21, 0, 0},
    /*23*/ {23, 18, 0, 0}, /*24*/ {24, 23, 22, 17}, /*25*/ {25, 22, 0, 0},
    /*26*/ {26, 6, 2, 1},  /*27*/ {27, 5, 2, 1},  /*28*/ {28, 25, 0, 0},
    /*29*/ {29, 27, 0, 0}, /*30*/ {30, 6, 4, 1},  /*31*/ {31, 28, 0, 0},
    /*32*/ {32, 22, 2, 1},
};

}  // namespace

std::uint64_t lfsr::primitive_taps(unsigned degree) {
    require(degree >= 2 && degree <= 32, "lfsr: degree must be in [2,32]");
    std::uint64_t mask = 0;
    for (std::uint8_t pos : tap_table[degree - 2])
        if (pos != 0) mask |= (1ULL << (pos - 1));
    return mask;
}

lfsr::lfsr(unsigned degree, std::uint64_t tap_mask, std::uint64_t seed)
    : degree_(degree), tap_mask_(tap_mask) {
    require(degree >= 2 && degree <= 63, "lfsr: degree out of range");
    const std::uint64_t state_mask = (1ULL << degree) - 1;
    require((tap_mask & ~state_mask) == 0, "lfsr: taps beyond degree");
    require((tap_mask >> (degree - 1)) & 1ULL,
            "lfsr: feedback must include the last stage");
    state_ = seed & state_mask;
    require(state_ != 0, "lfsr: seed must be nonzero within the register");
}

lfsr lfsr::max_length(unsigned degree, std::uint64_t seed) {
    return lfsr(degree, primitive_taps(degree), seed);
}

bool lfsr::step() {
    // Fibonacci form on the output history: state bit (k-1) holds output
    // y_{t-k}; the new output is the XOR of the tapped history bits, which
    // realizes the primitive recurrence of the table polynomial.
    const bool out = (std::popcount(state_ & tap_mask_) & 1) != 0;
    const std::uint64_t state_mask = (1ULL << degree_) - 1;
    state_ = ((state_ << 1) | (out ? 1ULL : 0ULL)) & state_mask;
    return out;
}

std::uint64_t lfsr::step_word(unsigned k) {
    require(k <= 64, "lfsr::step_word: at most 64 bits");
    std::uint64_t w = 0;
    for (unsigned i = 0; i < k; ++i)
        if (step()) w |= (1ULL << i);
    return w;
}

std::uint64_t lfsr::measure_period() const {
    lfsr copy = *this;
    const std::uint64_t start = copy.state_;
    std::uint64_t count = 0;
    do {
        copy.step();
        ++count;
        require(count < (1ULL << 34), "lfsr::measure_period: period too long");
    } while (copy.state_ != start);
    return count;
}

}  // namespace wrpt
