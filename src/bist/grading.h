// Exact signature-based fault grading.
//
// The session result in session.h counts a fault as detected when any
// output differs on any pattern — an upper bound for signature-based BIST,
// because the MISR can alias (the error sequence compacts to the golden
// signature). This module runs the MISR per fault and measures the real
// signature coverage and the empirical aliasing rate, which theory bounds
// near 2^-degree.

#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"

namespace wrpt {

struct signature_grading_options {
    std::uint64_t patterns = 1024;
    unsigned misr_degree = 16;
    std::uint64_t seed = 0x519;
    int weight_resolution_bits = 16;
};

struct signature_grading_result {
    std::uint64_t golden_signature = 0;
    std::size_t faults_total = 0;
    std::size_t detected_by_outputs = 0;   ///< any output difference
    std::size_t detected_by_signature = 0; ///< faulty signature != golden
    std::size_t aliased = 0;  ///< output-detected but signature-equal
    double empirical_aliasing_rate() const {
        return detected_by_outputs == 0
                   ? 0.0
                   : static_cast<double>(aliased) /
                         static_cast<double>(detected_by_outputs);
    }
};

/// Run every fault through the full compaction chain: weighted random
/// patterns -> circuit -> MISR, comparing final signatures.
signature_grading_result grade_by_signature(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, const signature_grading_options& options = {});

}  // namespace wrpt
