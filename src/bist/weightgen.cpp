#include "bist/weightgen.h"

#include <cmath>

#include "util/error.h"

namespace wrpt {

double weight_tap::realized() const {
    const double p = std::ldexp(1.0, -static_cast<int>(stages));
    return use_or ? 1.0 - p : p;
}

std::vector<weight_tap> taps_for_weights(const weight_vector& weights,
                                         unsigned max_stages) {
    require(max_stages >= 1 && max_stages <= 30, "taps_for_weights: stages");
    std::vector<weight_tap> taps;
    taps.reserve(weights.size());
    for (double w : weights) {
        weight_tap best{1, false};
        double best_err = std::abs(best.realized() - w);
        for (unsigned m = 1; m <= max_stages; ++m) {
            for (bool use_or : {false, true}) {
                const weight_tap cand{m, use_or};
                const double err = std::abs(cand.realized() - w);
                if (err < best_err) {
                    best = cand;
                    best_err = err;
                }
            }
        }
        taps.push_back(best);
    }
    return taps;
}

lfsr_pattern_source::lfsr_pattern_source(lfsr generator,
                                         std::vector<weight_tap> taps)
    : gen_(generator), taps_(std::move(taps)) {
    for (const auto& t : taps_)
        require(t.stages >= 1 && t.stages <= 30,
                "lfsr_pattern_source: tap stages out of range");
}

std::vector<bool> lfsr_pattern_source::next_pattern() {
    std::vector<bool> p(taps_.size());
    for (std::size_t i = 0; i < taps_.size(); ++i) {
        const weight_tap& t = taps_[i];
        bool acc = t.use_or ? false : true;
        for (unsigned m = 0; m < t.stages; ++m) {
            const bool b = gen_.step();
            acc = t.use_or ? (acc || b) : (acc && b);
        }
        p[i] = acc;
    }
    return p;
}

void lfsr_pattern_source::next_block(std::vector<std::uint64_t>& words) {
    words.assign(taps_.size(), 0);
    for (int b = 0; b < 64; ++b) {
        const std::vector<bool> p = next_pattern();
        for (std::size_t i = 0; i < taps_.size(); ++i)
            if (p[i]) words[i] |= (1ULL << b);
    }
}

weight_vector lfsr_pattern_source::realized_weights() const {
    weight_vector w;
    w.reserve(taps_.size());
    for (const auto& t : taps_) w.push_back(t.realized());
    return w;
}

double threshold_tap::realized() const {
    return static_cast<double>(threshold) /
           static_cast<double>(1ULL << bits);
}

std::vector<threshold_tap> thresholds_for_weights(const weight_vector& weights,
                                                  unsigned bits) {
    require(bits >= 1 && bits <= 24, "thresholds_for_weights: bits range");
    std::vector<threshold_tap> taps;
    taps.reserve(weights.size());
    const double steps = static_cast<double>(1ULL << bits);
    for (double w : weights) {
        require(w >= 0.0 && w <= 1.0, "thresholds_for_weights: weight range");
        threshold_tap t;
        t.bits = bits;
        t.threshold = static_cast<std::uint32_t>(std::lround(w * steps));
        taps.push_back(t);
    }
    return taps;
}

threshold_pattern_source::threshold_pattern_source(
    lfsr generator, std::vector<threshold_tap> taps)
    : gen_(generator), taps_(std::move(taps)) {
    for (const auto& t : taps_)
        require(t.bits >= 1 && t.bits <= 24 &&
                    t.threshold <= (1u << t.bits),
                "threshold_pattern_source: tap out of range");
}

std::vector<bool> threshold_pattern_source::next_pattern() {
    std::vector<bool> p(taps_.size());
    for (std::size_t i = 0; i < taps_.size(); ++i) {
        const std::uint64_t value = gen_.step_word(taps_[i].bits);
        p[i] = value < taps_[i].threshold;
    }
    return p;
}

void threshold_pattern_source::next_block(std::vector<std::uint64_t>& words) {
    words.assign(taps_.size(), 0);
    for (int b = 0; b < 64; ++b) {
        const std::vector<bool> p = next_pattern();
        for (std::size_t i = 0; i < taps_.size(); ++i)
            if (p[i]) words[i] |= (1ULL << b);
    }
}

weight_vector threshold_pattern_source::realized_weights() const {
    weight_vector w;
    w.reserve(taps_.size());
    for (const auto& t : taps_) w.push_back(t.realized());
    return w;
}

}  // namespace wrpt
