// A complete weighted-random self-test session: LFSR + weighting networks
// drive the circuit, a MISR compacts the responses — the BILBO-like module
// of [Wu86]/[Wu87] that the paper names as the main application.

#pragma once

#include <cstdint>
#include <vector>

#include "bist/misr.h"
#include "bist/weightgen.h"
#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wrpt {

struct bist_session_options {
    std::uint64_t patterns = 4096;
    unsigned lfsr_degree = 32;
    std::uint64_t lfsr_seed = 0xace1;
    unsigned misr_degree = 32;
    unsigned max_weight_stages = 5;  ///< weighting network depth
};

struct bist_session_result {
    std::uint64_t golden_signature = 0;
    std::uint64_t patterns_applied = 0;
    weight_vector realized_weights;
    /// Fault coverage measured by fault simulation with the exact LFSR
    /// pattern sequence (detection = any output difference; signature
    /// aliasing adds at most aliasing_probability).
    std::size_t faults_detected = 0;
    std::size_t faults_total = 0;
    double aliasing_probability = 0.0;

    double coverage_percent() const {
        return faults_total == 0 ? 100.0
                                 : 100.0 * static_cast<double>(faults_detected) /
                                       static_cast<double>(faults_total);
    }
};

/// Run a self-test session with the given target weights (quantized to the
/// LFSR alphabet internally).
bist_session_result run_bist_session(const netlist& nl,
                                     const std::vector<fault>& faults,
                                     const weight_vector& target_weights,
                                     const bist_session_options& options = {});

/// Golden signature only (no fault grading) — what the reference chip
/// would store.
std::uint64_t compute_golden_signature(const netlist& nl,
                                       const weight_vector& target_weights,
                                       const bist_session_options& options = {});

}  // namespace wrpt
