// Hardware-style weighted pattern generation from an LFSR.
//
// Each primary input gets a small combinational "weighting" network fed by
// successive LFSR bits:
//   - AND of m bits  -> probability 2^-m
//   - OR of m bits   -> probability 1 - 2^-m
//   - 1 bit directly -> probability 1/2
//   - optional final inversion
// This realizes the quantize_lfsr alphabet. The paper applies such
// generators on-chip ("optimized random patterns can be produced on the
// chip during self test", abstract; the BILBO-like module of [Wu86/87]).

#pragma once

#include <cstdint>
#include <vector>

#include "bist/lfsr.h"
#include "io/weights_io.h"
#include "sim/patterns.h"

namespace wrpt {

/// Per-input weighting network configuration.
struct weight_tap {
    unsigned stages = 1;   ///< number of LFSR bits combined (>= 1)
    bool use_or = false;   ///< OR instead of AND
    double realized() const;
};

/// Choose taps realizing the closest alphabet weight for each input.
std::vector<weight_tap> taps_for_weights(const weight_vector& weights,
                                         unsigned max_stages);

/// Pattern source backed by an LFSR and per-input weighting networks.
/// Satisfies the sim pattern_source interface, so the same fault simulator
/// runs against hardware-faithful patterns.
class lfsr_pattern_source final : public pattern_source {
public:
    lfsr_pattern_source(lfsr generator, std::vector<weight_tap> taps);

    void next_block(std::vector<std::uint64_t>& words) override;

    /// The weight each input actually receives.
    weight_vector realized_weights() const;

    /// Generate one pattern (bool per input).
    std::vector<bool> next_pattern();

private:
    lfsr gen_;
    std::vector<weight_tap> taps_;
};

/// Threshold-comparator weighting: input i is 1 when the next `bits` LFSR
/// bits, read as an integer, fall below `threshold` — probability
/// threshold / 2^bits. More silicon than an AND/OR network, but realizes
/// arbitrary weights at 2^-bits resolution (the 0.05-grid of the paper's
/// appendix needs this scheme or a ROM).
struct threshold_tap {
    unsigned bits = 8;
    std::uint32_t threshold = 128;
    double realized() const;
};

/// Closest threshold configuration for each target weight.
std::vector<threshold_tap> thresholds_for_weights(const weight_vector& weights,
                                                  unsigned bits = 8);

class threshold_pattern_source final : public pattern_source {
public:
    threshold_pattern_source(lfsr generator, std::vector<threshold_tap> taps);

    void next_block(std::vector<std::uint64_t>& words) override;
    weight_vector realized_weights() const;
    std::vector<bool> next_pattern();

private:
    lfsr gen_;
    std::vector<threshold_tap> taps_;
};

}  // namespace wrpt
