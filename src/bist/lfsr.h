// Linear feedback shift registers — the paper's on-chip pattern source.
//
// "the application of those patterns needs no expensive test equipment,
//  since it can be done by linear feedback shift registers (LFSR) during
//  self test" (introduction). Fibonacci-form LFSR with a table of
// maximal-length (primitive) feedback polynomials for degrees 2..32.

#pragma once

#include <cstdint>
#include <vector>

namespace wrpt {

class lfsr {
public:
    /// Construct with an explicit tap mask (bit i set = stage i+1 feeds the
    /// XOR). The register must not start at all-zero.
    lfsr(unsigned degree, std::uint64_t tap_mask, std::uint64_t seed);

    /// Maximal-length LFSR for the given degree (2..32) from the built-in
    /// primitive polynomial table.
    static lfsr max_length(unsigned degree, std::uint64_t seed = 1);

    /// Tap mask of the built-in primitive polynomial for `degree`.
    static std::uint64_t primitive_taps(unsigned degree);

    unsigned degree() const { return degree_; }
    std::uint64_t state() const { return state_; }

    /// Advance one clock; returns the bit shifted out.
    bool step();

    /// Convenience: advance `k` clocks, collecting the output bits
    /// (bit 0 = first output).
    std::uint64_t step_word(unsigned k);

    /// Period of the sequence from the current state (walks the cycle;
    /// intended for small degrees in tests).
    std::uint64_t measure_period() const;

private:
    unsigned degree_;
    std::uint64_t tap_mask_;
    std::uint64_t state_;
};

}  // namespace wrpt
