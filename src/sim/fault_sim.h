// Parallel-pattern single-fault-propagation (PPSFP) fault simulation with
// fault dropping — regenerates the paper's Tables 2/4 and Fig. 2.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/patterns.h"

namespace wrpt {

class circuit_view;

struct fault_sim_options {
    std::uint64_t max_patterns = 4096;
    bool drop_detected = true;  ///< stop simulating a fault once detected
    /// Worker threads for block-parallel PPSFP: 0 = one per hardware
    /// thread, 1 = sequential. Workers share one compiled circuit_view and
    /// pull 64-pattern blocks off an atomic work queue; per-fault first
    /// detections combine by atomic minimum, so the result is identical to
    /// the sequential run for the same pattern source. The parallel path
    /// draws blocks from `source` lazily in pull order and may draw up to
    /// `threads` blocks more than the sequential path before the
    /// all-detected early exit stops the workers.
    unsigned threads = 0;
    /// Simulate faults in fault-site level / topological-id order instead
    /// of list order, so consecutive detect-mask wavefronts start in the
    /// same circuit region and reuse warm event-queue and value scratch.
    /// Results are reported in the caller's fault order either way (a
    /// fault's first detection does not depend on its neighbors), so this
    /// is purely a cache locality knob — measured by the perf_kernels
    /// fault-sim counters.
    bool order_faults = true;
    /// Machine words per PPSFP pass (clamped to [1, 8]): each pass
    /// simulates 64 * block_words patterns, amortizing the forward sweep
    /// and per-fault wavefront traversals across the words. Per-word
    /// propagation is independent, so first detections are bit-identical
    /// to block_words = 1 (the scalar reference path), and the
    /// word-sequential early-exit accounting is replayed exactly —
    /// patterns_applied matches the one-word run. Like the parallel
    /// path, a blocked run may draw up to block_words - 1 blocks more
    /// from `source` than the one-word run before stopping.
    unsigned block_words = 4;
};

struct fault_sim_result {
    std::uint64_t patterns_applied = 0;
    /// Per fault (parallel to the input fault list): pattern index (0-based)
    /// of first detection, or nullopt if never detected.
    std::vector<std::optional<std::uint64_t>> first_detected;
    std::size_t detected_count = 0;

    /// Fault coverage in percent over the given fault universe size.
    double coverage_percent(std::size_t universe) const {
        return universe == 0
                   ? 100.0
                   : 100.0 * static_cast<double>(detected_count) /
                         static_cast<double>(universe);
    }

    /// Number of faults detected by the first `n` patterns.
    std::size_t detected_within(std::uint64_t n) const;
};

/// Simulate `faults` against patterns from `source`.
fault_sim_result run_fault_simulation(const netlist& nl,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options);

/// Same, over an already compiled view — the batch_session path, where
/// every job on a circuit shares one compiled view instead of each run
/// recompiling it.
fault_sim_result run_fault_simulation(const circuit_view& cv,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options);

/// Convenience: weighted random patterns with the given weights and seed.
fault_sim_result run_weighted_fault_simulation(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, std::uint64_t seed,
    const fault_sim_options& options);

/// Coverage curve: (pattern count, coverage percent) at power-of-two-ish
/// sample points up to patterns_applied — the data behind Fig. 2.
std::vector<std::pair<std::uint64_t, double>> coverage_curve(
    const fault_sim_result& result, std::size_t universe);

}  // namespace wrpt
