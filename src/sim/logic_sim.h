// Levelized 64-bit parallel-pattern logic simulation with event-driven
// single-fault propagation (the PPSFP kernel), over a compiled
// circuit_view.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/circuit_view.h"
#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wrpt {

/// Compiled simulator for one netlist. One machine word carries 64 patterns.
///
/// All traversal structure comes from a circuit_view; the view-sharing
/// constructor lets many simulators (one per worker thread) run over the
/// same compiled view without rebuilding it.
class simulator {
public:
    /// Compile a private view of `nl` (which must outlive the simulator).
    explicit simulator(const netlist& nl);
    /// Share an already compiled view (which must outlive the simulator).
    explicit simulator(const circuit_view& view);

    const netlist& circuit() const { return view_->source(); }
    const circuit_view& view() const { return *view_; }

    /// Simulate a block of 64 patterns. `input_words` has one word per
    /// primary input, ordered like netlist::inputs(); bit b of each word is
    /// pattern b of the block. All node values become available.
    void simulate(std::span<const std::uint64_t> input_words);

    /// Fault-free value words after simulate().
    std::uint64_t value(node_id n) const { return good_[n]; }
    std::span<const std::uint64_t> values() const { return good_; }

    /// 64-bit mask of block patterns whose primary-output response differs
    /// under `f` from the fault-free response (event-driven levelized
    /// resimulation of the fault's fanout cone). Requires a prior
    /// simulate() call.
    std::uint64_t detect_mask(const fault& f);

    /// Word of output differences per output index (parallel to
    /// circuit().outputs()) for the last detect_mask call. Used by
    /// signature-analysis clients that need per-output faulty responses.
    std::span<const std::uint64_t> last_output_diff() const {
        return output_diff_;
    }

private:
    void init_scratch();
    std::uint64_t eval_node(node_id n);
    void schedule(node_id n);

    std::unique_ptr<const circuit_view> owned_view_;  // null when sharing
    const circuit_view* view_;
    std::vector<std::uint64_t> good_;

    // Scratch state for event-driven faulty propagation.
    std::vector<std::uint64_t> args_;  // gather buffer, max_arity words
    std::vector<std::uint64_t> faulty_;
    std::vector<std::uint8_t> has_faulty_;
    std::vector<std::uint8_t> queued_;
    std::vector<std::vector<node_id>> buckets_;  // by level
    std::vector<node_id> touched_;
    std::vector<std::uint64_t> output_diff_;
};

/// Single-pattern convenience evaluation (reference path for tests):
/// returns output values, ordered like nl.outputs().
std::vector<bool> evaluate(const netlist& nl, const std::vector<bool>& inputs);

/// Single-pattern faulty evaluation under fault `f`.
std::vector<bool> evaluate_with_fault(const netlist& nl,
                                      const std::vector<bool>& inputs,
                                      const fault& f);

}  // namespace wrpt
