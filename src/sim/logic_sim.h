// Levelized 64-bit parallel-pattern logic simulation with event-driven
// single-fault propagation (the PPSFP kernel), over a compiled
// circuit_view.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/circuit_view.h"
#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wrpt {

/// Compiled simulator for one netlist. One machine word carries 64 patterns.
///
/// All traversal structure comes from a circuit_view; the view-sharing
/// constructor lets many simulators (one per worker thread) run over the
/// same compiled view without rebuilding it.
class simulator {
public:
    /// Compile a private view of `nl` (which must outlive the simulator).
    explicit simulator(const netlist& nl);
    /// Share an already compiled view (which must outlive the simulator).
    explicit simulator(const circuit_view& view);

    const netlist& circuit() const { return view_->source(); }
    const circuit_view& view() const { return *view_; }

    /// Simulate a block of 64 patterns. `input_words` has one word per
    /// primary input, ordered like netlist::inputs(); bit b of each word is
    /// pattern b of the block. All node values become available.
    void simulate(std::span<const std::uint64_t> input_words);

    /// Fault-free value words after simulate().
    std::uint64_t value(node_id n) const { return good_[n]; }
    std::span<const std::uint64_t> values() const { return good_; }

    /// 64-bit mask of block patterns whose primary-output response differs
    /// under `f` from the fault-free response (event-driven levelized
    /// resimulation of the fault's fanout cone). Requires a prior
    /// simulate() call.
    std::uint64_t detect_mask(const fault& f);

    /// Word of output differences per output index (parallel to
    /// circuit().outputs()) for the last detect_mask call. Used by
    /// signature-analysis clients that need per-output faulty responses.
    std::span<const std::uint64_t> last_output_diff() const {
        return output_diff_;
    }

private:
    void init_scratch();
    std::uint64_t eval_node(node_id n);
    void schedule(node_id n);

    std::unique_ptr<const circuit_view> owned_view_;  // null when sharing
    const circuit_view* view_;
    std::vector<std::uint64_t> good_;

    // Scratch state for event-driven faulty propagation.
    std::vector<std::uint64_t> args_;  // gather buffer, max_arity words
    std::vector<std::uint64_t> faulty_;
    std::vector<std::uint8_t> has_faulty_;
    std::vector<std::uint8_t> queued_;
    std::vector<std::vector<node_id>> buckets_;  // by level
    std::vector<node_id> touched_;
    std::vector<std::uint64_t> output_diff_;
};

/// Multi-word PPSFP simulator: B machine words (64*B patterns) per node
/// per pass, amortizing every traversal — the forward sweep's gate
/// decode, the wavefront's scheduling and scratch resets — across B
/// words instead of one. Word w of a node is exactly what `simulator`
/// would compute for pattern block w: the per-word propagation is
/// independent (bitwise ops never mix words), and a node whose faulty
/// word equals its good word contributes the good value downstream
/// either way, so detect_masks() word w is bit-identical to
/// simulator::detect_mask() run on block w alone. The blocked fault
/// simulation paths rest on that equivalence; tests/test_simd.cpp
/// asserts it per word.
class block_simulator {
public:
    /// Share a compiled view; `words` is B, the block width (>= 1).
    block_simulator(const circuit_view& view, unsigned words);

    unsigned words() const { return words_; }

    /// Simulate B blocks of 64 patterns. `input_words` has B consecutive
    /// words per primary input — input i's word for block w is
    /// input_words[i * words() + w] — ordered like netlist::inputs().
    void simulate(std::span<const std::uint64_t> input_words);

    /// Fault-free value of node n in block w.
    std::uint64_t value(node_id n, unsigned w) const {
        return good_[static_cast<std::size_t>(n) * words_ + w];
    }

    /// Detection masks of `f` for every block: masks[w] is the 64-bit
    /// mask of block-w patterns whose output response differs under `f`.
    /// `masks` must hold words() entries. Requires a prior simulate().
    void detect_masks(const fault& f, std::uint64_t* masks);

private:
    std::uint64_t* node_words(std::vector<std::uint64_t>& v, node_id n) {
        return v.data() + static_cast<std::size_t>(n) * words_;
    }
    void schedule(node_id n);

    const circuit_view* view_;
    unsigned words_;
    std::vector<std::uint64_t> good_;    // node-major, words_ per node
    std::vector<std::uint64_t> faulty_;  // same layout
    std::vector<std::uint64_t> vbuf_;    // one node's candidate words
    std::vector<std::uint64_t> args_;    // gather buffer, arity x words_
    std::vector<std::uint8_t> has_faulty_;
    std::vector<std::uint8_t> queued_;
    std::vector<std::vector<node_id>> buckets_;  // by level
    std::vector<node_id> touched_;
};

/// Single-pattern convenience evaluation (reference path for tests):
/// returns output values, ordered like nl.outputs().
std::vector<bool> evaluate(const netlist& nl, const std::vector<bool>& inputs);

/// Single-pattern faulty evaluation under fault `f`.
std::vector<bool> evaluate_with_fault(const netlist& nl,
                                      const std::vector<bool>& inputs,
                                      const fault& f);

}  // namespace wrpt
