// Pattern sources for simulation: weighted random blocks and explicit sets.

#pragma once

#include <cstdint>
#include <vector>

#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "util/rng.h"

namespace wrpt {

/// Produces blocks of 64 patterns (one word per primary input).
class pattern_source {
public:
    virtual ~pattern_source() = default;
    /// Fill `words` (size = input count) with the next 64 patterns.
    virtual void next_block(std::vector<std::uint64_t>& words) = 0;
};

/// Weighted random patterns: input i is 1 with probability weights[i],
/// quantized to 2^-resolution_bits (the precision a weighted-LFSR pattern
/// generator realizes in hardware).
class weighted_random_source final : public pattern_source {
public:
    weighted_random_source(weight_vector weights, std::uint64_t seed,
                           int resolution_bits = 16);
    void next_block(std::vector<std::uint64_t>& words) override;

    const weight_vector& weights() const { return weights_; }

private:
    weight_vector weights_;
    rng rng_;
    int resolution_bits_;
};

/// Explicit pattern list (each pattern = one bool per input). Cycles with
/// zero padding on the tail block.
class explicit_pattern_source final : public pattern_source {
public:
    explicit explicit_pattern_source(std::vector<std::vector<bool>> patterns);
    void next_block(std::vector<std::uint64_t>& words) override;

    std::size_t pattern_count() const { return patterns_.size(); }

private:
    std::vector<std::vector<bool>> patterns_;
    std::size_t cursor_ = 0;
};

/// Draw a single pattern (bool per input) from weighted probabilities.
std::vector<bool> draw_pattern(rng& r, const weight_vector& weights);

}  // namespace wrpt
