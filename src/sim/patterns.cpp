#include "sim/patterns.h"

#include "util/error.h"

namespace wrpt {

weighted_random_source::weighted_random_source(weight_vector weights,
                                               std::uint64_t seed,
                                               int resolution_bits)
    : weights_(std::move(weights)), rng_(seed), resolution_bits_(resolution_bits) {
    require(resolution_bits_ >= 1 && resolution_bits_ <= 32,
            "weighted_random_source: resolution out of range");
    for (double w : weights_)
        require(w >= 0.0 && w <= 1.0, "weighted_random_source: weight out of [0,1]");
}

void weighted_random_source::next_block(std::vector<std::uint64_t>& words) {
    words.resize(weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i)
        words[i] = rng_.biased_word(weights_[i], resolution_bits_);
}

explicit_pattern_source::explicit_pattern_source(
    std::vector<std::vector<bool>> patterns)
    : patterns_(std::move(patterns)) {
    require(!patterns_.empty(), "explicit_pattern_source: no patterns");
    const std::size_t width = patterns_.front().size();
    for (const auto& p : patterns_)
        require(p.size() == width, "explicit_pattern_source: ragged patterns");
}

void explicit_pattern_source::next_block(std::vector<std::uint64_t>& words) {
    const std::size_t width = patterns_.front().size();
    words.assign(width, 0);
    for (int b = 0; b < 64 && cursor_ < patterns_.size(); ++b, ++cursor_) {
        const auto& p = patterns_[cursor_];
        for (std::size_t i = 0; i < width; ++i)
            if (p[i]) words[i] |= (1ULL << b);
    }
}

std::vector<bool> draw_pattern(rng& r, const weight_vector& weights) {
    std::vector<bool> p(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        p[i] = r.next_bool(weights[i]);
    return p;
}

}  // namespace wrpt
