#include "sim/fault_sim.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <thread>

#include "core/circuit_view.h"
#include "exec/parallel_sort.h"
#include "exec/thread_pool.h"
#include "sim/logic_sim.h"
#include "util/error.h"
#include "util/sync.h"

namespace wrpt {

std::size_t fault_sim_result::detected_within(std::uint64_t n) const {
    std::size_t count = 0;
    for (const auto& fd : first_detected)
        if (fd.has_value() && *fd < n) ++count;
    return count;
}

namespace {

constexpr std::uint64_t never = ~0ULL;

/// The shared pattern window of one parallel run: blocks are drawn from
/// the (stateful, single-threaded) source lazily and in order under the
/// mutex, so workers see exactly the patterns the sequential path would.
/// `base` is the block index of blocks.front().
struct block_queue {
    wrpt::mutex mutex;
    std::deque<std::vector<std::uint64_t>> blocks WRPT_GUARDED_BY(mutex);
    std::uint64_t base WRPT_GUARDED_BY(mutex) = 0;
};

/// First exception a worker raised, rethrown on the caller's thread
/// after join (an exception escaping a std::thread body would
/// std::terminate).
struct error_slot {
    wrpt::mutex mutex;
    std::exception_ptr first WRPT_GUARDED_BY(mutex);
};

/// Sequential PPSFP with fault dropping: one simulator, blocks in order,
/// the live list shrinks as faults are detected.
fault_sim_result run_sequential(const circuit_view& cv,
                                const std::vector<fault>& faults,
                                pattern_source& source,
                                const fault_sim_options& options) {
    simulator sim(cv);
    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);

    // Live list holds indices of still-undetected faults (fault dropping).
    std::vector<std::size_t> live(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) live[i] = i;

    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < options.max_patterns && !live.empty()) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block_size =
            std::min<std::uint64_t>(64, options.max_patterns - applied);
        const std::uint64_t valid_mask =
            block_size == 64 ? ~0ULL : ((1ULL << block_size) - 1);

        std::size_t keep = 0;
        for (std::size_t idx = 0; idx < live.size(); ++idx) {
            const std::size_t fi = live[idx];
            const std::uint64_t mask = sim.detect_mask(faults[fi]) & valid_mask;
            if (mask == 0) {
                live[keep++] = fi;
                continue;
            }
            if (!res.first_detected[fi].has_value()) {
                const int bit = std::countr_zero(mask);
                res.first_detected[fi] =
                    applied + static_cast<std::uint64_t>(bit);
                ++res.detected_count;
            }
            if (!options.drop_detected) live[keep++] = fi;
        }
        live.resize(keep);
        applied += block_size;
    }
    res.patterns_applied = applied;
    return res;
}

/// Block-parallel PPSFP: workers pull 64-pattern blocks off an atomic
/// queue, each with a private simulator over the shared view. Per-fault
/// first detections combine by atomic minimum, which makes the result
/// independent of worker scheduling and identical to the sequential run.
///
/// Early exit matches the sequential accounting: workers stop pulling new
/// blocks once every fault is detected. Blocks are pulled in ascending
/// index order, so by then every block below the last detecting one has
/// been (or is being) processed, and first detections are exact minima.
fault_sim_result run_parallel(const circuit_view& cv,
                              const std::vector<fault>& faults,
                              pattern_source& source,
                              const fault_sim_options& options,
                              unsigned threads) {
    const std::uint64_t block_count =
        (options.max_patterns + 63) / 64;
    const std::size_t input_count = cv.input_count();

    // Consumed blocks (moved out, hence empty) are popped from the
    // window's front, bounding live memory to the not-yet-pulled window —
    // without materializing blocks the run may never reach.
    block_queue window;

    std::vector<std::atomic<std::uint64_t>> first(faults.size());
    for (auto& f : first) f.store(never, std::memory_order_relaxed);
    std::atomic<std::uint64_t> next_block{0};
    std::atomic<std::size_t> undetected{faults.size()};

    // The parallel path surfaces the same catchable errors (bad pattern
    // source, word-count mismatch) the sequential path does.
    error_slot error;

    auto worker_body = [&]() {
        simulator sim(cv);
        for (;;) {
            if (options.drop_detected &&
                undetected.load(std::memory_order_acquire) == 0)
                return;
            const std::uint64_t b =
                next_block.fetch_add(1, std::memory_order_relaxed);
            if (b >= block_count) return;
            // The puller of block b is its sole consumer: move the words
            // out and drop the emptied leading slots.
            std::vector<std::uint64_t> words;
            {
                lock_guard lock(window.mutex);
                while (window.base + window.blocks.size() <= b) {
                    std::vector<std::uint64_t>& fresh =
                        window.blocks.emplace_back();
                    source.next_block(fresh);
                    require(fresh.size() == input_count,
                            "fault sim: pattern source word count != "
                            "input count");
                }
                words = std::move(
                    window.blocks[static_cast<std::size_t>(b - window.base)]);
                while (!window.blocks.empty() &&
                       window.blocks.front().empty()) {
                    window.blocks.pop_front();
                    ++window.base;
                }
            }
            const std::uint64_t block_start = b * 64;
            const std::uint64_t block_size = std::min<std::uint64_t>(
                64, options.max_patterns - block_start);
            const std::uint64_t valid_mask =
                block_size == 64 ? ~0ULL : ((1ULL << block_size) - 1);
            sim.simulate(words);
            for (std::size_t fi = 0; fi < faults.size(); ++fi) {
                // Fault dropping across blocks: a detection in an earlier
                // block can never be improved by this one.
                if (options.drop_detected &&
                    first[fi].load(std::memory_order_relaxed) < block_start)
                    continue;
                const std::uint64_t mask =
                    sim.detect_mask(faults[fi]) & valid_mask;
                if (mask == 0) continue;
                const std::uint64_t t =
                    block_start +
                    static_cast<std::uint64_t>(std::countr_zero(mask));
                std::uint64_t cur = first[fi].load(std::memory_order_relaxed);
                bool claimed = false;
                while (t < cur) {
                    if (first[fi].compare_exchange_weak(
                            cur, t, std::memory_order_relaxed)) {
                        claimed = cur == never;
                        break;
                    }
                }
                if (claimed)
                    undetected.fetch_sub(1, std::memory_order_release);
            }
        }
    };

    auto worker = [&]() {
        try {
            worker_body();
        } catch (...) {
            lock_guard lock(error.mutex);
            if (!error.first) error.first = std::current_exception();
            // Drain the queue so the other workers wind down promptly.
            next_block.store(block_count, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    std::exception_ptr first_error;
    {
        lock_guard lock(error.mutex);
        first_error = error.first;
    }
    if (first_error) std::rethrow_exception(first_error);

    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);
    std::uint64_t last = 0;
    bool all_detected = true;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const std::uint64_t t = first[fi].load(std::memory_order_relaxed);
        if (t == never) {
            all_detected = false;
            continue;
        }
        res.first_detected[fi] = t;
        ++res.detected_count;
        last = std::max(last, t);
    }
    // Mirror the sequential accounting: with dropping, the run stops after
    // the block in which the live list drained; otherwise the full budget
    // is applied.
    if (options.drop_detected && all_detected && !faults.empty())
        res.patterns_applied =
            std::min<std::uint64_t>(options.max_patterns, (last / 64 + 1) * 64);
    else
        res.patterns_applied = options.max_patterns;
    return res;
}

/// Blocked sequential PPSFP: B 64-pattern words per pass through the
/// live list. Detections are read out word by word in pattern order, and
/// the budget advances word by word, stopping after the word in which
/// the live list drained — so first_detected and patterns_applied are
/// exactly the one-word run's (only the pattern-source draw-ahead
/// differs, by at most B-1 blocks).
fault_sim_result run_sequential_blocked(const circuit_view& cv,
                                        const std::vector<fault>& faults,
                                        pattern_source& source,
                                        const fault_sim_options& options,
                                        unsigned B) {
    block_simulator sim(cv, B);
    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);

    std::vector<std::size_t> live(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) live[i] = i;

    const std::size_t input_count = cv.input_count();
    std::vector<std::uint64_t> input(input_count * B);
    std::vector<std::uint64_t> block;
    std::vector<std::uint64_t> masks(B);
    std::uint64_t applied = 0;
    while (applied < options.max_patterns && !live.empty()) {
        const std::uint64_t remaining_words =
            (options.max_patterns - applied + 63) / 64;
        const unsigned nw =
            static_cast<unsigned>(std::min<std::uint64_t>(B, remaining_words));
        for (unsigned w = 0; w < nw; ++w) {
            source.next_block(block);
            require(block.size() == input_count,
                    "fault sim: pattern source word count != input count");
            for (std::size_t i = 0; i < input_count; ++i)
                input[i * B + w] = block[i];
        }
        for (unsigned w = nw; w < B; ++w)
            for (std::size_t i = 0; i < input_count; ++i)
                input[i * B + w] = 0;
        sim.simulate(input);

        std::size_t keep = 0;
        unsigned stop_word = 0;  // last word with a first detection
        for (std::size_t idx = 0; idx < live.size(); ++idx) {
            const std::size_t fi = live[idx];
            sim.detect_masks(faults[fi], masks.data());
            unsigned dw = nw;  // first detecting word, nw = none
            std::uint64_t dmask = 0;
            for (unsigned w = 0; w < nw; ++w) {
                const std::uint64_t base = applied + w * 64ULL;
                const std::uint64_t size = std::min<std::uint64_t>(
                    64, options.max_patterns - base);
                const std::uint64_t valid =
                    size == 64 ? ~0ULL : ((1ULL << size) - 1);
                const std::uint64_t m = masks[w] & valid;
                if (m != 0) {
                    dw = w;
                    dmask = m;
                    break;
                }
            }
            if (dw == nw) {
                live[keep++] = fi;
                continue;
            }
            if (!res.first_detected[fi].has_value()) {
                res.first_detected[fi] =
                    applied + dw * 64ULL +
                    static_cast<std::uint64_t>(std::countr_zero(dmask));
                ++res.detected_count;
            }
            stop_word = std::max(stop_word, dw);
            if (!options.drop_detected) live[keep++] = fi;
        }
        const bool drained = options.drop_detected && keep == 0;
        live.resize(keep);
        // Replay the word-sequential budget: the one-word run stops
        // after the word where the live list drained.
        const unsigned consumed = drained ? stop_word + 1 : nw;
        for (unsigned w = 0; w < consumed; ++w)
            applied += std::min<std::uint64_t>(
                64, options.max_patterns - applied);
    }
    res.patterns_applied = applied;
    return res;
}

/// Blocked block-parallel PPSFP: run_parallel with superblocks of B
/// words per pull. First detections combine by atomic minimum exactly as
/// in the one-word path, and the closing accounting formula is shared,
/// so the result is identical to the sequential runs.
fault_sim_result run_parallel_blocked(const circuit_view& cv,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options,
                                      unsigned threads, unsigned B) {
    const std::uint64_t word_count = (options.max_patterns + 63) / 64;
    const std::uint64_t super_count = (word_count + B - 1) / B;
    const std::size_t input_count = cv.input_count();

    block_queue window;

    std::vector<std::atomic<std::uint64_t>> first(faults.size());
    for (auto& f : first) f.store(never, std::memory_order_relaxed);
    std::atomic<std::uint64_t> next_super{0};
    std::atomic<std::size_t> undetected{faults.size()};

    error_slot error;

    auto worker_body = [&]() {
        block_simulator sim(cv, B);
        std::vector<std::uint64_t> input(input_count * B);
        std::vector<std::uint64_t> masks(B);
        for (;;) {
            if (options.drop_detected &&
                undetected.load(std::memory_order_acquire) == 0)
                return;
            const std::uint64_t s =
                next_super.fetch_add(1, std::memory_order_relaxed);
            if (s >= super_count) return;
            const std::uint64_t wb0 = s * B;
            const unsigned nw = static_cast<unsigned>(
                std::min<std::uint64_t>(B, word_count - wb0));
            {
                lock_guard lock(window.mutex);
                while (window.base + window.blocks.size() < wb0 + nw) {
                    std::vector<std::uint64_t>& fresh =
                        window.blocks.emplace_back();
                    source.next_block(fresh);
                    require(fresh.size() == input_count,
                            "fault sim: pattern source word count != "
                            "input count");
                }
                for (unsigned w = 0; w < nw; ++w) {
                    std::vector<std::uint64_t>& src = window.blocks[
                        static_cast<std::size_t>(wb0 + w - window.base)];
                    for (std::size_t i = 0; i < input_count; ++i)
                        input[i * B + w] = src[i];
                    src.clear();  // consumed; the pop loop drops it
                }
                while (!window.blocks.empty() &&
                       window.blocks.front().empty()) {
                    window.blocks.pop_front();
                    ++window.base;
                }
            }
            for (unsigned w = nw; w < B; ++w)
                for (std::size_t i = 0; i < input_count; ++i)
                    input[i * B + w] = 0;
            sim.simulate(input);
            const std::uint64_t super_start = wb0 * 64;
            for (std::size_t fi = 0; fi < faults.size(); ++fi) {
                if (options.drop_detected &&
                    first[fi].load(std::memory_order_relaxed) < super_start)
                    continue;
                sim.detect_masks(faults[fi], masks.data());
                std::uint64_t t = never;
                for (unsigned w = 0; w < nw; ++w) {
                    const std::uint64_t base = super_start + w * 64ULL;
                    const std::uint64_t size = std::min<std::uint64_t>(
                        64, options.max_patterns - base);
                    const std::uint64_t valid =
                        size == 64 ? ~0ULL : ((1ULL << size) - 1);
                    const std::uint64_t m = masks[w] & valid;
                    if (m != 0) {
                        t = base + static_cast<std::uint64_t>(
                                       std::countr_zero(m));
                        break;
                    }
                }
                if (t == never) continue;
                std::uint64_t cur = first[fi].load(std::memory_order_relaxed);
                bool claimed = false;
                while (t < cur) {
                    if (first[fi].compare_exchange_weak(
                            cur, t, std::memory_order_relaxed)) {
                        claimed = cur == never;
                        break;
                    }
                }
                if (claimed)
                    undetected.fetch_sub(1, std::memory_order_release);
            }
        }
    };

    auto worker = [&]() {
        try {
            worker_body();
        } catch (...) {
            lock_guard lock(error.mutex);
            if (!error.first) error.first = std::current_exception();
            next_super.store(super_count, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    std::exception_ptr first_error;
    {
        lock_guard lock(error.mutex);
        first_error = error.first;
    }
    if (first_error) std::rethrow_exception(first_error);

    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);
    std::uint64_t last = 0;
    bool all_detected = true;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const std::uint64_t t = first[fi].load(std::memory_order_relaxed);
        if (t == never) {
            all_detected = false;
            continue;
        }
        res.first_detected[fi] = t;
        ++res.detected_count;
        last = std::max(last, t);
    }
    if (options.drop_detected && all_detected && !faults.empty())
        res.patterns_applied =
            std::min<std::uint64_t>(options.max_patterns, (last / 64 + 1) * 64);
    else
        res.patterns_applied = options.max_patterns;
    return res;
}

}  // namespace

fault_sim_result run_fault_simulation(const circuit_view& cv,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options) {
    require(options.max_patterns > 0, "fault sim: max_patterns must be > 0");
    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // No point spinning up more workers (each with its own simulator
    // scratch) than there are work pulls — 64-pattern blocks, or
    // B-word superblocks on the blocked paths.
    const unsigned B = std::clamp(options.block_words, 1u, 8u);
    const std::uint64_t block_count = (options.max_patterns + 63) / 64;
    const std::uint64_t pulls = (block_count + B - 1) / B;
    threads = static_cast<unsigned>(std::min<std::uint64_t>(threads, pulls));

    // All four paths produce identical results; block_words == 1 is the
    // scalar reference pair.
    auto dispatch = [&](const std::vector<fault>& fl,
                        const fault_sim_options& o) {
        if (threads <= 1 || fl.empty())
            return B <= 1 ? run_sequential(cv, fl, source, o)
                          : run_sequential_blocked(cv, fl, source, o, B);
        return B <= 1 ? run_parallel(cv, fl, source, o, threads)
                      : run_parallel_blocked(cv, fl, source, o, threads, B);
    };

    // Cache-friendly fault ordering: simulate in fault-site level /
    // topological-id order so consecutive detect-mask wavefronts launch
    // from neighboring nodes and reuse warm scratch state. Per-fault
    // results do not depend on list position, so the permutation is
    // invisible to the caller — results come back in input order.
    if (options.order_faults && faults.size() > 1) {
        std::vector<std::size_t> order(faults.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        // Same deterministic sharded sort the SORT stage uses; the index
        // tie-break keeps equal keys in list order (== stable sort) on
        // one thread or many.
        parallel_stable_sort_indices(
            order,
            [&](std::size_t a, std::size_t b) {
                const fault& fa = faults[a];
                const fault& fb = faults[b];
                if (cv.level(fa.where) != cv.level(fb.where))
                    return cv.level(fa.where) < cv.level(fb.where);
                if (fa.where != fb.where) return fa.where < fb.where;
                return fa.pin < fb.pin;
            },
            threads > 1 ? &shared_thread_pool() : nullptr, threads);
        std::vector<fault> sorted;
        sorted.reserve(faults.size());
        for (std::size_t i : order) sorted.push_back(faults[i]);
        fault_sim_options inner = options;
        inner.order_faults = false;
        fault_sim_result permuted = dispatch(sorted, inner);
        fault_sim_result res;
        res.patterns_applied = permuted.patterns_applied;
        res.detected_count = permuted.detected_count;
        res.first_detected.resize(faults.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            res.first_detected[order[i]] = permuted.first_detected[i];
        return res;
    }

    return dispatch(faults, options);
}

fault_sim_result run_fault_simulation(const netlist& nl,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options) {
    const circuit_view cv = circuit_view::compile(nl);
    return run_fault_simulation(cv, faults, source, options);
}

fault_sim_result run_weighted_fault_simulation(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, std::uint64_t seed,
    const fault_sim_options& options) {
    require(weights.size() == nl.input_count(),
            "fault sim: weight count != input count");
    weighted_random_source source(weights, seed);
    return run_fault_simulation(nl, faults, source, options);
}

std::vector<std::pair<std::uint64_t, double>> coverage_curve(
    const fault_sim_result& result, std::size_t universe) {
    std::vector<std::pair<std::uint64_t, double>> curve;
    std::uint64_t n = 16;
    while (n < result.patterns_applied) {
        curve.emplace_back(n, 100.0 *
                                  static_cast<double>(result.detected_within(n)) /
                                  static_cast<double>(universe == 0 ? 1 : universe));
        n *= 2;
    }
    curve.emplace_back(result.patterns_applied,
                       100.0 *
                           static_cast<double>(
                               result.detected_within(result.patterns_applied)) /
                           static_cast<double>(universe == 0 ? 1 : universe));
    return curve;
}

}  // namespace wrpt
