#include "sim/fault_sim.h"

#include <algorithm>
#include <bit>

#include "sim/logic_sim.h"
#include "util/error.h"

namespace wrpt {

std::size_t fault_sim_result::detected_within(std::uint64_t n) const {
    std::size_t count = 0;
    for (const auto& fd : first_detected)
        if (fd.has_value() && *fd < n) ++count;
    return count;
}

fault_sim_result run_fault_simulation(const netlist& nl,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options) {
    require(options.max_patterns > 0, "fault sim: max_patterns must be > 0");
    simulator sim(nl);
    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);

    // Live list holds indices of still-undetected faults (fault dropping).
    std::vector<std::size_t> live(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) live[i] = i;

    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < options.max_patterns && !live.empty()) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block_size =
            std::min<std::uint64_t>(64, options.max_patterns - applied);
        const std::uint64_t valid_mask =
            block_size == 64 ? ~0ULL : ((1ULL << block_size) - 1);

        std::size_t keep = 0;
        for (std::size_t idx = 0; idx < live.size(); ++idx) {
            const std::size_t fi = live[idx];
            const std::uint64_t mask = sim.detect_mask(faults[fi]) & valid_mask;
            if (mask == 0) {
                live[keep++] = fi;
                continue;
            }
            if (!res.first_detected[fi].has_value()) {
                const int bit = std::countr_zero(mask);
                res.first_detected[fi] =
                    applied + static_cast<std::uint64_t>(bit);
                ++res.detected_count;
            }
            if (!options.drop_detected) live[keep++] = fi;
        }
        live.resize(keep);
        applied += block_size;
    }
    res.patterns_applied = applied;
    return res;
}

fault_sim_result run_weighted_fault_simulation(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, std::uint64_t seed,
    const fault_sim_options& options) {
    require(weights.size() == nl.input_count(),
            "fault sim: weight count != input count");
    weighted_random_source source(weights, seed);
    return run_fault_simulation(nl, faults, source, options);
}

std::vector<std::pair<std::uint64_t, double>> coverage_curve(
    const fault_sim_result& result, std::size_t universe) {
    std::vector<std::pair<std::uint64_t, double>> curve;
    std::uint64_t n = 16;
    while (n < result.patterns_applied) {
        curve.emplace_back(n, 100.0 *
                                  static_cast<double>(result.detected_within(n)) /
                                  static_cast<double>(universe == 0 ? 1 : universe));
        n *= 2;
    }
    curve.emplace_back(result.patterns_applied,
                       100.0 *
                           static_cast<double>(
                               result.detected_within(result.patterns_applied)) /
                           static_cast<double>(universe == 0 ? 1 : universe));
    return curve;
}

}  // namespace wrpt
