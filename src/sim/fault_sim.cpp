#include "sim/fault_sim.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <deque>
#include <mutex>
#include <thread>

#include "core/circuit_view.h"
#include "sim/logic_sim.h"
#include "util/error.h"

namespace wrpt {

std::size_t fault_sim_result::detected_within(std::uint64_t n) const {
    std::size_t count = 0;
    for (const auto& fd : first_detected)
        if (fd.has_value() && *fd < n) ++count;
    return count;
}

namespace {

constexpr std::uint64_t never = ~0ULL;

/// Sequential PPSFP with fault dropping: one simulator, blocks in order,
/// the live list shrinks as faults are detected.
fault_sim_result run_sequential(const circuit_view& cv,
                                const std::vector<fault>& faults,
                                pattern_source& source,
                                const fault_sim_options& options) {
    simulator sim(cv);
    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);

    // Live list holds indices of still-undetected faults (fault dropping).
    std::vector<std::size_t> live(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) live[i] = i;

    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < options.max_patterns && !live.empty()) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block_size =
            std::min<std::uint64_t>(64, options.max_patterns - applied);
        const std::uint64_t valid_mask =
            block_size == 64 ? ~0ULL : ((1ULL << block_size) - 1);

        std::size_t keep = 0;
        for (std::size_t idx = 0; idx < live.size(); ++idx) {
            const std::size_t fi = live[idx];
            const std::uint64_t mask = sim.detect_mask(faults[fi]) & valid_mask;
            if (mask == 0) {
                live[keep++] = fi;
                continue;
            }
            if (!res.first_detected[fi].has_value()) {
                const int bit = std::countr_zero(mask);
                res.first_detected[fi] =
                    applied + static_cast<std::uint64_t>(bit);
                ++res.detected_count;
            }
            if (!options.drop_detected) live[keep++] = fi;
        }
        live.resize(keep);
        applied += block_size;
    }
    res.patterns_applied = applied;
    return res;
}

/// Block-parallel PPSFP: workers pull 64-pattern blocks off an atomic
/// queue, each with a private simulator over the shared view. Per-fault
/// first detections combine by atomic minimum, which makes the result
/// independent of worker scheduling and identical to the sequential run.
///
/// Early exit matches the sequential accounting: workers stop pulling new
/// blocks once every fault is detected. Blocks are pulled in ascending
/// index order, so by then every block below the last detecting one has
/// been (or is being) processed, and first detections are exact minima.
fault_sim_result run_parallel(const circuit_view& cv,
                              const std::vector<fault>& faults,
                              pattern_source& source,
                              const fault_sim_options& options,
                              unsigned threads) {
    const std::uint64_t block_count =
        (options.max_patterns + 63) / 64;
    const std::size_t input_count = cv.input_count();

    // Pattern blocks are drawn from the (stateful, single-threaded) source
    // lazily and in order, under a mutex, so workers see exactly the
    // patterns the sequential path would — without materializing blocks
    // the run may never reach. Consumed blocks (moved out, hence empty)
    // are popped from the front, bounding live memory to the not-yet-
    // pulled window. blocks_base is the block index of blocks.front().
    std::deque<std::vector<std::uint64_t>> blocks;
    std::uint64_t blocks_base = 0;
    std::mutex source_mutex;

    std::vector<std::atomic<std::uint64_t>> first(faults.size());
    for (auto& f : first) f.store(never, std::memory_order_relaxed);
    std::atomic<std::uint64_t> next_block{0};
    std::atomic<std::size_t> undetected{faults.size()};

    // An exception escaping a std::thread body would std::terminate; keep
    // the first one and rethrow it on the caller's thread after join, so
    // the parallel path surfaces the same catchable errors (bad pattern
    // source, word-count mismatch) the sequential path does.
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker_body = [&]() {
        simulator sim(cv);
        for (;;) {
            if (options.drop_detected &&
                undetected.load(std::memory_order_acquire) == 0)
                return;
            const std::uint64_t b =
                next_block.fetch_add(1, std::memory_order_relaxed);
            if (b >= block_count) return;
            // The puller of block b is its sole consumer: move the words
            // out and drop the emptied leading slots.
            std::vector<std::uint64_t> words;
            {
                std::scoped_lock lock(source_mutex);
                while (blocks_base + blocks.size() <= b) {
                    std::vector<std::uint64_t>& fresh = blocks.emplace_back();
                    source.next_block(fresh);
                    require(fresh.size() == input_count,
                            "fault sim: pattern source word count != "
                            "input count");
                }
                words = std::move(
                    blocks[static_cast<std::size_t>(b - blocks_base)]);
                while (!blocks.empty() && blocks.front().empty()) {
                    blocks.pop_front();
                    ++blocks_base;
                }
            }
            const std::uint64_t block_start = b * 64;
            const std::uint64_t block_size = std::min<std::uint64_t>(
                64, options.max_patterns - block_start);
            const std::uint64_t valid_mask =
                block_size == 64 ? ~0ULL : ((1ULL << block_size) - 1);
            sim.simulate(words);
            for (std::size_t fi = 0; fi < faults.size(); ++fi) {
                // Fault dropping across blocks: a detection in an earlier
                // block can never be improved by this one.
                if (options.drop_detected &&
                    first[fi].load(std::memory_order_relaxed) < block_start)
                    continue;
                const std::uint64_t mask =
                    sim.detect_mask(faults[fi]) & valid_mask;
                if (mask == 0) continue;
                const std::uint64_t t =
                    block_start +
                    static_cast<std::uint64_t>(std::countr_zero(mask));
                std::uint64_t cur = first[fi].load(std::memory_order_relaxed);
                bool claimed = false;
                while (t < cur) {
                    if (first[fi].compare_exchange_weak(
                            cur, t, std::memory_order_relaxed)) {
                        claimed = cur == never;
                        break;
                    }
                }
                if (claimed)
                    undetected.fetch_sub(1, std::memory_order_release);
            }
        }
    };

    auto worker = [&]() {
        try {
            worker_body();
        } catch (...) {
            std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            // Drain the queue so the other workers wind down promptly.
            next_block.store(block_count, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);

    fault_sim_result res;
    res.first_detected.assign(faults.size(), std::nullopt);
    std::uint64_t last = 0;
    bool all_detected = true;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        const std::uint64_t t = first[fi].load(std::memory_order_relaxed);
        if (t == never) {
            all_detected = false;
            continue;
        }
        res.first_detected[fi] = t;
        ++res.detected_count;
        last = std::max(last, t);
    }
    // Mirror the sequential accounting: with dropping, the run stops after
    // the block in which the live list drained; otherwise the full budget
    // is applied.
    if (options.drop_detected && all_detected && !faults.empty())
        res.patterns_applied =
            std::min<std::uint64_t>(options.max_patterns, (last / 64 + 1) * 64);
    else
        res.patterns_applied = options.max_patterns;
    return res;
}

}  // namespace

fault_sim_result run_fault_simulation(const circuit_view& cv,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options) {
    require(options.max_patterns > 0, "fault sim: max_patterns must be > 0");
    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // No point spinning up more workers (each with its own simulator
    // scratch) than there are 64-pattern blocks to process.
    const std::uint64_t block_count = (options.max_patterns + 63) / 64;
    threads = static_cast<unsigned>(
        std::min<std::uint64_t>(threads, block_count));

    // Cache-friendly fault ordering: simulate in fault-site level /
    // topological-id order so consecutive detect-mask wavefronts launch
    // from neighboring nodes and reuse warm scratch state. Per-fault
    // results do not depend on list position, so the permutation is
    // invisible to the caller — results come back in input order.
    if (options.order_faults && faults.size() > 1) {
        std::vector<std::size_t> order(faults.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             const fault& fa = faults[a];
                             const fault& fb = faults[b];
                             if (cv.level(fa.where) != cv.level(fb.where))
                                 return cv.level(fa.where) <
                                        cv.level(fb.where);
                             if (fa.where != fb.where)
                                 return fa.where < fb.where;
                             return fa.pin < fb.pin;
                         });
        std::vector<fault> sorted;
        sorted.reserve(faults.size());
        for (std::size_t i : order) sorted.push_back(faults[i]);
        fault_sim_options inner = options;
        inner.order_faults = false;
        fault_sim_result permuted =
            (threads <= 1) ? run_sequential(cv, sorted, source, inner)
                           : run_parallel(cv, sorted, source, inner, threads);
        fault_sim_result res;
        res.patterns_applied = permuted.patterns_applied;
        res.detected_count = permuted.detected_count;
        res.first_detected.resize(faults.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            res.first_detected[order[i]] = permuted.first_detected[i];
        return res;
    }

    if (threads <= 1 || faults.empty())
        return run_sequential(cv, faults, source, options);
    return run_parallel(cv, faults, source, options, threads);
}

fault_sim_result run_fault_simulation(const netlist& nl,
                                      const std::vector<fault>& faults,
                                      pattern_source& source,
                                      const fault_sim_options& options) {
    const circuit_view cv = circuit_view::compile(nl);
    return run_fault_simulation(cv, faults, source, options);
}

fault_sim_result run_weighted_fault_simulation(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, std::uint64_t seed,
    const fault_sim_options& options) {
    require(weights.size() == nl.input_count(),
            "fault sim: weight count != input count");
    weighted_random_source source(weights, seed);
    return run_fault_simulation(nl, faults, source, options);
}

std::vector<std::pair<std::uint64_t, double>> coverage_curve(
    const fault_sim_result& result, std::size_t universe) {
    std::vector<std::pair<std::uint64_t, double>> curve;
    std::uint64_t n = 16;
    while (n < result.patterns_applied) {
        curve.emplace_back(n, 100.0 *
                                  static_cast<double>(result.detected_within(n)) /
                                  static_cast<double>(universe == 0 ? 1 : universe));
        n *= 2;
    }
    curve.emplace_back(result.patterns_applied,
                       100.0 *
                           static_cast<double>(
                               result.detected_within(result.patterns_applied)) /
                           static_cast<double>(universe == 0 ? 1 : universe));
    return curve;
}

}  // namespace wrpt
