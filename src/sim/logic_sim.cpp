#include "sim/logic_sim.h"

#include "core/gate_eval.h"
#include "util/error.h"

namespace wrpt {

simulator::simulator(const netlist& nl)
    : owned_view_(std::make_unique<circuit_view>(circuit_view::compile(nl))),
      view_(owned_view_.get()) {
    init_scratch();
}

simulator::simulator(const circuit_view& view) : view_(&view) {
    init_scratch();
}

void simulator::init_scratch() {
    const std::size_t n = view_->node_count();
    good_.assign(n, 0);
    args_.assign(view_->max_arity(), 0);
    faulty_.assign(n, 0);
    has_faulty_.assign(n, 0);
    queued_.assign(n, 0);
    buckets_.resize(view_->depth() + 1);
    output_diff_.assign(view_->output_count(), 0);
}

void simulator::simulate(std::span<const std::uint64_t> input_words) {
    require(input_words.size() == view_->input_count(),
            "simulator::simulate: word count != input count");
    const circuit_view& cv = *view_;
    const auto inputs = cv.inputs();
    for (std::size_t i = 0; i < input_words.size(); ++i)
        good_[inputs[i]] = input_words[i];
    // Forward sweep in topological id order (every fanin id is smaller).
    const node_id count = static_cast<node_id>(cv.node_count());
    for (node_id n = 0; n < count; ++n) {
        if (cv.kind(n) == gate_kind::input) continue;
        const auto fi = cv.fanins(n);
        good_[n] = eval_gate_with(
            word_algebra{}, cv.kind(n),
            [&](std::size_t k) { return good_[fi[k]]; }, fi.size());
    }
}

std::uint64_t simulator::eval_node(node_id n) {
    const circuit_view& cv = *view_;
    const auto fi = cv.fanins(n);
    return eval_gate_with(
        word_algebra{}, cv.kind(n),
        [&](std::size_t k) {
            const node_id f = fi[k];
            return has_faulty_[f] ? faulty_[f] : good_[f];
        },
        fi.size());
}

void simulator::schedule(node_id n) {
    if (!queued_[n]) {
        queued_[n] = 1;
        buckets_[view_->level(n)].push_back(n);
    }
}

std::uint64_t simulator::detect_mask(const fault& f) {
    const circuit_view& cv = *view_;
    std::fill(output_diff_.begin(), output_diff_.end(), 0);

    const std::uint64_t forced = stuck_value(f.value) ? ~0ULL : 0ULL;
    std::uint64_t detected = 0;
    std::size_t start_level = 0;

    auto mark = [&](node_id n, std::uint64_t value) {
        faulty_[n] = value;
        has_faulty_[n] = 1;
        touched_.push_back(n);
        for (node_id fo : cv.fanouts(n)) schedule(fo);
    };

    if (f.is_stem()) {
        const node_id n = f.where;
        if ((good_[n] ^ forced) == 0) return 0;  // fault never activated
        mark(n, forced);
        if (cv.is_output(n)) detected |= good_[n] ^ forced;
        start_level = cv.level(n);
    } else {
        // Branch fault: only gate f.where sees the forced value on pin f.pin.
        const node_id g = f.where;
        const auto fi = cv.fanins(g);
        for (std::size_t k = 0; k < fi.size(); ++k) args_[k] = good_[fi[k]];
        args_[static_cast<std::size_t>(f.pin)] = forced;
        const std::uint64_t v =
            eval_gate(word_algebra{}, cv.kind(g), args_.data(), fi.size());
        if (v == good_[g]) return 0;
        mark(g, v);
        queued_[g] = 0;  // g itself is final; only its fanouts propagate
        if (cv.is_output(g)) detected |= good_[g] ^ v;
        start_level = cv.level(g);
    }

    // Levelized wavefront: every edge increases the level, so processing
    // buckets in ascending level order finalizes each node exactly once.
    for (std::size_t lvl = start_level; lvl < buckets_.size(); ++lvl) {
        auto& bucket = buckets_[lvl];
        for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
            const node_id n = bucket[idx];
            queued_[n] = 0;
            if (has_faulty_[n]) continue;  // the injected node stays forced
            const std::uint64_t v = eval_node(n);
            if (v == good_[n]) continue;
            mark(n, v);
            if (cv.is_output(n)) detected |= good_[n] ^ v;
        }
        bucket.clear();
    }

    // Record per-output differences, then reset scratch state.
    if (detected != 0) {
        const auto outputs = cv.outputs();
        for (std::size_t o = 0; o < outputs.size(); ++o) {
            const node_id out = outputs[o];
            if (has_faulty_[out]) output_diff_[o] = good_[out] ^ faulty_[out];
        }
    }
    for (node_id n : touched_) has_faulty_[n] = 0;
    touched_.clear();
    return detected;
}

block_simulator::block_simulator(const circuit_view& view, unsigned words)
    : view_(&view), words_(words) {
    require(words_ >= 1, "block_simulator: words must be >= 1");
    const std::size_t n = view_->node_count();
    good_.assign(n * words_, 0);
    faulty_.assign(n * words_, 0);
    vbuf_.assign(words_, 0);
    args_.assign(view_->max_arity() * words_, 0);
    has_faulty_.assign(n, 0);
    queued_.assign(n, 0);
    buckets_.resize(view_->depth() + 1);
}

void block_simulator::simulate(std::span<const std::uint64_t> input_words) {
    require(input_words.size() == view_->input_count() * words_,
            "block_simulator::simulate: word count != input count * words");
    const circuit_view& cv = *view_;
    const unsigned B = words_;
    const auto inputs = cv.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::uint64_t* dst = node_words(good_, inputs[i]);
        for (unsigned w = 0; w < B; ++w) dst[w] = input_words[i * B + w];
    }
    const node_id count = static_cast<node_id>(cv.node_count());
    for (node_id n = 0; n < count; ++n) {
        if (cv.kind(n) == gate_kind::input) continue;
        const auto fi = cv.fanins(n);
        std::uint64_t* dst = node_words(good_, n);
        for (unsigned w = 0; w < B; ++w)
            dst[w] = eval_gate_with(
                word_algebra{}, cv.kind(n),
                [&](std::size_t k) {
                    return good_[static_cast<std::size_t>(fi[k]) * B + w];
                },
                fi.size());
    }
}

void block_simulator::schedule(node_id n) {
    if (!queued_[n]) {
        queued_[n] = 1;
        buckets_[view_->level(n)].push_back(n);
    }
}

void block_simulator::detect_masks(const fault& f, std::uint64_t* masks) {
    const circuit_view& cv = *view_;
    const unsigned B = words_;
    std::fill(masks, masks + B, 0);

    const std::uint64_t forced = stuck_value(f.value) ? ~0ULL : 0ULL;
    std::size_t start_level = 0;

    auto mark = [&](node_id n, const std::uint64_t* v) {
        std::uint64_t* dst = node_words(faulty_, n);
        for (unsigned w = 0; w < B; ++w) dst[w] = v[w];
        has_faulty_[n] = 1;
        touched_.push_back(n);
        for (node_id fo : cv.fanouts(n)) schedule(fo);
    };

    if (f.is_stem()) {
        const node_id n = f.where;
        const std::uint64_t* g = node_words(good_, n);
        std::uint64_t any = 0;
        for (unsigned w = 0; w < B; ++w) any |= g[w] ^ forced;
        if (any == 0) return;  // fault never activated in any block
        for (unsigned w = 0; w < B; ++w) vbuf_[w] = forced;
        mark(n, vbuf_.data());
        if (cv.is_output(n))
            for (unsigned w = 0; w < B; ++w) masks[w] |= g[w] ^ forced;
        start_level = cv.level(n);
    } else {
        // Branch fault: only gate f.where sees the forced value on its pin.
        const node_id gn = f.where;
        const auto fi = cv.fanins(gn);
        for (std::size_t k = 0; k < fi.size(); ++k) {
            const std::uint64_t* src = node_words(good_, fi[k]);
            for (unsigned w = 0; w < B; ++w) args_[k * B + w] = src[w];
        }
        for (unsigned w = 0; w < B; ++w)
            args_[static_cast<std::size_t>(f.pin) * B + w] = forced;
        const std::uint64_t* g = node_words(good_, gn);
        std::uint64_t any = 0;
        for (unsigned w = 0; w < B; ++w) {
            vbuf_[w] = eval_gate_with(
                word_algebra{}, cv.kind(gn),
                [&](std::size_t k) { return args_[k * B + w]; }, fi.size());
            any |= vbuf_[w] ^ g[w];
        }
        if (any == 0) return;
        mark(gn, vbuf_.data());
        queued_[gn] = 0;  // gn itself is final; only its fanouts propagate
        if (cv.is_output(gn))
            for (unsigned w = 0; w < B; ++w) masks[w] |= g[w] ^ vbuf_[w];
        start_level = cv.level(gn);
    }

    // Levelized wavefront over all B words at once. A word in which a
    // node's faulty value equals its good value carries the good value
    // downstream — exactly what the one-word simulator's "not marked"
    // state means — so each word propagates as if simulated alone.
    for (std::size_t lvl = start_level; lvl < buckets_.size(); ++lvl) {
        auto& bucket = buckets_[lvl];
        for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
            const node_id n = bucket[idx];
            queued_[n] = 0;
            if (has_faulty_[n]) continue;  // the injected node stays forced
            const auto fi = cv.fanins(n);
            const std::uint64_t* g = node_words(good_, n);
            std::uint64_t any = 0;
            for (unsigned w = 0; w < B; ++w) {
                vbuf_[w] = eval_gate_with(
                    word_algebra{}, cv.kind(n),
                    [&](std::size_t k) {
                        const std::size_t fw =
                            static_cast<std::size_t>(fi[k]) * B + w;
                        return has_faulty_[fi[k]] ? faulty_[fw] : good_[fw];
                    },
                    fi.size());
                any |= vbuf_[w] ^ g[w];
            }
            if (any == 0) continue;
            mark(n, vbuf_.data());
            if (cv.is_output(n))
                for (unsigned w = 0; w < B; ++w) masks[w] |= g[w] ^ vbuf_[w];
        }
        bucket.clear();
    }

    for (node_id n : touched_) has_faulty_[n] = 0;
    touched_.clear();
}

std::vector<bool> evaluate(const netlist& nl, const std::vector<bool>& inputs) {
    require(inputs.size() == nl.input_count(),
            "evaluate: input size mismatch");
    simulator sim(nl);
    std::vector<std::uint64_t> words(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
        words[i] = inputs[i] ? 1ULL : 0ULL;
    sim.simulate(words);
    std::vector<bool> out;
    out.reserve(nl.output_count());
    for (node_id o : nl.outputs()) out.push_back((sim.value(o) & 1ULL) != 0);
    return out;
}

std::vector<bool> evaluate_with_fault(const netlist& nl,
                                      const std::vector<bool>& inputs,
                                      const fault& f) {
    require(inputs.size() == nl.input_count(),
            "evaluate_with_fault: input size mismatch");
    simulator sim(nl);
    std::vector<std::uint64_t> words(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
        words[i] = inputs[i] ? 1ULL : 0ULL;
    sim.simulate(words);
    const std::uint64_t mask = sim.detect_mask(f);
    std::vector<bool> out;
    out.reserve(nl.output_count());
    for (std::size_t o = 0; o < nl.output_count(); ++o) {
        bool good_bit = (sim.value(nl.outputs()[o]) & 1ULL) != 0;
        const bool flipped = (sim.last_output_diff()[o] & 1ULL) != 0;
        out.push_back(flipped ? !good_bit : good_bit);
    }
    (void)mask;
    return out;
}

}  // namespace wrpt
