#include "sim/logic_sim.h"

#include "util/error.h"

namespace wrpt {

simulator::simulator(const netlist& nl) : nl_(&nl) {
    nl.validate();
    const std::size_t n = nl.node_count();
    good_.assign(n, 0);
    faulty_.assign(n, 0);
    has_faulty_.assign(n, 0);
    queued_.assign(n, 0);
    buckets_.resize(nl.depth() + 1);
    output_diff_.assign(nl.output_count(), 0);
    // Force fanout construction up front so detect_mask is allocation-free.
    if (n > 0) (void)nl.fanouts(0);
}

void simulator::simulate(std::span<const std::uint64_t> input_words) {
    require(input_words.size() == nl_->input_count(),
            "simulator::simulate: word count != input count");
    const netlist& nl = *nl_;
    for (std::size_t i = 0; i < input_words.size(); ++i)
        good_[nl.inputs()[i]] = input_words[i];
    std::vector<std::uint64_t> fanin_words;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) continue;
        const auto fi = nl.fanins(n);
        fanin_words.resize(fi.size());
        for (std::size_t k = 0; k < fi.size(); ++k)
            fanin_words[k] = good_[fi[k]];
        good_[n] = eval_gate_words(nl.kind(n), fanin_words.data(), fi.size());
    }
}

std::uint64_t simulator::eval_node(node_id n,
                                   const std::vector<std::uint64_t>& faulty) const {
    const netlist& nl = *nl_;
    const auto fi = nl.fanins(n);
    std::uint64_t words[64];
    require(fi.size() <= 64, "simulator: gate arity beyond kernel limit");
    for (std::size_t k = 0; k < fi.size(); ++k) {
        const node_id f = fi[k];
        words[k] = has_faulty_[f] ? faulty[f] : good_[f];
    }
    return eval_gate_words(nl.kind(n), words, fi.size());
}

void simulator::schedule(node_id n) {
    if (!queued_[n]) {
        queued_[n] = 1;
        buckets_[nl_->level(n)].push_back(n);
    }
}

std::uint64_t simulator::detect_mask(const fault& f) {
    const netlist& nl = *nl_;
    std::fill(output_diff_.begin(), output_diff_.end(), 0);

    const std::uint64_t forced = stuck_value(f.value) ? ~0ULL : 0ULL;
    std::uint64_t detected = 0;
    std::size_t start_level = 0;

    auto mark = [&](node_id n, std::uint64_t value) {
        faulty_[n] = value;
        has_faulty_[n] = 1;
        touched_.push_back(n);
        for (node_id fo : nl.fanouts(n)) schedule(fo);
    };

    if (f.is_stem()) {
        const node_id n = f.where;
        if ((good_[n] ^ forced) == 0) return 0;  // fault never activated
        mark(n, forced);
        if (nl.is_output(n)) detected |= good_[n] ^ forced;
        start_level = nl.level(n);
    } else {
        // Branch fault: only gate f.where sees the forced value on pin f.pin.
        const node_id g = f.where;
        const auto fi = nl.fanins(g);
        std::uint64_t words[64];
        require(fi.size() <= 64, "simulator: gate arity beyond kernel limit");
        for (std::size_t k = 0; k < fi.size(); ++k) words[k] = good_[fi[k]];
        words[static_cast<std::size_t>(f.pin)] = forced;
        const std::uint64_t v = eval_gate_words(nl.kind(g), words, fi.size());
        if (v == good_[g]) return 0;
        mark(g, v);
        queued_[g] = 0;  // g itself is final; only its fanouts propagate
        if (nl.is_output(g)) detected |= good_[g] ^ v;
        start_level = nl.level(g);
    }

    // Levelized wavefront: every edge increases the level, so processing
    // buckets in ascending level order finalizes each node exactly once.
    for (std::size_t lvl = start_level; lvl < buckets_.size(); ++lvl) {
        auto& bucket = buckets_[lvl];
        for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
            const node_id n = bucket[idx];
            queued_[n] = 0;
            if (has_faulty_[n]) continue;  // the injected node stays forced
            const std::uint64_t v = eval_node(n, faulty_);
            if (v == good_[n]) continue;
            mark(n, v);
            if (nl.is_output(n)) detected |= good_[n] ^ v;
        }
        bucket.clear();
    }

    // Record per-output differences, then reset scratch state.
    if (detected != 0) {
        for (std::size_t o = 0; o < nl.output_count(); ++o) {
            const node_id out = nl.outputs()[o];
            if (has_faulty_[out]) output_diff_[o] = good_[out] ^ faulty_[out];
        }
    }
    for (node_id n : touched_) has_faulty_[n] = 0;
    touched_.clear();
    return detected;
}

std::vector<bool> evaluate(const netlist& nl, const std::vector<bool>& inputs) {
    require(inputs.size() == nl.input_count(),
            "evaluate: input size mismatch");
    simulator sim(nl);
    std::vector<std::uint64_t> words(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
        words[i] = inputs[i] ? 1ULL : 0ULL;
    sim.simulate(words);
    std::vector<bool> out;
    out.reserve(nl.output_count());
    for (node_id o : nl.outputs()) out.push_back((sim.value(o) & 1ULL) != 0);
    return out;
}

std::vector<bool> evaluate_with_fault(const netlist& nl,
                                      const std::vector<bool>& inputs,
                                      const fault& f) {
    require(inputs.size() == nl.input_count(),
            "evaluate_with_fault: input size mismatch");
    simulator sim(nl);
    std::vector<std::uint64_t> words(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
        words[i] = inputs[i] ? 1ULL : 0ULL;
    sim.simulate(words);
    const std::uint64_t mask = sim.detect_mask(f);
    std::vector<bool> out;
    out.reserve(nl.output_count());
    for (std::size_t o = 0; o < nl.output_count(); ++o) {
        bool good_bit = (sim.value(nl.outputs()[o]) & 1ULL) != 0;
        const bool flipped = (sim.last_output_diff()[o] & 1ULL) != 0;
        out.push_back(flipped ? !good_bit : good_bit);
    }
    (void)mask;
    return out;
}

}  // namespace wrpt
