#include "bdd/bdd.h"

#include <algorithm>

#include "core/gate_eval.h"
#include "util/error.h"

namespace wrpt {
namespace {

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

}  // namespace

bdd_manager::bdd_manager(std::uint32_t var_count, std::size_t node_limit)
    : var_count_(var_count), node_limit_(node_limit) {
    // Terminals occupy slots 0 and 1; their var is a sentinel above all
    // real variables so level() ordering works uniformly.
    nodes_.push_back({var_count_, 0, 0});  // false
    nodes_.push_back({var_count_, 1, 1});  // true
}

bdd_manager::ref bdd_manager::make_node(std::uint32_t v, ref lo, ref hi) {
    if (lo == hi) return lo;
    const std::uint64_t key = mix3(v, lo, hi);
    auto it = unique_.find(key);
    if (it != unique_.end()) {
        const node& n = nodes_[it->second];
        if (n.var == v && n.lo == lo && n.hi == hi) return it->second;
        // Rare hash collision: linear fallback.
        for (ref r = 2; r < nodes_.size(); ++r) {
            const node& m = nodes_[r];
            if (m.var == v && m.lo == lo && m.hi == hi) return r;
        }
    }
    if (nodes_.size() >= node_limit_)
        throw budget_exhausted("bdd_manager: node limit exceeded");
    nodes_.push_back({v, lo, hi});
    const ref r = static_cast<ref>(nodes_.size() - 1);
    unique_[key] = r;
    return r;
}

bdd_manager::ref bdd_manager::var(std::uint32_t v) {
    require(v < var_count_, "bdd_manager::var: variable out of range");
    return make_node(v, zero(), one());
}

bdd_manager::ref bdd_manager::ite(ref f, ref g, ref h) {
    // Terminal cases.
    if (f == one()) return g;
    if (f == zero()) return h;
    if (g == h) return g;
    if (g == one() && h == zero()) return f;

    const std::uint64_t key = mix3(f, g, h) ^ 0xabcdef1234567ULL;
    if (auto it = ite_cache_.find(key); it != ite_cache_.end()) return it->second;

    const std::uint32_t top =
        std::min({level(f), level(g), level(h)});
    auto cofactor = [&](ref r, bool positive) {
        if (level(r) != top) return r;
        return positive ? nodes_[r].hi : nodes_[r].lo;
    };
    const ref hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
    const ref lo =
        ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
    const ref r = make_node(top, lo, hi);
    ite_cache_[key] = r;
    return r;
}

bdd_manager::ref bdd_manager::lnot(ref a) { return ite(a, zero(), one()); }
bdd_manager::ref bdd_manager::land(ref a, ref b) { return ite(a, b, zero()); }
bdd_manager::ref bdd_manager::lor(ref a, ref b) { return ite(a, one(), b); }
bdd_manager::ref bdd_manager::lxor(ref a, ref b) {
    return ite(a, lnot(b), b);
}
bdd_manager::ref bdd_manager::lxnor(ref a, ref b) { return ite(a, b, lnot(b)); }

double bdd_manager::sat_probability(ref f,
                                    std::span<const double> var_probs) const {
    require(var_probs.size() >= var_count_,
            "sat_probability: not enough variable probabilities");
    std::unordered_map<ref, double> memo;
    // Iterative post-order to avoid recursion depth issues on deep BDDs.
    std::vector<ref> stack{f};
    while (!stack.empty()) {
        const ref r = stack.back();
        if (r <= 1 || memo.contains(r)) {
            stack.pop_back();
            continue;
        }
        const node& n = nodes_[r];
        const bool lo_ready = n.lo <= 1 || memo.contains(n.lo);
        const bool hi_ready = n.hi <= 1 || memo.contains(n.hi);
        if (lo_ready && hi_ready) {
            auto value = [&](ref x) {
                return x <= 1 ? static_cast<double>(x) : memo.at(x);
            };
            const double p = var_probs[n.var];
            memo[r] = (1.0 - p) * value(n.lo) + p * value(n.hi);
            stack.pop_back();
        } else {
            if (!lo_ready) stack.push_back(n.lo);
            if (!hi_ready) stack.push_back(n.hi);
        }
    }
    if (f <= 1) return static_cast<double>(f);
    return memo.at(f);
}

double bdd_manager::sat_fraction(ref f) const {
    std::vector<double> half(var_count_, 0.5);
    return sat_probability(f, half);
}

std::vector<bdd_manager::ref> build_node_bdds(bdd_manager& mgr,
                                              const netlist& nl) {
    require(mgr.var_count() >= nl.input_count(),
            "build_node_bdds: manager has too few variables");
    std::vector<bdd_manager::ref> f(nl.node_count(), bdd_manager::zero());
    const bdd_algebra alg{&mgr};
    std::vector<bdd_manager::ref> args;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) {
            f[n] = mgr.var(static_cast<std::uint32_t>(nl.input_index(n)));
            continue;
        }
        const auto fi = nl.fanins(n);
        args.resize(fi.size());
        for (std::size_t k = 0; k < fi.size(); ++k) args[k] = f[fi[k]];
        f[n] = eval_gate(alg, nl.kind(n), args.data(), args.size());
    }
    return f;
}

}  // namespace wrpt
