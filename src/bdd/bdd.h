// Reduced ordered BDD package with weighted satisfaction probability.
//
// This is the exact engine behind Parker-McCluskey signal probabilities
// [McPa75] and exact fault detection probabilities (Boolean difference).
// The paper cites Parker/McCluskey as the exact-but-exponential baseline
// that estimation tools (PROTEST, STAFAN, the cutting algorithm)
// approximate; we provide it as ground truth for small circuits. A node
// budget turns the inherent exponential blowup into a clean
// budget_exhausted exception.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

class bdd_manager {
public:
    /// Node handle. 0 = constant false, 1 = constant true.
    using ref = std::uint32_t;

    explicit bdd_manager(std::uint32_t var_count,
                         std::size_t node_limit = std::size_t{1} << 22);

    static constexpr ref zero() { return 0; }
    static constexpr ref one() { return 1; }

    std::uint32_t var_count() const { return var_count_; }
    std::size_t node_count() const { return nodes_.size(); }

    /// Projection function of variable v (v < var_count).
    ref var(std::uint32_t v);

    ref lnot(ref a);
    ref land(ref a, ref b);
    ref lor(ref a, ref b);
    ref lxor(ref a, ref b);
    ref lxnor(ref a, ref b);
    ref ite(ref f, ref g, ref h);

    /// P(f = 1) when variable v is true with probability var_probs[v]
    /// (independent variables) — the Parker-McCluskey exact computation.
    double sat_probability(ref f, std::span<const double> var_probs) const;

    /// Number of satisfying assignments / 2^var_count (uniform inputs).
    double sat_fraction(ref f) const;

private:
    struct node {
        std::uint32_t var;
        ref lo;
        ref hi;
    };
    std::uint32_t level(ref r) const {
        return r <= 1 ? var_count_ : nodes_[r].var;
    }
    ref make_node(std::uint32_t v, ref lo, ref hi);

    std::uint32_t var_count_;
    std::size_t node_limit_;
    std::vector<node> nodes_;
    std::unordered_map<std::uint64_t, ref> unique_;
    std::unordered_map<std::uint64_t, ref> ite_cache_;
};

/// Gate-eval algebra over BDD references (see core/gate_eval.h): lets the
/// exact analyses evaluate gates through the same single kernel as
/// simulation and COP instead of a private switch.
struct bdd_algebra {
    using value_type = bdd_manager::ref;
    bdd_manager* mgr;
    value_type zero() const { return bdd_manager::zero(); }
    value_type one() const { return bdd_manager::one(); }
    value_type not_(value_type a) const { return mgr->lnot(a); }
    value_type and_(value_type a, value_type b) const { return mgr->land(a, b); }
    value_type or_(value_type a, value_type b) const { return mgr->lor(a, b); }
    value_type xor_(value_type a, value_type b) const { return mgr->lxor(a, b); }
};

/// Build one BDD per netlist node (topological composition). Variable v is
/// the v-th primary input. Throws budget_exhausted on blowup.
std::vector<bdd_manager::ref> build_node_bdds(bdd_manager& mgr,
                                              const netlist& nl);

}  // namespace wrpt
