// ASCII table formatting used by benches and examples to print
// paper-style result tables.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wrpt {

/// Column-aligned ASCII table with a title, header row and data rows.
///
/// Usage:
///   text_table t("Table 1: Necessary test lengths");
///   t.set_header({"Circuit", "Required test length"});
///   t.add_row({"S1", "5.6e8"});
///   std::cout << t;
class text_table {
public:
    explicit text_table(std::string title = {});

    void set_header(std::vector<std::string> header);
    void add_row(std::vector<std::string> row);

    std::size_t row_count() const { return rows_.size(); }

    /// Render with single-space-padded columns and a rule under the header.
    std::string to_string() const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const text_table& t);

/// Format helpers for table cells.
std::string format_sci(double value, int significant = 2);   // "5.6e+08"
std::string format_fixed(double value, int decimals = 1);    // "99.7"
std::string format_count(std::uint64_t value);               // "12,000"

}  // namespace wrpt
