#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace wrpt {

text_table::text_table(std::string title) : title_(std::move(title)) {}

void text_table::set_header(std::vector<std::string> header) {
    header_ = std::move(header);
}

void text_table::add_row(std::vector<std::string> row) {
    if (!header_.empty())
        require(row.size() == header_.size(),
                "text_table::add_row: row width differs from header");
    rows_.push_back(std::move(row));
}

std::string text_table::to_string() const {
    std::vector<std::size_t> widths;
    auto absorb = [&widths](const std::vector<std::string>& row) {
        if (widths.size() < row.size()) widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty()) absorb(header_);
    for (const auto& row : rows_) absorb(row);

    std::ostringstream out;
    if (!title_.empty()) out << title_ << '\n';
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) out << "  ";
            out << row[i];
            if (i + 1 < row.size())
                out << std::string(widths[i] - row[i].size(), ' ');
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::ostream& operator<<(std::ostream& os, const text_table& t) {
    return os << t.to_string();
}

std::string format_sci(double value, int significant) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", std::max(0, significant - 1), value);
    return buf;
}

std::string format_fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string format_count(std::uint64_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

}  // namespace wrpt
