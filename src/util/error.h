// Error handling primitives shared by all wrpt modules.
//
// The library reports contract violations and malformed inputs with
// exceptions derived from wrpt::error, so callers can distinguish library
// failures from std:: failures.

#pragma once

#include <stdexcept>
#include <string>

namespace wrpt {

/// Base class of all exceptions thrown by the wrpt library.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a netlist, fault list, or other input fails validation.
class invalid_input : public error {
public:
    explicit invalid_input(const std::string& what) : error(what) {}
};

/// Thrown when a resource budget (e.g. BDD node limit) is exhausted.
class budget_exhausted : public error {
public:
    explicit budget_exhausted(const std::string& what) : error(what) {}
};

/// Check a runtime condition; throw invalid_input with `msg` on failure.
///
/// Used for validating external inputs (netlists, files, user parameters),
/// not for internal invariants (those use assert).
inline void require(bool condition, const std::string& msg) {
    if (!condition) throw invalid_input(msg);
}

}  // namespace wrpt
