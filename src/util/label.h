// Synthesized signal/node labels: "x12", "b3_7" — a prefix gluing one or
// two numbers together.
//
// Built with std::string::append rather than operator+ chains: gcc 12's
// -Wrestrict misfires on `"x" + std::to_string(i)` (and on some rvalue
// operator+ forms) once the inliner sees through the temporaries, and
// the repo builds with -Werror. Appending into a named string never
// takes the insert path the false positive lives in.

#pragma once

#include <string>
#include <string_view>

namespace wrpt {

inline std::string label(std::string_view prefix, std::size_t n) {
    std::string s(prefix);
    s += std::to_string(n);
    return s;
}

inline std::string label(std::string_view prefix, std::size_t a, char sep,
                         std::size_t b) {
    std::string s(prefix);
    s += std::to_string(a);
    s += sep;
    s += std::to_string(b);
    return s;
}

}  // namespace wrpt
