// Small statistics helpers used by estimators, tests and benches.

#pragma once

#include <cstdint>
#include <vector>

namespace wrpt {

/// Running mean / variance accumulator (Welford).
class running_stats {
public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const;
    /// Unbiased sample variance; 0 if fewer than two samples.
    double variance() const;
    double stddev() const;

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Two-sided confidence interval on a proportion.
struct proportion_interval {
    double low = 0.0;
    double high = 1.0;
};

/// Wilson score interval for `successes` out of `trials` at confidence
/// level given by z (1.96 ~ 95%, 3.29 ~ 99.9%). trials must be > 0.
proportion_interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                    double z = 1.96);

/// Mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

/// Maximum absolute difference between two equally sized vectors.
double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace wrpt
