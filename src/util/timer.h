// Wall-clock stopwatch for the performance tables.

#pragma once

#include <chrono>

namespace wrpt {

/// Simple steady-clock stopwatch; starts on construction.
class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    void restart() { start_ = clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double milliseconds() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace wrpt
