// dense_map — an array-with-hash container for integer keys that are
// *usually* consecutive: circuit handles, engine-pool slots, connection
// keys, cache sequence numbers. The hot maps in this codebase all share
// that shape (IDs handed out by a monotonic counter, probed millions of
// times per second on the serve path), and a general-purpose
// std::unordered_map pays hashing, pointer chasing and allocator churn
// for flexibility none of them need.
//
// Layout: two regions behind one interface.
//
//   array region   keys in [0, array_limit()): a flat vector indexed
//                  directly by key plus an occupancy bitmask. A lookup is
//                  one bounds check, one bit test and one load — no hash,
//                  no probe sequence, no comparison. The region grows
//                  adaptively: inserting key k extends it (to the next
//                  power of two covering k) only while k stays within 4x
//                  the live element count, so consecutive and mildly
//                  strided key streams are captured while memory stays
//                  O(size). Hash-region entries whose keys fall under a
//                  grown limit migrate into the array (counted in
//                  stats().relocations).
//
//   hash region    everything else (sparse, random, or far-ahead keys):
//                  open-addressing linear probing over a power-of-two
//                  slot vector at <= 3/4 load. Erase uses backward-shift
//                  deletion, so the table is tombstone-free — probe
//                  chains never rot under churn and erase-heavy
//                  workloads need no periodic rehash.
//
// Iteration (`for_each`) visits the array region in ascending key order;
// when the hash region is non-empty its entries are visited afterwards,
// also in ascending key order (collected and sorted on the fly — O(h log
// h) for h hash-resident entries, and h == 0 in the consecutive-ID
// common case, where iteration is a straight O(1)-per-step scan). The
// full visit order is therefore ascending by key, deterministically —
// the property the lane-group builder and LRU eviction scans rest on.
//
// Concurrency: none built in — external synchronization like any
// standard container. Concurrent *const* readers are safe: const find()
// and const for_each() do not touch the probe counters (only mutating
// operations and non-const lookups count), so shared read-mostly tables
// stay race-free under TSan.
//
// stats(): array_hits / hash_hits (probes answered by each region via
// non-const operations) and relocations (entries moved by array-growth
// migration, hash rehash, or backward-shift erase) — the observability
// surface the service exports per pool over the wire.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace wrpt::util {

template <class Value, class Key = std::uint64_t>
class dense_map {
    static_assert(std::is_unsigned_v<Key>,
                  "dense_map keys are unsigned integers");

public:
    struct stats_t {
        std::uint64_t array_hits = 0;   ///< probes answered by the array region
        std::uint64_t hash_hits = 0;    ///< probes answered by the hash region
        std::uint64_t relocations = 0;  ///< entries moved (growth/rehash/shift)
    };

    dense_map() = default;
    dense_map(dense_map&&) noexcept = default;
    dense_map& operator=(dense_map&&) noexcept = default;
    dense_map(const dense_map&) = default;
    dense_map& operator=(const dense_map&) = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Upper bound (exclusive) of the directly-indexed key range.
    Key array_limit() const { return array_limit_; }

    /// Pre-extend the array region to cover keys [0, limit) — for key
    /// universes known up front (e.g. (kind, arity) shape codes), which
    /// pins every insert to the O(1) direct-index path.
    void reserve_array(Key limit) {
        if (limit > array_limit_) grow_array(limit);
    }

    bool contains(Key k) const { return find(k) != nullptr; }

    /// Mutating-path lookup: counts an array/hash hit on success.
    Value* find(Key k) {
        if (k < array_limit_) {
            if (!array_bit(k)) return nullptr;
            ++stats_.array_hits;
            return &array_vals_[static_cast<std::size_t>(k)];
        }
        const std::size_t slot = hash_find(k);
        if (slot == npos) return nullptr;
        ++stats_.hash_hits;
        return &hash_slots_[slot].val;
    }

    /// Count-free lookup: safe for concurrent readers of a const map.
    const Value* find(Key k) const {
        if (k < array_limit_) {
            if (!array_bit(k)) return nullptr;
            return &array_vals_[static_cast<std::size_t>(k)];
        }
        const std::size_t slot = hash_find(k);
        return slot == npos ? nullptr : &hash_slots_[slot].val;
    }

    /// Insert a default-constructed value if absent; return the value.
    Value& operator[](Key k) { return *try_emplace(k).first; }

    /// Insert Value(args...) if `k` is absent. Returns the value slot and
    /// whether a fresh insert happened (false = the key already existed;
    /// args are not consumed in that case).
    template <class... Args>
    std::pair<Value*, bool> try_emplace(Key k, Args&&... args) {
        if (Value* v = find(k)) return {v, false};
        return {&insert_fresh(k, Value(std::forward<Args>(args)...)), true};
    }

    /// Insert or overwrite. Returns true when the key was fresh.
    bool insert_or_assign(Key k, Value v) {
        if (Value* existing = find(k)) {
            *existing = std::move(v);
            return false;
        }
        insert_fresh(k, std::move(v));
        return true;
    }

    /// Remove `k` if present. Array erase clears the occupancy bit; hash
    /// erase backward-shifts the probe chain (tombstone-free).
    bool erase(Key k) {
        if (k < array_limit_) {
            if (!array_bit(k)) return false;
            ++stats_.array_hits;
            clear_array_bit(k);
            array_vals_[static_cast<std::size_t>(k)] = Value{};
            --size_;
            return true;
        }
        const std::size_t slot = hash_find(k);
        if (slot == npos) return false;
        ++stats_.hash_hits;
        hash_slots_[slot].val = Value{};
        erase_hash_slot(slot);
        --size_;
        return true;
    }

    /// Drop every entry; capacity (both regions) is retained for reuse.
    void clear() {
        for (Key k = 0; k < array_limit_; ++k) {
            if (!array_bit(k)) continue;
            array_vals_[static_cast<std::size_t>(k)] = Value{};
        }
        std::fill(array_used_.begin(), array_used_.end(), 0u);
        for (std::size_t s = 0; s < hash_slots_.size(); ++s) {
            if (!hash_used_[s]) continue;
            hash_slots_[s] = hash_slot{};
        }
        std::fill(hash_used_.begin(), hash_used_.end(), 0u);
        size_ = 0;
        hash_size_ = 0;
    }

    /// Visit (key, value&) in ascending key order. Do not insert or erase
    /// during the visit.
    template <class Fn>
    void for_each(Fn&& fn) {
        for (Key k = 0; k < array_limit_; ++k)
            if (array_bit(k)) fn(k, array_vals_[static_cast<std::size_t>(k)]);
        if (hash_size_ == 0) return;
        for (const std::size_t s : ordered_hash_slots())
            fn(hash_slots_[s].key, hash_slots_[s].val);
    }

    template <class Fn>
    void for_each(Fn&& fn) const {
        for (Key k = 0; k < array_limit_; ++k)
            if (array_bit(k)) fn(k, array_vals_[static_cast<std::size_t>(k)]);
        if (hash_size_ == 0) return;
        for (const std::size_t s : ordered_hash_slots())
            fn(hash_slots_[s].key, hash_slots_[s].val);
    }

    stats_t stats() const { return stats_; }
    void reset_stats() { stats_ = stats_t{}; }

    /// Entries currently resident in each region (diagnostics/tests).
    std::size_t array_size() const { return size_ - hash_size_; }
    std::size_t hash_size() const { return hash_size_; }

private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    static constexpr Key min_array = 16;

    struct hash_slot {
        Key key = 0;
        Value val{};
    };

    bool array_bit(Key k) const {
        const std::size_t i = static_cast<std::size_t>(k);
        return (array_used_[i >> 6] >> (i & 63)) & 1u;
    }
    void set_array_bit(Key k) {
        const std::size_t i = static_cast<std::size_t>(k);
        array_used_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
    void clear_array_bit(Key k) {
        const std::size_t i = static_cast<std::size_t>(k);
        array_used_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    static std::uint64_t mix(Key k) {
        // splitmix64 finalizer: full-width avalanche, so strided and
        // high-bit-heavy keys spread evenly over the power-of-two table.
        std::uint64_t x = static_cast<std::uint64_t>(k);
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    std::size_t home_of(Key k) const {
        return static_cast<std::size_t>(mix(k)) & (hash_slots_.size() - 1);
    }

    std::size_t hash_find(Key k) const {
        if (hash_size_ == 0) return npos;
        const std::size_t mask = hash_slots_.size() - 1;
        for (std::size_t s = home_of(k); hash_used_[s]; s = (s + 1) & mask)
            if (hash_slots_[s].key == k) return s;
        return npos;
    }

    /// Growth policy: capture key k in the array region iff it stays
    /// within 4x the live element count (or under the 16-entry floor) —
    /// consecutive and small-stride ID streams always qualify, sparse
    /// 64-bit keys never do, and the array never exceeds O(4 * size).
    bool array_worthy(Key k) const {
        return k < min_array ||
               (static_cast<std::uint64_t>(k) >> 2) <=
                   static_cast<std::uint64_t>(size_);
    }

    Value& insert_fresh(Key k, Value v) {
        if (k >= array_limit_ && array_worthy(k)) grow_array(k + 1);
        ++size_;
        if (k < array_limit_) {
            set_array_bit(k);
            Value& slot = array_vals_[static_cast<std::size_t>(k)];
            slot = std::move(v);
            return slot;
        }
        if ((hash_size_ + 1) * 4 > hash_slots_.size() * 3) grow_hash();
        const std::size_t mask = hash_slots_.size() - 1;
        std::size_t s = home_of(k);
        while (hash_used_[s]) s = (s + 1) & mask;
        hash_slots_[s].key = k;
        hash_slots_[s].val = std::move(v);
        hash_used_[s] = 1;
        ++hash_size_;
        return hash_slots_[s].val;
    }

    void grow_array(Key need) {
        // Asserted here rather than at class scope so a map member whose
        // value type holds a forward-declared unique_ptr target still
        // compiles; the check runs where the type is complete.
        static_assert(std::is_default_constructible_v<Value>,
                      "dense_map values must be default-constructible");
        Key limit = array_limit_ ? array_limit_ : min_array;
        while (limit < need) limit *= 2;
        array_vals_.resize(static_cast<std::size_t>(limit));
        array_used_.resize((static_cast<std::size_t>(limit) + 63) / 64, 0u);
        array_limit_ = limit;
        if (hash_size_ == 0) return;
        // Migrate hash entries the grown array now covers. Collect first:
        // erase() rearranges the probe chains under iteration.
        std::vector<Key> movers;
        for (std::size_t s = 0; s < hash_slots_.size(); ++s)
            if (hash_used_[s] && hash_slots_[s].key < array_limit_)
                movers.push_back(hash_slots_[s].key);
        for (const Key k : movers) {
            const std::size_t slot = hash_find(k);
            Value v = std::move(hash_slots_[slot].val);
            hash_slots_[slot].val = Value{};
            erase_hash_slot(slot);
            set_array_bit(k);
            array_vals_[static_cast<std::size_t>(k)] = std::move(v);
            ++stats_.relocations;
        }
    }

    /// Backward-shift removal of an occupied hash slot (the value is
    /// assumed already moved out): walk the chain after the hole and pull
    /// back every entry whose home position the hole would cut off, so
    /// the table stays tombstone-free. Adjusts hash_size_ only — the
    /// caller owns size_ and the hit counters.
    void erase_hash_slot(std::size_t slot) {
        hash_used_[slot] = 0;
        --hash_size_;
        const std::size_t mask = hash_slots_.size() - 1;
        std::size_t hole = slot;
        for (std::size_t j = (hole + 1) & mask; hash_used_[j];
             j = (j + 1) & mask) {
            const std::size_t home = home_of(hash_slots_[j].key);
            // `j` may stay put only if its home lies strictly after the
            // hole (cyclically); otherwise the hole breaks its chain.
            const bool reachable =
                ((j - home) & mask) >= ((j - hole) & mask);
            if (reachable) {
                hash_slots_[hole] = std::move(hash_slots_[j]);
                hash_slots_[j].val = Value{};
                hash_used_[hole] = 1;
                hash_used_[j] = 0;
                hole = j;
                ++stats_.relocations;
            }
        }
    }

    void grow_hash() {
        const std::size_t cap =
            hash_slots_.empty() ? 16 : hash_slots_.size() * 2;
        std::vector<hash_slot> old_slots = std::move(hash_slots_);
        std::vector<std::uint8_t> old_used = std::move(hash_used_);
        hash_slots_.clear();
        hash_slots_.resize(cap);  // resize, not assign: Value may be move-only
        hash_used_.assign(cap, 0);
        const std::size_t mask = cap - 1;
        for (std::size_t s = 0; s < old_slots.size(); ++s) {
            if (!old_used[s]) continue;
            std::size_t d = home_of(old_slots[s].key);
            while (hash_used_[d]) d = (d + 1) & mask;
            hash_slots_[d] = std::move(old_slots[s]);
            hash_used_[d] = 1;
            ++stats_.relocations;
        }
    }

    std::vector<std::size_t> ordered_hash_slots() const {
        std::vector<std::size_t> slots;
        slots.reserve(hash_size_);
        for (std::size_t s = 0; s < hash_slots_.size(); ++s)
            if (hash_used_[s]) slots.push_back(s);
        std::sort(slots.begin(), slots.end(),
                  [&](std::size_t a, std::size_t b) {
                      return hash_slots_[a].key < hash_slots_[b].key;
                  });
        return slots;
    }

    // Array region.
    std::vector<Value> array_vals_;
    std::vector<std::uint64_t> array_used_;  ///< occupancy bitmask
    Key array_limit_ = 0;

    // Hash region (power-of-two capacity, linear probing, <= 3/4 load).
    std::vector<hash_slot> hash_slots_;
    std::vector<std::uint8_t> hash_used_;
    std::size_t hash_size_ = 0;

    std::size_t size_ = 0;
    stats_t stats_;
};

}  // namespace wrpt::util
