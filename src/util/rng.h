// Deterministic pseudo-random number generation for simulation.
//
// Provides xoshiro256** (fast, high quality, 2^256-1 period) seeded through
// splitmix64, plus helpers central to weighted random pattern simulation:
// 64-bit words whose bits are independent Bernoulli(p) variables, generated
// with a logarithmic number of base words (the classic binary-expansion
// trick used in weighted-pattern BIST hardware).

#pragma once

#include <cstdint>
#include <vector>

namespace wrpt {

/// splitmix64 step; used to expand a single seed into xoshiro state.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** generator. Deterministic for a given seed.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Next raw 64-bit word, all bits unbiased.
    std::uint64_t next_word();

    /// UniformReal in [0,1) with 53-bit resolution.
    double next_double();

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound);

    /// One Bernoulli(p) draw.
    bool next_bool(double p);

    /// 64-bit word whose bits are i.i.d. Bernoulli(p), with p quantized to
    /// a multiple of 2^-resolution_bits (resolution_bits in [1,32]).
    ///
    /// Uses resolution_bits base words: write p = 0.b1 b2 ... bk in binary
    /// and fold from the least significant digit,
    ///   acc <- b_i ? (w | acc) : (w & acc),
    /// which realizes P(bit set) = p exactly at the given resolution.
    std::uint64_t biased_word(double p, int resolution_bits = 16);

    /// Satisfies UniformRandomBitGenerator so <random> adaptors work.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next_word(); }

private:
    std::uint64_t s_[4];
};

/// Quantize probability p to the nearest multiple of 2^-resolution_bits,
/// clamped to [0, 1].
double quantize_probability(double p, int resolution_bits);

/// Population count over a vector of words.
std::uint64_t popcount(const std::vector<std::uint64_t>& words);

}  // namespace wrpt
