#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace wrpt {

void running_stats::add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double running_stats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double running_stats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

proportion_interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                    double z) {
    require(trials > 0, "wilson_interval: trials must be positive");
    require(successes <= trials, "wilson_interval: successes exceed trials");
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double margin =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

double mean_of(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
    require(a.size() == b.size(), "max_abs_diff: size mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

}  // namespace wrpt
