// Annotated synchronization primitives — the one place this codebase
// spells a mutex.
//
// Every lock-holding class in the concurrent core (svc::service's
// session/cache locks, svc::server's connection and notify queues,
// exec::thread_pool, exec::engine_pool, the netlist's lazy fanout build,
// sim/fault_sim's worker block queue) holds a wrpt::mutex or
// wrpt::shared_mutex and tags the data it protects with
// WRPT_GUARDED_BY(that_mutex). Under clang the wrappers carry Thread
// Safety Analysis capability attributes, so `-Wthread-safety -Werror`
// (the CI `analysis` job) rejects, at compile time, any access to a
// guarded member without its lock held, any function that forgets a
// WRPT_REQUIRES contract, and any scoped lock released on the wrong
// path. Under gcc (the default local toolchain) every macro expands to
// nothing and the wrappers compile down to their std counterparts — zero
// size or behavior change.
//
// The dynamic checkers (TSan, the cross-thread-count equivalence suites)
// only catch violations on interleavings a test happens to exercise;
// these annotations are the static side of the same contract and are
// enforced on every build of every path. tools/lint/wrpt_lint's
// `raw-mutex` rule keeps new code on these wrappers: a bare std::mutex
// anywhere outside this header fails the lint gate.
//
// Conventions (see README "Static analysis" and CONTRIBUTING.md):
//   - every shared mutable member is WRPT_GUARDED_BY its mutex;
//   - private helpers that assume a held lock are WRPT_REQUIRES /
//     WRPT_REQUIRES_SHARED instead of re-locking;
//   - condition-variable wait predicates start with
//     `mutex.assert_held();` so the analysis knows the lock is held
//     inside the lambda (the wait re-acquires before evaluating it);
//   - code whose safety argument is release/acquire publication rather
//     than a critical section (double-checked lazy builds) opts out with
//     WRPT_NO_THREAD_SAFETY_ANALYSIS and a comment saying why.

#pragma once

#include <condition_variable>  // wrpt-lint: allow(raw-mutex)
#include <mutex>               // wrpt-lint: allow(raw-mutex)
#include <shared_mutex>        // wrpt-lint: allow(raw-mutex)

// --- Clang Thread Safety Analysis attribute macros --------------------------
//
// No-ops on every compiler without the attribute family (gcc, MSVC), so
// annotated headers stay portable; clang builds get the full analysis.

#if defined(__clang__)
#define WRPT_TSA(x) __attribute__((x))
#else
#define WRPT_TSA(x)
#endif

/// A type that is a lockable capability (mutexes below).
#define WRPT_CAPABILITY(x) WRPT_TSA(capability(x))
/// A RAII type that acquires in its constructor, releases in its dtor.
#define WRPT_SCOPED_CAPABILITY WRPT_TSA(scoped_lockable)
/// Data member readable/writable only with the given capability held
/// (shared suffices for reads, exclusive is required for writes).
#define WRPT_GUARDED_BY(x) WRPT_TSA(guarded_by(x))
/// Pointer member whose *pointee* is protected by the capability.
#define WRPT_PT_GUARDED_BY(x) WRPT_TSA(pt_guarded_by(x))
/// Documented lock-ordering edges (checked under -Wthread-safety-beta).
#define WRPT_ACQUIRED_BEFORE(...) WRPT_TSA(acquired_before(__VA_ARGS__))
#define WRPT_ACQUIRED_AFTER(...) WRPT_TSA(acquired_after(__VA_ARGS__))
/// The function must be called with the capability held (and does not
/// release it).
#define WRPT_REQUIRES(...) WRPT_TSA(requires_capability(__VA_ARGS__))
#define WRPT_REQUIRES_SHARED(...) \
    WRPT_TSA(requires_shared_capability(__VA_ARGS__))
/// The function acquires / releases the capability itself.
#define WRPT_ACQUIRE(...) WRPT_TSA(acquire_capability(__VA_ARGS__))
#define WRPT_ACQUIRE_SHARED(...) \
    WRPT_TSA(acquire_shared_capability(__VA_ARGS__))
#define WRPT_RELEASE(...) WRPT_TSA(release_capability(__VA_ARGS__))
#define WRPT_RELEASE_SHARED(...) \
    WRPT_TSA(release_shared_capability(__VA_ARGS__))
#define WRPT_RELEASE_GENERIC(...) \
    WRPT_TSA(release_generic_capability(__VA_ARGS__))
#define WRPT_TRY_ACQUIRE(...) WRPT_TSA(try_acquire_capability(__VA_ARGS__))
#define WRPT_TRY_ACQUIRE_SHARED(...) \
    WRPT_TSA(try_acquire_shared_capability(__VA_ARGS__))
/// The function must NOT be called with the capability held (deadlock
/// guard for public entry points that lock internally).
#define WRPT_EXCLUDES(...) WRPT_TSA(locks_excluded(__VA_ARGS__))
/// Assert (to the analysis, zero runtime cost) that the capability is
/// held — for wait predicates and other contexts the analysis cannot see
/// through.
#define WRPT_ASSERT_CAPABILITY(x) WRPT_TSA(assert_capability(x))
#define WRPT_ASSERT_SHARED_CAPABILITY(x) \
    WRPT_TSA(assert_shared_capability(x))
#define WRPT_RETURN_CAPABILITY(x) WRPT_TSA(lock_returned(x))
/// Opt a function out — pair with a comment explaining the safety
/// argument the analysis cannot express (e.g. acquire/release
/// publication).
#define WRPT_NO_THREAD_SAFETY_ANALYSIS WRPT_TSA(no_thread_safety_analysis)

namespace wrpt {

/// Exclusive mutex. Same cost and semantics as std::mutex; the wrapper
/// exists to carry the capability attributes.
class WRPT_CAPABILITY("mutex") mutex {
public:
    mutex() = default;
    mutex(const mutex&) = delete;
    mutex& operator=(const mutex&) = delete;

    void lock() WRPT_ACQUIRE() { m_.lock(); }
    bool try_lock() WRPT_TRY_ACQUIRE(true) { return m_.try_lock(); }
    void unlock() WRPT_RELEASE() { m_.unlock(); }

    /// Tell the analysis this mutex is held here (no runtime effect).
    /// Use at the top of condition-variable wait predicates: the wait
    /// re-acquires the lock before evaluating them, but the analysis
    /// cannot see that through the lambda boundary.
    void assert_held() const WRPT_ASSERT_CAPABILITY(this) {}

    /// The underlying std::mutex — for condition_variable below only.
    std::mutex& native() { return m_; }

private:
    std::mutex m_;
};

/// Reader/writer mutex: lock()/unlock() exclusive, lock_shared()/
/// unlock_shared() shared. Guarded members may be read under either
/// mode and written only under exclusive.
class WRPT_CAPABILITY("shared_mutex") shared_mutex {
public:
    shared_mutex() = default;
    shared_mutex(const shared_mutex&) = delete;
    shared_mutex& operator=(const shared_mutex&) = delete;

    void lock() WRPT_ACQUIRE() { m_.lock(); }
    bool try_lock() WRPT_TRY_ACQUIRE(true) { return m_.try_lock(); }
    void unlock() WRPT_RELEASE() { m_.unlock(); }

    void lock_shared() WRPT_ACQUIRE_SHARED() { m_.lock_shared(); }
    bool try_lock_shared() WRPT_TRY_ACQUIRE_SHARED(true) {
        return m_.try_lock_shared();
    }
    void unlock_shared() WRPT_RELEASE_SHARED() { m_.unlock_shared(); }

    void assert_held() const WRPT_ASSERT_CAPABILITY(this) {}
    void assert_held_shared() const WRPT_ASSERT_SHARED_CAPABILITY(this) {}

private:
    std::shared_mutex m_;
};

/// Scoped exclusive lock on a wrpt::mutex (the std::scoped_lock shape:
/// acquire on construction, release on destruction, no manual control).
class WRPT_SCOPED_CAPABILITY lock_guard {
public:
    explicit lock_guard(mutex& m) WRPT_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~lock_guard() WRPT_RELEASE() { m_.unlock(); }

    lock_guard(const lock_guard&) = delete;
    lock_guard& operator=(const lock_guard&) = delete;

private:
    mutex& m_;
};

/// Scoped exclusive lock usable with wrpt::condition_variable (the
/// std::unique_lock shape). Starts locked.
class WRPT_SCOPED_CAPABILITY unique_lock {
public:
    explicit unique_lock(mutex& m) WRPT_ACQUIRE(m) : lk_(m.native()) {}
    ~unique_lock() WRPT_RELEASE() {}

    unique_lock(const unique_lock&) = delete;
    unique_lock& operator=(const unique_lock&) = delete;

    void lock() WRPT_ACQUIRE() { lk_.lock(); }
    void unlock() WRPT_RELEASE() { lk_.unlock(); }

    /// The underlying lock — for condition_variable below only.
    std::unique_lock<std::mutex>& native() { return lk_; }

private:
    std::unique_lock<std::mutex> lk_;
};

/// Scoped exclusive lock on a wrpt::shared_mutex — the writer side.
class WRPT_SCOPED_CAPABILITY write_lock {
public:
    explicit write_lock(shared_mutex& m) WRPT_ACQUIRE(m) : m_(m) {
        m_.lock();
    }
    ~write_lock() WRPT_RELEASE() { m_.unlock(); }

    write_lock(const write_lock&) = delete;
    write_lock& operator=(const write_lock&) = delete;

private:
    shared_mutex& m_;
};

/// Scoped shared lock on a wrpt::shared_mutex — the reader side.
class WRPT_SCOPED_CAPABILITY read_lock {
public:
    explicit read_lock(shared_mutex& m) WRPT_ACQUIRE_SHARED(m) : m_(m) {
        m_.lock_shared();
    }
    ~read_lock() WRPT_RELEASE_SHARED() { m_.unlock_shared(); }

    read_lock(const read_lock&) = delete;
    read_lock& operator=(const read_lock&) = delete;

private:
    shared_mutex& m_;
};

/// Condition variable over wrpt::mutex/unique_lock. Forwards to the
/// plain std::condition_variable (not _any), so waits cost exactly what
/// they did before the wrappers.
class condition_variable {
public:
    condition_variable() = default;
    condition_variable(const condition_variable&) = delete;
    condition_variable& operator=(const condition_variable&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    // The waits release and re-acquire lk's mutex internally — a dance
    // the analysis cannot model, so they are opted out. From the
    // caller's point of view the lock state is unchanged: held on
    // entry, held on return. Predicates are evaluated with the lock
    // held; start them with `mutex.assert_held()` so their own analysis
    // knows (lambdas are analyzed as separate functions).
    void wait(unique_lock& lk) WRPT_NO_THREAD_SAFETY_ANALYSIS {
        cv_.wait(lk.native());
    }
    template <class Predicate>
    void wait(unique_lock& lk, Predicate pred)
        WRPT_NO_THREAD_SAFETY_ANALYSIS {
        cv_.wait(lk.native(), std::move(pred));
    }

private:
    std::condition_variable cv_;
};

}  // namespace wrpt
