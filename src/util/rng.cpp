#include "util/rng.h"

#include <bit>
#include <cmath>

#include "util/error.h"

namespace wrpt {

std::uint64_t splitmix64_next(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

rng::rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64_next(sm);
    // xoshiro256** must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t rng::next_word() {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
}

double rng::next_double() {
    return static_cast<double>(next_word() >> 11) * 0x1.0p-53;
}

std::uint64_t rng::next_below(std::uint64_t bound) {
    require(bound > 0, "rng::next_below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % bound);
    std::uint64_t w = next_word();
    while (w >= limit) w = next_word();
    return w % bound;
}

bool rng::next_bool(double p) { return next_double() < p; }

std::uint64_t rng::biased_word(double p, int resolution_bits) {
    require(resolution_bits >= 1 && resolution_bits <= 32,
            "rng::biased_word: resolution_bits out of range");
    if (p <= 0.0) return 0;
    if (p >= 1.0) return ~0ULL;
    const auto steps = static_cast<std::uint64_t>(1) << resolution_bits;
    auto q = static_cast<std::uint64_t>(std::lround(p * static_cast<double>(steps)));
    if (q == 0) return 0;
    if (q >= steps) return ~0ULL;
    // Fold binary digits of q/steps from least significant upward.
    std::uint64_t acc = 0;
    for (int i = resolution_bits - 1; i >= 0; --i) {
        const std::uint64_t w = next_word();
        const bool digit = (q >> (resolution_bits - 1 - i)) & 1ULL;
        // Digit b_{i+1} (paper-order folding): see header.
        acc = digit ? (w | acc) : (w & acc);
    }
    return acc;
}

double quantize_probability(double p, int resolution_bits) {
    require(resolution_bits >= 1 && resolution_bits <= 32,
            "quantize_probability: resolution_bits out of range");
    if (p <= 0.0) return 0.0;
    if (p >= 1.0) return 1.0;
    const auto steps = static_cast<double>(static_cast<std::uint64_t>(1) << resolution_bits);
    return std::lround(p * steps) / steps;
}

std::uint64_t popcount(const std::vector<std::uint64_t>& words) {
    std::uint64_t total = 0;
    for (std::uint64_t w : words) total += static_cast<std::uint64_t>(std::popcount(w));
    return total;
}

}  // namespace wrpt
