// The staged OPTIMIZE pipeline — the paper's loop as explicit stage
// objects over a shared context.
//
// The paper prints OPTIMIZE as a fixed stage sequence:
//
//   ANALYSIS(X,F) -> SORT(F) -> NORMALIZE(N, nf)
//   while improving:  PREPARE -> MINIMIZE  (per coordinate block)
//                     ANALYSIS -> SORT -> NORMALIZE
//   stalled?          SADDLE_ESCAPE, then continue
//
// optimize_weights used to be one monolith; here every stage is an
// object that declares what it reads and writes on the shared
// optimize_context and can therefore be parallelized independently:
//
//   ANALYSIS    shards the fault list across pool engines
//               (detect_estimator::estimate_faults), bit-identical for
//               every thread count,
//   NORMALIZE   shards the objective-term evaluation (normalize_exec)
//               with an element-ordered reduction, equally bit-identical,
//   PREPARE     issues its probe batches to per-engine workers (the
//               PR-2 estimate_probes path),
//   SORT / MINIMIZE / SADDLE_ESCAPE stay sequential (cheap or
//               inherently serial), but run behind the same interface.
//
// The driver (optimize_pipeline) owns the context and the stage
// sequence; optimize_weights in optimizer.h is now a thin wrapper.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "opt/normalize.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "prob/probe.h"

namespace wrpt {

/// Everything the stages share. Stages communicate exclusively through
/// this struct; the reads()/writes() declarations below name these
/// fields.
struct optimize_context {
    optimize_context(const netlist& nl_, const std::vector<fault>& faults_,
                     detect_estimator& analysis_,
                     const optimize_options& options_, double q_)
        : nl(nl_), faults(faults_), analysis(analysis_), options(options_),
          q(q_) {}

    // Immutable problem statement.
    const netlist& nl;
    const std::vector<fault>& faults;
    detect_estimator& analysis;
    const optimize_options& options;
    double q;                 ///< -ln(1 - confidence)
    normalize_exec exec{};    ///< sharding for ANALYSIS/NORMALIZE

    // Current iterate (res.weights is the live weight vector).
    optimize_result res;
    std::vector<double> probs;        ///< ANALYSIS output, by fault index
    std::vector<std::size_t> order;   ///< SORT output (ascending p, p>0)
    normalize_result norm;            ///< NORMALIZE output
    double n_old = 0.0;
    double n_new = 0.0;

    // Best iterate seen so far (a sweep on estimated affine models can
    // overshoot; the pipeline never returns worse than the best).
    weight_vector best_weights;
    double best_n = 0.0;

    // Sweep state.
    std::vector<fault> hard;          ///< F^ of the current sweep
    std::size_t block_begin = 0;      ///< coordinate block for PREPARE/
    std::size_t block_end = 0;        ///< MINIMIZE, [begin, end)
    std::vector<probe> block_probes;  ///< PREPARE's probes for the block
    std::vector<std::vector<double>> prepared;  ///< estimate_probes output
    bool escaped = false;             ///< saddle escape used up
    bool stop = false;                ///< a stage ended the optimization
};

/// One stage of the pipeline. reads()/writes() document the context
/// fields a stage touches — the contract that makes per-stage
/// parallelization safe to reason about.
class optimize_stage {
public:
    virtual ~optimize_stage() = default;
    virtual const char* name() const = 0;
    virtual const char* reads() const = 0;
    virtual const char* writes() const = 0;
    virtual void run(optimize_context& cx) = 0;
};

/// ANALYSIS: one detection probability per fault at the current weights,
/// sharded across pool engines.
class analysis_stage final : public optimize_stage {
public:
    const char* name() const override { return "ANALYSIS"; }
    const char* reads() const override { return "res.weights, faults"; }
    const char* writes() const override {
        return "probs, res.analysis_calls";
    }
    void run(optimize_context& cx) override;
};

/// SORT: detectable faults ordered by ascending probability.
class sort_stage final : public optimize_stage {
public:
    const char* name() const override { return "SORT"; }
    const char* reads() const override { return "probs"; }
    const char* writes() const override {
        return "order, res.zero_prob_faults";
    }
    void run(optimize_context& cx) override;
};

/// NORMALIZE: minimal N with J_N <= Q plus nf, objective terms sharded.
class normalize_stage final : public optimize_stage {
public:
    const char* name() const override { return "NORMALIZE"; }
    const char* reads() const override { return "probs, order, q, exec"; }
    const char* writes() const override { return "norm"; }
    void run(optimize_context& cx) override;
};

/// PREPARE: p_f at the two ends of the admissible interval for every
/// coordinate of the current block, issued as one probe batch.
class prepare_stage final : public optimize_stage {
public:
    const char* name() const override { return "PREPARE"; }
    const char* reads() const override {
        return "res.weights, hard, block_begin, block_end";
    }
    const char* writes() const override {
        return "block_probes, prepared, res.analysis_calls";
    }
    void run(optimize_context& cx) override;
};

/// MINIMIZE: fit the affine models from PREPARE and step the block's
/// coordinates simultaneously (trust region + grid snap).
class minimize_stage final : public optimize_stage {
public:
    const char* name() const override { return "MINIMIZE"; }
    const char* reads() const override {
        return "prepared, hard, n_new, block_begin, block_end";
    }
    const char* writes() const override { return "res.weights"; }
    void run(optimize_context& cx) override;
};

/// SADDLE_ESCAPE: on a stalled sweep, probe five deterministic wholesale
/// perturbations as multi-input moves on the existing engines and
/// continue from the best improving one; sets stop when none improves.
class saddle_escape_stage final : public optimize_stage {
public:
    const char* name() const override { return "SADDLE_ESCAPE"; }
    const char* reads() const override {
        return "res.weights, probs, n_new, options";
    }
    const char* writes() const override {
        return "res.weights, probs, order, norm, n_old, n_new, "
               "best_weights, best_n, escaped, stop";
    }
    void run(optimize_context& cx) override;
};

/// The driver: owns the context and the six stages, and runs the paper's
/// loop over them.
class optimize_pipeline {
public:
    optimize_pipeline(const netlist& nl, const std::vector<fault>& faults,
                      detect_estimator& analysis, const weight_vector& start,
                      const optimize_options& options);

    /// Run to convergence and return the result (consumes the iterate).
    optimize_result run();

    /// The stage sequence, in pipeline order — introspection for tests
    /// and docs.
    std::span<optimize_stage* const> stages() { return stages_; }

private:
    void run_analysis_block();  ///< ANALYSIS -> SORT -> NORMALIZE

    optimize_context cx_;
    analysis_stage analysis_;
    sort_stage sort_;
    normalize_stage normalize_;
    prepare_stage prepare_;
    minimize_stage minimize_;
    saddle_escape_stage saddle_;
    optimize_stage* stages_[6];
};

}  // namespace wrpt
