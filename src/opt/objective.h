// The paper's objective function (section 2.3).
//
// delta_N(X) = prod_f (1 - (1-p_f(X))^N)              (formula 8)
// is the probability that N random patterns drawn with input probabilities
// X detect every fault. Its negative logarithm is approximated by
//
//   J_N(X) = sum_f exp(-N * p_f(X))                   (formula 9/10)
//
// and a random test of confidence `c` needs J_N(X) <= Q(c) := -ln c.

#pragma once

#include <span>

namespace wrpt {

/// Q such that J_N <= Q guarantees confidence >= c (c in (0,1)).
double confidence_to_q(double confidence);

/// Inverse of confidence_to_q.
double q_to_confidence(double q);

/// J_N over the given detection probabilities. N is a real (test lengths
/// beyond 2^63 occur for random-resistant circuits; see Table 1).
double objective_jn(std::span<const double> detection_probs, double n);

/// Exact confidence prod(1 - (1-p)^N) — for tests comparing the
/// approximation quality of J_N (formula 8 vs 9).
double exact_confidence(std::span<const double> detection_probs, double n);

}  // namespace wrpt
