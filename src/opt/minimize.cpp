#include "opt/minimize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace wrpt {
namespace {

/// First and second derivative of J at y, scaled by exp(+min exponent) so
/// that the signs and the Newton ratio stay meaningful even when every raw
/// term underflows. d1/d2 are proportional to J' and J''.
struct derivatives {
    double d1 = 0.0;
    double d2 = 0.0;
};

derivatives scaled_derivatives(std::span<const affine_fault> faults, double n,
                               double y) {
    double min_e = std::numeric_limits<double>::infinity();
    for (const auto& f : faults) {
        const double e = n * (f.p0 + y * (f.p1 - f.p0));
        min_e = std::min(min_e, e);
    }
    derivatives der;
    if (!std::isfinite(min_e)) return der;
    for (const auto& f : faults) {
        const double d = f.p1 - f.p0;
        const double e = n * (f.p0 + y * d);
        const double t = std::exp(-(e - min_e));
        der.d1 += -n * d * t;
        der.d2 += n * n * d * d * t;
    }
    return der;
}

double objective_at(std::span<const affine_fault> faults, double n, double y) {
    double j = 0.0;
    for (const auto& f : faults) j += std::exp(-n * (f.p0 + y * (f.p1 - f.p0)));
    return j;
}

}  // namespace

minimize_result minimize_single_input(std::span<const affine_fault> faults,
                                      double n, double lo, double hi) {
    require(lo >= 0.0 && hi <= 1.0 && lo < hi,
            "minimize_single_input: invalid interval");
    require(n >= 0.0, "minimize_single_input: negative test length");

    minimize_result res;
    bool any_dependence = false;
    for (const auto& f : faults)
        if (f.p1 != f.p0) any_dependence = true;
    if (faults.empty() || !any_dependence || n == 0.0) {
        res.y = lo + (hi - lo) / 2.0;
        res.objective = objective_at(faults, n, res.y);
        return res;
    }

    // Boundary minima: J is convex, so the sign of J' at the ends decides.
    if (scaled_derivatives(faults, n, lo).d1 >= 0.0) {
        res.y = lo;
        res.objective = objective_at(faults, n, lo);
        return res;
    }
    if (scaled_derivatives(faults, n, hi).d1 <= 0.0) {
        res.y = hi;
        res.objective = objective_at(faults, n, hi);
        return res;
    }

    // Interior minimum: guarded Newton (formula 15) with a shrinking
    // bracket [a, b] where J'(a) < 0 < J'(b).
    double a = lo, b = hi;
    double y = lo + (hi - lo) / 2.0;
    for (std::size_t it = 0; it < 200; ++it) {
        ++res.iterations;
        const derivatives der = scaled_derivatives(faults, n, y);
        if (der.d1 < 0.0)
            a = y;
        else
            b = y;
        double next;
        if (der.d2 > 0.0 && std::isfinite(der.d1)) {
            next = y - der.d1 / der.d2;  // formula (15)
            if (!(next > a && next < b)) next = a + (b - a) / 2.0;
        } else {
            next = a + (b - a) / 2.0;
        }
        if (std::abs(next - y) < 1e-12 || (b - a) < 1e-10) {
            y = next;
            break;
        }
        y = next;
    }
    res.y = std::clamp(y, lo, hi);
    res.objective = objective_at(faults, n, res.y);
    return res;
}

}  // namespace wrpt
