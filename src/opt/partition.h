// Partitioned optimization — the paper's section 5.3 extension.
//
// "Circuits can be constructed which cannot be processed by optimization
//  ... if there are pairs of faults [with] very low detection probability
//  [whose] test sets [have] very large Hamming distance. ... The problem
//  can be solved by partitioning the fault set, and by computing different
//  optimal input probabilities for each part. But until now such
//  pathological circuits didn't occur, and thus the additional procedure
//  wasn't implemented yet."
//
// We implement it: hard faults are clustered by the *sign* of their
// per-input preference (does raising x_i raise or lower p_f?), one weight
// tuple is optimized per cluster, and the test becomes a sequence of
// weighted sessions whose lengths sum.

#pragma once

#include <vector>

#include "opt/optimizer.h"

namespace wrpt {

struct partition_options {
    optimize_options opt;            ///< per-session optimizer settings
    std::size_t max_partitions = 4;
    /// A fault is "hard" (and triggers partitioning) when its individual
    /// required length exceeds this fraction of the single-session length.
    double hard_length_ratio = 0.5;
};

struct test_session {
    weight_vector weights;
    double test_length = 0.0;
    std::vector<std::size_t> fault_indices;  ///< faults this session targets
};

struct partitioned_result {
    std::vector<test_session> sessions;
    double total_length = 0.0;
    double single_session_length = 0.0;  ///< the unpartitioned baseline
    bool partitioned = false;            ///< false if one session sufficed
};

/// Optimize with automatic fault-set partitioning. Falls back to the plain
/// single-session result when no conflicting hard faults are found.
partitioned_result optimize_partitioned(const netlist& nl,
                                        const std::vector<fault>& faults,
                                        detect_estimator& analysis,
                                        const weight_vector& start,
                                        const partition_options& options = {});

}  // namespace wrpt
