#include "opt/partition.h"

#include <algorithm>
#include <cmath>

#include "opt/objective.h"
#include "util/error.h"

namespace wrpt {
namespace {

int sign_of(double x, double eps = 1e-15) {
    if (x > eps) return 1;
    if (x < -eps) return -1;
    return 0;
}

}  // namespace

partitioned_result optimize_partitioned(const netlist& nl,
                                        const std::vector<fault>& faults,
                                        detect_estimator& analysis,
                                        const weight_vector& start,
                                        const partition_options& options) {
    require(options.max_partitions >= 1, "partition: max_partitions >= 1");
    partitioned_result res;

    // Baseline: the plain single-session optimization.
    const optimize_result single =
        optimize_weights(nl, faults, analysis, start, options.opt);
    res.single_session_length = single.final_test_length;

    // Identify faults that stay hard under the single optimized tuple.
    const double q = confidence_to_q(options.opt.confidence);
    const std::vector<double> probs =
        analysis.estimate(nl, faults, single.weights);
    std::vector<std::size_t> hard;
    std::vector<std::size_t> easy;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const double p = probs[i];
        const bool is_hard =
            p <= 0.0 ||
            (single.final_test_length > 0.0 &&
             std::log(1.0 / q) / p >
                 options.hard_length_ratio * single.final_test_length);
        (is_hard ? hard : easy).push_back(i);
    }

    auto single_session = [&] {
        test_session s;
        s.weights = single.weights;
        s.test_length = single.final_test_length;
        s.fault_indices.resize(faults.size());
        for (std::size_t i = 0; i < faults.size(); ++i) s.fault_indices[i] = i;
        res.sessions.push_back(std::move(s));
        res.total_length = single.final_test_length;
        res.partitioned = false;
    };
    if (hard.size() < 2 || options.max_partitions == 1) {
        single_session();
        return res;
    }

    // Preference signatures: sign of dp_f/dx_i for every fault. Hard faults
    // drive the clustering; easy faults are later routed to the session
    // whose direction agrees with them, so that moderately hard "shoulder"
    // faults of a conflicting family do not sabotage another session.
    std::vector<std::vector<int>> signature(
        faults.size(), std::vector<int>(nl.input_count(), 0));
    for (std::size_t i = 0; i < nl.input_count(); ++i) {
        weight_vector y0 = single.weights;
        y0[i] = 0.0;
        weight_vector y1 = single.weights;
        y1[i] = 1.0;
        const std::vector<double> p0 = analysis.estimate(nl, faults, y0);
        const std::vector<double> p1 = analysis.estimate(nl, faults, y1);
        for (std::size_t k = 0; k < faults.size(); ++k)
            signature[k][i] = sign_of(p1[k] - p0[k]);
    }

    // Greedy agreement clustering, hardest fault first.
    std::vector<std::size_t> hard_order(hard.size());
    for (std::size_t k = 0; k < hard.size(); ++k) hard_order[k] = k;
    std::sort(hard_order.begin(), hard_order.end(),
              [&](std::size_t a, std::size_t b) {
                  return probs[hard[a]] < probs[hard[b]];
              });

    struct cluster {
        std::vector<double> direction;    // accumulated signature
        std::vector<std::size_t> members; // original fault indices
    };
    std::vector<cluster> clusters;
    auto affinity = [&](const cluster& c, std::size_t fault_index) {
        double score = 0.0;
        for (std::size_t i = 0; i < nl.input_count(); ++i)
            score += static_cast<double>(sign_of(c.direction[i])) *
                     static_cast<double>(signature[fault_index][i]);
        return score;
    };
    for (std::size_t k : hard_order) {
        const std::size_t fi = hard[k];
        double best_score = -1e300;
        std::size_t best = 0;
        for (std::size_t c = 0; c < clusters.size(); ++c) {
            const double score = affinity(clusters[c], fi);
            if (score > best_score) {
                best_score = score;
                best = c;
            }
        }
        if (clusters.empty() ||
            (best_score < 0.0 && clusters.size() < options.max_partitions)) {
            cluster c;
            c.direction.assign(nl.input_count(), 0.0);
            clusters.push_back(std::move(c));
            best = clusters.size() - 1;
        }
        for (std::size_t i = 0; i < nl.input_count(); ++i)
            clusters[best].direction[i] += signature[fi][i];
        clusters[best].members.push_back(fi);
    }

    if (clusters.size() < 2) {
        single_session();
        return res;
    }

    // Route every easy fault to the session whose direction it agrees with
    // (ties go to the first session). This keeps the moderately hard
    // "shoulder" faults of one family out of the other family's session.
    std::vector<std::vector<std::size_t>> session_easy(clusters.size());
    for (std::size_t fi : easy) {
        double best_score = -1e300;
        std::size_t best = 0;
        for (std::size_t c = 0; c < clusters.size(); ++c) {
            const double score = affinity(clusters[c], fi);
            if (score > best_score) {
                best_score = score;
                best = c;
            }
        }
        session_easy[best].push_back(fi);
    }

    // One optimized session per cluster.
    res.partitioned = true;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
        std::vector<std::size_t> target_indices = session_easy[c];
        for (std::size_t fi : clusters[c].members)
            target_indices.push_back(fi);
        std::sort(target_indices.begin(), target_indices.end());

        std::vector<fault> target;
        target.reserve(target_indices.size());
        for (std::size_t i : target_indices) target.push_back(faults[i]);

        const optimize_result part =
            optimize_weights(nl, target, analysis, single.weights, options.opt);
        test_session s;
        s.weights = part.weights;
        s.test_length = part.final_test_length;
        s.fault_indices = std::move(target_indices);
        res.total_length += s.test_length;
        res.sessions.push_back(std::move(s));
    }
    return res;
}

}  // namespace wrpt
