#include "opt/quantize.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace wrpt {

weight_vector quantize_grid(const weight_vector& w, double grid, double lo,
                            double hi) {
    require(grid > 0.0, "quantize_grid: grid must be positive");
    require(lo < hi, "quantize_grid: invalid clamp range");
    weight_vector out;
    out.reserve(w.size());
    for (double x : w)
        out.push_back(std::clamp(std::round(x / grid) * grid, lo, hi));
    return out;
}

std::vector<double> lfsr_weight_alphabet(int stages) {
    require(stages >= 1 && stages <= 30, "lfsr_weight_alphabet: stages range");
    std::vector<double> alphabet;
    for (int m = stages; m >= 1; --m)
        alphabet.push_back(std::ldexp(1.0, -m));  // 2^-m (AND of m bits)
    for (int m = 2; m <= stages; ++m)
        alphabet.push_back(1.0 - std::ldexp(1.0, -m));  // OR of m bits
    std::sort(alphabet.begin(), alphabet.end());
    return alphabet;
}

weight_vector quantize_lfsr(const weight_vector& w, int stages) {
    const std::vector<double> alphabet = lfsr_weight_alphabet(stages);
    weight_vector out;
    out.reserve(w.size());
    for (double x : w) {
        double best = alphabet.front();
        for (double a : alphabet)
            if (std::abs(a - x) < std::abs(best - x)) best = a;
        out.push_back(best);
    }
    return out;
}

}  // namespace wrpt
