#include "opt/normalize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/simd.h"
#include "exec/parallel_sort.h"
#include "exec/thread_pool.h"
#include "util/error.h"

namespace wrpt {
namespace {

/// Cache of objective terms exp(-p_i * M) for one candidate M, evaluated
/// in doubling prefix windows. Window extension is the expensive part of
/// a J_M-vs-Q decision and is embarrassingly parallel, so large windows
/// are cut into fixed-size shards on the exec pool. The values are a
/// pure per-element function of (p_i, M) and the scan below consumes
/// them strictly left to right, so neither the window schedule nor the
/// thread count can change any result bit.
struct term_window {
    std::span<const double> sorted;
    const normalize_exec* exec;
    std::vector<double> terms;
    double m = 0.0;
    std::size_t ready = 0;

    void reset(double new_m) {
        m = new_m;
        ready = 0;
    }

    void extend_to(std::size_t need) {
        const std::size_t n = sorted.size();
        std::size_t target = ready == 0 ? 64 : ready * 2;
        target = std::clamp(target, need, std::max(need, n));
        if (target > n) target = n;
        if (terms.size() < target) terms.resize(target);
        const std::size_t begin = ready;
        const std::size_t count = target - begin;
        const std::size_t shard =
            exec ? std::max<std::size_t>(1, exec->shard) : 0;
        if (exec && exec->pool && exec->threads > 1 && count >= 2 * shard) {
            const std::size_t blocks = (count + shard - 1) / shard;
            exec->pool->parallel_for(blocks, [&](std::size_t b) {
                const std::size_t s = begin + b * shard;
                const std::size_t e = std::min(s + shard, target);
                simd::exp_neg_scale(sorted.data() + s, m, terms.data() + s,
                                    e - s);
            });
        } else {
            simd::exp_neg_scale(sorted.data() + begin, m,
                                terms.data() + begin, count);
        }
        ready = target;
    }
};

/// Decide J_M vs Q using the paper's l/u bounds, touching as few of the
/// sorted probabilities as possible. Returns +1 if J_M > Q, -1 if
/// J_M <= Q; `z_out` receives the number of terms inspected (nf). The
/// reduction runs element-ordered over the cached terms.
int compare_jm_to_q(term_window& w, double m, double q, std::size_t& z_out) {
    const std::size_t n = w.sorted.size();
    w.reset(m);
    double l = 0.0;
    for (std::size_t z = 1; z <= n; ++z) {
        if (z > w.ready) w.extend_to(z);
        const double term = w.terms[z - 1];
        l += term;
        if (l > q) {
            z_out = z;
            return +1;
        }
        const double u = l + static_cast<double>(n - z) * term;
        if (u <= q) {
            z_out = z;
            return -1;
        }
    }
    z_out = n;
    return l > q ? +1 : -1;
}

}  // namespace

std::vector<std::size_t> sort_faults(std::span<const double> probs) {
    return sort_faults(probs, normalize_exec{});
}

std::vector<std::size_t> sort_faults(std::span<const double> probs,
                                     const normalize_exec& exec) {
    std::vector<std::size_t> order;
    order.reserve(probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i)
        if (probs[i] > 0.0) order.push_back(i);
    // The candidates are in ascending index order, so the index
    // tie-break reproduces std::stable_sort exactly — on one thread or
    // many.
    parallel_stable_sort_indices(
        order,
        [&probs](std::size_t a, std::size_t b) {
            return probs[a] < probs[b];
        },
        exec.pool, exec.threads);
    return order;
}

normalize_result normalize_sorted(std::span<const double> sorted_probs,
                                  double q) {
    return normalize_sorted(sorted_probs, q, normalize_exec{});
}

normalize_result normalize_sorted(std::span<const double> sorted_probs,
                                  double q, const normalize_exec& exec) {
    require(q > 0.0, "normalize: q must be positive");
    normalize_result res;
    for (std::size_t i = 1; i < sorted_probs.size(); ++i)
        require(sorted_probs[i - 1] <= sorted_probs[i],
                "normalize_sorted: probabilities not ascending");

    if (sorted_probs.empty()) {
        res.feasible = true;
        res.test_length = 0.0;
        return res;
    }
    if (sorted_probs.front() <= 0.0) {
        res.feasible = false;  // undetectable fault in the list
        return res;
    }

    term_window w{sorted_probs, &exec, {}, 0.0, 0};
    std::size_t z = 0;
    // J_0 = n: maybe no patterns are needed at all (degenerate q >= n).
    if (compare_jm_to_q(w, 0.0, q, z) < 0) {
        res.feasible = true;
        res.test_length = 0.0;
        res.relevant_faults = z;
        return res;
    }

    // Exponential growth then interval section (the paper's scheme).
    double lo = 0.0;
    double hi = 1.0;
    while (compare_jm_to_q(w, hi, q, z) > 0) {
        lo = hi;
        hi *= 2.0;
        require(hi < 1e300, "normalize: test length diverges");
    }
    while (hi - lo > std::max(0.5, hi * 1e-12)) {
        const double mid = lo + (hi - lo) / 2.0;
        if (compare_jm_to_q(w, mid, q, z) > 0)
            lo = mid;
        else
            hi = mid;
    }
    res.feasible = true;
    res.test_length = std::ceil(hi);
    (void)compare_jm_to_q(w, res.test_length, q, z);
    res.relevant_faults = z;
    return res;
}

normalize_result normalize_detection_probs(std::span<const double> probs,
                                           double q) {
    return normalize_detection_probs(probs, q, normalize_exec{});
}

normalize_result normalize_detection_probs(std::span<const double> probs,
                                           double q,
                                           const normalize_exec& exec) {
    std::vector<double> positive;
    positive.reserve(probs.size());
    std::size_t zeros = 0;
    for (double p : probs) {
        if (p > 0.0)
            positive.push_back(p);
        else
            ++zeros;
    }
    std::sort(positive.begin(), positive.end());
    normalize_result res = normalize_sorted(positive, q, exec);
    res.zero_prob_faults = zeros;
    return res;
}

}  // namespace wrpt
