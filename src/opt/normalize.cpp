#include "opt/normalize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace wrpt {
namespace {

/// Decide J_M vs Q using the paper's l/u bounds, touching as few of the
/// sorted probabilities as possible. Returns +1 if J_M > Q, -1 if
/// J_M <= Q; `z_out` receives the number of terms inspected (nf).
int compare_jm_to_q(std::span<const double> sorted, double m, double q,
                    std::size_t& z_out) {
    const std::size_t n = sorted.size();
    double l = 0.0;
    for (std::size_t z = 1; z <= n; ++z) {
        const double term = std::exp(-sorted[z - 1] * m);
        l += term;
        if (l > q) {
            z_out = z;
            return +1;
        }
        const double u = l + static_cast<double>(n - z) * term;
        if (u <= q) {
            z_out = z;
            return -1;
        }
    }
    z_out = n;
    return l > q ? +1 : -1;
}

}  // namespace

std::vector<std::size_t> sort_faults(std::span<const double> probs) {
    std::vector<std::size_t> order;
    order.reserve(probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i)
        if (probs[i] > 0.0) order.push_back(i);
    std::stable_sort(order.begin(), order.end(),
                     [&probs](std::size_t a, std::size_t b) {
                         return probs[a] < probs[b];
                     });
    return order;
}

normalize_result normalize_sorted(std::span<const double> sorted_probs,
                                  double q) {
    require(q > 0.0, "normalize: q must be positive");
    normalize_result res;
    for (std::size_t i = 1; i < sorted_probs.size(); ++i)
        require(sorted_probs[i - 1] <= sorted_probs[i],
                "normalize_sorted: probabilities not ascending");

    if (sorted_probs.empty()) {
        res.feasible = true;
        res.test_length = 0.0;
        return res;
    }
    if (sorted_probs.front() <= 0.0) {
        res.feasible = false;  // undetectable fault in the list
        return res;
    }

    std::size_t z = 0;
    // J_0 = n: maybe no patterns are needed at all (degenerate q >= n).
    if (compare_jm_to_q(sorted_probs, 0.0, q, z) < 0) {
        res.feasible = true;
        res.test_length = 0.0;
        res.relevant_faults = z;
        return res;
    }

    // Exponential growth then interval section (the paper's scheme).
    double lo = 0.0;
    double hi = 1.0;
    while (compare_jm_to_q(sorted_probs, hi, q, z) > 0) {
        lo = hi;
        hi *= 2.0;
        require(hi < 1e300, "normalize: test length diverges");
    }
    while (hi - lo > std::max(0.5, hi * 1e-12)) {
        const double mid = lo + (hi - lo) / 2.0;
        if (compare_jm_to_q(sorted_probs, mid, q, z) > 0)
            lo = mid;
        else
            hi = mid;
    }
    res.feasible = true;
    res.test_length = std::ceil(hi);
    (void)compare_jm_to_q(sorted_probs, res.test_length, q, z);
    res.relevant_faults = z;
    return res;
}

normalize_result normalize_detection_probs(std::span<const double> probs,
                                           double q) {
    std::vector<double> positive;
    positive.reserve(probs.size());
    std::size_t zeros = 0;
    for (double p : probs) {
        if (p > 0.0)
            positive.push_back(p);
        else
            ++zeros;
    }
    std::sort(positive.begin(), positive.end());
    normalize_result res = normalize_sorted(positive, q);
    res.zero_prob_faults = zeros;
    return res;
}

}  // namespace wrpt
