// SORT and NORMALIZE (paper section 4).
//
// NORMALIZE computes, from a sorted fault list, the minimum number N of
// random patterns satisfying J_N <= Q, together with nf = the number of
// "relevant" (hardest) faults that carry numerically meaningful weight in
// the objective — the key efficiency observation (1) of the paper: only
// the hardest detectable faults matter for the necessary test length.
//
// The implementation follows the paper's interval-section scheme over the
// bounds  l(z,M) = sum_{i<=z} exp(-p_i M)   (lower bound of J_M)
//         u(z,M) = l(z,M) + (n-z) exp(-p_z M)  (upper bound of J_M).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wrpt {

class thread_pool;

struct normalize_exec;

/// Indices of `probs` sorted by increasing probability (SORT); faults with
/// p <= 0 (proven or suspected undetectable) are excluded. Ties are held
/// in ascending index order (== stable sort). The `exec` overload runs
/// the deterministic sharded sort + pairwise merge on the pool; its
/// output is identical to the sequential overload for every thread
/// count.
std::vector<std::size_t> sort_faults(std::span<const double> probs);
std::vector<std::size_t> sort_faults(std::span<const double> probs,
                                     const normalize_exec& exec);

/// Execution hints for the sharded NORMALIZE. The expensive part of one
/// J_M-vs-Q decision is the exp(-p_i * M) terms; they are evaluated in
/// prefix windows cut into fixed-size shards on the pool, and the l/u
/// bound scan then merges the cached terms in element order — the same
/// left-to-right reduction as the sequential path, so test_length and nf
/// are bit-identical for every thread count (threads only decide who
/// evaluates which shard).
struct normalize_exec {
    thread_pool* pool = nullptr;  ///< null = evaluate terms inline
    unsigned threads = 1;         ///< <=1 = sequential even with a pool
    /// Terms per shard; a fixed constant (never a function of the thread
    /// count). Shards below this size are not worth scheduling.
    std::size_t shard = 1024;
};

struct normalize_result {
    bool feasible = false;       ///< false if no finite N reaches Q
    double test_length = 0.0;    ///< minimal N with J_N <= Q
    std::size_t relevant_faults = 0;  ///< nf: hardest faults that matter
    std::size_t zero_prob_faults = 0; ///< excluded p<=0 faults
};

/// NORMALIZE over *sorted ascending* probabilities (including only p > 0;
/// use normalize_detection_probs for the raw-list convenience wrapper).
/// The `exec` overload shards the objective-term evaluation across the
/// pool; results are bit-identical to the sequential overload.
normalize_result normalize_sorted(std::span<const double> sorted_probs,
                                  double q);
normalize_result normalize_sorted(std::span<const double> sorted_probs,
                                  double q, const normalize_exec& exec);

/// Convenience: sorts internally and excludes p <= 0 faults (reported in
/// zero_prob_faults).
normalize_result normalize_detection_probs(std::span<const double> probs,
                                           double q);
normalize_result normalize_detection_probs(std::span<const double> probs,
                                           double q,
                                           const normalize_exec& exec);

}  // namespace wrpt
