// SORT and NORMALIZE (paper section 4).
//
// NORMALIZE computes, from a sorted fault list, the minimum number N of
// random patterns satisfying J_N <= Q, together with nf = the number of
// "relevant" (hardest) faults that carry numerically meaningful weight in
// the objective — the key efficiency observation (1) of the paper: only
// the hardest detectable faults matter for the necessary test length.
//
// The implementation follows the paper's interval-section scheme over the
// bounds  l(z,M) = sum_{i<=z} exp(-p_i M)   (lower bound of J_M)
//         u(z,M) = l(z,M) + (n-z) exp(-p_z M)  (upper bound of J_M).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wrpt {

/// Indices of `probs` sorted by increasing probability (SORT); faults with
/// p <= 0 (proven or suspected undetectable) are excluded.
std::vector<std::size_t> sort_faults(std::span<const double> probs);

struct normalize_result {
    bool feasible = false;       ///< false if no finite N reaches Q
    double test_length = 0.0;    ///< minimal N with J_N <= Q
    std::size_t relevant_faults = 0;  ///< nf: hardest faults that matter
    std::size_t zero_prob_faults = 0; ///< excluded p<=0 faults
};

/// NORMALIZE over *sorted ascending* probabilities (including only p > 0;
/// use normalize_detection_probs for the raw-list convenience wrapper).
normalize_result normalize_sorted(std::span<const double> sorted_probs,
                                  double q);

/// Convenience: sorts internally and excludes p <= 0 faults (reported in
/// zero_prob_faults).
normalize_result normalize_detection_probs(std::span<const double> probs,
                                           double q);

}  // namespace wrpt
