// OPTIMIZE (paper section 4): the full coordinate-descent procedure that
// computes one optimized probability per primary input.
//
// Loop structure as printed in the paper, with the PREPARE queries of one
// sweep batched:
//
//   X := starting vector
//   ANALYSIS(X,F); SORT(F); NORMALIZE(N_new, nf)
//   while (N_old - N_new) > alpha:
//       N_old := N_new
//       PREPARE(X, *, nf, F)              // all p_f(X,lo|i), p_f(X,hi|i)
//                                         // as one probe batch at X
//       for each input i:
//           MINIMIZE(F_0_1[i], N_new, y)  // guarded Newton, formula 15
//           x_i := y
//       ANALYSIS(X,F); SORT(F); NORMALIZE(N_new, nf)
//
// with the paper's two efficiency observations: only the nf hardest faults
// enter MINIMIZE, and PREPARE costs two testability analyses per input.
// Batching changes the sweep from Gauss-Seidel (each coordinate probed at
// the partially updated vector) to Jacobi (every coordinate's affine model
// fitted at the sweep base): all 2*|inputs| probes are independent given
// X, so the estimator can answer them incrementally and in parallel, and
// the result is bit-identical for every thread count. The trust region
// and best-iterate tracking keep the simultaneous update stable.
//
// The loop itself lives in opt/pipeline.h as explicit stage objects over
// a shared optimize_context — ANALYSIS and NORMALIZE shard across the
// exec/thread_pool (see optimize_options::threads), PREPARE batches onto
// pool engines, and every stage result is thread-count invariant.

#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "prob/detect.h"

namespace wrpt {

struct optimize_options {
    double confidence = 0.999;  ///< random-test confidence delta
    /// Stop when a full sweep improves the test length by at most alpha
    /// (the paper's user-defined stopping parameter).
    double alpha = 0.0;
    std::size_t max_sweeps = 12;
    /// Optimized probabilities are confined to [weight_min, weight_max];
    /// 0/1 would make an input stuck-at fault undetectable (Lemma 2).
    double weight_min = 0.05;
    double weight_max = 0.95;
    /// Snap each optimized weight to a multiple of `grid` (the paper's
    /// appendix lists multiples of 0.05); 0 keeps continuous weights.
    double grid = 0.05;
    /// Cap on |F^| passed to MINIMIZE, guarding against degenerate
    /// normalizations.
    std::size_t max_relevant_faults = 2048;
    /// F^ contains every fault whose objective term is within
    /// exp(-relevance_window) of the hardest fault's term (at the current
    /// N), but at least the nf faults NORMALIZE reports. A generous window
    /// keeps MINIMIZE from over-fitting the single hardest fault.
    double relevance_window = 80.0;
    /// Symmetric circuits make the all-equal starting vector a stationary
    /// point of every coordinate (e.g. a comparator at 0.5: each equality
    /// term is flat in each single weight). When a sweep changes nothing,
    /// probe three deterministic perturbations and continue from the best.
    bool saddle_escape = true;
    double saddle_perturbation = 0.1;
    /// Per-sweep trust region: a coordinate moves at most this far from its
    /// current value. The affine model (Lemma 1) is exact for exact
    /// detection probabilities but only a secant approximation for
    /// analytic estimators; capping the step keeps the sweep stable.
    double trust_step = 0.2;
    /// PREPARE batch width: probes for this many coordinates (2 probes
    /// each) are issued per estimate_probes call at the current vector,
    /// and the block's coordinates step simultaneously from the common
    /// base. Must be a constant independent of the thread count so
    /// optimized weights are thread-count invariant; large enough to keep
    /// per-thread engines busy, small enough that coupled inputs (a
    /// comparator's operand pairs) still see each other's moves between
    /// blocks. SIZE_MAX batches the whole sweep (pure Jacobi); 8 keeps
    /// the cascaded comparator's optimum within ~2% of the fully
    /// sequential sweep while still exposing 16 probes per batch.
    std::size_t prepare_block = 8;
    /// Worker threads for the sharded ANALYSIS and NORMALIZE stages
    /// (0 = one per hardware thread, 1 = sequential). Purely a
    /// performance knob: fault shards and objective-term shards are keyed
    /// by index and merged in a fixed order, so every stage result —
    /// weights, history, test lengths — is bit-identical for every value.
    /// (PREPARE's probe parallelism is the estimator's set_threads.)
    unsigned threads = 1;
};

struct sweep_record {
    double test_length = 0.0;
    std::size_t relevant_faults = 0;
};

struct optimize_result {
    weight_vector weights;            ///< optimized input probabilities
    double initial_test_length = 0.0; ///< N at the starting vector
    double final_test_length = 0.0;   ///< N at the optimized vector
    bool feasible = false;            ///< false if undetectable faults remain
    std::size_t zero_prob_faults = 0; ///< faults with p=0 under the estimator
    std::vector<sweep_record> history;///< N after each sweep
    std::size_t analysis_calls = 0;   ///< estimator invocations (cost model)
};

/// Run the optimizing procedure. `faults` should already exclude proven
/// redundancies (the paper assumes every fault of F is detectable); faults
/// the estimator scores 0 are excluded from NORMALIZE and reported.
///
/// This is a thin wrapper over the staged pipeline in opt/pipeline.h
/// (stage objects for ANALYSIS, SORT, NORMALIZE, PREPARE, MINIMIZE and
/// SADDLE_ESCAPE over a shared optimize_context).
optimize_result optimize_weights(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 detect_estimator& analysis,
                                 const weight_vector& start,
                                 const optimize_options& options = {});

/// Convenience: ANALYSIS + NORMALIZE at fixed weights (no optimization) —
/// the "conventional test length" computation behind Table 1.
struct test_length_report {
    bool feasible = false;
    double test_length = 0.0;
    std::size_t relevant_faults = 0;
    std::size_t zero_prob_faults = 0;
    double hardest_probability = 0.0;
};
/// `threads` shards ANALYSIS (across pool engines) and NORMALIZE's
/// objective terms; the report is bit-identical for every thread count.
test_length_report required_test_length(const netlist& nl,
                                        const std::vector<fault>& faults,
                                        detect_estimator& analysis,
                                        const weight_vector& weights,
                                        double confidence = 0.999,
                                        unsigned threads = 1);

}  // namespace wrpt
