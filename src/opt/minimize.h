// MINIMIZE (paper section 3.2 / formula 15): one-dimensional minimization
// of the objective restricted to a single input probability.
//
// By Lemma 1 each exact detection probability is affine in a single input
// probability y:  p_f(X, y|i) = p_f(X,0|i) + y * (p_f(X,1|i) - p_f(X,0|i)).
// Hence J_N(X, y|i) = sum_f exp(-N (p0_f + y d_f)) is a sum of convex
// exponentials — strictly convex (Lemma 3) — and has a unique minimum in
// [lo, hi], found by a guarded Newton iteration on formula (15).

#pragma once

#include <cstddef>
#include <span>

namespace wrpt {

/// Detection probability of one fault at the two endpoints of input i:
/// p0 = p_f(X, 0|i), p1 = p_f(X, 1|i).
struct affine_fault {
    double p0 = 0.0;
    double p1 = 0.0;
};

struct minimize_result {
    double y = 0.5;          ///< arg min of J_N(X, y|i) over [lo, hi]
    double objective = 0.0;  ///< J value at y (scaled; comparison only)
    std::size_t iterations = 0;
};

/// Minimize J_N over y in [lo, hi] (0 <= lo < hi <= 1). n is the current
/// test length estimate N. Strict convexity guarantees uniqueness whenever
/// some fault depends on the input (d_f != 0); otherwise any y is optimal
/// and the midpoint is returned.
minimize_result minimize_single_input(std::span<const affine_fault> faults,
                                      double n, double lo, double hi);

}  // namespace wrpt
