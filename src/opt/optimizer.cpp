#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/minimize.h"
#include "opt/normalize.h"
#include "opt/objective.h"
#include "util/error.h"

namespace wrpt {
namespace {

double snap_to_grid(double y, double grid, double lo, double hi) {
    if (grid <= 0.0) return std::clamp(y, lo, hi);
    const double snapped = std::round(y / grid) * grid;
    return std::clamp(snapped, lo, hi);
}

}  // namespace

optimize_result optimize_weights(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 detect_estimator& analysis,
                                 const weight_vector& start,
                                 const optimize_options& options) {
    require(start.size() == nl.input_count(),
            "optimize_weights: starting vector size mismatch");
    require(options.weight_min > 0.0 && options.weight_max < 1.0 &&
                options.weight_min < options.weight_max,
            "optimize_weights: weight bounds must satisfy 0 < min < max < 1");
    require(options.max_sweeps >= 1, "optimize_weights: max_sweeps >= 1");

    const double q = confidence_to_q(options.confidence);
    optimize_result res;
    res.weights = start;
    for (double& w : res.weights)
        w = std::clamp(w, options.weight_min, options.weight_max);

    // ANALYSIS + SORT + NORMALIZE at the starting vector.
    std::vector<double> probs = analysis.estimate(nl, faults, res.weights);
    ++res.analysis_calls;
    std::vector<std::size_t> order = sort_faults(probs);
    res.zero_prob_faults = faults.size() - order.size();

    auto run_normalize = [&](const std::vector<double>& ps,
                             const std::vector<std::size_t>& ord) {
        std::vector<double> sorted;
        sorted.reserve(ord.size());
        for (std::size_t idx : ord) sorted.push_back(ps[idx]);
        return normalize_sorted(sorted, q);
    };

    normalize_result norm = run_normalize(probs, order);
    res.feasible = norm.feasible;
    res.initial_test_length = norm.test_length;
    res.final_test_length = norm.test_length;
    if (!norm.feasible || order.empty()) return res;

    // Select F^: everything whose objective term at the current N is within
    // exp(-window) of the hardest fault's term, floored at NORMALIZE's nf.
    auto select_hard = [&](double n) {
        std::vector<fault> hard;
        const double p_hardest = probs[order.front()];
        const double cutoff =
            (n > 0.0) ? p_hardest + options.relevance_window / n
                      : std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < order.size(); ++k) {
            if (hard.size() >= options.max_relevant_faults) break;
            const double p = probs[order[k]];
            if (p > cutoff && hard.size() >= std::max<std::size_t>(
                                                 norm.relevant_faults, 1))
                break;
            hard.push_back(faults[order[k]]);
        }
        return hard;
    };

    double n_old = std::numeric_limits<double>::infinity();
    double n_new = norm.test_length;

    // Best iterate seen so far; a sweep of coordinate steps on estimated
    // affine models can overshoot, and we never return a worse tuple than
    // the best one encountered.
    weight_vector best_weights = res.weights;
    double best_n = n_new;

    bool escaped = false;
    std::size_t sweeps = 0;
    while (sweeps < options.max_sweeps) {
        if (n_old - n_new <= options.alpha) {
            // Converged or stalled. Coordinate descent stalls on symmetric
            // circuits: with the partner input at 0.5 an equality term is
            // flat in each single weight (a comparator at uniform weights,
            // the E==F comparator of a controller, ...), so the gradient
            // vanishes without being at an optimum. Probe three
            // deterministic perturbations of the current point and, if one
            // improves the test length, continue from it.
            if (!options.saddle_escape || escaped || sweeps == 0) break;
            escaped = true;
            const double d = options.saddle_perturbation;
            const weight_vector base = res.weights;
            weight_vector best_cand;
            double best_cand_n = n_new;
            std::vector<double> cand_probs;
            // Relative probes explore around the stalled point; the two
            // absolute matched-uniform probes jump straight into the
            // "operands matched high/low" basins that equality-dominated
            // circuits need but coordinate descent cannot reach once it has
            // mismatched the operands.
            // The candidates are wholesale perturbations, but they are
            // still probes from the current point: one batch of
            // multi-input moves, answered by the estimator's incremental
            // engine (union-of-cones transactions with rollback) instead
            // of five full re-analyses or engine rebuilds.
            std::vector<weight_vector> cands(5);
            std::vector<probe> cand_probes(5);
            for (int dir = 0; dir < 5; ++dir) {
                weight_vector cand = base;
                for (std::size_t i = 0; i < cand.size(); ++i) {
                    double value;
                    switch (dir) {
                        case 0: value = base[i] + d; break;
                        case 1: value = base[i] - d; break;
                        case 2:
                            value = base[i] + ((i % 2 == 0) ? d : -d);
                            break;
                        case 3: value = 0.9; break;
                        default: value = 0.1; break;
                    }
                    cand[i] = snap_to_grid(value, options.grid,
                                           options.weight_min,
                                           options.weight_max);
                }
                cand_probes[dir] = probe_between(base, cand);
                cands[dir] = std::move(cand);
            }
            std::vector<std::vector<double>> cand_results =
                analysis.estimate_probes(nl, faults, base, cand_probes);
            res.analysis_calls += cand_probes.size();
            for (int dir = 0; dir < 5; ++dir) {
                std::vector<double>& p = cand_results[dir];
                const normalize_result cn = run_normalize(p, sort_faults(p));
                if (cn.feasible && cn.test_length < best_cand_n) {
                    best_cand_n = cn.test_length;
                    best_cand = std::move(cands[dir]);
                    cand_probs = std::move(p);
                }
            }
            if (best_cand.empty()) break;  // no probe beats the current point
            res.weights = std::move(best_cand);
            probs = std::move(cand_probs);
            order = sort_faults(probs);
            norm = run_normalize(probs, order);
            n_old = std::numeric_limits<double>::infinity();
            n_new = norm.test_length;
            if (n_new < best_n) {
                best_n = n_new;
                best_weights = res.weights;
            }
        }
        n_old = n_new;
        ++sweeps;

        const std::vector<fault> hard = select_hard(n_new);

        // PREPARE: p_f at the two ends of the admissible interval for
        // every input, issued as probe batches of prepare_block
        // coordinates (2*B probes per batch) at the current vector. (For
        // an exact estimator p_f is affine in x_i — Lemma 1 — so any two
        // points determine it; for analytic estimators the secant over
        // [weight_min, weight_max] is the better fit.) The probe shape
        // lets estimators with incremental state answer each in O(fanout
        // cone of input i) instead of O(nodes), and execute a batch on
        // per-thread engines. The block size is a fixed constant — not a
        // function of the thread count — so the optimized weights are
        // bit-identical for every thread count.
        const double lo = options.weight_min;
        const double hi = options.weight_max;
        const std::size_t block =
            std::max<std::size_t>(1, options.prepare_block);
        std::vector<probe> probes;
        std::vector<affine_fault> f01(hard.size());
        for (std::size_t b0 = 0; b0 < nl.input_count(); b0 += block) {
            const std::size_t b1 =
                std::min(b0 + block, nl.input_count());
            probes.clear();
            for (std::size_t i = b0; i < b1; ++i) {
                probes.push_back({{i, lo}});
                probes.push_back({{i, hi}});
            }
            const std::vector<std::vector<double>> prepared =
                analysis.estimate_probes(nl, hard, res.weights, probes);
            res.analysis_calls += probes.size();

            // MINIMIZE + assignment x_i := y for the block's coordinates,
            // every affine model fitted at the common block base, steps
            // capped by the trust region. Coordinates within a block move
            // simultaneously (Jacobi); blocks see each other's updates
            // (Gauss-Seidel), which preserves the sequential sweep's
            // convergence on circuits with coupled inputs.
            weight_vector stepped_weights = res.weights;
            for (std::size_t i = b0; i < b1; ++i) {
                const std::vector<double>& p_lo = prepared[2 * (i - b0)];
                const std::vector<double>& p_hi = prepared[2 * (i - b0) + 1];
                bool any_dependence = false;
                for (std::size_t k = 0; k < hard.size(); ++k) {
                    const double slope = (p_hi[k] - p_lo[k]) / (hi - lo);
                    const double at_zero = p_lo[k] - lo * slope;
                    f01[k] = {at_zero, at_zero + slope};
                    if (std::abs(slope) > 1e-15) any_dependence = true;
                }
                // A coordinate none of the relevant faults depends on is
                // left alone (moving it to the midpoint would churn for
                // nothing).
                if (!any_dependence) continue;

                const minimize_result m = minimize_single_input(
                    f01, n_new, options.weight_min, options.weight_max);
                const double stepped =
                    std::clamp(m.y, res.weights[i] - options.trust_step,
                               res.weights[i] + options.trust_step);
                stepped_weights[i] = snap_to_grid(stepped, options.grid,
                                                  options.weight_min,
                                                  options.weight_max);
            }
            res.weights = std::move(stepped_weights);
        }

        // Re-ANALYSIS; the order of detection probabilities may have
        // changed (the paper's "caution"), so re-SORT and re-NORMALIZE.
        probs = analysis.estimate(nl, faults, res.weights);
        ++res.analysis_calls;
        order = sort_faults(probs);
        res.zero_prob_faults = faults.size() - order.size();
        norm = run_normalize(probs, order);
        if (!norm.feasible || order.empty()) break;
        n_new = norm.test_length;
        res.history.push_back({n_new, norm.relevant_faults});
        if (n_new < best_n) {
            best_n = n_new;
            best_weights = res.weights;
        }
    }
    res.weights = best_weights;
    res.final_test_length = best_n;
    res.feasible = true;
    return res;
}

test_length_report required_test_length(const netlist& nl,
                                        const std::vector<fault>& faults,
                                        detect_estimator& analysis,
                                        const weight_vector& weights,
                                        double confidence) {
    const double q = confidence_to_q(confidence);
    const std::vector<double> probs = analysis.estimate(nl, faults, weights);
    const normalize_result norm = normalize_detection_probs(probs, q);
    test_length_report rep;
    rep.feasible = norm.feasible;
    rep.test_length = norm.test_length;
    rep.relevant_faults = norm.relevant_faults;
    rep.zero_prob_faults = norm.zero_prob_faults;
    double hardest = 1.0;
    for (double p : probs)
        if (p > 0.0) hardest = std::min(hardest, p);
    rep.hardest_probability = hardest;
    return rep;
}

}  // namespace wrpt
