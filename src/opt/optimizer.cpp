#include "opt/optimizer.h"

#include <algorithm>

#include "opt/normalize.h"
#include "opt/objective.h"
#include "opt/pipeline.h"
#include "exec/thread_pool.h"

namespace wrpt {

optimize_result optimize_weights(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 detect_estimator& analysis,
                                 const weight_vector& start,
                                 const optimize_options& options) {
    optimize_pipeline pipeline(nl, faults, analysis, start, options);
    return pipeline.run();
}

test_length_report required_test_length(const netlist& nl,
                                        const std::vector<fault>& faults,
                                        detect_estimator& analysis,
                                        const weight_vector& weights,
                                        double confidence, unsigned threads) {
    const double q = confidence_to_q(confidence);
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    const std::vector<double> probs = analysis.estimate_faults(
        nl, {faults.data(), faults.size()}, weights, threads);

    // SORT + sharded NORMALIZE (same exec contract as the pipeline's
    // stages: element-ordered reduction, thread-count invariant).
    normalize_exec exec;
    exec.threads = threads;
    exec.pool = threads > 1 ? &shared_thread_pool() : nullptr;
    const normalize_result norm = normalize_detection_probs(probs, q, exec);

    test_length_report rep;
    rep.feasible = norm.feasible;
    rep.test_length = norm.test_length;
    rep.relevant_faults = norm.relevant_faults;
    rep.zero_prob_faults = norm.zero_prob_faults;
    double hardest = 1.0;
    for (double p : probs)
        if (p > 0.0) hardest = std::min(hardest, p);
    rep.hardest_probability = hardest;
    return rep;
}

}  // namespace wrpt
