// Weight quantization for hardware weighted-pattern generators.
//
// A weighted LFSR generator realizes probabilities of the form k/2^m (by
// ANDing/ORing m LFSR bits, or by thresholding an m-bit LFSR word). This
// module snaps continuous optimized weights to realizable grids and
// re-evaluates the resulting test length — the trade-off studied by the
// quantization ablation bench.

#pragma once

#include "io/weights_io.h"

namespace wrpt {

/// Snap every weight to the nearest multiple of `grid`, clamped to
/// [lo, hi]. grid must be positive.
weight_vector quantize_grid(const weight_vector& w, double grid, double lo,
                            double hi);

/// Snap every weight to the nearest value in {2^-m, ..., 1/2, ...,
/// 1 - 2^-m}: the weights realizable by ANDing / ORing up to `stages`
/// LFSR bits (stages >= 1).
weight_vector quantize_lfsr(const weight_vector& w, int stages);

/// All weights realizable with `stages` AND/OR stages, ascending.
std::vector<double> lfsr_weight_alphabet(int stages);

}  // namespace wrpt
