#include "opt/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/thread_pool.h"
#include "opt/minimize.h"
#include "opt/objective.h"
#include "util/error.h"

namespace wrpt {
namespace {

double snap_to_grid(double y, double grid, double lo, double hi) {
    if (grid <= 0.0) return std::clamp(y, lo, hi);
    const double snapped = std::round(y / grid) * grid;
    return std::clamp(snapped, lo, hi);
}

/// NORMALIZE over (probabilities, sorted order) with the context's
/// sharding hints. Pure: reads only its arguments and cx.q/cx.exec.
normalize_result normalize_for(const optimize_context& cx,
                               const std::vector<double>& ps,
                               const std::vector<std::size_t>& ord) {
    std::vector<double> sorted;
    sorted.reserve(ord.size());
    for (std::size_t idx : ord) sorted.push_back(ps[idx]);
    return normalize_sorted(sorted, cx.q, cx.exec);
}

/// Select F^: everything whose objective term at the current N is within
/// exp(-window) of the hardest fault's term, floored at NORMALIZE's nf.
void select_hard(optimize_context& cx) {
    const double n = cx.n_new;
    cx.hard.clear();
    const double p_hardest = cx.probs[cx.order.front()];
    const double cutoff =
        (n > 0.0) ? p_hardest + cx.options.relevance_window / n
                  : std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < cx.order.size(); ++k) {
        if (cx.hard.size() >= cx.options.max_relevant_faults) break;
        const double p = cx.probs[cx.order[k]];
        if (p > cutoff &&
            cx.hard.size() >=
                std::max<std::size_t>(cx.norm.relevant_faults, 1))
            break;
        cx.hard.push_back(cx.faults[cx.order[k]]);
    }
}

}  // namespace

void analysis_stage::run(optimize_context& cx) {
    cx.probs = cx.analysis.estimate_faults(
        cx.nl, {cx.faults.data(), cx.faults.size()}, cx.res.weights,
        cx.exec.threads);
    ++cx.res.analysis_calls;
}

void sort_stage::run(optimize_context& cx) {
    cx.order = sort_faults(cx.probs, cx.exec);
    cx.res.zero_prob_faults = cx.faults.size() - cx.order.size();
}

void normalize_stage::run(optimize_context& cx) {
    cx.norm = normalize_for(cx, cx.probs, cx.order);
}

void prepare_stage::run(optimize_context& cx) {
    // p_f at the two ends of the admissible interval for every coordinate
    // of the block, issued as one probe batch of 2 * block width at the
    // current vector. (For an exact estimator p_f is affine in x_i —
    // Lemma 1 — so any two points determine it; for analytic estimators
    // the secant over [weight_min, weight_max] is the better fit.) The
    // probe shape lets estimators with incremental state answer each in
    // O(fanout cone of input i) instead of O(nodes), and execute the
    // batch on concurrent pool engines. The block size is a fixed
    // constant — not a function of the thread count — so the optimized
    // weights are bit-identical for every thread count.
    const double lo = cx.options.weight_min;
    const double hi = cx.options.weight_max;
    cx.block_probes.clear();
    for (std::size_t i = cx.block_begin; i < cx.block_end; ++i) {
        cx.block_probes.push_back({{i, lo}});
        cx.block_probes.push_back({{i, hi}});
    }
    cx.prepared = cx.analysis.estimate_probes(cx.nl, cx.hard, cx.res.weights,
                                              cx.block_probes);
    cx.res.analysis_calls += cx.block_probes.size();
}

void minimize_stage::run(optimize_context& cx) {
    // Fit every coordinate's affine model at the common block base and
    // assign x_i := y, steps capped by the trust region. Coordinates
    // within a block move simultaneously (Jacobi); blocks see each
    // other's updates (Gauss-Seidel), which preserves the sequential
    // sweep's convergence on circuits with coupled inputs.
    const double lo = cx.options.weight_min;
    const double hi = cx.options.weight_max;
    std::vector<affine_fault> f01(cx.hard.size());
    weight_vector stepped_weights = cx.res.weights;
    for (std::size_t i = cx.block_begin; i < cx.block_end; ++i) {
        const std::vector<double>& p_lo = cx.prepared[2 * (i - cx.block_begin)];
        const std::vector<double>& p_hi =
            cx.prepared[2 * (i - cx.block_begin) + 1];
        bool any_dependence = false;
        for (std::size_t k = 0; k < cx.hard.size(); ++k) {
            const double slope = (p_hi[k] - p_lo[k]) / (hi - lo);
            const double at_zero = p_lo[k] - lo * slope;
            f01[k] = {at_zero, at_zero + slope};
            if (std::abs(slope) > 1e-15) any_dependence = true;
        }
        // A coordinate none of the relevant faults depends on is left
        // alone (moving it to the midpoint would churn for nothing).
        if (!any_dependence) continue;

        const minimize_result m = minimize_single_input(
            f01, cx.n_new, cx.options.weight_min, cx.options.weight_max);
        const double stepped =
            std::clamp(m.y, cx.res.weights[i] - cx.options.trust_step,
                       cx.res.weights[i] + cx.options.trust_step);
        stepped_weights[i] = snap_to_grid(stepped, cx.options.grid,
                                          cx.options.weight_min,
                                          cx.options.weight_max);
    }
    cx.res.weights = std::move(stepped_weights);
}

void saddle_escape_stage::run(optimize_context& cx) {
    // Converged or stalled. Coordinate descent stalls on symmetric
    // circuits: with the partner input at 0.5 an equality term is flat in
    // each single weight (a comparator at uniform weights, the E==F
    // comparator of a controller, ...), so the gradient vanishes without
    // being at an optimum. Probe deterministic perturbations of the
    // current point and, if one improves the test length, continue from
    // it.
    if (!cx.options.saddle_escape || cx.escaped || cx.res.history.empty()) {
        cx.stop = true;
        return;
    }
    cx.escaped = true;
    const double d = cx.options.saddle_perturbation;
    const weight_vector base = cx.res.weights;
    weight_vector best_cand;
    double best_cand_n = cx.n_new;
    std::vector<double> cand_probs;
    // Relative probes explore around the stalled point; the two absolute
    // matched-uniform probes jump straight into the "operands matched
    // high/low" basins that equality-dominated circuits need but
    // coordinate descent cannot reach once it has mismatched the
    // operands. The candidates are wholesale perturbations, but they are
    // still probes from the current point: one batch of multi-input
    // moves, answered by the estimator's incremental engines
    // (union-of-cones transactions with rollback) instead of five full
    // re-analyses or engine rebuilds.
    std::vector<weight_vector> cands(5);
    std::vector<probe> cand_probes(5);
    for (int dir = 0; dir < 5; ++dir) {
        weight_vector cand = base;
        for (std::size_t i = 0; i < cand.size(); ++i) {
            double value;
            switch (dir) {
                case 0: value = base[i] + d; break;
                case 1: value = base[i] - d; break;
                case 2:
                    value = base[i] + ((i % 2 == 0) ? d : -d);
                    break;
                case 3: value = 0.9; break;
                default: value = 0.1; break;
            }
            cand[i] = snap_to_grid(value, cx.options.grid,
                                   cx.options.weight_min,
                                   cx.options.weight_max);
        }
        cand_probes[dir] = probe_between(base, cand);
        cands[dir] = std::move(cand);
    }
    std::vector<std::vector<double>> cand_results =
        cx.analysis.estimate_probes(cx.nl, cx.faults, base, cand_probes);
    cx.res.analysis_calls += cand_probes.size();
    for (int dir = 0; dir < 5; ++dir) {
        std::vector<double>& p = cand_results[dir];
        const normalize_result cn =
            normalize_for(cx, p, sort_faults(p, cx.exec));
        if (cn.feasible && cn.test_length < best_cand_n) {
            best_cand_n = cn.test_length;
            best_cand = std::move(cands[dir]);
            cand_probs = std::move(p);
        }
    }
    if (best_cand.empty()) {  // no probe beats the current point
        cx.stop = true;
        return;
    }
    cx.res.weights = std::move(best_cand);
    cx.probs = std::move(cand_probs);
    cx.order = sort_faults(cx.probs, cx.exec);
    cx.norm = normalize_for(cx, cx.probs, cx.order);
    cx.n_old = std::numeric_limits<double>::infinity();
    cx.n_new = cx.norm.test_length;
    if (cx.n_new < cx.best_n) {
        cx.best_n = cx.n_new;
        cx.best_weights = cx.res.weights;
    }
}

optimize_pipeline::optimize_pipeline(const netlist& nl,
                                     const std::vector<fault>& faults,
                                     detect_estimator& analysis,
                                     const weight_vector& start,
                                     const optimize_options& options)
    : cx_(nl, faults, analysis, options,
          confidence_to_q(options.confidence)),
      stages_{&analysis_, &sort_, &normalize_, &prepare_, &minimize_,
              &saddle_} {
    require(start.size() == nl.input_count(),
            "optimize_weights: starting vector size mismatch");
    require(options.weight_min > 0.0 && options.weight_max < 1.0 &&
                options.weight_min < options.weight_max,
            "optimize_weights: weight bounds must satisfy 0 < min < max < 1");
    require(options.max_sweeps >= 1, "optimize_weights: max_sweeps >= 1");

    const unsigned threads =
        options.threads == 0
            ? std::max(1u, std::thread::hardware_concurrency())
            : options.threads;
    cx_.exec.threads = threads;
    cx_.exec.pool = threads > 1 ? &shared_thread_pool() : nullptr;

    cx_.res.weights = start;
    for (double& w : cx_.res.weights)
        w = std::clamp(w, options.weight_min, options.weight_max);
}

void optimize_pipeline::run_analysis_block() {
    analysis_.run(cx_);
    sort_.run(cx_);
    normalize_.run(cx_);
}

optimize_result optimize_pipeline::run() {
    // ANALYSIS + SORT + NORMALIZE at the starting vector.
    run_analysis_block();
    cx_.res.feasible = cx_.norm.feasible;
    cx_.res.initial_test_length = cx_.norm.test_length;
    cx_.res.final_test_length = cx_.norm.test_length;
    if (!cx_.norm.feasible || cx_.order.empty()) return std::move(cx_.res);

    cx_.n_old = std::numeric_limits<double>::infinity();
    cx_.n_new = cx_.norm.test_length;
    cx_.best_weights = cx_.res.weights;
    cx_.best_n = cx_.n_new;

    std::size_t sweeps = 0;
    while (sweeps < cx_.options.max_sweeps) {
        if (cx_.n_old - cx_.n_new <= cx_.options.alpha) {
            saddle_.run(cx_);
            if (cx_.stop) break;
        }
        cx_.n_old = cx_.n_new;
        ++sweeps;

        select_hard(cx_);

        // PREPARE + MINIMIZE over fixed coordinate blocks (block-Jacobi /
        // Gauss-Seidel hybrid; see prepare_stage).
        const std::size_t block =
            std::max<std::size_t>(1, cx_.options.prepare_block);
        for (std::size_t b0 = 0; b0 < cx_.nl.input_count(); b0 += block) {
            cx_.block_begin = b0;
            cx_.block_end = std::min(b0 + block, cx_.nl.input_count());
            prepare_.run(cx_);
            minimize_.run(cx_);
        }

        // Re-ANALYSIS; the order of detection probabilities may have
        // changed (the paper's "caution"), so re-SORT and re-NORMALIZE.
        run_analysis_block();
        if (!cx_.norm.feasible || cx_.order.empty()) break;
        cx_.n_new = cx_.norm.test_length;
        cx_.res.history.push_back({cx_.n_new, cx_.norm.relevant_faults});
        if (cx_.n_new < cx_.best_n) {
            cx_.best_n = cx_.n_new;
            cx_.best_weights = cx_.res.weights;
        }
    }
    cx_.res.weights = cx_.best_weights;
    cx_.res.final_test_length = cx_.best_n;
    cx_.res.feasible = true;
    return std::move(cx_.res);
}

}  // namespace wrpt
