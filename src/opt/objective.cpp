#include "opt/objective.h"

#include <cmath>

#include "core/simd.h"
#include "util/error.h"

namespace wrpt {

double confidence_to_q(double confidence) {
    require(confidence > 0.0 && confidence < 1.0,
            "confidence_to_q: confidence must be in (0,1)");
    return -std::log(confidence);
}

double q_to_confidence(double q) {
    require(q > 0.0, "q_to_confidence: q must be positive");
    return std::exp(-q);
}

double objective_jn(std::span<const double> detection_probs, double n) {
    require(n >= 0.0, "objective_jn: negative test length");
    // Terms batched through the lane-blocked evaluator, summed in the
    // same left-to-right element order as the plain loop. (-n * p and
    // the evaluator's -p * n round identically: negation is exact and
    // IEEE multiplication commutes.)
    constexpr std::size_t block = 256;
    double terms[block];
    double j = 0.0;
    const double* p = detection_probs.data();
    std::size_t left = detection_probs.size();
    while (left > 0) {
        const std::size_t c = left < block ? left : block;
        simd::exp_neg_scale(p, n, terms, c);
        for (std::size_t i = 0; i < c; ++i) j += terms[i];
        p += c;
        left -= c;
    }
    return j;
}

double exact_confidence(std::span<const double> detection_probs, double n) {
    require(n >= 0.0, "exact_confidence: negative test length");
    double log_conf = 0.0;
    for (double p : detection_probs) {
        if (p >= 1.0) continue;  // always detected
        if (p <= 0.0) return 0.0;  // never detected
        // (1-p)^n via expm1/log1p for precision.
        const double miss = std::exp(n * std::log1p(-p));
        if (miss >= 1.0) return 0.0;
        log_conf += std::log1p(-miss);
    }
    return std::exp(log_conf);
}

}  // namespace wrpt
