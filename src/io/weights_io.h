// Reading and writing input-probability ("weight") files.
//
// Format: one "input_name probability" pair per line, '#' comments.
// This is the artifact the paper prints in its appendix (optimized input
// probabilities for S1 and C7552).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

/// Weight vector ordered like netlist::inputs().
using weight_vector = std::vector<double>;

/// Uniform weights (the conventional equiprobable random test).
weight_vector uniform_weights(const netlist& nl, double p = 0.5);

/// Parse weights for `nl` from a stream; every input must be assigned
/// exactly once and probabilities must lie in [0,1].
weight_vector read_weights(std::istream& in, const netlist& nl);
weight_vector read_weights_file(const std::string& path, const netlist& nl);

/// Write weights in appendix style (input name, probability).
void write_weights(std::ostream& out, const netlist& nl,
                   const weight_vector& weights);
void write_weights_file(const std::string& path, const netlist& nl,
                        const weight_vector& weights);

}  // namespace wrpt
