// ISCAS'89 ".bench" netlist format reader and writer.
//
// The format used for the public ISCAS benchmark distributions:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G10 = NAND(G1, G3)
//   G17 = NOT(G10)
//
// Definitions may appear in any order; the reader topologically sorts them.
// Combinational subset only (DFF lines are rejected).

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace wrpt {

/// Parse a .bench description from a stream. Throws invalid_input on
/// malformed text, unknown gate types, undefined signals, or cycles.
netlist read_bench(std::istream& in, const std::string& name = "bench");

/// Parse a .bench description from a string.
netlist read_bench_string(const std::string& text,
                          const std::string& name = "bench");

/// Parse a .bench file from disk.
netlist read_bench_file(const std::string& path);

/// Write a netlist in .bench syntax. Unnamed internal nodes receive
/// synthetic names ("n<id>"). The output round-trips through read_bench.
void write_bench(std::ostream& out, const netlist& nl);
std::string write_bench_string(const netlist& nl);
void write_bench_file(const std::string& path, const netlist& nl);

}  // namespace wrpt
