#include "io/weights_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace wrpt {

weight_vector uniform_weights(const netlist& nl, double p) {
    require(p >= 0.0 && p <= 1.0, "uniform_weights: p out of [0,1]");
    return weight_vector(nl.input_count(), p);
}

weight_vector read_weights(std::istream& in, const netlist& nl) {
    weight_vector w(nl.input_count(), -1.0);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string name;
        double p = 0.0;
        if (!(ss >> name)) continue;  // blank line
        require(static_cast<bool>(ss >> p),
                "weights line " + std::to_string(lineno) + ": missing probability");
        require(p >= 0.0 && p <= 1.0,
                "weights line " + std::to_string(lineno) + ": probability out of [0,1]");
        const node_id n = nl.find(name);
        require(n != null_node && nl.kind(n) == gate_kind::input,
                "weights line " + std::to_string(lineno) + ": '" + name +
                    "' is not a primary input");
        const std::size_t idx = nl.input_index(n);
        require(w[idx] < 0.0, "weights: input '" + name + "' assigned twice");
        w[idx] = p;
    }
    for (std::size_t i = 0; i < w.size(); ++i)
        require(w[i] >= 0.0, "weights: input '" +
                                 nl.node_name(nl.inputs()[i]) + "' unassigned");
    return w;
}

weight_vector read_weights_file(const std::string& path, const netlist& nl) {
    std::ifstream in(path);
    require(in.good(), "read_weights_file: cannot open '" + path + "'");
    return read_weights(in, nl);
}

void write_weights(std::ostream& out, const netlist& nl,
                   const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "write_weights: weight count differs from input count");
    out << "# optimized input probabilities for " << nl.name() << "\n";
    for (std::size_t i = 0; i < weights.size(); ++i)
        out << nl.node_name(nl.inputs()[i]) << " " << weights[i] << "\n";
}

void write_weights_file(const std::string& path, const netlist& nl,
                        const weight_vector& weights) {
    std::ofstream out(path);
    require(out.good(), "write_weights_file: cannot open '" + path + "'");
    write_weights(out, nl, weights);
}

}  // namespace wrpt
