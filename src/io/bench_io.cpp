#include "io/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/error.h"
#include "util/label.h"

namespace wrpt {
namespace {

std::string trim(std::string_view s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

struct raw_gate {
    gate_kind kind = gate_kind::buf;
    std::vector<std::string> fanin_names;
    int line = 0;
};

struct raw_design {
    std::vector<std::string> input_order;
    std::vector<std::string> output_order;
    // Definition order preserved for deterministic ids.
    std::vector<std::string> def_order;
    std::unordered_map<std::string, raw_gate> defs;
};

raw_design parse_lines(std::istream& in) {
    raw_design d;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments.
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty()) continue;

        const auto open = line.find('(');
        const auto close = line.rfind(')');
        const auto eq = line.find('=');

        auto fail = [&](const std::string& why) {
            throw invalid_input("bench line " + std::to_string(lineno) + ": " + why);
        };

        if (eq == std::string::npos) {
            // INPUT(x) or OUTPUT(y)
            if (open == std::string::npos || close == std::string::npos ||
                close < open)
                fail("expected INPUT(...)/OUTPUT(...) or assignment");
            const std::string head = trim(line.substr(0, open));
            const std::string arg = trim(line.substr(open + 1, close - open - 1));
            if (arg.empty()) fail("empty signal name");
            std::string upper(head);
            std::transform(upper.begin(), upper.end(), upper.begin(),
                           [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
            if (upper == "INPUT")
                d.input_order.push_back(arg);
            else if (upper == "OUTPUT")
                d.output_order.push_back(arg);
            else
                fail("unknown directive '" + head + "'");
            continue;
        }

        // name = KIND(a, b, ...)
        const std::string target = trim(line.substr(0, eq));
        if (target.empty()) fail("missing target name");
        if (open == std::string::npos || close == std::string::npos || open < eq)
            fail("expected KIND(args) on right hand side");
        const std::string kind_text = trim(line.substr(eq + 1, open - eq - 1));
        raw_gate g;
        g.line = lineno;
        if (!gate_kind_from_string(kind_text, g.kind))
            fail("unknown gate type '" + kind_text + "'");
        if (g.kind == gate_kind::input)
            fail("INPUT is a directive, not a gate type");
        const std::string args = line.substr(open + 1, close - open - 1);
        std::stringstream ss(args);
        std::string item;
        while (std::getline(ss, item, ',')) {
            item = trim(item);
            if (!item.empty()) g.fanin_names.push_back(item);
        }
        if (!d.defs.emplace(target, std::move(g)).second)
            fail("signal '" + target + "' defined twice");
        d.def_order.push_back(target);
    }
    return d;
}

}  // namespace

netlist read_bench(std::istream& in, const std::string& name) {
    const raw_design d = parse_lines(in);
    netlist nl(name);

    std::unordered_map<std::string, node_id> ids;
    for (const auto& input_name : d.input_order) {
        require(!ids.contains(input_name),
                "bench: input '" + input_name + "' declared twice");
        require(!d.defs.contains(input_name),
                "bench: input '" + input_name + "' also defined as gate");
        ids.emplace(input_name, nl.add_input(input_name));
    }

    // Iterative DFS topological insertion (definitions may be out of order).
    enum class mark : std::uint8_t { none, visiting, done };
    std::unordered_map<std::string, mark> marks;
    std::vector<std::pair<std::string, std::size_t>> stack;  // (name, next fanin)

    auto define = [&](const std::string& root) {
        if (ids.contains(root)) return;
        stack.emplace_back(root, 0);
        while (!stack.empty()) {
            auto& [cur, next] = stack.back();
            auto it = d.defs.find(cur);
            if (it == d.defs.end())
                throw invalid_input("bench: signal '" + cur + "' is never defined");
            const raw_gate& g = it->second;
            if (next == 0) {
                const mark m = marks[cur];
                if (m == mark::visiting)
                    throw invalid_input("bench: combinational cycle through '" +
                                        cur + "'");
                marks[cur] = mark::visiting;
            }
            bool descended = false;
            while (next < g.fanin_names.size()) {
                const std::string& fname = g.fanin_names[next];
                ++next;
                if (!ids.contains(fname)) {
                    if (marks[fname] == mark::visiting)
                        throw invalid_input(
                            "bench: combinational cycle through '" + fname + "'");
                    stack.emplace_back(fname, 0);
                    descended = true;
                    break;
                }
            }
            if (descended) continue;
            // All fanins available: create the gate.
            std::vector<node_id> fi;
            fi.reserve(g.fanin_names.size());
            for (const auto& fname : g.fanin_names) fi.push_back(ids.at(fname));
            ids.emplace(cur, nl.add_gate(g.kind, fi, cur));
            marks[cur] = mark::done;
            stack.pop_back();
        }
    };

    for (const auto& def_name : d.def_order) define(def_name);
    for (const auto& out_name : d.output_order) {
        auto it = ids.find(out_name);
        require(it != ids.end(),
                "bench: output '" + out_name + "' is never defined");
        nl.mark_output(it->second, out_name);
    }
    nl.validate();
    return nl;
}

netlist read_bench_string(const std::string& text, const std::string& name) {
    std::istringstream in(text);
    return read_bench(in, name);
}

netlist read_bench_file(const std::string& path) {
    std::ifstream in(path);
    require(in.good(), "read_bench_file: cannot open '" + path + "'");
    return read_bench(in, path);
}

void write_bench(std::ostream& out, const netlist& nl) {
    auto name_of = [&nl](node_id n) {
        const std::string& nm = nl.node_name(n);
        if (!nm.empty()) return nm;
        return label("n", n);
    };
    out << "# " << nl.name() << "\n";
    out << "# " << nl.input_count() << " inputs, " << nl.output_count()
        << " outputs, " << (nl.node_count() - nl.input_count()) << " gates\n";
    for (node_id i : nl.inputs()) out << "INPUT(" << name_of(i) << ")\n";
    // Outputs are exported under their output names; when that differs
    // from the driving signal's name, a buffer alias keeps the .bench
    // well-formed.
    std::vector<std::pair<std::string, std::string>> aliases;
    for (node_id o : nl.outputs()) {
        const std::string& oname = nl.output_name(o);
        out << "OUTPUT(" << oname << ")\n";
        if (oname != name_of(o)) aliases.emplace_back(oname, name_of(o));
    }
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) continue;
        out << name_of(n) << " = " << to_string(nl.kind(n)) << "(";
        const auto fi = nl.fanins(n);
        for (std::size_t k = 0; k < fi.size(); ++k) {
            if (k) out << ", ";
            out << name_of(fi[k]);
        }
        out << ")\n";
    }
    for (const auto& [oname, signal] : aliases)
        out << oname << " = BUF(" << signal << ")\n";
}

std::string write_bench_string(const netlist& nl) {
    std::ostringstream out;
    write_bench(out, nl);
    return out.str();
}

void write_bench_file(const std::string& path, const netlist& nl) {
    std::ofstream out(path);
    require(out.good(), "write_bench_file: cannot open '" + path + "'");
    write_bench(out, nl);
}

}  // namespace wrpt
