#include "exec/engine_pool.h"

#include "core/circuit_view.h"
#include "prob/cop_engine.h"
#include "prob/probe.h"
#include "util/error.h"

namespace wrpt {

engine_pool::engine_pool(const circuit_view& cv) : cv_(&cv) {
    require(cv.has_input_cones(),
            "engine_pool: view compiled without input cones");
}

engine_pool::~engine_pool() = default;

std::uint64_t engine_pool::revision() const {
    return cv_->source().revision();
}

engine_pool::lease::lease(engine_pool* pool, std::unique_ptr<cop_engine> e,
                          bool fresh)
    : pool_(pool), engine_(std::move(e)), fresh_(fresh) {}

engine_pool::lease::lease(lease&& other) noexcept
    : pool_(other.pool_),
      engine_(std::move(other.engine_)),
      fresh_(other.fresh_) {
    other.pool_ = nullptr;
}

engine_pool::lease& engine_pool::lease::operator=(lease&& other) noexcept {
    if (this != &other) {
        if (pool_ && engine_) pool_->give_back(std::move(engine_));
        pool_ = other.pool_;
        engine_ = std::move(other.engine_);
        fresh_ = other.fresh_;
        other.pool_ = nullptr;
    }
    return *this;
}

engine_pool::lease::~lease() {
    if (pool_ && engine_) pool_->give_back(std::move(engine_));
}

engine_pool::lease engine_pool::checkout(const weight_vector& base) {
    require(base.size() == cv_->source().input_count(),
            "engine_pool: weight count mismatch");
    std::unique_ptr<cop_engine> engine;
    {
        std::scoped_lock lock(mutex_);
        if (free_.empty()) {
            ++stats_.misses;
            ++total_;
        } else {
            ++stats_.hits;
            engine = std::move(free_.back());
            free_.pop_back();
        }
    }
    if (!engine) {
        // Build outside the lock: concurrent first checkouts analyze in
        // parallel instead of queueing behind one build.
        return lease(this, std::make_unique<cop_engine>(*cv_, base), true);
    }
    const probe moves = probe_between(engine->weights(), base);
    if (!moves.empty()) {
        engine->set_inputs(moves);
        engine->commit();
        std::scoped_lock lock(mutex_);
        ++stats_.resyncs;
    }
    return lease(this, std::move(engine), false);
}

engine_pool::counters engine_pool::stats() const {
    std::scoped_lock lock(mutex_);
    return stats_;
}

std::size_t engine_pool::size() const {
    std::scoped_lock lock(mutex_);
    return total_;
}

std::size_t engine_pool::warm_count() const {
    std::scoped_lock lock(mutex_);
    return free_.size();
}

void engine_pool::give_back(std::unique_ptr<cop_engine> engine) {
    std::scoped_lock lock(mutex_);
    free_.push_back(std::move(engine));
}

}  // namespace wrpt
