#include "exec/engine_pool.h"

#include <algorithm>

#include "core/circuit_view.h"
#include "prob/cop_engine.h"
#include "prob/probe.h"
#include "util/error.h"

namespace wrpt {

engine_pool::engine_pool(const circuit_view& cv) : cv_(&cv) {
    require(cv.has_input_cones(),
            "engine_pool: view compiled without input cones");
}

engine_pool::~engine_pool() = default;

std::uint64_t engine_pool::revision() const {
    return cv_->source().revision();
}

engine_pool::lease::lease(engine_pool* pool, std::unique_ptr<cop_engine> e,
                          bool fresh, std::uint64_t stamp)
    : pool_(pool), engine_(std::move(e)), fresh_(fresh), stamp_(stamp) {}

engine_pool::lease::lease(lease&& other) noexcept
    : pool_(other.pool_),
      engine_(std::move(other.engine_)),
      fresh_(other.fresh_),
      stamp_(other.stamp_) {
    other.pool_ = nullptr;
}

engine_pool::lease& engine_pool::lease::operator=(lease&& other) noexcept {
    if (this != &other) {
        if (pool_ && engine_) pool_->give_back(std::move(engine_), stamp_);
        pool_ = other.pool_;
        engine_ = std::move(other.engine_);
        fresh_ = other.fresh_;
        stamp_ = other.stamp_;
        other.pool_ = nullptr;
    }
    return *this;
}

engine_pool::lease::~lease() {
    if (pool_ && engine_) pool_->give_back(std::move(engine_), stamp_);
}

engine_pool::lease engine_pool::checkout(const weight_vector& base) {
    require(base.size() == cv_->source().input_count(),
            "engine_pool: weight count mismatch");
    std::unique_ptr<cop_engine> engine;
    std::uint64_t stamp = 0;
    {
        lock_guard lock(mutex_);
        stamp = ++stamp_;
        if (free_.empty()) {
            ++stats_.misses;
            ++total_;
        } else {
            ++stats_.hits;
            // Take the highest slot id = most recently returned engine
            // (the old LIFO pop_back), the one most likely still near the
            // caller's base weights.
            std::uint64_t newest = 0;
            free_.for_each(
                [&](std::uint64_t slot, warm_engine&) { newest = slot; });
            engine = std::move(free_.find(newest)->engine);
            free_.erase(newest);
        }
    }
    if (!engine) {
        // Build outside the lock: concurrent first checkouts analyze in
        // parallel instead of queueing behind one build.
        return lease(this, std::make_unique<cop_engine>(*cv_, base), true,
                     stamp);
    }
    const probe moves = probe_between(engine->weights(), base);
    if (!moves.empty()) {
        engine->set_inputs(moves);
        engine->commit();
        lock_guard lock(mutex_);
        ++stats_.resyncs;
    }
    return lease(this, std::move(engine), false, stamp);
}

engine_pool::counters engine_pool::stats() const {
    lock_guard lock(mutex_);
    counters c = stats_;
    c.relocations = free_.stats().relocations;
    return c;
}

std::size_t engine_pool::evict_locked(std::size_t keep,
                                      std::vector<warm_engine>& victims) {
    if (free_.size() <= keep) return 0;
    // LRU by checkout stamp: the engines idle the longest (smallest
    // stamp) go first, regardless of return order.
    const std::size_t drop = free_.size() - keep;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // stamp, slot
    order.reserve(free_.size());
    free_.for_each([&](std::uint64_t slot, const warm_engine& w) {
        order.emplace_back(w.stamp, slot);
    });
    std::partial_sort(order.begin(), order.begin() + drop, order.end());
    for (std::size_t i = 0; i < drop; ++i) {
        const std::uint64_t slot = order[i].second;
        victims.push_back(std::move(*free_.find(slot)));
        free_.erase(slot);
    }
    stats_.evictions += drop;
    total_ -= drop;
    return drop;
}

void engine_pool::set_capacity(std::size_t max_engines) {
    // Destroy evicted engines outside the lock (engine teardown is not
    // cheap and needs nothing from the pool).
    std::vector<warm_engine> victims;
    lock_guard lock(mutex_);
    capacity_ = max_engines;
    if (capacity_ != 0) evict_locked(capacity_, victims);
}

std::size_t engine_pool::capacity() const {
    lock_guard lock(mutex_);
    return capacity_;
}

std::size_t engine_pool::evict(std::size_t keep) {
    std::vector<warm_engine> victims;
    lock_guard lock(mutex_);
    return evict_locked(keep, victims);
}

std::size_t engine_pool::size() const {
    lock_guard lock(mutex_);
    return total_;
}

std::size_t engine_pool::warm_count() const {
    lock_guard lock(mutex_);
    return free_.size();
}

void engine_pool::give_back(std::unique_ptr<cop_engine> engine,
                            std::uint64_t stamp) {
    // victims outlives the lock, so evicted engines are destroyed after
    // the mutex is released (engine teardown needs nothing from the pool).
    std::vector<warm_engine> victims;
    lock_guard lock(mutex_);
    free_.try_emplace(next_slot_++, warm_engine{std::move(engine), stamp});
    if (capacity_ != 0) evict_locked(capacity_, victims);
}

}  // namespace wrpt
