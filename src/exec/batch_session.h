// Multi-circuit optimization service — the serving-shaped engine layer.
//
// A deployment tests many circuit variants under many candidate weight
// vectors at once: N circuits x M weight vectors per request, millions of
// requests over the same compiled structures. batch_session is that
// surface: register circuits once (each is compiled to a circuit_view
// with input cones exactly once), then submit batches of jobs — OPTIMIZE
// runs, required-test-length queries, weighted fault simulations — that
// execute concurrently on the work-stealing pool. Every job gets private
// estimator/simulator state over the shared immutable view, so the only
// mutable sharing is the per-circuit engine_pool (mutex-guarded
// checkout/return); results are written into a slot per job, keyed by
// the circuit's revision stamp, and are bit-identical to running the same
// jobs sequentially.
//
// Cross-request reuse: each circuit keeps one warm engine_pool for the
// session's lifetime. Engines built by one run() call go back warm and
// serve the next call after an incremental re-sync, so a long-lived
// session never pays the full-analysis build twice for the same
// concurrency level — asserted via pool(h).stats().hits in the tests.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/circuit_view.h"
#include "fault/fault.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "opt/optimizer.h"
#include "svc/request.h"
#include "util/dense_map.h"

namespace wrpt {

class engine_pool;
class thread_pool;

class batch_session {
public:
    struct options {
        /// Worker threads for the session pool (0 = hardware threads).
        unsigned threads = 0;
        /// Confidence for test_length jobs that leave their own at 0.
        double confidence = 0.999;
        /// Per-circuit engine-pool capacity: at most this many warm
        /// engines are retained per circuit (0 = unbounded) — see
        /// engine_pool::set_capacity.
        std::size_t max_engines = 0;
    };

    batch_session();  // default options (defined out of line: the nested
                      // aggregate is incomplete at this point)
    explicit batch_session(options opt);
    ~batch_session();

    batch_session(const batch_session&) = delete;
    batch_session& operator=(const batch_session&) = delete;

    /// Register a circuit; the session owns it, compiles its view (with
    /// the engine structures) once, and generates its collapsed-free full
    /// fault list once. Returns the circuit handle used in jobs.
    std::size_t add_circuit(netlist nl);
    /// Read a .bench file and register it.
    std::size_t add_circuit_file(const std::string& path);

    /// Issue a handle with nothing compiled under it yet (the registry's
    /// lazy-residency path); restore_circuit compiles it on first use.
    std::size_t reserve_handle() { return next_handle_++; }
    /// True while `handle` maps to a compiled circuit; reserved or retired
    /// handles report false (and are never reissued).
    bool has_circuit(std::size_t handle) const {
        return circuits_.contains(handle);
    }
    /// Hot reload: recompile `handle` in place from a fresh netlist. The
    /// replacement keeps its own (new) revision stamp, so results cached
    /// under the old revision are orphaned wholesale. Callers must hold
    /// the swap exclusive against run(): jobs still executing on the old
    /// view would otherwise lose it mid-flight. Returns the new revision.
    std::uint64_t replace_circuit(std::size_t handle, netlist nl);
    /// Drop `handle`'s compiled state (view, faults, warm engines) while
    /// keeping the handle retired-but-stable: other circuits keep their
    /// handles, and restore_circuit can recompile under the same one.
    void unload_circuit(std::size_t handle);
    /// Recompile a previously unloaded handle from `nl`. Passing a copy of
    /// the original netlist preserves its revision stamp (netlist copies
    /// share revisions), so cache entries keyed by it revalidate after the
    /// rebuild. Returns the compiled revision.
    std::uint64_t restore_circuit(std::size_t handle, netlist nl);

    std::size_t circuit_count() const { return circuits_.size(); }
    /// Ascending handles of every compiled circuit (reserved and retired
    /// handles excluded) — the iteration surface for stats and eviction
    /// sweeps, which can no longer assume handles are 0..count-1.
    std::vector<std::size_t> handles() const;
    const netlist& circuit(std::size_t handle) const;
    const circuit_view& view(std::size_t handle) const;
    const std::vector<fault>& faults(std::size_t handle) const;
    /// The circuit's warm engine pool (shared by every job working it;
    /// stats() exposes the cross-run hit/miss/eviction counters). The
    /// non-const overload allows capacity changes and explicit eviction
    /// (svc::service's evict request rides it).
    const engine_pool& pool(std::size_t handle) const;
    engine_pool& pool(std::size_t handle);

    /// The job vocabulary is the typed request layer (svc/request.h):
    /// svc::job_request — test_length_request, optimize_request or
    /// fault_sim_request — is what run() executes natively.
    using job_kind = svc::job_kind;

    struct result {
        std::size_t circuit = 0;
        std::uint64_t revision = 0;  ///< revision stamp the job ran against
        job_kind kind = job_kind::test_length;
        double elapsed_seconds = 0.0;  ///< wall time of this job alone
        /// test_length (also filled for optimize: the final length).
        test_length_report length;
        /// optimize jobs.
        optimize_result optimized;
        /// fault_sim jobs.
        std::uint64_t patterns_applied = 0;
        std::size_t fault_count = 0;
        std::size_t detected = 0;
        double coverage_percent = 0.0;
    };

    /// Execute all requests concurrently; results[i] answers requests[i].
    /// Bit-identical to running the requests one by one in order.
    std::vector<result> run(const std::vector<svc::job_request>& requests);

    /// Expand a matrix request into its job list (circuit-major order:
    /// jobs[c * weight_sets.size() + w]; an empty circuit list means
    /// every registered circuit) — the single definition of the N x M
    /// request shape. svc::service::handle(matrix_request) runs it with
    /// caching on top.
    std::vector<svc::job_request> expand_matrix(
        const svc::matrix_request& m) const;

private:
    struct compiled_circuit {
        std::unique_ptr<netlist> nl;   // stable address for views/results
        std::unique_ptr<circuit_view> view;
        std::vector<fault> faults;
        // Warm engines over `view`, kept across run() calls; every job's
        // estimator adopts this pool instead of growing its own.
        std::unique_ptr<engine_pool> pool;
    };

    result run_one(const svc::job_request& j) const;
    const compiled_circuit& at(std::size_t handle) const;
    compiled_circuit compile(netlist nl) const;

    options options_;
    // Handle -> compiled circuit. Handles come from a monotonic counter,
    // so every probe lands in the map's direct-index array region; const
    // lookups are count-free, which keeps concurrent run_one() jobs
    // race-free. Keyed (rather than a plain vector) so the upcoming
    // registry can retire handles without invalidating the rest.
    util::dense_map<compiled_circuit, std::size_t> circuits_;
    std::size_t next_handle_ = 0;
    std::unique_ptr<thread_pool> pool_;
};

}  // namespace wrpt
