#include "exec/batch_session.h"

#include "exec/engine_pool.h"
#include "exec/thread_pool.h"
#include "io/bench_io.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/error.h"
#include "util/timer.h"

namespace wrpt {

batch_session::batch_session() : batch_session(options{}) {}

batch_session::batch_session(options opt)
    : options_(opt), pool_(std::make_unique<thread_pool>(opt.threads)) {}

batch_session::~batch_session() = default;

batch_session::compiled_circuit batch_session::compile(netlist nl) const {
    compiled_circuit cc;
    cc.nl = std::make_unique<netlist>(std::move(nl));
    circuit_view::compile_options co;
    co.input_cones = true;
    co.driven_pins = true;
    co.lane_groups = true;
    cc.view = std::make_unique<circuit_view>(
        circuit_view::compile(*cc.nl, co));
    cc.faults = generate_full_faults(*cc.nl);
    cc.pool = std::make_unique<engine_pool>(*cc.view);
    cc.pool->set_capacity(options_.max_engines);
    return cc;
}

std::size_t batch_session::add_circuit(netlist nl) {
    const std::size_t handle = next_handle_++;
    circuits_.try_emplace(handle, compile(std::move(nl)));
    return handle;
}

std::size_t batch_session::add_circuit_file(const std::string& path) {
    return add_circuit(read_bench_file(path));
}

std::uint64_t batch_session::replace_circuit(std::size_t handle, netlist nl) {
    compiled_circuit* cc = circuits_.find(handle);
    require(cc != nullptr, "batch_session: bad circuit handle");
    // Compile the replacement before touching the slot so a failed parse
    // or compile leaves the old circuit fully serviceable.
    *cc = compile(std::move(nl));
    return cc->nl->revision();
}

void batch_session::unload_circuit(std::size_t handle) {
    require(circuits_.erase(handle),
            "batch_session: bad circuit handle");
}

std::uint64_t batch_session::restore_circuit(std::size_t handle, netlist nl) {
    require(handle < next_handle_ && !circuits_.contains(handle),
            "batch_session: restore_circuit needs a retired handle");
    circuits_.try_emplace(handle, compile(std::move(nl)));
    return circuits_.find(handle)->nl->revision();
}

std::vector<std::size_t> batch_session::handles() const {
    std::vector<std::size_t> out;
    out.reserve(circuits_.size());
    circuits_.for_each([&](std::size_t handle, const compiled_circuit&) {
        out.push_back(handle);  // ascending-handle iteration order
    });
    return out;
}

const batch_session::compiled_circuit& batch_session::at(
    std::size_t handle) const {
    // Const (count-free) lookup: run_one() calls this concurrently from
    // every pool worker.
    const compiled_circuit* cc = circuits_.find(handle);
    require(cc != nullptr, "batch_session: bad circuit handle");
    return *cc;
}

const netlist& batch_session::circuit(std::size_t handle) const {
    return *at(handle).nl;
}

const circuit_view& batch_session::view(std::size_t handle) const {
    return *at(handle).view;
}

const std::vector<fault>& batch_session::faults(std::size_t handle) const {
    return at(handle).faults;
}

const engine_pool& batch_session::pool(std::size_t handle) const {
    return *at(handle).pool;
}

engine_pool& batch_session::pool(std::size_t handle) {
    compiled_circuit* cc = circuits_.find(handle);
    require(cc != nullptr, "batch_session: bad circuit handle");
    return *cc->pool;
}

batch_session::result batch_session::run_one(const svc::job_request& j) const {
    const std::size_t handle = std::visit(
        [](const auto& p) { return p.circuit; }, j);
    const compiled_circuit& cc = at(handle);
    const netlist& nl = *cc.nl;

    result r;
    r.circuit = handle;
    r.revision = nl.revision();
    r.kind = svc::kind_of(j);

    const weight_vector& requested = std::visit(
        [](const auto& p) -> const weight_vector& { return p.weights; }, j);
    const weight_vector weights =
        requested.empty() ? uniform_weights(nl) : requested;
    require(weights.size() == nl.input_count(),
            "batch_session: weight count mismatch");

    stopwatch sw;
    std::visit(
        [&](const auto& p) {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, svc::test_length_request>) {
                cop_detect_estimator analysis;
                // Adopting the circuit's warm pool shares engines built by
                // earlier jobs and earlier run() calls; the estimator's
                // own state stays private.
                analysis.adopt_pool(*cc.pool);
                const double conf =
                    p.confidence > 0.0 ? p.confidence : options_.confidence;
                r.length = required_test_length(nl, cc.faults, analysis,
                                                weights, conf, p.threads);
            } else if constexpr (std::is_same_v<T, svc::optimize_request>) {
                cop_detect_estimator analysis;
                analysis.adopt_pool(*cc.pool);
                // Stage/probe parallelism stays inside the job's own slice
                // of the pool: jobs are the outer parallel dimension here,
                // so each job defaults to sequential stages (threads 1).
                analysis.set_threads(p.options.threads);
                r.optimized = optimize_weights(nl, cc.faults, analysis,
                                               weights, p.options);
                r.length = required_test_length(
                    nl, cc.faults, analysis, r.optimized.weights,
                    p.options.confidence, p.options.threads);
            } else if constexpr (std::is_same_v<T, svc::fault_sim_request>) {
                fault_sim_options fo;
                fo.max_patterns = p.patterns;
                // Jobs fill the pool; block-level parallelism inside one
                // simulation would oversubscribe it.
                fo.threads = 1;
                weighted_random_source source(weights, p.seed);
                const fault_sim_result sim =
                    run_fault_simulation(*cc.view, cc.faults, source, fo);
                r.patterns_applied = sim.patterns_applied;
                r.fault_count = cc.faults.size();
                r.detected = sim.detected_count;
                r.coverage_percent = sim.coverage_percent(cc.faults.size());
            }
        },
        j);
    r.elapsed_seconds = sw.seconds();
    return r;
}

std::vector<batch_session::result> batch_session::run(
    const std::vector<svc::job_request>& requests) {
    std::vector<result> results(requests.size());
    // One parallel item per job; results are written by job index, so the
    // batch output is identical to a sequential loop for every pool size.
    pool_->parallel_for(requests.size(), [&](std::size_t i) {
        results[i] = run_one(requests[i]);
    });
    return results;
}

std::vector<svc::job_request> batch_session::expand_matrix(
    const svc::matrix_request& m) const {
    std::vector<std::size_t> targets = m.circuits;
    if (targets.empty()) {
        targets.reserve(circuit_count());
        circuits_.for_each([&](std::size_t handle, const compiled_circuit&) {
            targets.push_back(handle);  // ascending-handle iteration order
        });
    }
    std::vector<svc::job_request> requests;
    requests.reserve(targets.size() * m.weight_sets.size());
    for (std::size_t c : targets) {
        for (const weight_vector& w : m.weight_sets) {
            switch (m.kind) {
                case job_kind::test_length: {
                    svc::test_length_request p;
                    p.circuit = c;
                    p.weights = w;
                    p.confidence = m.confidence;
                    p.threads = m.options.threads;
                    requests.push_back(std::move(p));
                    break;
                }
                case job_kind::optimize: {
                    svc::optimize_request p;
                    p.circuit = c;
                    p.weights = w;
                    p.options = m.options;
                    requests.push_back(std::move(p));
                    break;
                }
                case job_kind::fault_sim: {
                    svc::fault_sim_request p;
                    p.circuit = c;
                    p.weights = w;
                    p.patterns = m.patterns;
                    p.seed = m.seed;
                    requests.push_back(std::move(p));
                    break;
                }
            }
        }
    }
    return requests;
}

}  // namespace wrpt
