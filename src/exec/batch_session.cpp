#include "exec/batch_session.h"

#include "exec/engine_pool.h"
#include "exec/thread_pool.h"
#include "io/bench_io.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/error.h"

namespace wrpt {

batch_session::batch_session() : batch_session(options{}) {}

batch_session::batch_session(options opt)
    : options_(opt), pool_(std::make_unique<thread_pool>(opt.threads)) {}

batch_session::~batch_session() = default;

std::size_t batch_session::add_circuit(netlist nl) {
    compiled_circuit cc;
    cc.nl = std::make_unique<netlist>(std::move(nl));
    circuit_view::compile_options co;
    co.input_cones = true;
    co.driven_pins = true;
    cc.view = std::make_unique<circuit_view>(
        circuit_view::compile(*cc.nl, co));
    cc.faults = generate_full_faults(*cc.nl);
    cc.pool = std::make_unique<engine_pool>(*cc.view);
    circuits_.push_back(std::move(cc));
    return circuits_.size() - 1;
}

std::size_t batch_session::add_circuit_file(const std::string& path) {
    return add_circuit(read_bench_file(path));
}

const netlist& batch_session::circuit(std::size_t handle) const {
    require(handle < circuits_.size(), "batch_session: bad circuit handle");
    return *circuits_[handle].nl;
}

const circuit_view& batch_session::view(std::size_t handle) const {
    require(handle < circuits_.size(), "batch_session: bad circuit handle");
    return *circuits_[handle].view;
}

const std::vector<fault>& batch_session::faults(std::size_t handle) const {
    require(handle < circuits_.size(), "batch_session: bad circuit handle");
    return circuits_[handle].faults;
}

const engine_pool& batch_session::pool(std::size_t handle) const {
    require(handle < circuits_.size(), "batch_session: bad circuit handle");
    return *circuits_[handle].pool;
}

batch_session::result batch_session::run_one(const job& j) const {
    require(j.circuit < circuits_.size(), "batch_session: bad circuit handle");
    const compiled_circuit& cc = circuits_[j.circuit];
    const netlist& nl = *cc.nl;

    result r;
    r.circuit = j.circuit;
    r.revision = nl.revision();
    r.kind = j.kind;

    const weight_vector weights =
        j.weights.empty() ? uniform_weights(nl) : j.weights;
    require(weights.size() == nl.input_count(),
            "batch_session: weight count mismatch");

    switch (j.kind) {
        case job_kind::test_length: {
            cop_detect_estimator analysis;
            // Adopting the circuit's warm pool shares engines built by
            // earlier jobs and earlier run() calls; the estimator's own
            // state stays private.
            analysis.adopt_pool(*cc.pool);
            const double conf =
                j.confidence > 0.0 ? j.confidence : options_.confidence;
            r.length = required_test_length(nl, cc.faults, analysis, weights,
                                            conf, j.opt.threads);
            break;
        }
        case job_kind::optimize: {
            cop_detect_estimator analysis;
            analysis.adopt_pool(*cc.pool);
            // Stage/probe parallelism stays inside the job's own slice
            // of the pool: jobs are the outer parallel dimension here,
            // so each job defaults to sequential stages (opt.threads 1).
            analysis.set_threads(j.opt.threads);
            r.optimized =
                optimize_weights(nl, cc.faults, analysis, weights, j.opt);
            r.length = required_test_length(nl, cc.faults, analysis,
                                            r.optimized.weights,
                                            j.opt.confidence, j.opt.threads);
            break;
        }
        case job_kind::fault_sim: {
            fault_sim_options fo;
            fo.max_patterns = j.patterns;
            // Jobs fill the pool; block-level parallelism inside one
            // simulation would oversubscribe it.
            fo.threads = 1;
            weighted_random_source source(weights, j.seed);
            const fault_sim_result sim =
                run_fault_simulation(*cc.view, cc.faults, source, fo);
            r.patterns_applied = sim.patterns_applied;
            r.fault_count = cc.faults.size();
            r.detected = sim.detected_count;
            r.coverage_percent = sim.coverage_percent(cc.faults.size());
            break;
        }
    }
    return r;
}

std::vector<batch_session::result> batch_session::run(
    const std::vector<job>& jobs) {
    std::vector<result> results(jobs.size());
    // One parallel item per job; results are written by job index, so the
    // batch output is identical to a sequential loop for every pool size.
    pool_->parallel_for(jobs.size(),
                        [&](std::size_t i) { results[i] = run_one(jobs[i]); });
    return results;
}

std::vector<batch_session::result> batch_session::run_matrix(
    job_kind kind, const std::vector<std::size_t>& circuits,
    const std::vector<weight_vector>& weight_sets) {
    std::vector<std::size_t> targets = circuits;
    if (targets.empty()) {
        targets.resize(circuit_count());
        for (std::size_t c = 0; c < targets.size(); ++c) targets[c] = c;
    }
    std::vector<job> jobs;
    jobs.reserve(targets.size() * weight_sets.size());
    for (std::size_t c : targets) {
        for (const weight_vector& w : weight_sets) {
            job j;
            j.circuit = c;
            j.kind = kind;
            j.weights = w;
            jobs.push_back(std::move(j));
        }
    }
    return run(jobs);
}

}  // namespace wrpt
