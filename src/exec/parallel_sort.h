// Deterministic parallel stable sort for index vectors — the SORT stage
// kernel and the fault-ordering primitive in the simulator.
//
// The trick is the same one every deterministic-parallel path in this
// repo uses: make the answer a pure function of the data, never of the
// schedule. Ties under the caller's key are broken by the index itself,
// which turns the comparison into a strict *total* order — every pair of
// distinct elements compares unequal — so there is exactly one sorted
// permutation, and fixed-size shard sorts plus pairwise merges reproduce
// it bit-for-bit regardless of thread count, shard size, or which worker
// ran which piece. For an input vector in ascending index order (how
// every caller builds one), that unique permutation is exactly what
// std::stable_sort under the raw key produces.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "exec/thread_pool.h"

namespace wrpt {

/// Sort `idx` by `less` (a strict weak ordering over index values),
/// breaking ties by index. Runs fixed-size shard sorts plus pairwise
/// merge rounds on `pool` when one is supplied and the input is large
/// enough; inline otherwise. Output is identical in every configuration.
/// Precondition for the stable-sort equivalence: `idx` is in ascending
/// index order (tie-break by index == original relative order).
template <class Less>
void parallel_stable_sort_indices(std::vector<std::size_t>& idx, Less&& less,
                                  thread_pool* pool, unsigned threads,
                                  std::size_t shard = std::size_t{1} << 14) {
    const auto cmp = [&less](std::size_t a, std::size_t b) {
        if (less(a, b)) return true;
        if (less(b, a)) return false;
        return a < b;
    };
    const std::size_t n = idx.size();
    if (shard == 0) shard = 1;
    if (pool == nullptr || threads <= 1 || n < 2 * shard) {
        // cmp is a strict total order, so plain sort yields the same
        // unique permutation the parallel path produces.
        std::sort(idx.begin(), idx.end(), cmp);
        return;
    }

    // Shard boundaries are a fixed function of (n, shard) — never of the
    // thread count.
    std::vector<std::size_t> bounds;
    for (std::size_t b = 0; b < n; b += shard) bounds.push_back(b);
    bounds.push_back(n);
    pool->parallel_for(bounds.size() - 1, [&](std::size_t r) {
        std::sort(idx.begin() + bounds[r], idx.begin() + bounds[r + 1], cmp);
    });

    // Pairwise merge rounds, ping-ponging between idx and a scratch
    // buffer; an odd run out at the end of a round is copied through.
    std::vector<std::size_t> buf(n);
    std::size_t* src = idx.data();
    std::size_t* dst = buf.data();
    while (bounds.size() > 2) {
        const std::size_t runs = bounds.size() - 1;
        const std::size_t tasks = (runs + 1) / 2;
        pool->parallel_for(tasks, [&](std::size_t i) {
            const std::size_t lo = bounds[2 * i];
            if (2 * i + 2 <= runs) {
                const std::size_t mid = bounds[2 * i + 1];
                const std::size_t hi = bounds[2 * i + 2];
                std::merge(src + lo, src + mid, src + mid, src + hi,
                           dst + lo, cmp);
            } else {
                std::copy(src + lo, src + bounds[2 * i + 1], dst + lo);
            }
        });
        std::vector<std::size_t> next;
        for (std::size_t i = 0; i < bounds.size(); i += 2)
            next.push_back(bounds[i]);
        if (next.back() != n) next.push_back(n);
        bounds = std::move(next);
        std::swap(src, dst);
    }
    if (src != idx.data())
        std::copy(src, src + n, idx.data());
}

}  // namespace wrpt
