#include "exec/thread_pool.h"

#include <atomic>
#include <exception>

namespace wrpt {

thread_pool::thread_pool(unsigned threads) {
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    queues_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        queues_.push_back(std::make_unique<queue>());
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this, t] { worker_loop(t); });
}

thread_pool::~thread_pool() {
    {
        lock_guard lock(idle_mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> fn) {
    std::size_t target;
    {
        lock_guard lock(idle_mutex_);
        ++pending_;
        target = next_queue_++ % queues_.size();
    }
    {
        lock_guard lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(fn));
    }
    work_cv_.notify_one();
}

bool thread_pool::try_pop(std::size_t self, std::function<void()>& out) {
    // Own queue from the back (most recently pushed, cache-warm) ...
    {
        queue& q = *queues_[self];
        lock_guard lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // ... then steal the oldest task from the other queues.
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        queue& q = *queues_[(self + k) % queues_.size()];
        lock_guard lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void thread_pool::worker_loop(std::size_t self) {
    for (;;) {
        std::function<void()> task;
        if (!try_pop(self, task)) {
            unique_lock lock(idle_mutex_);
            work_cv_.wait(lock, [this] {
                idle_mutex_.assert_held();  // wait evaluates us locked
                if (stop_) return true;
                for (const auto& q : queues_) {
                    lock_guard ql(q->mutex);
                    if (!q->tasks.empty()) return true;
                }
                return false;
            });
            if (stop_) return;
            continue;
        }
        try {
            task();
        } catch (...) {
            // Fire-and-forget tasks must not take the process down;
            // parallel_for wraps its items and reports through its own
            // channel.
        }
        {
            lock_guard lock(idle_mutex_);
            if (--pending_ == 0) idle_cv_.notify_all();
        }
    }
}

void thread_pool::wait_idle() {
    unique_lock lock(idle_mutex_);
    idle_cv_.wait(lock, [this] {
        idle_mutex_.assert_held();  // wait evaluates us locked
        return pending_ == 0;
    });
}

namespace {

/// Shared state of one parallel_for call. Helpers hold it by shared_ptr,
/// so a helper that only gets scheduled after the call returned (possible
/// under nesting, when all workers were busy) finds the claim counter
/// exhausted and exits without touching freed memory.
struct for_state {
    std::function<void(std::size_t)> fn;
    std::size_t count;
    std::atomic<std::size_t> next{0};       // item claim counter
    std::atomic<std::size_t> completed{0};  // items finished or skipped
    std::atomic<bool> error{false};
    wrpt::mutex mutex;
    std::exception_ptr eptr WRPT_GUARDED_BY(mutex);
    wrpt::condition_variable done_cv;

    /// Claim and run items until the counter is exhausted. After an
    /// error, remaining items are claimed and skipped (still counted), so
    /// `completed == count` remains the single completion condition.
    void drain() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            if (!error.load(std::memory_order_acquire)) {
                try {
                    fn(i);
                } catch (...) {
                    lock_guard lock(mutex);
                    if (!eptr) eptr = std::current_exception();
                    error.store(true, std::memory_order_release);
                }
            }
            if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                count) {
                lock_guard lock(mutex);
                done_cv.notify_all();
            }
        }
    }
};

}  // namespace

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    // Items self-schedule off one claim counter; results keyed by item
    // index stay thread-count independent.
    auto state = std::make_shared<for_state>();
    state->fn = fn;
    state->count = count;

    // One stealable task per worker (each drains the shared counter), and
    // the caller drains alongside them. The caller never blocks on helper
    // *scheduling* — only on items already claimed — so nesting a
    // parallel_for inside a pool task cannot deadlock: the inner caller
    // simply drains its items itself when no worker is free.
    const std::size_t helpers =
        std::min<std::size_t>(size(), count > 1 ? count - 1 : 0);
    for (std::size_t t = 0; t < helpers; ++t)
        submit([state] { state->drain(); });
    state->drain();
    std::exception_ptr eptr;
    {
        unique_lock lock(state->mutex);
        state->done_cv.wait(lock, [&] {
            return state->completed.load(std::memory_order_acquire) == count;
        });
        eptr = state->eptr;
    }
    if (eptr) std::rethrow_exception(eptr);
}

thread_pool& shared_thread_pool() {
    static thread_pool pool;
    return pool;
}

}  // namespace wrpt
