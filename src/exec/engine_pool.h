// Shared pool of incremental COP engines over one compiled circuit_view —
// the exec-layer component under every parallel ANALYSIS/PREPARE path.
//
// An engine (cop_engine) is expensive to build (one full testability
// analysis) and cheap to move (incremental union-of-cones transactions),
// so the right ownership model is a pool: engines are built lazily when
// every existing one is on loan, kept warm when returned, and re-synced
// to a caller's base vector by an incremental move on the next checkout.
// The pool is keyed by the view's revision stamp; a circuit change means
// a new pool, never a silent stale engine.
//
// Concurrency contract: checkout()/return and the counters are
// mutex-guarded; the engine handed out by a lease is exclusively owned by
// the holder until the lease dies, and only ever touches the shared
// *immutable* view. Determinism: a cop_engine's state at a given weight
// vector is bit-identical however it got there (the cop_engine
// invariant), so computations that key their results by fault/probe index
// do not depend on which pool engine served them — the property every
// sharded stage in opt/ rests on.
//
// Both prob (cop_detect_estimator's sharded ANALYSIS and parallel
// PREPARE) and exec (batch_session's per-circuit warm pools shared across
// run() calls) sit on this type.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "io/weights_io.h"
#include "util/dense_map.h"
#include "util/sync.h"

namespace wrpt {

class circuit_view;
class cop_engine;

class engine_pool {
public:
    /// The view must outlive the pool and be compiled with input_cones
    /// (checked). No engine is built until the first checkout.
    explicit engine_pool(const circuit_view& cv);
    ~engine_pool();

    engine_pool(const engine_pool&) = delete;
    engine_pool& operator=(const engine_pool&) = delete;

    const circuit_view& view() const { return *cv_; }
    /// Revision stamp of the netlist the pooled engines analyze.
    std::uint64_t revision() const;

    /// Exclusive loan of one engine. Move-only; returns the engine to the
    /// pool (warm, at whatever weights it last held) on destruction.
    class lease {
    public:
        lease() = default;
        lease(lease&& other) noexcept;
        lease& operator=(lease&& other) noexcept;
        ~lease();

        cop_engine& engine() { return *engine_; }
        const cop_engine& engine() const { return *engine_; }
        /// True when this checkout had to build the engine (pool miss).
        bool fresh() const { return fresh_; }
        explicit operator bool() const { return engine_ != nullptr; }

    private:
        friend class engine_pool;
        lease(engine_pool* pool, std::unique_ptr<cop_engine> e, bool fresh,
              std::uint64_t stamp);

        engine_pool* pool_ = nullptr;
        std::unique_ptr<cop_engine> engine_;
        bool fresh_ = false;
        std::uint64_t stamp_ = 0;  ///< checkout stamp, for LRU eviction
    };

    /// Check out an engine synced to `base`: a warm engine is moved there
    /// by one incremental transaction; if every engine is on loan a new
    /// one is analyzed at `base` directly. Build and re-sync both happen
    /// outside the pool lock, so concurrent checkouts only serialize on
    /// the free-list bookkeeping.
    lease checkout(const weight_vector& base);

    struct counters {
        std::size_t hits = 0;      ///< checkouts served by a warm engine
        std::size_t misses = 0;    ///< checkouts that built a new engine
        std::size_t resyncs = 0;   ///< warm checkouts that needed a base move
        std::size_t evictions = 0; ///< engines destroyed by the capacity cap
        /// Warm-table entries moved by the slot map's internal maintenance
        /// (array-growth migration, rehash, backward-shift erase) — the
        /// bookkeeping cost of checkout/eviction churn, exported over the
        /// wire per pool.
        std::size_t relocations = 0;
    };
    counters stats() const;

    /// Capacity policy: at most `max_engines` warm engines are retained
    /// when leases return (0 = unbounded). A burst of concurrent leases
    /// may still build O(burst) engines — checkouts never block — but the
    /// coldest engines (least-recently checked out, by checkout stamp)
    /// are destroyed as the burst drains, so the pool cannot hold
    /// O(burst) full COP states forever.
    void set_capacity(std::size_t max_engines);
    std::size_t capacity() const;

    /// Drop warm engines beyond `keep` (coldest first, by checkout
    /// stamp); returns how many were destroyed. Counted as evictions.
    std::size_t evict(std::size_t keep = 0);

    /// Engines owned in total (warm + on loan) / currently checked in.
    std::size_t size() const;
    std::size_t warm_count() const;

private:
    struct warm_engine {
        std::unique_ptr<cop_engine> engine;
        std::uint64_t stamp = 0;  ///< value of stamp_ at last checkout
    };

    void give_back(std::unique_ptr<cop_engine> engine, std::uint64_t stamp);
    /// Move the coldest warm engines into `victims` until at most `keep`
    /// remain; returns how many were dropped. Caller holds mutex_; the
    /// victims are destroyed after the lock is released.
    std::size_t evict_locked(std::size_t keep,
                             std::vector<warm_engine>& victims)
        WRPT_REQUIRES(mutex_);

    const circuit_view* cv_;
    mutable wrpt::mutex mutex_;
    // Warm engines keyed by a monotonic return-slot id: the highest key is
    // always the most recently returned engine, so checkout's take-the-max
    // reproduces the old LIFO vector exactly; eviction erases arbitrary
    // (coldest-stamp) slots, which the map's backward-shift delete absorbs
    // without tombstones.
    util::dense_map<warm_engine, std::uint64_t> free_ WRPT_GUARDED_BY(mutex_);
    std::uint64_t next_slot_ WRPT_GUARDED_BY(mutex_) = 0;
    std::size_t total_ WRPT_GUARDED_BY(mutex_) = 0;
    std::size_t capacity_ WRPT_GUARDED_BY(mutex_) = 0;  ///< 0 = unbounded
    std::uint64_t stamp_ WRPT_GUARDED_BY(mutex_) = 0;   ///< checkout stamp
    counters stats_ WRPT_GUARDED_BY(mutex_);
};

}  // namespace wrpt
