// Small work-stealing thread pool — the execution substrate under the
// batched probe path and the multi-circuit batch_session.
//
// Design: one queue per worker (mutex-guarded deque). submit() places a
// task on a queue round-robin; a worker pops its own queue from the back
// (LIFO, cache-warm) and steals from other queues at the front (FIFO,
// oldest first) when its own runs dry. parallel_for() is the structured
// entry point every caller in this codebase uses: it turns [0, count)
// into self-scheduling stealable tasks, has the calling thread
// participate (so a pool of size 1 still makes progress with zero context
// switches), and rethrows the first exception a task raised.
//
// Determinism contract: parallel_for assigns *work items* dynamically but
// the item -> result mapping is fixed by index, so any caller that writes
// results[i] from item i gets thread-count-independent output. All
// parallel paths in this repo (batched PREPARE, batch_session) follow
// that pattern.

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace wrpt {

class thread_pool {
public:
    /// 0 = one worker per hardware thread. The pool keeps `threads`
    /// workers; the thread calling parallel_for() helps as an extra.
    explicit thread_pool(unsigned threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Run `fn(i)` for every i in [0, count). Items are claimed off one
    /// atomic counter by the workers and the calling thread, so load
    /// balances like stealing at item granularity. Blocks until every
    /// item has run; the first exception any item threw is rethrown.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

    /// Submit one fire-and-forget task. Use wait_idle() to join.
    void submit(std::function<void()> fn);

    /// Block until every submitted task has finished. Exceptions from
    /// submitted tasks are swallowed into std::terminate avoidance only —
    /// prefer parallel_for, which propagates them.
    void wait_idle();

private:
    struct queue {
        wrpt::mutex mutex;
        std::deque<std::function<void()>> tasks WRPT_GUARDED_BY(mutex);
    };

    bool try_pop(std::size_t self, std::function<void()>& out);
    void worker_loop(std::size_t self);

    std::vector<std::unique_ptr<queue>> queues_;
    std::vector<std::thread> workers_;
    wrpt::mutex idle_mutex_;
    wrpt::condition_variable work_cv_;  // new work or shutdown
    wrpt::condition_variable idle_cv_;  // pending_ reached zero
    std::size_t pending_ WRPT_GUARDED_BY(idle_mutex_) = 0;     // not yet done
    std::size_t next_queue_ WRPT_GUARDED_BY(idle_mutex_) = 0;  // round-robin
    bool stop_ WRPT_GUARDED_BY(idle_mutex_) = false;
};

/// Process-wide pool sized to the hardware — shared by callers that have
/// no pool of their own (the cop estimator's batched probe path).
thread_pool& shared_thread_pool();

}  // namespace wrpt
