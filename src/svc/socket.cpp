#include "svc/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "svc/wire.h"

namespace wrpt::svc {

socket_error errno_error(const std::string& what, int err) {
    return socket_error(what + ": " + std::strerror(err));
}

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
    throw errno_error(what, errno);
}

/// A sockaddr large enough for both families, plus its used length.
struct address {
    sockaddr_storage storage{};
    socklen_t length = 0;

    sockaddr* raw() { return reinterpret_cast<sockaddr*>(&storage); }
};

address to_address(const endpoint& ep) {
    address a;
    if (ep.kind == endpoint::transport::unix_domain) {
        sockaddr_un sun{};
        sun.sun_family = AF_UNIX;
        if (ep.path.empty())
            throw socket_error("socket: unix endpoint path is empty");
        if (ep.path.size() >= sizeof sun.sun_path)
            throw socket_error("socket: unix path '" + ep.path +
                               "' exceeds the sun_path limit (" +
                               std::to_string(sizeof sun.sun_path - 1) +
                               " bytes)");
        std::memcpy(sun.sun_path, ep.path.c_str(), ep.path.size() + 1);
        std::memcpy(&a.storage, &sun, sizeof sun);
        a.length = sizeof sun;
    } else {
        sockaddr_in sin{};
        sin.sin_family = AF_INET;
        sin.sin_port = htons(ep.port);
        // Loopback only: the daemon is a local service component.
        sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        std::memcpy(&a.storage, &sin, sizeof sin);
        a.length = sizeof sin;
    }
    return a;
}

int open_socket(const endpoint& ep) {
    const int domain =
        ep.kind == endpoint::transport::unix_domain ? AF_UNIX : AF_INET;
    const int fd = ::socket(domain, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket: cannot create socket");
    return fd;
}

}  // namespace

// --- endpoint ---------------------------------------------------------------

endpoint endpoint::parse(const std::string& spec) {
    if (spec.rfind("unix:", 0) == 0) {
        endpoint ep = unix_at(spec.substr(5));
        if (ep.path.empty())
            throw socket_error("socket: empty unix path in '" + spec + "'");
        return ep;
    }
    std::string digits = spec;
    if (spec.rfind("tcp:", 0) == 0) digits = spec.substr(4);
    if (!digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos &&
        digits.size() <= 5) {
        const unsigned long port = std::stoul(digits);
        if (port <= 65535) return tcp_at(static_cast<std::uint16_t>(port));
    }
    throw socket_error("socket: bad endpoint '" + spec +
                       "' (want <port>, tcp:<port> or unix:<path>)");
}

endpoint endpoint::unix_at(std::string path) {
    endpoint ep;
    ep.kind = transport::unix_domain;
    ep.path = std::move(path);
    return ep;
}

endpoint endpoint::tcp_at(std::uint16_t port) {
    endpoint ep;
    ep.kind = transport::tcp;
    ep.port = port;
    return ep;
}

std::string endpoint::describe() const {
    return kind == transport::unix_domain ? "unix:" + path
                                          : "tcp:" + std::to_string(port);
}

// --- stream -----------------------------------------------------------------

stream::stream(stream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

stream& stream::operator=(stream&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

stream::~stream() { close(); }

void stream::send_all(std::string_view data, int timeout_ms) {
    const bool bounded = timeout_ms >= 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(bounded ? timeout_ms : 0);
    while (!data.empty()) {
        if (bounded) {
            // Wait (bounded) for buffer space, so a peer that stopped
            // reading cannot park this thread in ::send forever.
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline)
                throw socket_error(
                    "socket: send timed out (peer not reading)");
            pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLOUT;
            const int remaining = static_cast<int>(
                std::chrono::ceil<std::chrono::milliseconds>(deadline - now)
                    .count());
            const int ready = ::poll(&pfd, 1, remaining);
            if (ready < 0) {
                if (errno == EINTR) continue;
                fail_errno("socket: poll failed");
            }
            if (ready == 0)
                throw socket_error(
                    "socket: send timed out (peer not reading)");
        }
        // MSG_NOSIGNAL: a vanished peer must surface as socket_error in
        // this thread, not SIGPIPE for the whole process.
        const ssize_t n =
            ::send(fd_, data.data(), data.size(),
                   MSG_NOSIGNAL | (bounded ? MSG_DONTWAIT : 0));
        if (n < 0) {
            if (errno == EINTR) continue;
            if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK))
                continue;  // lost the POLLOUT race; re-poll with deadline
            fail_errno("socket: send failed");
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
}

std::size_t stream::recv_some(char* buf, std::size_t cap) {
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, cap, 0);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        // A reset peer is an orderly end of conversation for a line
        // server: the client is gone either way.
        if (errno == ECONNRESET) return 0;
        fail_errno("socket: recv failed");
    }
}

namespace {

void set_fd_nonblocking(int fd, bool on) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) fail_errno("socket: cannot read fd flags");
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (want != flags && ::fcntl(fd, F_SETFL, want) != 0)
        fail_errno("socket: cannot toggle O_NONBLOCK");
}

}  // namespace

void stream::set_nonblocking(bool on) { set_fd_nonblocking(fd_, on); }

stream::io_status stream::recv_nonblocking(char* buf, std::size_t cap,
                                           std::size_t& n) {
    n = 0;
    for (;;) {
        const ssize_t r = ::recv(fd_, buf, cap, 0);
        if (r > 0) {
            n = static_cast<std::size_t>(r);
            return io_status::ok;
        }
        if (r == 0) return io_status::closed;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return io_status::would_block;
        // A reset peer ends the conversation like an orderly EOF does.
        if (errno == ECONNRESET) return io_status::closed;
        fail_errno("socket: recv failed");
    }
}

stream::io_status stream::send_nonblocking(std::string_view data,
                                           std::size_t& n) {
    n = 0;
    while (n < data.size()) {
        const ssize_t r = ::send(fd_, data.data() + n, data.size() - n,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (r >= 0) {
            n += static_cast<std::size_t>(r);
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return n > 0 ? io_status::ok : io_status::would_block;
        if (errno == EPIPE || errno == ECONNRESET) return io_status::closed;
        fail_errno("socket: send failed");
    }
    return io_status::ok;
}

stream::wait_result stream::wait_readable(int timeout_ms) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    for (;;) {
        const int n = ::poll(&pfd, 1, timeout_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_errno("socket: poll failed");
        }
        if (n == 0) return wait_result::timed_out;
        // POLLHUP/POLLERR report ready: the next recv sees EOF/error.
        return wait_result::ready;
    }
}

void stream::shutdown_read() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void stream::shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void stream::shutdown_both() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void stream::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// --- line_reader ------------------------------------------------------------

line_status line_reader::read_line(std::string& out, int timeout_ms) {
    // One deadline for the whole line: a client dripping a byte per poll
    // interval cannot renew its budget (the call blocks until a complete
    // line, EOF, the cap, or this deadline).
    const bool bounded = timeout_ms >= 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(bounded ? timeout_ms : 0);
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            // The cap applies even when the newline arrived in the same
            // chunk that blew the budget — an over-cap line is overflow,
            // never delivered.
            if (max_line_ != 0 && nl > max_line_) return line_status::overflow;
            out.assign(buffer_, 0, nl);
            if (!out.empty() && out.back() == '\r') out.pop_back();
            buffer_.erase(0, nl + 1);
            return line_status::ok;
        }
        if (saw_eof_) {
            // Deliver a final unterminated line once, then report EOF —
            // matching the stdin serve loop's std::getline behavior.
            if (buffer_.empty()) return line_status::eof;
            out = std::move(buffer_);
            buffer_.clear();
            return line_status::ok;
        }
        if (max_line_ != 0 && buffer_.size() > max_line_)
            return line_status::overflow;
        if (bounded) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) return line_status::timed_out;
            const int remaining = static_cast<int>(
                std::chrono::ceil<std::chrono::milliseconds>(deadline - now)
                    .count());
            if (stream_->wait_readable(remaining) ==
                stream::wait_result::timed_out)
                return line_status::timed_out;
        }
        char chunk[4096];
        const std::size_t n = stream_->recv_some(chunk, sizeof chunk);
        if (n == 0)
            saw_eof_ = true;
        else
            buffer_.append(chunk, n);
    }
}

// --- listener ---------------------------------------------------------------

listener::listener(const endpoint& ep, int backlog) : endpoint_(ep) {
    // Self-pipe for a portable accept() wakeup (see shutdown()).
    if (::pipe(wake_fds_) != 0) fail_errno("socket: cannot create wake pipe");
    try {
        init(ep, backlog);
    } catch (...) {
        close();  // a throwing constructor runs no destructor
        throw;
    }
}

namespace {

/// Is anyone actually listening at the unix-domain `addr`? A non-blocking
/// connect distinguishes a live listener (connects, or is in progress /
/// backlogged) from an orphaned socket file whose listener died without
/// cleanup (ECONNREFUSED). Anything unverifiable reports "alive", because
/// the only caller uses "dead" as a license to unlink. A path that is not
/// S_ISSOCK (a regular file squatting there) is "alive" up front: Linux
/// answers ECONNREFUSED for those too, so the errno alone cannot clear a
/// non-socket for deletion.
bool unix_listener_alive(const std::string& path, address& addr) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISSOCK(st.st_mode)) return true;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return true;  // cannot probe: assume alive, never unlink
    bool alive = true;
    try {
        set_fd_nonblocking(fd, true);
        if (::connect(fd, addr.raw(), addr.length) != 0)
            alive = errno != ECONNREFUSED;
    } catch (const socket_error&) {
        // fcntl failed: leave `alive` true — unverified means untouchable.
    }
    ::close(fd);
    return alive;
}

}  // namespace

void listener::init(const endpoint& ep, int backlog) {
    fd_ = open_socket(ep);
    if (ep.kind == endpoint::transport::tcp) {
        const int on = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);
    }
    address addr = to_address(ep);
    if (::bind(fd_, addr.raw(), addr.length) != 0) {
        int err = errno;
        // A unix listener that died without cleanup leaves its socket
        // file behind, and every restart would fail with EADDRINUSE
        // forever. Probe before giving up: only a *verified-dead* path
        // (bound file, nobody accepting) is unlinked and rebound — a live
        // listener or an unverifiable path keeps the original error.
        if (err == EADDRINUSE && ep.kind == endpoint::transport::unix_domain &&
            !unix_listener_alive(ep.path, addr)) {
            ::unlink(ep.path.c_str());
            err = ::bind(fd_, addr.raw(), addr.length) == 0 ? 0 : errno;
        }
        if (err != 0) {
            close();  // unlink_on_close_ is still false: never unlink a
                      // path someone else owns
            throw errno_error("socket: cannot bind " + ep.describe(), err);
        }
    }
    unlink_on_close_ = ep.kind == endpoint::transport::unix_domain;
    if (::listen(fd_, backlog) != 0) {
        const int err = errno;
        close();
        throw errno_error("socket: cannot listen on " + ep.describe(), err);
    }
    if (ep.kind == endpoint::transport::tcp && ep.port == 0) {
        sockaddr_in sin{};
        socklen_t len = sizeof sin;
        if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
            const int err = errno;
            close();
            throw errno_error("socket: cannot resolve ephemeral port", err);
        }
        endpoint_.port = ntohs(sin.sin_port);
    }
}

listener::~listener() { close(); }

void listener::set_nonblocking(bool on) { set_fd_nonblocking(fd_, on); }

listener::accept_status listener::accept_nonblocking(stream& out) {
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            out = stream(fd);
            return accept_status::accepted;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return accept_status::would_block;
        // A connection reset while still in the backlog is the client's
        // failure — try the next one.
        if (errno == ECONNABORTED || errno == EPROTO) continue;
        // Out of descriptors: the one signal where retrying immediately
        // is a busy loop and exiting kills every live session. The
        // caller backs off and keeps serving; the peer waits in the
        // backlog until a descriptor frees up.
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
            errno == ENOMEM)
            return accept_status::exhausted;
        return accept_status::closed;
    }
}

stream listener::accept() {
    for (;;) {
        // Poll the listening fd alongside the wake pipe, so shutdown()
        // interrupts a blocked accept on every POSIX platform (not just
        // the ones where shutdown(2) on a listening socket does).
        pollfd fds[2] = {};
        fds[0].fd = fd_;
        fds[0].events = POLLIN;
        fds[1].fd = wake_fds_[0];
        fds[1].events = POLLIN;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return stream();
        }
        // The wake byte is deliberately never drained: once shut down,
        // every later accept() returns invalid immediately.
        if (fds[1].revents != 0) return stream();
        if (fds[0].revents == 0) continue;
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) return stream(fd);
        if (errno == EINTR) continue;
        // A connection that was reset while still in the backlog is the
        // *client's* failure, not the listener's — a daemon must not
        // drain because one peer hung up early.
        if (errno == ECONNABORTED || errno == EPROTO) continue;
        // Out of descriptors: back off and retry; the reaper frees fds
        // as sessions finish, and draining here would kill every live
        // session because of a transient spike.
        if (errno == EMFILE || errno == ENFILE) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        // EINVAL after shutdown(), or a genuinely fatal listener error:
        // report "no more connections" and let the server drain.
        return stream();
    }
}

void listener::shutdown() {
    // The pipe write is the portable wakeup; the shutdown(2) is a
    // harmless fast path where it works.
    if (wake_fds_[1] >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
    }
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void listener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    for (int& wfd : wake_fds_) {
        if (wfd >= 0) {
            ::close(wfd);
            wfd = -1;
        }
    }
    if (unlink_on_close_) {
        ::unlink(endpoint_.path.c_str());
        unlink_on_close_ = false;
    }
}

// --- client -----------------------------------------------------------------

void client::connect(const endpoint& ep, int retry_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(retry_ms);
    for (;;) {
        stream s(open_socket(ep));
        address addr = to_address(ep);
        if (::connect(s.fd(), addr.raw(), addr.length) == 0) {
            stream_ = std::move(s);
            reader_ = line_reader(stream_);
            return;
        }
        const int err = errno;
        // The daemon may still be starting: the socket file does not
        // exist yet (ENOENT) or nobody listens yet (ECONNREFUSED).
        const bool transient = err == ENOENT || err == ECONNREFUSED;
        if (!transient || std::chrono::steady_clock::now() >= deadline)
            throw errno_error("socket: cannot connect to " + ep.describe(),
                              err);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

void client::close() {
    stream_.close();
    reader_ = line_reader(stream_);
}

void client::send_line(std::string_view line) {
    std::string framed(line);
    framed.push_back('\n');
    stream_.send_all(framed);
}

void client::send_raw(std::string_view bytes) { stream_.send_all(bytes); }

line_status client::recv_line(std::string& out, int timeout_ms) {
    return reader_.read_line(out, timeout_ms);
}

void client::send(const request& q) { send_line(encode(q)); }

bool client::recv(response& out, int timeout_ms) {
    std::string line;
    for (;;) {
        const line_status st = reader_.read_line(line, timeout_ms);
        if (st == line_status::eof) return false;
        if (st == line_status::timed_out)
            throw socket_error("socket: timed out waiting for a response");
        if (st == line_status::overflow)
            throw socket_error("socket: response line overflow");
        if (line.find_first_not_of(" \t") != std::string::npos) break;
    }
    out = decode_response(line);
    return true;
}

response client::roundtrip(const request& q) {
    send(q);
    response r;
    if (!recv(r))
        throw socket_error(
            "socket: server closed the connection before answering");
    return r;
}

}  // namespace wrpt::svc
