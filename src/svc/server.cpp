#include "svc/server.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "svc/service.h"
#include "svc/wire.h"

namespace wrpt::svc {

namespace {

// Poller keys of the two fds that are not connections.
constexpr std::uint64_t kListenerKey = 0;
constexpr std::uint64_t kWakeKey = 1;

std::chrono::milliseconds ms(int v) { return std::chrono::milliseconds(v); }

}  // namespace

server::server(service& svc, const endpoint& ep)
    : server(svc, ep, options{}) {}

server::server(service& svc, const endpoint& ep, options opt)
    : service_(&svc), options_(opt), listener_(ep) {
    // Worker -> reactor wake channel. A socketpair rather than a pipe so
    // the stream helpers (recv/send) apply unchanged.
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw errno_error("server: cannot create wake channel", errno);
    wake_read_ = stream(fds[0]);
    wake_write_ = stream(fds[1]);
    wake_read_.set_nonblocking(true);
    wake_write_.set_nonblocking(true);

    listener_.set_nonblocking(true);
    poller_.add(listener_.fd(), kListenerKey, true, false);
    poller_.add(wake_read_.fd(), kWakeKey, true, false);

    pool_ = std::make_unique<thread_pool>(options_.workers);
    reactor_ = std::thread([this] { reactor_loop(); });
}

server::~server() {
    stop();
    wait();
}

void server::stop() {
    // Everything else happens on the reactor thread (apply_drain), so
    // this is safe from workers — the shutdown request rides it.
    if (draining_.exchange(true, std::memory_order_acq_rel)) return;
    wake_reactor();
}

void server::wait() {
    {
        lock_guard lock(join_mutex_);
        if (reactor_.joinable()) reactor_.join();
    }
    // The reactor only retires once every connection closed; a worker
    // can still be finishing its (discarded) last item — let it land
    // before the caller tears anything down.
    if (pool_) pool_->wait_idle();
}

server::counters server::stats() const {
    counters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.refused = refused_.load(std::memory_order_relaxed);
    c.requests = requests_.load(std::memory_order_relaxed);
    c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    c.overflows = overflows_.load(std::memory_order_relaxed);
    c.timeouts = timeouts_.load(std::memory_order_relaxed);
    c.queue_drops = queue_drops_.load(std::memory_order_relaxed);
    c.accept_backoffs = accept_backoffs_.load(std::memory_order_relaxed);
    c.active = active_.load(std::memory_order_relaxed);
    c.workers = pool_ ? pool_->size() : 0;
    return c;
}

// --- reactor ----------------------------------------------------------------

void server::reactor_loop() {
    std::vector<poller::event> events;
    for (;;) {
        if (draining_.load(std::memory_order_acquire) && !drain_applied_)
            apply_drain();
        if (drain_applied_ && conns_.empty()) break;

        try {
            poller_.wait(events, next_timeout(clock::now()));
        } catch (const socket_error&) {
            break;  // poller gone bad: fail closed rather than spin
        }

        // Worker wakeups: drain the byte, clear the coalescing flag
        // *before* swapping the attention list — a worker that enqueues
        // after the swap sees the flag down and writes a fresh byte.
        for (const poller::event& e : events) {
            if (e.key != kWakeKey || !e.readable) continue;
            char buf[64];
            std::size_t n = 0;
            while (wake_read_.recv_nonblocking(buf, sizeof buf, n) ==
                   stream::io_status::ok) {
            }
            break;
        }
        wake_pending_.store(false, std::memory_order_release);
        std::vector<std::shared_ptr<connection>> notified;
        {
            lock_guard lock(notify_mutex_);
            notified.swap(notify_);
        }
        for (const auto& conn : notified) service_connection(conn);

        for (const poller::event& e : events) {
            if (e.key == kWakeKey) continue;
            if (e.key == kListenerKey) {
                if (e.readable) do_accept();
                continue;
            }
            const std::shared_ptr<connection>* slot = conns_.find(e.key);
            if (slot == nullptr) continue;  // closed earlier this batch
            std::shared_ptr<connection> conn = *slot;
            if (e.readable && !conn->eof && !conn->paused) do_read(conn);
            service_connection(conn);  // flush, re-arm, maybe retire
        }

        expire_deadlines(clock::now());
    }
}

void server::apply_drain() {
    drain_applied_ = true;
    if (listener_open_) {
        poller_.remove(listener_.fd());
        listener_.close();  // refuses new connections, unlinks unix path
        listener_open_ = false;
    }
    std::vector<std::shared_ptr<connection>> all;
    all.reserve(conns_.size());
    conns_.for_each([&](std::uint64_t, const std::shared_ptr<connection>& c) {
        all.push_back(c);
    });
    for (const auto& conn : all) {
        // Stop reading: idle clients see EOF once their responses
        // flushed; queued and in-flight requests still finish.
        conn->eof = true;
        conn->inbuf.clear();
        service_connection(conn);
    }
}

void server::do_accept() {
    if (!listener_open_ || accept_paused_ || drain_applied_) return;
    for (;;) {
        stream sock;
        const listener::accept_status st = listener_.accept_nonblocking(sock);
        if (st == listener::accept_status::would_block) return;
        if (st == listener::accept_status::exhausted) {
            // Out of descriptors: stop watching the listener for a
            // moment (the peer waits in the backlog) and keep serving
            // the sessions we already hold.
            accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
            accept_paused_ = true;
            accept_resume_ =
                clock::now() + ms(options_.accept_backoff_ms > 0
                                      ? options_.accept_backoff_ms
                                      : 1);
            poller_.modify(listener_.fd(), kListenerKey, false, false);
            return;
        }
        if (st == listener::accept_status::closed) {
            poller_.remove(listener_.fd());
            listener_open_ = false;
            return;
        }
        if (options_.max_connections != 0 &&
            conns_.size() >= options_.max_connections) {
            refused_.fetch_add(1, std::memory_order_relaxed);
            continue;  // sock closes on scope exit: the refusal is an EOF
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        sock.set_nonblocking(true);
        auto conn = std::make_shared<connection>();
        conn->sock = std::move(sock);
        conn->key = next_key_++;
        poller_.add(conn->sock.fd(), conn->key, true, false);
        conns_.try_emplace(conn->key, conn);
        active_.store(conns_.size(), std::memory_order_relaxed);
        if (options_.idle_timeout_ms > 0) {
            conn->has_idle_deadline = true;
            conn->idle_deadline = clock::now() + ms(options_.idle_timeout_ms);
        }
    }
}

void server::do_read(const std::shared_ptr<connection>& conn) {
    char buf[16384];
    // Bounded rounds per readiness event so one firehose client cannot
    // starve the rest; level-triggered polling re-reports leftovers.
    for (int round = 0; round < 8 && !conn->eof && !conn->paused; ++round) {
        std::size_t n = 0;
        stream::io_status st;
        try {
            st = conn->sock.recv_nonblocking(buf, sizeof buf, n);
        } catch (const socket_error&) {
            st = stream::io_status::closed;
        }
        if (st == stream::io_status::would_block) return;
        if (st == stream::io_status::closed) {
            conn->eof = true;
            // A final unterminated line before EOF is served once,
            // matching line_reader and the stdin daemon.
            if (!conn->inbuf.empty()) {
                conn->inbuf.push_back('\n');
                extract_lines(conn);
                conn->inbuf.clear();
            }
            return;
        }
        conn->inbuf.append(buf, n);
        extract_lines(conn);
    }
}

void server::extract_lines(const std::shared_ptr<connection>& conn) {
    std::string& in = conn->inbuf;
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = in.find('\n', start);
        if (nl == std::string::npos) break;
        // Recycle a retired line buffer when one is available (the worker
        // returns them under the mutex; we take the whole batch in one
        // lock when the reactor-side pool runs dry) — steady-state line
        // assembly allocates nothing.
        std::string line;
        if (conn->line_pool.empty()) {
            lock_guard lock(conn->mutex);
            conn->line_pool.swap(conn->retired_lines);
        }
        if (!conn->line_pool.empty()) {
            line = std::move(conn->line_pool.back());
            conn->line_pool.pop_back();
        }
        line.assign(in, start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        // A complete line arrived: the idle deadline is met. It re-arms
        // once the connection is quiescent again (service_connection).
        conn->has_idle_deadline = false;
        if (options_.max_line_bytes != 0 &&
            line.size() > options_.max_line_bytes) {
            overflows_.fetch_add(1, std::memory_order_relaxed);
            work_item item;
            item.synthetic = true;
            item.envelope =
                encode(make_error(
                    0, "request line exceeds " +
                           std::to_string(options_.max_line_bytes) +
                           " bytes")) +
                "\n";
            enqueue(conn, std::move(item));
            conn->eof = true;  // framing lost: answer once, then drop
            in.clear();
            return;
        }
        if (line.find_first_not_of(" \t") == std::string::npos) continue;
        work_item item;
        item.line = std::move(line);
        enqueue(conn, std::move(item));
    }
    in.erase(0, start);
    // The same budget applies to a line still waiting for its newline —
    // an endless line costs at most max_line_bytes + one read chunk.
    if (options_.max_line_bytes != 0 && in.size() > options_.max_line_bytes) {
        overflows_.fetch_add(1, std::memory_order_relaxed);
        work_item item;
        item.synthetic = true;
        item.envelope =
            encode(make_error(0, "request line exceeds " +
                                     std::to_string(options_.max_line_bytes) +
                                     " bytes")) +
            "\n";
        enqueue(conn, std::move(item));
        conn->eof = true;
        in.clear();
    }
}

void server::enqueue(const std::shared_ptr<connection>& conn,
                     work_item item) {
    bool dispatch = false;
    std::size_t depth = 0;
    {
        lock_guard lock(conn->mutex);
        if (conn->closed || conn->dropping) return;
        conn->queue.push_back(std::move(item));
        depth = conn->queue.size();
        if (!conn->worker_active) {
            conn->worker_active = true;
            dispatch = true;
        }
    }
    // Request-side flow control: beyond the bound the reactor stops
    // reading this fd (service_connection disarms the interest), so the
    // client's sends back up in its kernel buffer — nothing dropped.
    if (options_.max_pending_requests != 0 &&
        depth >= options_.max_pending_requests)
        conn->paused = true;
    if (dispatch) {
        std::shared_ptr<connection> owned = conn;
        pool_->submit([this, owned] { run_worker(owned); });
    }
}

void server::service_connection(const std::shared_ptr<connection>& conn) {
    bool outbox_empty = false;
    bool dropping = false;
    bool worker = false;
    bool progressed = false;
    std::size_t depth = 0;
    {
        lock_guard lock(conn->mutex);
        if (conn->closed) return;
        while (conn->outbox_pending() != 0 && !conn->write_failed) {
            std::size_t n = 0;
            stream::io_status st;
            try {
                // Send from the unsent suffix: the sent prefix is marked
                // by offset, not erased — no memmove per partial write.
                st = conn->sock.send_nonblocking(
                    std::string_view(conn->outbox).substr(conn->outbox_sent),
                    n);
            } catch (const socket_error&) {
                st = stream::io_status::closed;
            }
            if (st == stream::io_status::ok) {
                if (n > 0) progressed = true;
                conn->outbox_sent += n;
                if (conn->outbox_sent == conn->outbox.size()) {
                    conn->outbox.clear();  // capacity retained for reuse
                    conn->outbox_sent = 0;
                }
                continue;
            }
            if (st == stream::io_status::would_block) break;
            conn->write_failed = true;
        }
        outbox_empty = conn->outbox_pending() == 0;
        dropping = conn->dropping;
        worker = conn->worker_active;
        depth = conn->queue.size();
    }
    if (conn->write_failed) {
        close_connection(conn);
        return;
    }

    // A connection on its way out (peer EOF'd, overflowed, slow-reader
    // refusal) closes once its last response bytes left — or once the
    // send_timeout flush grace expired on a peer that will not drain.
    const bool finishing = (conn->eof || dropping) && depth == 0 && !worker;
    if (finishing && outbox_empty) {
        close_connection(conn);
        return;
    }
    // A peer that is draining — slowly, but draining — re-earns its grace
    // on every byte of progress: send_timeout bounds a *stall*, not the
    // whole transfer, so a slow-but-steady reader is never killed
    // mid-stream (the outbox cap already bounds total liability). The
    // stale deadline is dropped here and re-armed from now below.
    if (progressed && conn->has_drop_deadline)
        conn->has_drop_deadline = false;
    if (finishing && !conn->has_drop_deadline && options_.send_timeout_ms > 0) {
        conn->has_drop_deadline = true;
        conn->drop_deadline = clock::now() + ms(options_.send_timeout_ms);
    }

    if (conn->paused && !conn->eof && !dropping &&
        (options_.max_pending_requests == 0 ||
         depth < options_.max_pending_requests))
        conn->paused = false;

    // The idle deadline covers the wait for the *next complete line*:
    // armed only while truly quiescent, cleared by a complete line, and
    // never renewed by partial bytes (extract_lines does not touch it).
    if (options_.idle_timeout_ms > 0 && !conn->has_idle_deadline &&
        !conn->eof && !dropping && depth == 0 && !worker)
    {
        conn->has_idle_deadline = true;
        conn->idle_deadline = clock::now() + ms(options_.idle_timeout_ms);
    }

    const bool want_read = !conn->eof && !conn->paused && !dropping;
    const bool want_write = !outbox_empty;
    if (want_read != conn->armed_read || want_write != conn->armed_write) {
        poller_.modify(conn->sock.fd(), conn->key, want_read, want_write);
        conn->armed_read = want_read;
        conn->armed_write = want_write;
    }
}

void server::close_connection(const std::shared_ptr<connection>& conn) {
    {
        lock_guard lock(conn->mutex);
        if (conn->closed) return;
        conn->closed = true;
        conn->queue.clear();
        conn->outbox.clear();
        conn->outbox_sent = 0;
    }
    poller_.remove(conn->sock.fd());
    conn->sock.shutdown_both();
    conn->sock.close();
    conns_.erase(conn->key);
    active_.store(conns_.size(), std::memory_order_relaxed);
}

// --- workers ----------------------------------------------------------------

void server::run_worker(std::shared_ptr<connection> conn) {
    // One worker drains this connection's queue in arrival order — the
    // per-connection actor that keeps responses in request order while
    // other connections compute on other workers.
    work_item item;
    for (;;) {
        {
            lock_guard lock(conn->mutex);
            // Retire the previous line's buffer for the reactor to
            // refill (bounded: beyond the pool cap it just frees).
            if (!item.line.empty() && conn->retired_lines.size() < 16) {
                item.line.clear();
                conn->retired_lines.push_back(std::move(item.line));
            }
            if (conn->queue.empty() || conn->closed || conn->dropping) {
                conn->worker_active = false;
                break;
            }
            item = std::move(conn->queue.front());
            conn->queue.pop_front();
        }

        // At most one worker drains a connection, so its scratch buffer
        // is ours for the whole drain: every response encodes into the
        // same allocation once it reaches working size.
        std::string& out = conn->scratch;
        std::uint64_t rid = 0;
        bool shutdown = false;
        if (item.synthetic) {
            out = std::move(item.envelope);
        } else {
            response r;
            try {
                const request q = decode_request(item.line);
                shutdown = q.kind() == request_kind::shutdown;
                r = service_->handle(q);
                if (r.ok && r.kind() == response_kind::stats) {
                    // Socket-served stats responses carry the server's
                    // own admission counters alongside the service's.
                    auto& sp = std::get<stats_response>(r.payload).server;
                    sp.present = true;
                    sp.active = active_.load(std::memory_order_relaxed);
                    sp.workers = pool_->size();
                    sp.max_connections = options_.max_connections;
                    sp.queue_depth = options_.max_pending_requests;
                    sp.queue_bytes = options_.max_queue_bytes;
                    sp.accepted = accepted_.load(std::memory_order_relaxed);
                    sp.refused = refused_.load(std::memory_order_relaxed);
                    sp.requests =
                        requests_.load(std::memory_order_relaxed) + 1;
                    sp.protocol_errors =
                        protocol_errors_.load(std::memory_order_relaxed);
                    sp.overflows =
                        overflows_.load(std::memory_order_relaxed);
                    sp.timeouts = timeouts_.load(std::memory_order_relaxed);
                    sp.queue_drops =
                        queue_drops_.load(std::memory_order_relaxed);
                    sp.accept_backoffs =
                        accept_backoffs_.load(std::memory_order_relaxed);
                }
            } catch (const std::exception& e) {
                protocol_errors_.fetch_add(1, std::memory_order_relaxed);
                r = make_error(extract_id(item.line), e.what());
            }
            rid = r.id;
            encode_into(r, out);
            out.push_back('\n');
        }
        requests_.fetch_add(1, std::memory_order_relaxed);

        {
            lock_guard lock(conn->mutex);
            if (!conn->closed && !conn->dropping) {
                if (options_.max_queue_bytes != 0 &&
                    conn->outbox_pending() + out.size() >
                        options_.max_queue_bytes) {
                    // Response-side backpressure: the peer is not
                    // draining. Refuse (a small bounded envelope on top
                    // of the capped outbox) and drop — never buffer an
                    // unread response stream forever.
                    queue_drops_.fetch_add(1, std::memory_order_relaxed);
                    conn->dropping = true;
                    conn->queue.clear();
                    conn->outbox +=
                        encode(make_error(
                            rid,
                            "response queue overflow: slow reader dropped")) +
                        "\n";
                } else {
                    conn->outbox += out;
                }
            }
        }
        notify(conn);
        if (shutdown) stop();
    }
    // Final nudge: with the queue empty the reactor may now resume
    // reads, re-arm the idle deadline, or retire an EOF'd connection.
    notify(conn);
}

void server::notify(const std::shared_ptr<connection>& conn) {
    {
        lock_guard lock(notify_mutex_);
        notify_.push_back(conn);
    }
    wake_reactor();
}

void server::wake_reactor() {
    // Coalesced: one in-flight byte is enough, the reactor drains the
    // channel and swaps the whole attention list on each pass.
    if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
    const char byte = 1;
    std::size_t n = 0;
    try {
        wake_write_.send_nonblocking(std::string_view(&byte, 1), n);
    } catch (const socket_error&) {
        // Reactor gone (shutdown path): nothing left to wake.
    }
}

// --- deadlines --------------------------------------------------------------

int server::next_timeout(clock::time_point now) const {
    bool any = false;
    clock::time_point earliest{};
    const auto consider = [&](clock::time_point t) {
        if (!any || t < earliest) {
            earliest = t;
            any = true;
        }
    };
    if (accept_paused_) consider(accept_resume_);
    conns_.for_each([&](std::uint64_t, const std::shared_ptr<connection>& conn) {
        if (conn->has_idle_deadline) consider(conn->idle_deadline);
        if (conn->has_drop_deadline) consider(conn->drop_deadline);
    });
    if (!any) return -1;
    const auto wait_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now)
            .count();
    if (wait_ms <= 0) return 0;
    if (wait_ms >= 60000) return 60000;
    return static_cast<int>(wait_ms) + 1;  // round up past the deadline
}

void server::expire_deadlines(clock::time_point now) {
    if (accept_paused_ && now >= accept_resume_) {
        accept_paused_ = false;
        if (listener_open_ && !drain_applied_) {
            poller_.modify(listener_.fd(), kListenerKey, true, false);
            do_accept();  // the backlog kept waiting through the backoff
        }
    }
    std::vector<std::shared_ptr<connection>> due;
    conns_.for_each([&](std::uint64_t, const std::shared_ptr<connection>& conn) {
        if ((conn->has_drop_deadline && now >= conn->drop_deadline) ||
            (conn->has_idle_deadline && now >= conn->idle_deadline))
            due.push_back(conn);
    });
    for (const auto& conn : due) {
        if (conn->has_drop_deadline && now >= conn->drop_deadline) {
            // Last-chance flush before declaring the peer stalled:
            // writability wakeups are coarser than actual buffer space
            // (unix sockets signal POLLOUT only below a half-buffer
            // watermark), so a steadily-draining reader may not have
            // woken the reactor since the grace was armed even though a
            // send would succeed right now. Progress re-arms the grace;
            // only a peer that accepts nothing is genuinely stalled.
            service_connection(conn);
            if (!conn->has_drop_deadline || clock::now() < conn->drop_deadline)
                continue;
            close_connection(conn);
            continue;
        }
        conn->has_idle_deadline = false;
        bool quiescent = false;
        {
            lock_guard lock(conn->mutex);
            quiescent = conn->queue.empty() && !conn->worker_active &&
                        conn->outbox_pending() == 0 && !conn->dropping;
        }
        if (quiescent && !conn->eof) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            close_connection(conn);
        }
    }
}

}  // namespace wrpt::svc
