#include "svc/server.h"

#include <utility>

#include "svc/service.h"
#include "svc/wire.h"

namespace wrpt::svc {

server::server(service& svc, const endpoint& ep)
    : server(svc, ep, options{}) {}

server::server(service& svc, const endpoint& ep, options opt)
    : service_(&svc), options_(opt), listener_(ep) {
    acceptor_ = std::thread([this] { accept_loop(); });
}

server::~server() {
    stop();
    wait();
}

void server::stop() {
    // The exchange also keeps a second caller from re-walking the
    // connection list while wait() tears it down.
    if (draining_.exchange(true, std::memory_order_acq_rel)) return;
    listener_.shutdown();  // wakes the blocked accept()
    std::scoped_lock lock(connections_mutex_);
    for (const auto& conn : connections_)
        if (!conn->done.load(std::memory_order_acquire))
            conn->sock.shutdown_read();  // blocked readers wake with EOF
}

void server::wait() {
    if (acceptor_.joinable()) acceptor_.join();
    // The acceptor only exits once the drain started, so no new
    // connections appear past this point and the vector is stable.
    std::vector<std::unique_ptr<connection>> sessions;
    {
        std::scoped_lock lock(connections_mutex_);
        sessions.swap(connections_);
    }
    for (const auto& conn : sessions) {
        // Re-apply the drain half-close: if this wait() swapped the list
        // out before the stop() caller's walk reached it, a blocked
        // reader would otherwise never wake. shutdown() is idempotent.
        if (!conn->done.load(std::memory_order_acquire))
            conn->sock.shutdown_read();
        if (conn->thread.joinable()) conn->thread.join();
    }
}

server::counters server::stats() const {
    counters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.refused = refused_.load(std::memory_order_relaxed);
    c.requests = requests_.load(std::memory_order_relaxed);
    c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    c.overflows = overflows_.load(std::memory_order_relaxed);
    c.timeouts = timeouts_.load(std::memory_order_relaxed);
    std::scoped_lock lock(connections_mutex_);
    for (const auto& conn : connections_)
        if (!conn->done.load(std::memory_order_acquire)) ++c.active;
    return c;
}

void server::reap_finished() {
    std::vector<std::unique_ptr<connection>> finished;
    {
        std::scoped_lock lock(connections_mutex_);
        for (auto it = connections_.begin(); it != connections_.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                finished.push_back(std::move(*it));
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
    }
    // Join (and close) outside the lock; these threads have already left
    // their session loop.
    for (const auto& conn : finished)
        if (conn->thread.joinable()) conn->thread.join();
}

void server::accept_loop() {
    for (;;) {
        stream sock = listener_.accept();
        if (!sock) break;  // listener shut down (drain) or fatal error
        if (draining_.load(std::memory_order_acquire)) break;
        reap_finished();
        if (options_.max_connections != 0) {
            std::size_t active = 0;
            {
                std::scoped_lock lock(connections_mutex_);
                active = connections_.size();
            }
            if (active >= options_.max_connections) {
                refused_.fetch_add(1, std::memory_order_relaxed);
                continue;  // sock closes on scope exit
            }
        }
        auto conn = std::make_unique<connection>();
        conn->sock = std::move(sock);
        connection* raw = conn.get();
        {
            std::scoped_lock lock(connections_mutex_);
            connections_.push_back(std::move(conn));
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        raw->thread = std::thread([this, raw] { serve_connection(*raw); });
    }
}

void server::serve_connection(connection& conn) {
    line_reader reader(conn.sock, options_.max_line_bytes);
    const int timeout =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
    const int send_timeout =
        options_.send_timeout_ms > 0 ? options_.send_timeout_ms : -1;
    std::string line;
    // The same session loop as the stdin daemon, per connection: ids are
    // whatever this client chose, envelopes answer this client's broken
    // lines, and a shutdown request drains the whole server.
    while (!draining_.load(std::memory_order_acquire)) {
        const line_status st = reader.read_line(line, timeout);
        if (st == line_status::eof) break;
        if (st == line_status::timed_out) {
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (st == line_status::overflow) {
            // Framing is lost beyond the cap: answer once, then drop the
            // connection.
            overflows_.fetch_add(1, std::memory_order_relaxed);
            requests_.fetch_add(1, std::memory_order_relaxed);
            const std::string envelope = encode(make_error(
                0, "request line exceeds " +
                       std::to_string(options_.max_line_bytes) + " bytes"));
            try {
                conn.sock.send_all(envelope + "\n", send_timeout);
            } catch (const socket_error&) {
            }
            break;
        }
        if (line.find_first_not_of(" \t") == std::string::npos) continue;
        response r;
        bool shutdown = false;
        try {
            const request q = decode_request(line);
            shutdown = q.kind() == request_kind::shutdown;
            r = service_->handle(q);
        } catch (const std::exception& e) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            r = make_error(extract_id(line), e.what());
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        try {
            conn.sock.send_all(encode(r) + "\n", send_timeout);
        } catch (const socket_error&) {
            break;  // client went away (or stopped reading) mid-answer
        }
        if (shutdown) {
            stop();
            break;
        }
    }
    // Flush-then-close semantics for the peer; the fd itself is closed
    // when the reaper (or wait()) destroys the connection record.
    conn.sock.shutdown_both();
    conn.done.store(true, std::memory_order_release);
}

}  // namespace wrpt::svc
