// Concurrent-connection daemon core: one listening socket, one session
// per connection, all sessions over one **shared** svc::service.
//
// Threading model: a dedicated acceptor thread blocks in accept(); each
// accepted connection gets its own handler thread running the same
// JSON-lines session loop as the stdin daemon (read line -> decode ->
// service::handle -> encode -> flush). The service is the shared state —
// one result cache, one batch_session with its per-circuit engine pools —
// so two connections issuing the same query truly race on the cache and
// the engine-pool LRU; service::handle is thread-safe for exactly this
// caller (see svc/service.h).
//
// Hostile and slow clients: every line is framed by svc::line_reader
// under options::max_line_bytes — an endless line costs bounded memory
// and earns an error envelope followed by a disconnect, a malformed line
// earns a per-request error envelope addressed via extract_id, and a
// connection idle past options::idle_timeout_ms is dropped. Nothing a
// client sends can take the process down.
//
// Drain protocol: a {"req":"shutdown"} request on any connection (or a
// stop() call) answers that request, then (1) wakes and retires the
// acceptor so new connections are refused, and (2) half-closes the read
// side of every open connection, so blocked readers see EOF while
// requests already being computed still finish and flush their
// responses. wait() returns once the acceptor and every handler joined.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/socket.h"

namespace wrpt::svc {

class service;

class server {
public:
    struct options {
        /// Per-line byte cap before the newline arrives; beyond it the
        /// client gets an error envelope and a disconnect (0 = unbounded).
        std::size_t max_line_bytes = 1u << 20;
        /// Drop a connection idle (no complete line) this long
        /// (0 = never). One deadline per line — a slow-drip client
        /// cannot renew it byte by byte.
        int idle_timeout_ms = 0;
        /// Bound on each response write (0 = unbounded): a client that
        /// stops reading gets disconnected instead of parking a handler
        /// thread in send() forever — which would also wedge the drain.
        int send_timeout_ms = 30000;
        /// Refuse connections beyond this many concurrent sessions
        /// (0 = unbounded). Refused connections are closed immediately.
        std::size_t max_connections = 0;
    };

    /// Bind `ep` and start accepting. The service must outlive the
    /// server. Throws socket_error (with the errno string) when the
    /// endpoint cannot be bound.
    server(service& svc, const endpoint& ep);  // default options (defined
                                               // out of line: the nested
                                               // aggregate is incomplete
                                               // here)
    server(service& svc, const endpoint& ep, options opt);
    ~server();  // stop() + wait()

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// The bound endpoint — for TCP port 0 this carries the resolved
    /// ephemeral port.
    const endpoint& where() const { return listener_.bound(); }

    /// Initiate the drain: refuse new connections, EOF idle readers,
    /// let in-flight requests finish. Safe from any thread, including a
    /// handler thread (the shutdown request rides this). Idempotent.
    void stop();

    /// Block until the drain completed and every session thread joined.
    /// Returns immediately if already drained.
    void wait();

    bool draining() const {
        return draining_.load(std::memory_order_acquire);
    }

    struct counters {
        std::uint64_t accepted = 0;   ///< connections taken off the listener
        std::uint64_t refused = 0;    ///< closed for exceeding max_connections
        std::uint64_t requests = 0;   ///< lines answered (envelopes included)
        std::uint64_t protocol_errors = 0;  ///< lines that failed to decode
        std::uint64_t overflows = 0;  ///< connections dropped by the line cap
        std::uint64_t timeouts = 0;   ///< connections dropped idle
        std::size_t active = 0;       ///< sessions currently open
    };
    counters stats() const;

private:
    struct connection {
        stream sock;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void accept_loop();
    void serve_connection(connection& conn);
    /// Join and destroy finished sessions (called from the acceptor).
    void reap_finished();

    service* service_;
    options options_;
    listener listener_;
    std::thread acceptor_;
    std::atomic<bool> draining_{false};

    mutable std::mutex connections_mutex_;
    std::vector<std::unique_ptr<connection>> connections_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> refused_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> overflows_{0};
    std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace wrpt::svc
