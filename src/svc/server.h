// Event-driven daemon core: one reactor thread owning every connection
// fd, a fixed worker set on exec/thread_pool computing requests, all
// sessions over one **shared** svc::service.
//
// Threading model (replaces the session-per-connection thread model —
// the thread count is now fixed, however many connections are open):
//
//   reactor (1 thread)  epoll/poll readiness loop over the listening fd,
//                       a wake pipe, and every connection. It accepts
//                       non-blocking (EMFILE/ENFILE earns a timed backoff
//                       that keeps existing sessions alive), assembles
//                       request lines incrementally under the max-line
//                       budget, enqueues complete lines on the owning
//                       connection, and is the only thread that ever
//                       writes a socket (flush on readiness, EPOLLOUT
//                       armed only while a response tail is stuck).
//   workers (N threads) a fixed exec::thread_pool. Each connection with
//                       queued lines is an actor: one worker drains its
//                       queue in arrival order (decode -> service::handle
//                       -> encode -> append to the connection's outbox),
//                       so responses stay in request order per connection
//                       while distinct connections compute concurrently.
//                       The service is the shared state — one result
//                       cache, one batch_session — exactly as before.
//
// Backpressure, both directions:
//   requests   — at most options::max_pending_requests parsed lines may
//                wait per connection; beyond that the reactor stops
//                reading the fd (flow control: the client's sends back
//                up in the kernel, nothing is dropped) until the worker
//                drains below the bound.
//   responses  — the per-connection outbox is capped at
//                options::max_queue_bytes. A slow reader whose queue
//                fills gets a refusal envelope and is dropped (after a
//                bounded flush grace of options::send_timeout_ms), never
//                buffered forever. Drops are counted in
//                counters::queue_drops.
//
// Hostile and slow clients: an endless line costs bounded memory and
// earns an error envelope followed by a disconnect; a malformed line
// earns a per-request error envelope addressed via extract_id; a
// connection idle past options::idle_timeout_ms is dropped (one deadline
// per complete line — partial bytes cannot renew it). Nothing a client
// sends can take the process down.
//
// Drain protocol (unchanged from the thread-per-connection daemon): a
// {"req":"shutdown"} request on any connection (or a stop() call)
// answers that request, then (1) closes the listener so new connections
// are refused, and (2) stops reading every open connection, so blocked
// readers see EOF once their in-flight requests finished and flushed.
// wait() returns once the reactor retired with every session closed.
//
// stats responses passing through this server gain a "server" section
// (svc::server_stats_payload) carrying the admission-control counters,
// so remote clients observe refusals, drops and backoffs through the
// same wire stats request they already speak.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "svc/poller.h"
#include "svc/socket.h"
#include "util/dense_map.h"
#include "util/sync.h"

namespace wrpt::svc {

class service;

class server {
public:
    struct options {
        /// Per-line byte cap before the newline arrives; beyond it the
        /// client gets an error envelope and a disconnect (0 = unbounded).
        std::size_t max_line_bytes = 1u << 20;
        /// Drop a connection idle (no complete line) this long
        /// (0 = never). One deadline per line — a slow-drip client
        /// cannot renew it byte by byte.
        int idle_timeout_ms = 0;
        /// Flush grace for a connection on its way out (peer EOF'd,
        /// overflowed, or was refused as a slow reader) with response
        /// bytes still pending: the reactor keeps trying to deliver
        /// them this long before closing regardless (0 = wait forever,
        /// matching the unbounded send of the blocking server).
        int send_timeout_ms = 30000;
        /// Refuse connections beyond this many concurrent sessions
        /// (0 = unbounded). Refused connections are closed immediately.
        std::size_t max_connections = 0;
        /// Fixed worker set computing requests (0 = one per hardware
        /// thread). The thread count never scales with connections.
        unsigned workers = 0;
        /// Parsed request lines that may queue per connection before the
        /// reactor pauses reading the fd (flow control; 0 = unbounded).
        std::size_t max_pending_requests = 64;
        /// Byte cap on a connection's pending encoded responses. A slow
        /// reader whose outbox would exceed it gets a refusal envelope
        /// and is dropped (0 = unbounded).
        std::size_t max_queue_bytes = 1u << 20;
        /// Pause on accept() reporting descriptor exhaustion before the
        /// listening fd is polled again.
        int accept_backoff_ms = 50;
    };

    /// Bind `ep` and start the reactor. The service must outlive the
    /// server. Throws socket_error (with the errno string) when the
    /// endpoint cannot be bound.
    server(service& svc, const endpoint& ep);  // default options (defined
                                               // out of line: the nested
                                               // aggregate is incomplete
                                               // here)
    server(service& svc, const endpoint& ep, options opt);
    ~server();  // stop() + wait()

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// The bound endpoint — for TCP port 0 this carries the resolved
    /// ephemeral port.
    const endpoint& where() const { return listener_.bound(); }

    /// Initiate the drain: refuse new connections, EOF idle readers,
    /// let in-flight requests finish. Safe from any thread, including a
    /// worker thread (the shutdown request rides this). Idempotent.
    void stop();

    /// Block until the drain completed and the reactor retired with
    /// every session closed. Returns immediately if already drained.
    void wait();

    bool draining() const {
        return draining_.load(std::memory_order_acquire);
    }

    struct counters {
        std::uint64_t accepted = 0;   ///< connections taken off the listener
        std::uint64_t refused = 0;    ///< closed for exceeding max_connections
        std::uint64_t requests = 0;   ///< lines answered (envelopes included)
        std::uint64_t protocol_errors = 0;  ///< lines that failed to decode
        std::uint64_t overflows = 0;  ///< connections dropped by the line cap
        std::uint64_t timeouts = 0;   ///< connections dropped idle
        std::uint64_t queue_drops = 0;  ///< slow readers refused + dropped
        std::uint64_t accept_backoffs = 0;  ///< EMFILE/ENFILE accept pauses
        std::size_t active = 0;       ///< sessions currently open
        std::size_t workers = 0;      ///< fixed worker-set size
    };
    counters stats() const;

private:
    using clock = std::chrono::steady_clock;

    /// One unit a worker processes for a connection, in arrival order.
    /// Either a raw request line, or a pre-encoded envelope the reactor
    /// synthesized (line-cap overflow) that must keep its place in the
    /// response stream.
    struct work_item {
        std::string line;
        std::string envelope;
        bool synthetic = false;
    };

    struct connection {
        stream sock;
        std::uint64_t key = 0;

        // Reactor-thread-only state.
        std::string inbuf;          ///< partial line assembly
        bool eof = false;           ///< no more reads (peer EOF or drain)
        bool paused = false;        ///< reads withheld: request queue full
        bool armed_read = true;     ///< current poller read interest
        bool armed_write = false;   ///< current poller write interest
        bool write_failed = false;  ///< peer gone mid-flush
        bool has_idle_deadline = false;
        clock::time_point idle_deadline{};
        bool has_drop_deadline = false;
        clock::time_point drop_deadline{};

        // Reactor-thread-only: recycled line buffers ready to fill
        // (refilled by swapping in `retired_lines` when empty).
        std::vector<std::string> line_pool;

        // Worker-only while worker_active (at most one worker drains a
        // connection at a time): scratch encode buffer, reused across
        // every response of the connection — zero allocations per encode
        // at steady state.
        std::string scratch;

        // Shared between the reactor and the worker draining the queue.
        wrpt::mutex mutex;
        std::deque<work_item> queue WRPT_GUARDED_BY(mutex);
        bool worker_active WRPT_GUARDED_BY(mutex) = false;
        /// Encoded responses pending write.
        std::string outbox WRPT_GUARDED_BY(mutex);
        /// Prefix already written to the socket (cleared when it catches
        /// up — no per-send erase/memmove).
        std::size_t outbox_sent WRPT_GUARDED_BY(mutex) = 0;
        /// Buffers the worker returned for reuse.
        std::vector<std::string> retired_lines WRPT_GUARDED_BY(mutex);
        /// Flush outbox (bounded), then close.
        bool dropping WRPT_GUARDED_BY(mutex) = false;
        /// Record retired; workers must not touch.
        bool closed WRPT_GUARDED_BY(mutex) = false;

        std::size_t outbox_pending() const WRPT_REQUIRES(mutex) {
            return outbox.size() - outbox_sent;
        }
    };

    void reactor_loop();
    void apply_drain();
    void do_accept();
    void do_read(const std::shared_ptr<connection>& conn);
    /// Cut complete lines out of conn->inbuf, enqueue them, dispatch a
    /// worker; applies the max-line budget and request flow control.
    void extract_lines(const std::shared_ptr<connection>& conn);
    void enqueue(const std::shared_ptr<connection>& conn, work_item item);
    /// Reactor-side per-connection maintenance: flush the outbox, arm or
    /// disarm interest, resume paused reads, start idle/drop deadlines,
    /// and retire the connection once nothing remains.
    void service_connection(const std::shared_ptr<connection>& conn);
    void close_connection(const std::shared_ptr<connection>& conn);
    /// Worker body: drain conn->queue in order until empty.
    void run_worker(std::shared_ptr<connection> conn);
    /// Worker -> reactor: this connection needs attention (flush/close).
    void notify(const std::shared_ptr<connection>& conn);
    void wake_reactor();
    int next_timeout(clock::time_point now) const;
    void expire_deadlines(clock::time_point now);

    service* service_;
    options options_;
    listener listener_;
    bool listener_open_ = true;      ///< reactor-thread-only
    bool accept_paused_ = false;     ///< descriptor-exhaustion backoff
    clock::time_point accept_resume_{};

    poller poller_;
    stream wake_read_;               ///< self-pipe: reactor wake
    stream wake_write_;
    std::unique_ptr<thread_pool> pool_;

    std::atomic<bool> draining_{false};
    bool drain_applied_ = false;     ///< reactor-thread-only

    /// Reactor-thread-only connection table (poller key -> record).
    /// Keys come off a monotonic counter, so lookups are direct-index
    /// array loads while key churn stays low; a very long-lived daemon's
    /// late keys fall to the map's hash region, which is still O(1).
    util::dense_map<std::shared_ptr<connection>, std::uint64_t> conns_;
    std::uint64_t next_key_ = 2;  ///< 0 = listener, 1 = wake pipe

    /// Worker -> reactor attention queue.
    wrpt::mutex notify_mutex_;
    std::vector<std::shared_ptr<connection>> notify_
        WRPT_GUARDED_BY(notify_mutex_);
    std::atomic<bool> wake_pending_{false};

    /// join_mutex_ serializes wait() callers around the joinable check;
    /// reactor_ is written only at construction and by the winning
    /// join — always under this lock once the reactor runs.
    wrpt::mutex join_mutex_;
    std::thread reactor_ WRPT_GUARDED_BY(join_mutex_);

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> refused_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> overflows_{0};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> queue_drops_{0};
    std::atomic<std::uint64_t> accept_backoffs_{0};
    std::atomic<std::size_t> active_{0};
};

}  // namespace wrpt::svc
