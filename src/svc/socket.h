// Dependency-free POSIX stream transport under the serving layer — the
// byte-moving half of the socket daemon (svc/server.h is the
// session-per-connection half).
//
// The pieces compose bottom-up:
//
//   endpoint     parses and prints listen/connect specs: "unix:<path>"
//                for a unix-domain socket, "<port>" or "tcp:<port>" for
//                TCP on the loopback interface (the daemon is a local
//                service component, not an internet-facing one; put a
//                real front end ahead of it for remote traffic).
//   stream       a move-only connected-socket fd: send_all (SIGPIPE-free
//                via MSG_NOSIGNAL), recv_some, poll-based wait_readable
//                with a timeout, and half-close (shutdown_read is how
//                the server turns "drain now" into EOF for a blocked
//                reader without racing the fd's lifetime).
//   line_reader  buffered newline framing over a stream with a hard
//                max-line cap, so a hostile client streaming an endless
//                line costs bounded memory and gets a disconnect, never
//                a blown process. A final unterminated line before EOF
//                is delivered once (matching the stdin serve loop).
//   listener     bind/listen/accept plus shutdown() to wake a blocked
//                accept — the drain hook. Owns the unix socket file and
//                unlinks it on close; resolves an ephemeral TCP port at
//                bind time.
//   client       the tiny blocking client used by tests, the CI smoke
//                and `wrpt_cli request`: connect (with a bounded retry
//                window so a just-started daemon is not a race), send a
//                request, receive the matching response line.
//
// Everything reports failures as socket_error carrying the errno string,
// so callers (the CLI's distinct exit codes, the tests) can surface
// *why* a bind or connect failed.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "svc/request.h"
#include "util/error.h"

namespace wrpt::svc {

/// Thrown on transport failures; the message carries the errno string.
class socket_error : public error {
public:
    explicit socket_error(const std::string& what) : error(what) {}
};

/// Build a "<what>: <strerror(err)>" socket_error from a saved errno.
socket_error errno_error(const std::string& what, int err);

/// A parsed transport address. TCP endpoints live on the loopback
/// interface only; unix endpoints are filesystem paths (bounded by the
/// platform's sun_path limit, checked at bind/connect time).
struct endpoint {
    enum class transport : std::uint8_t { tcp, unix_domain };

    transport kind = transport::tcp;
    std::string path;         ///< unix_domain only
    std::uint16_t port = 0;   ///< tcp only (0 = ephemeral, resolved at bind)

    /// Parse "unix:<path>", "tcp:<port>" or a bare "<port>". Throws
    /// socket_error on anything else.
    static endpoint parse(const std::string& spec);

    static endpoint unix_at(std::string path);
    static endpoint tcp_at(std::uint16_t port);

    /// The canonical spec string ("unix:/run/wrpt.sock", "tcp:4070").
    std::string describe() const;
};

/// One connected stream socket, move-only; closes on destruction.
class stream {
public:
    stream() = default;
    explicit stream(int fd) : fd_(fd) {}
    stream(stream&& other) noexcept;
    stream& operator=(stream&& other) noexcept;
    ~stream();

    stream(const stream&) = delete;
    stream& operator=(const stream&) = delete;

    explicit operator bool() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Write all of `data`, looping over short writes. A peer that went
    /// away raises socket_error (never SIGPIPE). `timeout_ms` >= 0 bounds
    /// the total wait for the peer to drain its receive buffer — a
    /// non-reading client raises socket_error instead of blocking the
    /// writer forever.
    void send_all(std::string_view data, int timeout_ms = -1);

    /// Read up to `cap` bytes; 0 means orderly EOF. Throws on errors.
    std::size_t recv_some(char* buf, std::size_t cap);

    /// Outcome of a non-blocking I/O attempt (the reactor's vocabulary).
    ///   ok          — `n` bytes moved (possibly fewer than asked)
    ///   would_block — nothing available / no buffer space right now
    ///   closed      — the peer is gone (orderly EOF, reset, or broken
    ///                 pipe — the conversation is over either way)
    enum class io_status : std::uint8_t { ok, would_block, closed };

    /// Toggle O_NONBLOCK. The reactor runs every connection fd (and the
    /// listening fd) non-blocking; the blocking client/session paths
    /// never call this.
    void set_nonblocking(bool on);

    /// Non-blocking read of up to `cap` bytes into `buf`; `n` receives
    /// the count on ok (never 0 — a 0-byte read reports closed). Throws
    /// socket_error only on genuinely unexpected errnos.
    io_status recv_nonblocking(char* buf, std::size_t cap, std::size_t& n);

    /// Non-blocking partial write; `n` receives how much was accepted
    /// (ok may still be a short write — the caller keeps the tail and
    /// re-arms write interest). A vanished peer reports closed, never
    /// SIGPIPE.
    io_status send_nonblocking(std::string_view data, std::size_t& n);

    enum class wait_result : std::uint8_t { ready, timed_out };

    /// Poll for readability. `timeout_ms` < 0 waits forever; a hangup
    /// reports ready (the following recv_some returns EOF).
    wait_result wait_readable(int timeout_ms);

    /// Half-close the read side: a thread blocked in recv_some/poll on
    /// this fd wakes with EOF. Safe to call from another thread while a
    /// reader is blocked (the fd stays open, so no lifetime race).
    void shutdown_read();
    /// Half-close the write side: the peer sees EOF after draining what
    /// was already sent; this end can still receive.
    void shutdown_write();
    /// Full close of both directions, fd stays owned until destruction.
    void shutdown_both();

    void close();

private:
    int fd_ = -1;
};

/// Line framing status for line_reader::read_line.
enum class line_status : std::uint8_t { ok, eof, timed_out, overflow };

/// Buffered newline framing over a stream with a max-line cap.
class line_reader {
public:
    /// `max_line` caps the bytes a single line may hold before the
    /// terminating newline arrives (0 = unbounded).
    explicit line_reader(stream& s, std::size_t max_line = 0)
        : stream_(&s), max_line_(max_line) {}

    /// Extract the next line (newline stripped, trailing '\r' dropped).
    ///   ok        — `out` holds a complete line
    ///   eof       — peer closed; any final unterminated line was already
    ///               delivered as ok on the previous call
    ///   timed_out — no *complete line* within `timeout_ms` (>= 0 only).
    ///               The timeout is a deadline for the whole line, not a
    ///               per-byte gap: a slow-drip client cannot renew it.
    ///   overflow  — the line exceeded max_line; the connection should be
    ///               dropped (framing is lost)
    line_status read_line(std::string& out, int timeout_ms = -1);

private:
    stream* stream_;
    std::size_t max_line_;
    std::string buffer_;
    bool saw_eof_ = false;
};

/// A bound, listening socket. Owns (and unlinks) the unix socket file.
class listener {
public:
    /// Bind and listen, throwing socket_error (with the errno string) on
    /// failure. For TCP port 0 the resolved ephemeral port is available
    /// via bound().port immediately after construction.
    explicit listener(const endpoint& ep, int backlog = 64);
    ~listener();

    listener(const listener&) = delete;
    listener& operator=(const listener&) = delete;

    const endpoint& bound() const { return endpoint_; }

    /// The listening fd, for callers that multiplex it themselves (the
    /// reactor registers it with a poller instead of blocking here).
    int fd() const { return fd_; }

    /// Make the listening socket itself non-blocking, so accept() on it
    /// never parks the caller (reactor mode).
    void set_nonblocking(bool on);

    /// Outcome of a non-blocking accept attempt.
    ///   accepted    — `out` holds the new connection
    ///   would_block — backlog empty right now
    ///   exhausted   — out of descriptors (EMFILE/ENFILE/ENOBUFS/ENOMEM):
    ///                 the caller must back off and retry later, KEEPING
    ///                 existing connections alive — the pending peer
    ///                 stays in the backlog meanwhile
    ///   closed      — the listener was shut down or hit a fatal error
    enum class accept_status : std::uint8_t {
        accepted,
        would_block,
        exhausted,
        closed,
    };

    /// One non-blocking accept attempt (the fd must be non-blocking).
    /// Transient per-peer failures (ECONNABORTED/EPROTO) are retried
    /// internally; the statuses above are the only outcomes.
    accept_status accept_nonblocking(stream& out);

    /// Block for the next connection. Returns an invalid stream once
    /// shutdown() was called (or on a fatal listener error).
    stream accept();

    /// Wake a blocked accept(); all later accepts return invalid. Safe
    /// from another thread — the listening fd stays open until close().
    /// Implemented with a self-pipe the accept loop polls, so it works on
    /// every POSIX platform (shutdown(2) on a listening socket wakes
    /// accept on Linux but is ENOTCONN elsewhere).
    void shutdown();

    void close();

private:
    void init(const endpoint& ep, int backlog);

    int fd_ = -1;
    int wake_fds_[2] = {-1, -1};  ///< self-pipe: [read, write]
    endpoint endpoint_;
    bool unlink_on_close_ = false;
};

/// Tiny blocking request/response client over one connection — what the
/// tests, the CI smoke and `wrpt_cli request` speak.
class client {
public:
    client() = default;
    /// Connect, retrying for up to `retry_ms` while the endpoint does not
    /// accept yet (daemon still starting). Throws socket_error once the
    /// window is exhausted.
    explicit client(const endpoint& ep, int retry_ms = 0) {
        connect(ep, retry_ms);
    }

    client(const client&) = delete;
    client& operator=(const client&) = delete;

    void connect(const endpoint& ep, int retry_ms = 0);
    bool connected() const { return static_cast<bool>(stream_); }
    void close();

    /// Raw line I/O (the CI smoke replays scripted session files).
    void send_line(std::string_view line);
    /// Unframed bytes — no newline appended; how the tests impersonate
    /// hostile/slow clients.
    void send_raw(std::string_view bytes);
    /// Half-close the write side (the daemon sees EOF) while responses
    /// can still be drained — the orderly "no more requests" signal.
    void shutdown_write() { stream_.shutdown_write(); }
    line_status recv_line(std::string& out, int timeout_ms = -1);

    /// Typed I/O: encode-and-send / receive-and-decode one response.
    void send(const request& q);
    /// False on orderly EOF (server drained). Throws wire_error on a
    /// malformed response line, socket_error on transport failure.
    bool recv(response& out, int timeout_ms = -1);

    /// send + recv; throws socket_error if the server closed instead of
    /// answering.
    response roundtrip(const request& q);

private:
    stream stream_;
    line_reader reader_{stream_};
};

}  // namespace wrpt::svc
