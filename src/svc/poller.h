// Readiness poller under the event-driven serve daemon — one object that
// watches many fds and reports which became readable or writable.
//
// On Linux this is an epoll(7) instance: O(ready) wakeups independent of
// the number of registered connections, which is what lets the reactor
// hold tens of thousands of mostly-idle sessions on one thread. On other
// POSIX platforms the same interface is served by poll(2) over a
// maintained registration table — O(n) per wait, but semantically
// identical (level-triggered: a fd with unread input or writable buffer
// space reports ready on every wait until the condition clears).
//
// Registration is keyed by an opaque uint64 the caller chooses (the
// reactor uses it to look up the connection record), and interest is a
// (read, write) pair changed with modify() — how the reactor pauses
// reads on a connection whose request queue is full (flow control) and
// arms write interest only while a response tail is stuck in the kernel
// buffer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wrpt::svc {

class poller {
public:
    struct event {
        std::uint64_t key = 0;
        bool readable = false;
        bool writable = false;
        /// Peer hung up or the fd errored. Reported alongside readable so
        /// the caller's next read observes the EOF/error directly.
        bool hangup = false;
    };

    poller();   // throws socket_error when the kernel instance cannot open
    ~poller();

    poller(const poller&) = delete;
    poller& operator=(const poller&) = delete;

    /// Register `fd` under `key` with the given interest set.
    void add(int fd, std::uint64_t key, bool read, bool write);
    /// Change the interest set of a registered fd. An empty interest set
    /// (false, false) keeps the registration but reports nothing — how a
    /// paused connection stays owned without spinning a level-triggered
    /// wait.
    void modify(int fd, std::uint64_t key, bool read, bool write);
    void remove(int fd);

    /// Block up to `timeout_ms` (< 0 = forever) and append the ready set
    /// to `out` (cleared first). Returns the number of events. EINTR is
    /// retried internally against the same deadline semantics (a signal
    /// simply re-enters the wait).
    std::size_t wait(std::vector<event>& out, int timeout_ms);

private:
#ifdef __linux__
    int epoll_fd_ = -1;
#else
    struct entry {
        int fd = -1;
        std::uint64_t key = 0;
        bool read = false;
        bool write = false;
    };
    std::vector<entry> entries_;
#endif
};

}  // namespace wrpt::svc
