// Readiness poller under the event-driven serve daemon — one object that
// watches many fds and reports which became readable or writable.
//
// On Linux this is an epoll(7) instance: O(ready) wakeups independent of
// the number of registered connections, which is what lets the reactor
// hold tens of thousands of mostly-idle sessions on one thread. On other
// POSIX platforms the same interface is served by poll(2) over a
// maintained registration table — O(n) per wait, but semantically
// identical (level-triggered: a fd with unread input or writable buffer
// space reports ready on every wait until the condition clears).
//
// Both backends compile on Linux, and a global force-poll switch mirrors
// the compute kernels' force-scalar switch (core/simd.h): the
// WRPT_FORCE_POLL environment variable at startup, or set_force_poll()
// from code, makes subsequently constructed pollers use the portable
// poll(2) backend — how CI exercises the fallback path on Linux without
// a second platform. Building with -DWRPT_FORCE_POLL (a CMake option)
// compiles the epoll backend out entirely.
//
// Registration is keyed by an opaque uint64 the caller chooses (the
// reactor uses it to look up the connection record), and interest is a
// (read, write) pair changed with modify() — how the reactor pauses
// reads on a connection whose request queue is full (flow control) and
// arms write interest only while a response tail is stuck in the kernel
// buffer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

// The epoll backend exists only on Linux and only when it has not been
// compiled out. WRPT_FORCE_POLL (a CMake option) wins over the platform.
#if defined(__linux__) && !defined(WRPT_FORCE_POLL)
#define WRPT_POLLER_HAS_EPOLL 1
#endif

namespace wrpt::svc {

class poller {
public:
    struct event {
        std::uint64_t key = 0;
        bool readable = false;
        bool writable = false;
        /// Peer hung up or the fd errored. Reported alongside readable so
        /// the caller's next read observes the EOF/error directly.
        bool hangup = false;
    };

    poller();   // throws socket_error when the kernel instance cannot open
    ~poller();

    poller(const poller&) = delete;
    poller& operator=(const poller&) = delete;

    /// Register `fd` under `key` with the given interest set.
    void add(int fd, std::uint64_t key, bool read, bool write);
    /// Change the interest set of a registered fd. An empty interest set
    /// (false, false) keeps the registration but reports nothing — how a
    /// paused connection stays owned without spinning a level-triggered
    /// wait.
    void modify(int fd, std::uint64_t key, bool read, bool write);
    void remove(int fd);

    /// Block up to `timeout_ms` (< 0 = forever) and append the ready set
    /// to `out` (cleared first). Returns the number of events. EINTR is
    /// retried internally against the same deadline semantics (a signal
    /// simply re-enters the wait).
    std::size_t wait(std::vector<event>& out, int timeout_ms);

    /// Which backend this instance chose at construction: "epoll" or
    /// "poll".
    const char* backend_name() const;

    /// True when newly constructed pollers will use the poll(2) backend.
    /// Seeded from the WRPT_FORCE_POLL environment variable at startup or
    /// set by set_force_poll(); always effectively true on platforms
    /// without epoll.
    static bool poll_forced();
    /// Force (or stop forcing) the poll(2) backend for pollers constructed
    /// after this call. Existing instances keep the backend they chose.
    static void set_force_poll(bool force);

private:
    struct entry {
        int fd = -1;
        std::uint64_t key = 0;
        bool read = false;
        bool write = false;
    };

    bool use_poll_ = true;
    int epoll_fd_ = -1;            // epoll backend only
    std::vector<entry> entries_;   // poll backend only
};

}  // namespace wrpt::svc
