#include "svc/service.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/simd.h"
#include "exec/engine_pool.h"
#include "gen/suite.h"
#include "io/bench_io.h"
#include "svc/wire.h"
#include "util/error.h"

namespace wrpt::svc {

service::service() : service(options{}) {}

service::service(options opt)
    : options_(opt),
      registry_(registry::options{opt.max_views, opt.tenant_quota}) {
    batch_session::options so;
    so.threads = opt.threads;
    so.confidence = opt.confidence;
    so.max_engines = opt.max_engines;
    session_ = std::make_unique<batch_session>(so);
}

service::~service() = default;

service::cache_counters service::cache_stats() const {
    lock_guard lock(cache_mutex_);
    cache_counters c;
    c.probes = cache_probes_;
    c.hits = cache_hits_;
    c.misses = cache_misses_;
    c.evictions = cache_evictions_;
    c.entries = cache_entries_;
    c.bytes = cache_bytes_;
    return c;
}

response service::handle(const request& q) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    try {
        return std::visit(
            [&](const auto& p) -> response {
                using T = std::decay_t<decltype(p)>;
                if constexpr (std::is_same_v<T, load_circuit_request>) {
                    return handle_load(q.id, p);
                } else if constexpr (std::is_same_v<T,
                                                    register_circuit_request>) {
                    return handle_register(q.id, p);
                } else if constexpr (std::is_same_v<T,
                                                    reload_circuit_request>) {
                    return handle_reload(q.id, p);
                } else if constexpr (std::is_same_v<T, list_circuits_request>) {
                    return handle_list(q.id, p);
                } else if constexpr (std::is_same_v<T, stats_request>) {
                    return handle_stats(q.id);
                } else if constexpr (std::is_same_v<T, evict_request>) {
                    return handle_evict(q.id, p);
                } else if constexpr (std::is_same_v<T, shutdown_request>) {
                    response r;
                    r.id = q.id;
                    r.payload = shutdown_response{};
                    return r;
                } else if constexpr (std::is_same_v<T, matrix_request>) {
                    return handle_matrix(q.id, p);
                } else {
                    // One of the three job kinds: a batch of one.
                    return run_jobs(q.id, {job_request{p}}).front();
                }
            },
            q.payload);
    } catch (const registry_error& e) {
        return make_error(q.id, e.what(), e.code());
    } catch (const std::exception& e) {
        return make_error(q.id, e.what());
    }
}

namespace {

/// Shared parse step for load/register/reload: exactly one netlist source
/// (inline .bench text, a file path, or a generated suite circuit).
netlist parse_circuit_source(const char* what, const std::string& bench,
                             const std::string& path, const std::string& suite,
                             const std::string& name) {
    const int sources = (bench.empty() ? 0 : 1) + (path.empty() ? 0 : 1) +
                        (suite.empty() ? 0 : 1);
    require(sources == 1,
            std::string(what) +
                ": exactly one of bench/path/suite must be given");
    netlist nl = !bench.empty()
                     ? read_bench_string(bench, name.empty() ? "bench" : name)
                 : !path.empty() ? read_bench_file(path)
                                 : build_suite_circuit(suite);
    if (!name.empty()) nl.set_name(name);
    return nl;
}

}  // namespace

response service::handle_load(std::uint64_t id,
                              const load_circuit_request& p) {
    netlist nl =
        parse_circuit_source("load_circuit", p.bench, p.path, p.suite, p.name);
    // Growing the circuit table invalidates concurrent readers: wait for
    // in-flight jobs to finish, then mutate exclusively. Parsing and
    // generation above stay outside the lock.
    write_lock session_lock(session_mutex_);
    const std::size_t handle = session_->add_circuit(std::move(nl));

    const netlist& stored = session_->circuit(handle);
    const netlist_stats st = stored.stats();
    load_circuit_response out;
    out.circuit = handle;
    out.name = stored.name();
    out.inputs = st.input_count;
    out.outputs = st.output_count;
    out.gates = st.gate_count;
    out.faults = session_->faults(handle).size();
    out.revision = stored.revision();

    response r;
    r.id = id;
    r.payload = std::move(out);
    return r;
}

response service::handle_register(std::uint64_t id,
                                  const register_circuit_request& p) {
    netlist nl = parse_circuit_source("register_circuit", p.bench, p.path,
                                      p.suite, p.name);
    const netlist_stats st = nl.stats();
    // Registration reserves a handle (reshaping the session's table) but
    // compiles nothing — the first named job pays for the view.
    write_lock session_lock(session_mutex_);
    const registry::registered reg =
        registry_.register_circuit(*session_, p.tenant, p.name, std::move(nl));
    {
        lock_guard cache_lock(cache_mutex_);
        handle_tenant_.try_emplace(reg.handle, p.tenant);
    }
    register_circuit_response out;
    out.tenant = p.tenant;
    out.name = p.name;
    out.circuit = reg.handle;
    out.revision = reg.revision;
    out.inputs = st.input_count;
    out.outputs = st.output_count;
    out.gates = st.gate_count;
    response r;
    r.id = id;
    r.payload = std::move(out);
    return r;
}

response service::handle_reload(std::uint64_t id,
                                const reload_circuit_request& p) {
    netlist nl = parse_circuit_source("reload_circuit", p.bench, p.path,
                                      p.suite, p.name);
    // Exclusive: every in-flight job drains before the swap, so a request
    // only ever observes one revision end to end.
    write_lock session_lock(session_mutex_);
    const registry::reloaded rl =
        registry_.reload_circuit(*session_, p.tenant, p.name, std::move(nl));
    reload_circuit_response out;
    out.tenant = p.tenant;
    out.name = p.name;
    out.circuit = rl.handle;
    out.revision = rl.revision;
    out.old_revision = rl.old_revision;
    out.reloads = rl.reloads;
    response r;
    r.id = id;
    r.payload = std::move(out);
    return r;
}

response service::handle_list(std::uint64_t id,
                              const list_circuits_request& p) {
    read_lock session_lock(session_mutex_);
    list_circuits_response out;
    out.entries = registry_.list(p.tenant);
    response r;
    r.id = id;
    r.payload = std::move(out);
    return r;
}

response service::handle_stats(std::uint64_t id) {
    read_lock session_lock(session_mutex_);
    stats_response out;
    out.requests = requests_.load(std::memory_order_relaxed);
    // Registry before cache: the lock order is session -> registry ->
    // cache, and the per-tenant byte attribution lives under cache_mutex_.
    const registry::counters rc = registry_.stats();
    std::unordered_map<std::string, std::uint64_t>  // wrpt-lint: allow(dense-map)
        tenant_bytes;
    {
        lock_guard cache_lock(cache_mutex_);
        out.cache_probes = cache_probes_;
        out.cache_hits = cache_hits_;
        out.cache_misses = cache_misses_;
        out.cache_entries = cache_entries_;
        out.cache_evictions = cache_evictions_;
        out.cache_bytes = cache_bytes_;
        tenant_bytes = tenant_bytes_;
    }
    out.circuits = session_->circuit_count();
    const simd::isa active = simd::active_isa();
    out.simd_isa = simd::isa_name(active);
    out.simd_lanes = simd::lane_width(active);
    if (rc.circuits > 0) {
        const registry::tenant_quota& q = registry_.config().quota;
        out.registry.present = true;
        out.registry.circuits = rc.circuits;
        out.registry.resident = rc.resident;
        out.registry.max_views = registry_.config().max_views;
        out.registry.view_evictions = rc.view_evictions;
        out.registry.view_rebuilds = rc.view_rebuilds;
        for (const registry::tenant_row& t : rc.tenants) {
            tenant_stats_payload tp;
            tp.tenant = t.tenant;
            tp.circuits = t.circuits;
            const auto bit = tenant_bytes.find(t.tenant);
            tp.cache_bytes = bit == tenant_bytes.end()
                                 ? 0
                                 : static_cast<std::size_t>(bit->second);
            tp.max_circuits = q.max_circuits;
            tp.max_engines = q.max_engines;
            tp.max_cache_bytes = static_cast<std::size_t>(q.max_cache_bytes);
            tp.rejections = t.rejections;
            out.registry.tenants.push_back(std::move(tp));
        }
    }
    for (const std::size_t c : session_->handles()) {
        const engine_pool& pool = session_->pool(c);
        const engine_pool::counters pc = pool.stats();
        pool_stats_payload ps;
        ps.circuit = c;
        ps.revision = pool.revision();
        ps.engines = pool.size();
        ps.warm = pool.warm_count();
        ps.capacity = pool.capacity();
        ps.hits = pc.hits;
        ps.misses = pc.misses;
        ps.resyncs = pc.resyncs;
        ps.evictions = pc.evictions;
        ps.relocations = pc.relocations;
        out.pools.push_back(ps);
    }
    response r;
    r.id = id;
    r.payload = std::move(out);
    return r;
}

response service::handle_evict(std::uint64_t id, const evict_request& p) {
    // Shared session lock: pools are internally synchronized, and the
    // cache has its own mutex — eviction may interleave with running
    // jobs, exactly like a capacity-cap trim would.
    read_lock session_lock(session_mutex_);
    lock_guard cache_lock(cache_mutex_);
    evict_response out;
    if (p.all) {
        out.cache_entries = cache_entries_;
        cache_.clear();
        cache_order_.clear();
        cache_entries_ = 0;
        cache_bytes_ = 0;
        tenant_bytes_.clear();
        for (const std::size_t c : session_->handles())
            out.engines += session_->pool(c).evict(p.keep_engines);
    } else {
        require(session_->has_circuit(p.circuit), "evict: bad circuit handle");
        // Two-level payoff: evicting one circuit drops its bucket whole
        // instead of scanning every cached key in the service.
        if (circuit_bucket* b = cache_.find(p.circuit)) {
            out.cache_entries = b->entries.size();
            cache_entries_ -= b->entries.size();
            cache_bytes_ -= b->bytes;
            tenant_bytes_add(p.circuit, -static_cast<std::int64_t>(b->bytes));
            b->entries.clear();
            b->bytes = 0;
        }
        out.engines = session_->pool(p.circuit).evict(p.keep_engines);
    }
    cache_evictions_ += out.cache_entries;
    response r;
    r.id = id;
    r.payload = out;
    return r;
}

namespace {

/// Option-payload validation, so predictably bad options answer with a
/// per-job envelope instead of throwing deep inside a concurrent batch.
std::string validate_confidence(double confidence, bool zero_ok) {
    if (zero_ok && confidence == 0.0) return {};  // session default
    if (!std::isfinite(confidence) || confidence <= 0.0 || confidence >= 1.0)
        return "confidence must lie in (0,1)";
    return {};
}

std::string validate_options(const test_length_request& p) {
    return validate_confidence(p.confidence, true);
}

std::string validate_options(const optimize_request& p) {
    if (std::string msg = validate_confidence(p.options.confidence, false);
        !msg.empty())
        return msg;
    if (p.options.max_sweeps == 0) return "max_sweeps must be at least 1";
    if (!(p.options.weight_min > 0.0) ||
        !(p.options.weight_max < 1.0) ||
        !(p.options.weight_min < p.options.weight_max))
        return "need 0 < weight_min < weight_max < 1";
    if (!std::isfinite(p.options.alpha) || p.options.alpha < 0.0)
        return "alpha must be finite and non-negative";
    if (!std::isfinite(p.options.grid) || p.options.grid < 0.0 ||
        p.options.grid >= 1.0)
        return "grid must lie in [0,1)";
    if (!(p.options.trust_step > 0.0)) return "trust_step must be positive";
    if (p.options.prepare_block == 0)
        return "prepare_block must be at least 1";
    return {};
}

std::string validate_options(const fault_sim_request&) { return {}; }

}  // namespace

std::string service::resolve_named(job_request& j, std::string* code) const {
    const std::string name =
        std::visit([](const auto& p) { return p.name; }, j);
    if (name.empty()) return {};
    const registry::resolution r = registry_.resolve(name);
    if (!r.found) {
        *code = "not-found";
        return "unknown circuit '" + name + "'";
    }
    if (!r.resident || !session_->has_circuit(r.handle)) {
        // Unreachable from run_jobs (residency is ensured under the same
        // continuously-held session lock); defensive for future callers.
        *code = "not-ready";
        return "circuit '" + name + "' has no resident view";
    }
    // Rewrite to the handle spelling and drop the name, so the cache
    // fingerprint below is shared with handle-addressed queries.
    std::visit(
        [&](auto& p) {
            p.circuit = r.handle;
            p.name.clear();
        },
        j);
    return {};
}

std::string service::validate(const job_request& j) const {
    const std::size_t handle =
        std::visit([](const auto& p) { return p.circuit; }, j);
    if (!session_->has_circuit(handle))
        return "bad circuit handle " + std::to_string(handle);
    const weight_vector& weights = std::visit(
        [](const auto& p) -> const weight_vector& { return p.weights; }, j);
    if (!weights.empty() &&
        weights.size() != session_->circuit(handle).input_count())
        return "weight count mismatch: got " + std::to_string(weights.size()) +
               ", circuit has " +
               std::to_string(session_->circuit(handle).input_count()) +
               " inputs";
    for (const double w : weights) {
        if (!std::isfinite(w)) return "weights must be finite";
        if (w < 0.0 || w > 1.0) return "weights must lie in [0,1]";
    }
    return std::visit([](const auto& p) { return validate_options(p); }, j);
}

service::cache_locator service::key_of(const job_request& j) const {
    cache_locator key;
    key.circuit = std::visit([](const auto& p) { return p.circuit; }, j);
    key.revision = session_->circuit(key.circuit).revision();
    // Canonical fingerprint: the wire encoding of the job with the
    // level-1 handle zeroed, the empty (= uniform) weight shorthand
    // resolved so both spellings of the same query share one entry, and
    // the result-neutral thread counts normalized away — results are
    // thread-invariant by the pipeline's bit-identity contract, so
    // clients that differ only in threads share entries. Exact by
    // construction — the encoder prints the kind, every option field and
    // the full weight vector, always in the same order, with round-trip
    // double formatting.
    job_request normalized = j;
    std::visit(
        [&](auto& p) {
            using T = std::decay_t<decltype(p)>;
            p.circuit = 0;
            if (p.weights.empty())
                p.weights = uniform_weights(session_->circuit(key.circuit));
            if constexpr (std::is_same_v<T, test_length_request>)
                p.threads = 1;
            else if constexpr (std::is_same_v<T, optimize_request>)
                p.options.threads = 1;
        },
        normalized);
    request q;
    std::visit([&](auto&& p) { q.payload = std::move(p); },
               std::move(normalized));
    key.fingerprint = encode(q);
    return key;
}

namespace {

/// Deterministic, platform-stable approximation of an entry's retained
/// bytes: the fingerprint key, a fixed per-entry overhead, and the
/// variable-length result payloads (weights and sweep history at 8 bytes
/// per element, history records carry a double + a size).
std::uint64_t entry_cost(const std::string& fingerprint,
                         const batch_session::result& r) {
    return static_cast<std::uint64_t>(fingerprint.size()) + 64 +
           8 * static_cast<std::uint64_t>(r.optimized.weights.size()) +
           16 * static_cast<std::uint64_t>(r.optimized.history.size());
}

}  // namespace

const service::cache_entry* service::probe_cached(const cache_locator& key) {
    // Caller holds cache_mutex_.
    ++cache_probes_;
    const circuit_bucket* b = cache_.find(key.circuit);
    if (b == nullptr || b->revision != key.revision) return nullptr;
    const auto it = b->entries.find(key.fingerprint);
    return it == b->entries.end() ? nullptr : &it->second;
}

void service::insert_cached(cache_locator key, const batch_session::result& r) {
    // Caller holds cache_mutex_.
    const std::uint64_t seq = ++cache_sequence_;
    circuit_bucket& b = cache_[key.circuit];
    if (b.revision != key.revision) {
        // Re-stamped handle (hot reload): the old revision's entries can
        // never hit again — orphan the bucket wholesale. Each entry
        // counts as exactly one eviction here; the stale order records
        // left in the FIFO are skipped silently below, never recounted.
        cache_evictions_ += b.entries.size();
        cache_entries_ -= b.entries.size();
        cache_bytes_ -= b.bytes;
        tenant_bytes_add(key.circuit, -static_cast<std::int64_t>(b.bytes));
        b.entries.clear();
        b.bytes = 0;
        b.revision = key.revision;
    }
    const std::uint64_t cost = entry_cost(key.fingerprint, r);
    const auto [it, fresh] = b.entries.try_emplace(key.fingerprint);
    if (!fresh) {
        // Benign same-key race (two connections computed the same bits):
        // replace, keeping the accounting exact.
        b.bytes -= it->second.bytes;
        cache_bytes_ -= it->second.bytes;
        tenant_bytes_add(key.circuit,
                         -static_cast<std::int64_t>(it->second.bytes));
        --cache_entries_;
    }
    it->second = cache_entry{r, seq, cost};
    b.bytes += cost;
    cache_bytes_ += cost;
    tenant_bytes_add(key.circuit, static_cast<std::int64_t>(cost));
    ++cache_entries_;
    // The order index is only needed (and only maintained) under a cap —
    // the global entry cap or a per-tenant byte quota; without either it
    // would grow unboundedly for nothing.
    if (options_.max_cache_entries == 0 &&
        registry_.config().quota.max_cache_bytes == 0)
        return;
    const std::size_t inserted_circuit = key.circuit;
    cache_order_.push_back(
        order_record{key.circuit, seq, std::move(key.fingerprint)});
    while (options_.max_cache_entries != 0 &&
           cache_entries_ > options_.max_cache_entries &&
           !cache_order_.empty()) {
        const order_record oldest = std::move(cache_order_.front());
        cache_order_.pop_front();
        circuit_bucket* ob = cache_.find(oldest.circuit);
        if (ob == nullptr) continue;
        const auto oit = ob->entries.find(oldest.fingerprint);
        // Skip stale order records: the key was dropped by an evict
        // request or a reload orphan (already counted there), or
        // re-inserted later under a newer sequence.
        if (oit != ob->entries.end() &&
            oit->second.sequence == oldest.sequence) {
            ob->bytes -= oit->second.bytes;
            cache_bytes_ -= oit->second.bytes;
            tenant_bytes_add(oldest.circuit,
                             -static_cast<std::int64_t>(oit->second.bytes));
            ob->entries.erase(oit);
            --cache_entries_;
            ++cache_evictions_;
        }
    }
    enforce_tenant_cache_quota(inserted_circuit);
}

void service::tenant_bytes_add(std::size_t circuit, std::int64_t delta) {
    // Caller holds cache_mutex_.
    const std::string* tenant = handle_tenant_.find(circuit);
    if (tenant == nullptr) return;  // handle-loaded circuit: untracked
    std::uint64_t& bytes = tenant_bytes_[*tenant];
    bytes = static_cast<std::uint64_t>(static_cast<std::int64_t>(bytes) +
                                       delta);
}

void service::enforce_tenant_cache_quota(std::size_t circuit) {
    // Caller holds cache_mutex_.
    const std::uint64_t cap = registry_.config().quota.max_cache_bytes;
    if (cap == 0) return;
    const std::string* tenant = handle_tenant_.find(circuit);
    if (tenant == nullptr) return;
    const auto bit = tenant_bytes_.find(*tenant);
    if (bit == tenant_bytes_.end() || bit->second <= cap) return;
    // Walk the global FIFO oldest-first without popping (records owned by
    // other tenants must keep their place); entries this evicts leave
    // stale records behind, skipped lazily like any other.
    for (const order_record& rec : cache_order_) {
        if (bit->second <= cap) break;
        const std::string* owner = handle_tenant_.find(rec.circuit);
        if (owner == nullptr || *owner != *tenant) continue;
        circuit_bucket* ob = cache_.find(rec.circuit);
        if (ob == nullptr) continue;
        const auto oit = ob->entries.find(rec.fingerprint);
        if (oit == ob->entries.end() || oit->second.sequence != rec.sequence)
            continue;
        ob->bytes -= oit->second.bytes;
        cache_bytes_ -= oit->second.bytes;
        bit->second -= oit->second.bytes;
        ob->entries.erase(oit);
        --cache_entries_;
        ++cache_evictions_;
    }
    // Cheap compaction: drop leading records that no longer name a live
    // entry, so repeated quota sweeps do not rescan a stale prefix.
    while (!cache_order_.empty()) {
        const order_record& front = cache_order_.front();
        const circuit_bucket* fb = cache_.find(front.circuit);
        if (fb != nullptr) {
            const auto fit = fb->entries.find(front.fingerprint);
            if (fit != fb->entries.end() &&
                fit->second.sequence == front.sequence)
                break;
        }
        cache_order_.pop_front();
    }
}

response service::to_response(std::uint64_t id,
                              const batch_session::result& r, bool cached) {
    response out;
    out.id = id;
    const double elapsed_ms = cached ? 0.0 : r.elapsed_seconds * 1e3;
    length_payload length;
    length.feasible = r.length.feasible;
    length.test_length = r.length.test_length;
    length.relevant_faults = r.length.relevant_faults;
    length.zero_prob_faults = r.length.zero_prob_faults;
    length.hardest_probability = r.length.hardest_probability;
    switch (r.kind) {
        case job_kind::test_length: {
            test_length_response p;
            p.circuit = r.circuit;
            p.revision = r.revision;
            p.cached = cached;
            p.elapsed_ms = elapsed_ms;
            p.length = length;
            out.payload = std::move(p);
            break;
        }
        case job_kind::optimize: {
            optimize_response p;
            p.circuit = r.circuit;
            p.revision = r.revision;
            p.cached = cached;
            p.elapsed_ms = elapsed_ms;
            p.feasible = r.optimized.feasible;
            p.initial_length = r.optimized.initial_test_length;
            p.final_length = r.optimized.final_test_length;
            p.sweeps = r.optimized.history.size();
            p.analysis_calls = r.optimized.analysis_calls;
            p.zero_prob_faults = r.optimized.zero_prob_faults;
            p.weights = r.optimized.weights;
            p.length = length;
            out.payload = std::move(p);
            break;
        }
        case job_kind::fault_sim: {
            fault_sim_response p;
            p.circuit = r.circuit;
            p.revision = r.revision;
            p.cached = cached;
            p.elapsed_ms = elapsed_ms;
            p.patterns = r.patterns_applied;
            p.faults = r.fault_count;
            p.detected = r.detected;
            p.coverage = r.coverage_percent;
            out.payload = std::move(p);
            break;
        }
    }
    return out;
}

response service::handle_matrix(std::uint64_t id, const matrix_request& p) {
    // Expansion reads the circuit table (an empty circuit list means
    // "every registered circuit"), so it must sit under the same shared
    // lock as the jobs themselves — a concurrent load_circuit would
    // otherwise race the expansion's circuit_count() read.
    read_lock session_lock(session_mutex_);
    response r;
    r.id = id;
    matrix_response m;
    m.results = run_jobs_locked(id, session_->expand_matrix(p));
    r.payload = std::move(m);
    return r;
}

namespace {

const std::string& job_name(const job_request& j) {
    return std::visit(
        [](const auto& p) -> const std::string& { return p.name; }, j);
}

}  // namespace

std::vector<response> service::run_jobs(std::uint64_t id,
                                        const std::vector<job_request>& jobs) {
    // Shared session lock for the whole batch: the circuit table stays
    // stable under us while concurrent run_jobs callers from other
    // connections proceed in parallel (only load/register/reload exclude).
    // Named jobs ride the same shared path as long as every named view is
    // resident; unknown names resolve to typed errors without upgrading.
    {
        read_lock session_lock(session_mutex_);
        bool compile = false;
        for (const job_request& j : jobs) {
            const std::string& name = job_name(j);
            if (!name.empty() && registry_.needs_compile(name)) {
                compile = true;
                break;
            }
        }
        if (!compile) return run_jobs_locked(id, jobs);
    }
    // Some named view needs compiling (first use, or evicted by the
    // max_views LRU): take the session lock exclusively for the whole
    // batch, so the views we materialize cannot be re-evicted by a
    // concurrent batch before our jobs resolve against them.
    write_lock session_lock(session_mutex_);
    for (const job_request& j : jobs) {
        const std::string& name = job_name(j);
        if (!name.empty()) registry_.ensure_resident(*session_, name);
    }
    return run_jobs_locked(id, jobs);
}

std::vector<response> service::run_jobs_locked(
    std::uint64_t id, const std::vector<job_request>& jobs) {
    std::vector<response> out(jobs.size());
    std::vector<cache_locator> keys(jobs.size());
    // Validate and probe the cache up front; only distinct cache misses
    // go to the session (duplicate keys within one batch compute once and
    // fan the result out), and they still run concurrently as one batch.
    // Duplicates are detected on (circuit, fingerprint) — the revision is
    // fixed per handle within the batch (the shared session lock is held).
    // Keyed by (handle, fingerprint string) and local to one batch —
    // ordered std::map, not the integer-keyed dense_map.
    std::map<std::pair<std::size_t, std::string>,  // wrpt-lint: allow(dense-map)
             std::size_t>
        leaders;  // key -> slot in to_run
    std::vector<std::vector<std::size_t>> owners;  // per slot: job indices
    std::vector<job_request> to_run;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        job_request j = jobs[i];
        std::string code;
        if (std::string msg = resolve_named(j, &code); !msg.empty()) {
            out[i] = make_error(id, msg, code);
            continue;
        }
        if (std::string msg = validate(j); !msg.empty()) {
            out[i] = make_error(id, msg);
            continue;
        }
        keys[i] = key_of(j);
        lock_guard cache_lock(cache_mutex_);
        if (const cache_entry* hit = probe_cached(keys[i])) {
            ++cache_hits_;
            out[i] = to_response(id, hit->result, true);
            continue;
        }
        const auto [slot, fresh] = leaders.try_emplace(
            std::make_pair(keys[i].circuit, keys[i].fingerprint),
            to_run.size());
        if (fresh) {
            to_run.push_back(std::move(j));
            owners.push_back({i});
        } else {
            owners[slot->second].push_back(i);
        }
    }
    if (!to_run.empty()) {
        std::vector<batch_session::result> results;
        std::vector<std::string> errors(to_run.size());
        std::vector<bool> computed(to_run.size(), false);
        try {
            results = session_->run(to_run);
            std::fill(computed.begin(), computed.end(), true);
        } catch (const std::exception&) {
            // A failure inside the concurrent batch must not collapse the
            // whole request (the per-entry envelope contract): rerun each
            // job alone so every entry gets its own answer or error.
            results.resize(to_run.size());
            for (std::size_t k = 0; k < to_run.size(); ++k) {
                try {
                    results[k] = session_->run({to_run[k]}).front();
                    computed[k] = true;
                } catch (const std::exception& e) {
                    errors[k] = e.what();
                }
            }
        }
        lock_guard cache_lock(cache_mutex_);
        for (std::size_t k = 0; k < to_run.size(); ++k) {
            if (!computed[k]) {
                // Every owner probed (and was counted a probe) without
                // hitting; account them as misses so `probes == hits +
                // misses` holds even when the job itself fails.
                cache_misses_ += owners[k].size();
                for (const std::size_t i : owners[k])
                    out[i] = make_error(id, errors[k]);
                continue;
            }
            // The first job with this key is the miss that computed; any
            // duplicates in the same batch are answered from its entry.
            ++cache_misses_;
            insert_cached(keys[owners[k].front()], results[k]);
            out[owners[k].front()] = to_response(id, results[k], false);
            for (std::size_t d = 1; d < owners[k].size(); ++d) {
                ++cache_hits_;
                out[owners[k][d]] = to_response(id, results[k], true);
            }
        }
    }
    return out;
}

}  // namespace wrpt::svc
