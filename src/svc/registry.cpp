#include "svc/registry.h"

#include <algorithm>
#include <tuple>

#include "exec/engine_pool.h"

namespace wrpt::svc {

namespace {

std::string address_of(const std::string& tenant, const std::string& name) {
    return tenant + "/" + name;
}

/// Addresses split at the *first* '/', so tenants must not contain one
/// (names may — "team/block/alu" is tenant "team", name "block/alu").
void check_address(const std::string& tenant, const std::string& name) {
    if (tenant.empty() || name.empty())
        throw registry_error(
            "invalid", "registry: tenant and name must both be non-empty");
    if (tenant.find('/') != std::string::npos)
        throw registry_error("invalid",
                             "registry: tenant must not contain '/'");
}

}  // namespace

registry::registered registry::register_circuit(batch_session& session,
                                                const std::string& tenant,
                                                const std::string& name,
                                                netlist nl) {
    check_address(tenant, name);
    write_lock lock(mutex_);
    tenant_state& ts = tenants_[tenant];
    const std::string address = address_of(tenant, name);
    if (entries_.find(address) != entries_.end())
        throw registry_error("exists", "registry: '" + address +
                                           "' is already registered; "
                                           "reload it instead");
    if (options_.quota.max_circuits != 0 &&
        ts.circuits >= options_.quota.max_circuits) {
        ++ts.rejections;
        throw registry_error(
            "quota", "registry: tenant '" + tenant +
                         "' is at its circuit quota (" +
                         std::to_string(options_.quota.max_circuits) + ")");
    }
    // Lazy residency: reserve the handle and keep the parsed master, but
    // compile nothing — the first named job pays for the view.
    entry& e = entries_[address];
    e.tenant = tenant;
    e.name = name;
    e.handle = session.reserve_handle();
    e.master = std::move(nl);
    e.revision = e.master.revision();
    ++ts.circuits;
    touch(e);
    return {e.handle, e.revision};
}

registry::reloaded registry::reload_circuit(batch_session& session,
                                            const std::string& tenant,
                                            const std::string& name,
                                            netlist nl) {
    check_address(tenant, name);
    write_lock lock(mutex_);
    const auto it = entries_.find(address_of(tenant, name));
    if (it == entries_.end())
        throw registry_error("not-found", "registry: unknown circuit '" +
                                              address_of(tenant, name) + "'");
    entry& e = it->second;
    const std::uint64_t old_revision = e.revision;
    e.master = std::move(nl);
    e.revision = e.master.revision();
    ++e.reloads;
    if (e.resident) {
        // Swap the compiled view under the same handle. The caller holds
        // the session lock exclusively, so every in-flight job has
        // drained on the old view; the old warm engine pool dies with it,
        // and the revision re-stamp orphans the old cache bucket on the
        // next insert. A master *copy* goes in so the stored master keeps
        // serving later rebuilds with the same revision.
        session.replace_circuit(e.handle, netlist(e.master));
        apply_engine_quota(session.pool(e.handle));
    }
    touch(e);
    return {e.handle, e.revision, old_revision, e.reloads};
}

registry::resolution registry::resolve(const std::string& address) const {
    read_lock lock(mutex_);
    const auto it = entries_.find(address);
    if (it == entries_.end()) return {};
    touch(it->second);  // LRU stamp: atomic, safe under the shared lock
    return {true, it->second.resident, it->second.handle};
}

bool registry::needs_compile(const std::string& address) const {
    read_lock lock(mutex_);
    const auto it = entries_.find(address);
    return it != entries_.end() && !it->second.resident;
}

void registry::ensure_resident(batch_session& session,
                               const std::string& address) {
    write_lock lock(mutex_);
    const auto it = entries_.find(address);
    if (it == entries_.end()) return;  // resolve reports the typed error
    entry& e = it->second;
    if (e.resident) return;
    // A master copy shares the master's revision stamp, so results cached
    // for this entry before an earlier eviction revalidate after the
    // rebuild — the bucket's revision still matches.
    session.restore_circuit(e.handle, netlist(e.master));
    apply_engine_quota(session.pool(e.handle));
    e.resident = true;
    ++resident_;
    ++view_rebuilds_;
    touch(e);
    evict_excess(session, &e);
}

void registry::apply_engine_quota(engine_pool& pool) const {
    const std::size_t quota = options_.quota.max_engines;
    if (quota == 0) return;
    // The compile set the session-wide default; the tighter bound wins.
    const std::size_t current = pool.capacity();
    pool.set_capacity(current == 0 ? quota : std::min(current, quota));
}

void registry::evict_excess(batch_session& session, const entry* keep) {
    if (options_.max_views == 0) return;
    while (resident_ > options_.max_views) {
        // O(entries) scan per eviction: evictions are as rare as compiles,
        // which dwarf the scan, so an index would be bookkeeping for
        // nothing.
        entry* coldest = nullptr;
        std::uint64_t coldest_use = 0;
        for (auto& [address, e] : entries_) {
            if (!e.resident || &e == keep) continue;
            const std::uint64_t use =
                e.last_use.load(std::memory_order_relaxed);
            if (coldest == nullptr || use < coldest_use) {
                coldest = &e;
                coldest_use = use;
            }
        }
        if (coldest == nullptr) break;  // only `keep` itself is resident
        session.unload_circuit(coldest->handle);
        coldest->resident = false;
        --resident_;
        ++view_evictions_;
    }
}

std::vector<catalog_entry_payload> registry::list(
    const std::string& tenant) const {
    read_lock lock(mutex_);
    std::vector<catalog_entry_payload> rows;
    rows.reserve(entries_.size());
    for (const auto& [address, e] : entries_) {
        if (!tenant.empty() && e.tenant != tenant) continue;
        catalog_entry_payload row;
        row.tenant = e.tenant;
        row.name = e.name;
        row.circuit = e.handle;
        row.revision = e.revision;
        row.resident = e.resident;
        row.reloads = e.reloads;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const catalog_entry_payload& a,
                 const catalog_entry_payload& b) {
                  return std::tie(a.tenant, a.name) <
                         std::tie(b.tenant, b.name);
              });
    return rows;
}

registry::counters registry::stats() const {
    read_lock lock(mutex_);
    counters c;
    c.circuits = entries_.size();
    c.resident = resident_;
    c.view_evictions = view_evictions_;
    c.view_rebuilds = view_rebuilds_;
    c.tenants.reserve(tenants_.size());
    for (const auto& [tenant, ts] : tenants_)
        c.tenants.push_back({tenant, ts.circuits, ts.rejections});
    std::sort(c.tenants.begin(), c.tenants.end(),
              [](const tenant_row& a, const tenant_row& b) {
                  return a.tenant < b.tenant;
              });
    return c;
}

}  // namespace wrpt::svc
