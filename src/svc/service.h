// The unified serving facade: one object that owns a batch_session,
// routes typed requests (svc/request.h) to it, and answers repeated work
// from a per-circuit result cache.
//
// Result cache — two-level. Level 1 is a dense_map keyed by the circuit
// handle (handles are consecutive integers, so the probe is one
// direct-index load); each bucket carries the revision it caches for and
// a string-keyed map of entries. Level 2's key is the canonical wire
// encoding of the *resolved* job — kind, the resolved weight vector
// ("resolved" means an empty (= uniform) request vector and the explicit
// uniform vector share an entry) and every option field (confidence and
// stage threads for test_length; every optimize_options field for
// optimize; patterns and seed for fault_sim), with the result-neutral
// thread counts normalized away — byte-equal jobs, not
// approximately-equal ones, hit. A repeat query therefore pays one array
// probe + one revision compare before the string probe, and the string
// probe only searches entries of its own circuit. A re-stamped handle
// (new revision) orphans its whole bucket at once. All three job kinds
// are deterministic given their key (the bit-identity invariants of the
// pipeline and the seeded simulator), so a hit replays the stored result
// unchanged; probe/hit/miss/eviction/bytes counters are served by the
// stats request. Keys are exact (full weight vectors encoded with
// round-trip double formatting), so a cache hit can never alias two
// different queries.
//
// Every request is answered with a response envelope: failures
// (unknown circuit handles, malformed weights, non-finite values) become
// ok=false error payloads instead of exceptions, so a serving loop never
// dies on a bad request. Matrix requests validate and answer each job
// individually — invalid entries get per-entry error envelopes while the
// valid remainder still runs concurrently on the session pool.
//
// Circuit names: jobs may address a circuit as "tenant/name" instead of
// a handle; the name is resolved through the registry (svc/registry.h)
// under the session lock and rewritten away before the cache fingerprint
// is built, so named and handle spellings of one query share an entry. A
// batch whose named views are all resident runs under the shared lock;
// one that needs a compile (lazy residency, or a view evicted by the
// --max-views LRU) takes the lock exclusively for the batch.
//
// Concurrency: handle() is safe to call from many threads at once — the
// contract the socket daemon (svc/server.h) runs one session per
// connection on. Two locks split the shared state: a shared_mutex over
// the session structure (load/register/reload take it exclusively while
// they reshape the circuit table; jobs, stats and evict share it) and a
// plain mutex over the result cache and its counters, held only for
// probes and inserts, never across a computation. The registry carries
// its own shared_mutex between the two (lock order: session -> registry
// -> cache). Job results stay deterministic, so
// the race two connections can win against one cache key is benign: both
// compute the same bits, each counts as a miss, the second insert
// replaces an identical entry — and every job is still accounted as
// exactly one hit or one miss.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/batch_session.h"
#include "svc/registry.h"
#include "svc/request.h"
#include "util/dense_map.h"
#include "util/sync.h"

namespace wrpt::svc {

class service {
public:
    struct options {
        /// Worker threads for the underlying batch_session (0 = hardware).
        unsigned threads = 0;
        /// Session default confidence for test_length jobs at 0.
        double confidence = 0.999;
        /// Per-circuit engine-pool capacity (0 = unbounded).
        std::size_t max_engines = 0;
        /// Result-cache entry cap across all circuits (0 = unbounded);
        /// the oldest entries are evicted first.
        std::size_t max_cache_entries = 0;
        /// Resident compiled views across the registry catalog (0 =
        /// unbounded): registered circuits beyond this stay parsed-only
        /// until a named job compiles them, evicting the coldest view.
        std::size_t max_views = 0;
        /// Uniform per-tenant limits for registered circuits (0 fields =
        /// unbounded); see registry::tenant_quota.
        registry::tenant_quota tenant_quota;
    };

    service();
    explicit service(options opt);
    ~service();

    service(const service&) = delete;
    service& operator=(const service&) = delete;

    /// Route one request; never throws for request-level failures (they
    /// come back as error envelopes with the request id echoed).
    response handle(const request& q);

    /// The underlying session, for callers that need direct access to
    /// compiled circuits (views, fault lists, pools). Opted out of the
    /// analysis: direct session access is the single-threaded setup path
    /// (tests, tools) — concurrent callers go through handle(), which
    /// takes session_mutex_.
    batch_session& session() WRPT_NO_THREAD_SAFETY_ANALYSIS {
        return *session_;
    }
    const batch_session& session() const WRPT_NO_THREAD_SAFETY_ANALYSIS {
        return *session_;
    }

    /// Cache counters (also served by the stats request).
    struct cache_counters {
        std::uint64_t probes = 0;  ///< cache lookups actually performed
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        std::uint64_t bytes = 0;   ///< approximate retained payload bytes
    };
    cache_counters cache_stats() const;

    /// The named-circuit catalog (internally synchronized); tests and
    /// tools read counters and rows from it directly.
    const registry& catalog() const { return registry_; }

private:
    /// Where an entry lives: level-1 handle, the revision the bucket must
    /// carry for the entry to be valid, and the level-2 fingerprint (the
    /// canonical wire encoding of the resolved job — kind, resolved
    /// weights and every option field, threads normalized away). The
    /// handle keeps structurally-copied circuits (which share a revision
    /// stamp) from aliasing; the revision orphans a re-stamped handle's
    /// bucket wholesale.
    struct cache_locator {
        std::size_t circuit = 0;
        std::uint64_t revision = 0;
        std::string fingerprint;
    };

    struct cache_entry {
        batch_session::result result;
        std::uint64_t sequence = 0;  ///< insertion order, for eviction
        std::uint64_t bytes = 0;     ///< entry_cost at insertion
    };

    /// Level-1 bucket: all cached results for one circuit handle at one
    /// revision. The level-2 key is an arbitrary-length fingerprint
    /// string, never iterated in result-affecting order, so unordered_map
    /// is the right container here, not the integer-keyed dense_map.
    struct circuit_bucket {
        std::uint64_t revision = 0;
        std::unordered_map<std::string, cache_entry>  // wrpt-lint: allow(dense-map)
            entries;
        std::uint64_t bytes = 0;
    };

    /// FIFO eviction record; stale (already erased or re-inserted under a
    /// newer sequence) records are skipped lazily.
    struct order_record {
        std::size_t circuit = 0;
        std::uint64_t sequence = 0;
        std::string fingerprint;
    };

    response handle_load(std::uint64_t id, const load_circuit_request& p);
    response handle_register(std::uint64_t id,
                             const register_circuit_request& p);
    response handle_reload(std::uint64_t id, const reload_circuit_request& p);
    response handle_list(std::uint64_t id, const list_circuits_request& p);
    response handle_stats(std::uint64_t id);
    response handle_evict(std::uint64_t id, const evict_request& p);
    response handle_matrix(std::uint64_t id, const matrix_request& p);

    /// Answer a batch of jobs: cached entries replay, the rest run
    /// concurrently through the session. responses[i] answers jobs[i].
    std::vector<response> run_jobs(std::uint64_t id,
                                   const std::vector<job_request>& jobs);
    /// The run_jobs body; the caller holds session_mutex_ shared (matrix
    /// expansion must read the circuit table under the same lock).
    std::vector<response> run_jobs_locked(
        std::uint64_t id, const std::vector<job_request>& jobs)
        WRPT_REQUIRES_SHARED(session_mutex_);

    /// Resolve a job's registry name (when set) to its handle, rewriting
    /// the job in place — the name is cleared, so named and handle
    /// spellings of the same query share one cache fingerprint. Returns a
    /// non-empty message on failure and fills `code` with the typed
    /// refusal class ("not-found" / "not-ready").
    std::string resolve_named(job_request& j, std::string* code) const
        WRPT_REQUIRES_SHARED(session_mutex_);
    /// Validate a job against the session (handle range, weight values);
    /// returns a non-empty message on failure.
    std::string validate(const job_request& j) const
        WRPT_REQUIRES_SHARED(session_mutex_);
    cache_locator key_of(const job_request& j) const
        WRPT_REQUIRES_SHARED(session_mutex_);
    /// Probe the two-level cache (caller holds cache_mutex_): counts a
    /// probe, returns the entry or nullptr. Does not count hit/miss —
    /// the caller owns job-level accounting.
    const cache_entry* probe_cached(const cache_locator& key)
        WRPT_REQUIRES(cache_mutex_);
    void insert_cached(cache_locator key, const batch_session::result& r)
        WRPT_REQUIRES(cache_mutex_);
    /// Attribute `delta` cache bytes to the tenant owning `circuit` (a
    /// no-op for handle-loaded circuits outside the registry).
    void tenant_bytes_add(std::size_t circuit, std::int64_t delta)
        WRPT_REQUIRES(cache_mutex_);
    /// Evict the oldest cache entries of `circuit`'s tenant until its
    /// bytes fit the per-tenant quota (no-op without a quota).
    void enforce_tenant_cache_quota(std::size_t circuit)
        WRPT_REQUIRES(cache_mutex_);
    static response to_response(std::uint64_t id,
                                const batch_session::result& r, bool cached);

    options options_;

    /// Session-structure lock: add_circuit (exclusive) vs everything that
    /// reads the circuit table (shared). Always taken before cache_mutex_
    /// when both are needed.
    mutable wrpt::shared_mutex session_mutex_
        WRPT_ACQUIRED_BEFORE(cache_mutex_);
    /// Result-cache lock: cache_, cache_order_ and the counters. Held for
    /// probes and inserts only, never while a job computes.
    mutable wrpt::mutex cache_mutex_;

    /// The pointer is set once in the constructor; the session *structure*
    /// (circuit table growth vs readers) is what session_mutex_ guards.
    std::unique_ptr<batch_session> session_
        WRPT_PT_GUARDED_BY(session_mutex_);

    /// Named-circuit catalog. Internally synchronized with its own
    /// shared_mutex, always acquired under session_mutex_ and never under
    /// cache_mutex_ (lock order: session -> registry -> cache).
    registry registry_;

    /// Level 1: handle -> bucket. Handles are consecutive, so every
    /// probe is a direct-index array load (count-free const reads are not
    /// needed here — the cache mutex serializes access).
    util::dense_map<circuit_bucket, std::size_t> cache_
        WRPT_GUARDED_BY(cache_mutex_);
    /// Insertion order for O(1)-amortized oldest-first eviction under
    /// max_cache_entries; maintained only when a cap is set.
    std::deque<order_record> cache_order_ WRPT_GUARDED_BY(cache_mutex_);
    std::uint64_t cache_sequence_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    std::uint64_t cache_probes_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    std::uint64_t cache_hits_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    std::uint64_t cache_misses_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    std::uint64_t cache_evictions_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    std::size_t cache_entries_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    std::uint64_t cache_bytes_ WRPT_GUARDED_BY(cache_mutex_) = 0;
    /// Handle -> owning tenant, for per-tenant cache accounting. Written
    /// once per registration; handles are consecutive, so the probe on
    /// every insert is a direct-index load.
    util::dense_map<std::string, std::size_t> handle_tenant_
        WRPT_GUARDED_BY(cache_mutex_);
    /// Tenant -> retained result-cache bytes (string-keyed aggregate over
    /// arbitrary tenant names, never iterated in result-affecting order).
    std::unordered_map<std::string, std::uint64_t>  // wrpt-lint: allow(dense-map)
        tenant_bytes_ WRPT_GUARDED_BY(cache_mutex_);
    std::atomic<std::uint64_t> requests_{0};
};

}  // namespace wrpt::svc
