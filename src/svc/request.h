// Typed request/response value types — the unified serving API.
//
// Every way of driving the engine layer — one-shot CLI invocations, the
// `wrpt_cli batch` directory sweep, the persistent `wrpt_cli serve`
// daemon, and in-process embedders — speaks the same vocabulary: a
// `request` is an id plus one per-kind payload (load_circuit, optimize,
// test_length, fault_sim, matrix, stats, evict, shutdown), and a
// `response` is the id echoed back plus either a per-kind result payload
// or an error envelope. Requests are plain value types: they carry
// everything a job needs (circuit handle, weight vector, option payload)
// and nothing about how it executes, mirroring how distribution-tuning
// queries are treated as first-class data rather than imperative call
// sequences.
//
// Layering: this header depends only on io/ and opt/ option types, so
// exec/batch_session can adopt the job-shaped requests as its native job
// description without a dependency cycle; svc/service routes full
// requests to a batch_session and svc/wire gives every kind a lossless
// JSON-lines encoding.

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "io/weights_io.h"
#include "opt/optimizer.h"

namespace wrpt::svc {

// --- requests ---------------------------------------------------------------

/// Register a circuit with the service. Exactly one of `bench` (inline
/// .bench text), `path` (a .bench file) or `suite` (a paper suite name,
/// S1...c7552) must be non-empty; `name` optionally renames the circuit.
struct load_circuit_request {
    std::string name;
    std::string bench;
    std::string path;
    std::string suite;
};

/// ANALYSIS + NORMALIZE at fixed weights: the required-test-length query.
/// Empty weights mean the uniform vector; confidence 0 means the session
/// default; `threads` shards the stages (results are thread-invariant).
/// A non-empty `name` addresses a registry circuit as "tenant/name" and
/// overrides `circuit` (the handle is resolved server-side).
struct test_length_request {
    std::size_t circuit = 0;
    std::string name;
    weight_vector weights;
    double confidence = 0.0;
    unsigned threads = 1;
};

/// The full OPTIMIZE procedure from `weights` (empty = uniform start).
struct optimize_request {
    std::size_t circuit = 0;
    std::string name;  ///< "tenant/name" registry address (overrides circuit)
    weight_vector weights;
    optimize_options options;
};

/// Weighted-random fault simulation at fixed weights.
struct fault_sim_request {
    std::size_t circuit = 0;
    std::string name;  ///< "tenant/name" registry address (overrides circuit)
    weight_vector weights;
    std::uint64_t patterns = 4096;
    std::uint64_t seed = 1;
};

/// One executable unit of work — what batch_session runs natively.
using job_request =
    std::variant<test_length_request, optimize_request, fault_sim_request>;

enum class job_kind : std::uint8_t { test_length, optimize, fault_sim };

inline job_kind kind_of(const job_request& j) {
    return static_cast<job_kind>(j.index());
}

/// The N x M serving shape: every (circuit, weight vector) pair as one
/// job of `kind`, answered in circuit-major order. An empty circuit list
/// means every registered circuit; the option fields apply to every job
/// of the matching kind.
struct matrix_request {
    job_kind kind = job_kind::test_length;
    std::vector<std::size_t> circuits;
    std::vector<weight_vector> weight_sets;
    optimize_options options;         ///< optimize jobs
    std::uint64_t patterns = 4096;    ///< fault_sim jobs
    std::uint64_t seed = 1;           ///< fault_sim jobs
    double confidence = 0.0;          ///< test_length jobs (0 = default)
};

/// Service-wide counters: result cache, per-circuit engine pools.
struct stats_request {};

/// Drop cached state: result-cache entries and warm pooled engines for
/// one circuit (`all` false) or for every circuit (`all` true).
/// `keep_engines` warm engines per pool survive the trim.
struct evict_request {
    bool all = true;
    std::size_t circuit = 0;
    std::size_t keep_engines = 0;
};

/// Graceful daemon shutdown: acknowledged, then the serve loop exits.
struct shutdown_request {};

/// Register a circuit in the multi-tenant catalog under "tenant/name".
/// The netlist source is exactly one of `bench` / `path` / `suite`, as in
/// load_circuit. Registering an already-registered name is an error; use
/// reload_circuit to replace one atomically.
struct register_circuit_request {
    std::string tenant;
    std::string name;
    std::string bench;
    std::string path;
    std::string suite;
};

/// Atomic hot reload: recompile "tenant/name" from a fresh netlist source
/// under the same handle. In-flight jobs finish on the old view; the new
/// revision orphans the old cache bucket and warm engine slots.
struct reload_circuit_request {
    std::string tenant;
    std::string name;
    std::string bench;
    std::string path;
    std::string suite;
};

/// List the registry catalog, optionally filtered to one tenant.
struct list_circuits_request {
    std::string tenant;  ///< empty = every tenant
};

enum class request_kind : std::uint8_t {
    load_circuit,
    test_length,
    optimize,
    fault_sim,
    matrix,
    stats,
    evict,
    shutdown,
    register_circuit,
    reload_circuit,
    list_circuits,
};

struct request {
    std::uint64_t id = 0;
    std::variant<load_circuit_request, test_length_request, optimize_request,
                 fault_sim_request, matrix_request, stats_request,
                 evict_request, shutdown_request, register_circuit_request,
                 reload_circuit_request, list_circuits_request>
        payload;

    request_kind kind() const {
        return static_cast<request_kind>(payload.index());
    }
};

// --- responses --------------------------------------------------------------

struct response;  // forward: matrix_response nests full responses

/// Per-request failure envelope: the request id is echoed, `ok` is false
/// and this payload carries the message — the daemon never exits on a bad
/// request. `code` types the refusal for programmatic callers ("quota",
/// "not_found", ...); empty for generic errors and absent from the wire
/// encoding, so pre-registry transcripts are unchanged.
struct error_response {
    std::string message;
    std::string code;
};

struct load_circuit_response {
    std::size_t circuit = 0;
    std::string name;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
    std::size_t gates = 0;
    std::size_t faults = 0;
    std::uint64_t revision = 0;
};

/// Required-test-length payload, also embedded in optimize responses.
struct length_payload {
    bool feasible = false;
    double test_length = 0.0;
    std::size_t relevant_faults = 0;
    std::size_t zero_prob_faults = 0;
    double hardest_probability = 0.0;
};

struct test_length_response {
    std::size_t circuit = 0;
    std::uint64_t revision = 0;
    bool cached = false;       ///< answered from the service result cache
    double elapsed_ms = 0.0;   ///< compute time (0 for cache hits)
    length_payload length;
};

struct optimize_response {
    std::size_t circuit = 0;
    std::uint64_t revision = 0;
    bool cached = false;
    double elapsed_ms = 0.0;
    bool feasible = false;
    double initial_length = 0.0;
    double final_length = 0.0;
    std::size_t sweeps = 0;
    std::size_t analysis_calls = 0;
    std::size_t zero_prob_faults = 0;
    weight_vector weights;     ///< the optimized input probabilities
    length_payload length;     ///< full report at the optimized vector
};

struct fault_sim_response {
    std::size_t circuit = 0;
    std::uint64_t revision = 0;
    bool cached = false;
    double elapsed_ms = 0.0;
    std::uint64_t patterns = 0;
    std::size_t faults = 0;
    std::size_t detected = 0;
    double coverage = 0.0;
};

struct matrix_response {
    std::vector<response> results;  ///< circuit-major, one per job
};

struct pool_stats_payload {
    std::size_t circuit = 0;
    std::uint64_t revision = 0;
    std::size_t engines = 0;    ///< owned in total (warm + on loan)
    std::size_t warm = 0;
    std::size_t capacity = 0;   ///< 0 = unbounded
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t resyncs = 0;
    std::size_t evictions = 0;
    /// Warm-slot-table entries moved by internal maintenance (growth
    /// migration, rehash, backward-shift erase) — checkout/eviction churn
    /// bookkeeping cost.
    std::size_t relocations = 0;
};

/// Admission-control counters of the socket server a stats response
/// passed through. Present only when a svc::server answered (the worker
/// stamps it after service::handle); absent — and absent from the wire
/// encoding — for the stdin daemon and direct in-process calls, so their
/// transcripts are unchanged.
struct server_stats_payload {
    bool present = false;
    std::size_t active = 0;            ///< sessions open right now
    std::size_t workers = 0;           ///< fixed worker-set size
    std::size_t max_connections = 0;   ///< admission cap (0 = unbounded)
    std::size_t queue_depth = 0;       ///< pending-request cap per connection
    std::size_t queue_bytes = 0;       ///< response outbox cap per connection
    std::uint64_t accepted = 0;
    std::uint64_t refused = 0;
    std::uint64_t requests = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t overflows = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t queue_drops = 0;     ///< slow readers refused and dropped
    std::uint64_t accept_backoffs = 0; ///< EMFILE/ENFILE accept pauses
};

/// Per-tenant quota state inside the registry stats section.
struct tenant_stats_payload {
    std::string tenant;
    std::size_t circuits = 0;        ///< registered under this tenant
    std::size_t cache_bytes = 0;     ///< result-cache bytes attributed
    std::size_t max_circuits = 0;    ///< quota (0 = unbounded)
    std::size_t max_engines = 0;     ///< per-circuit engine cap (0 = none)
    std::size_t max_cache_bytes = 0; ///< cache-byte quota (0 = unbounded)
    std::uint64_t rejections = 0;    ///< typed quota refusals issued
};

/// Registry catalog counters. Present only once a circuit has been
/// registered (and absent from the wire encoding otherwise), so
/// registry-free transcripts are byte-identical to the pre-registry ones.
struct registry_stats_payload {
    bool present = false;
    std::size_t circuits = 0;        ///< registered entries
    std::size_t resident = 0;        ///< entries with a compiled view
    std::size_t max_views = 0;       ///< resident cap (0 = unbounded)
    std::uint64_t view_evictions = 0;
    std::uint64_t view_rebuilds = 0;
    std::vector<tenant_stats_payload> tenants;
};

struct stats_response {
    std::uint64_t requests = 0;       ///< requests handled so far
    std::uint64_t cache_probes = 0;   ///< result-cache lookups performed
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::size_t cache_entries = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_bytes = 0;    ///< approximate retained bytes
    std::size_t circuits = 0;
    /// Active compute-kernel dispatch (core/simd.h): ISA name and vector
    /// lane width, so remote clients can attribute timings to the
    /// hardware the daemon runs on.
    std::string simd_isa;
    std::size_t simd_lanes = 0;
    std::vector<pool_stats_payload> pools;
    registry_stats_payload registry;  ///< catalog section (optional)
    server_stats_payload server;      ///< socket-server section (optional)
};

struct evict_response {
    std::size_t cache_entries = 0;  ///< result-cache entries dropped
    std::size_t engines = 0;        ///< warm engines dropped
};

struct shutdown_response {};

struct register_circuit_response {
    std::string tenant;
    std::string name;
    std::size_t circuit = 0;    ///< the stable handle behind the name
    std::uint64_t revision = 0;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
    std::size_t gates = 0;
};

struct reload_circuit_response {
    std::string tenant;
    std::string name;
    std::size_t circuit = 0;         ///< unchanged across reloads
    std::uint64_t revision = 0;      ///< the fresh stamp
    std::uint64_t old_revision = 0;  ///< what in-flight jobs finish on
    std::uint64_t reloads = 0;       ///< reload count for this entry
};

/// One catalog row in a list_circuits response.
struct catalog_entry_payload {
    std::string tenant;
    std::string name;
    std::size_t circuit = 0;
    std::uint64_t revision = 0;
    bool resident = false;  ///< compiled view currently in memory
    std::uint64_t reloads = 0;
};

struct list_circuits_response {
    std::vector<catalog_entry_payload> entries;  ///< sorted by tenant/name
};

enum class response_kind : std::uint8_t {
    error,
    load_circuit,
    test_length,
    optimize,
    fault_sim,
    matrix,
    stats,
    evict,
    shutdown,
    register_circuit,
    reload_circuit,
    list_circuits,
};

struct response {
    std::uint64_t id = 0;
    bool ok = true;
    std::variant<error_response, load_circuit_response, test_length_response,
                 optimize_response, fault_sim_response, matrix_response,
                 stats_response, evict_response, shutdown_response,
                 register_circuit_response, reload_circuit_response,
                 list_circuits_response>
        payload;

    response_kind kind() const {
        return static_cast<response_kind>(payload.index());
    }
};

/// Build the standard failure envelope for a request id.
inline response make_error(std::uint64_t id, std::string message) {
    response r;
    r.id = id;
    r.ok = false;
    r.payload = error_response{std::move(message), std::string()};
    return r;
}

/// A typed failure envelope ("quota", "not-found", ...): programmatic
/// callers dispatch on `code`, humans read `message`.
inline response make_error(std::uint64_t id, std::string message,
                           std::string code) {
    response r;
    r.id = id;
    r.ok = false;
    r.payload = error_response{std::move(message), std::move(code)};
    return r;
}

}  // namespace wrpt::svc
