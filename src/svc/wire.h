// Line-oriented JSON codec for the service API — the wire protocol of
// `wrpt_cli serve`.
//
// One request or response per line, UTF-8 JSON objects, no external
// dependencies (hand-rolled recursive-descent parser in wire.cpp, in the
// spirit of the .bench text utilities). The encoders are canonical: every
// field of a kind is emitted, always in the same order, with doubles
// printed in shortest round-trip form (std::to_chars) — so
// encode(decode(encode(x))) == encode(x) byte for byte, and weight
// vectors survive the trip losslessly.
//
// The decoder is tolerant of unknown fields (they are skipped, so newer
// clients can talk to older servers) but strict about values: malformed
// JSON, non-finite numbers (JSON cannot carry NaN/inf; overflowing
// literals like 1e999 are rejected), and unknown request/response kinds
// throw wire_error.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/request.h"
#include "util/error.h"

namespace wrpt::svc {

/// Thrown on malformed wire text (bad JSON, bad kind, non-finite number).
class wire_error : public error {
public:
    explicit wire_error(const std::string& what) : error(what) {}
};

/// Canonical one-line JSON encodings (no trailing newline).
std::string encode(const request& q);
std::string encode(const response& r);

/// Reuse-contract encoders for hot paths: clear `out` (keeping its
/// capacity) and write the canonical encoding into it. A caller that
/// keeps one scratch string per connection/worker pays zero allocations
/// per encode once the buffer has grown to its working size.
void encode_into(const request& q, std::string& out);
void encode_into(const response& r, std::string& out);

/// Parse one line. Views, not strings: the decoder reads straight out of
/// the caller's buffer (scalars are parsed in place; only retained string
/// fields are copied). Throws wire_error on malformed input.
request decode_request(std::string_view line);
response decode_response(std::string_view line);

/// Best-effort extraction of the "id" field from a line that may not
/// parse as a full request — used to address error envelopes. Returns 0
/// when no id can be recovered.
std::uint64_t extract_id(std::string_view line);

}  // namespace wrpt::svc
