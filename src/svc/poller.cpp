#include "svc/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "svc/socket.h"

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace wrpt::svc {

#ifdef __linux__

poller::poller() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
        throw errno_error("poller: cannot create epoll instance", errno);
}

poller::~poller() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {

epoll_event make_event(std::uint64_t key, bool read, bool write) {
    epoll_event ev{};
    ev.events = 0;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.u64 = key;
    return ev;
}

}  // namespace

void poller::add(int fd, std::uint64_t key, bool read, bool write) {
    epoll_event ev = make_event(key, read, write);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        throw errno_error("poller: cannot register fd", errno);
}

void poller::modify(int fd, std::uint64_t key, bool read, bool write) {
    epoll_event ev = make_event(key, read, write);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
        throw errno_error("poller: cannot modify fd interest", errno);
}

void poller::remove(int fd) {
    epoll_event ev{};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
}

std::size_t poller::wait(std::vector<event>& out, int timeout_ms) {
    out.clear();
    epoll_event events[128];
    int n;
    do {
        n = ::epoll_wait(epoll_fd_, events,
                         static_cast<int>(std::size(events)), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw errno_error("poller: epoll_wait failed", errno);
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        event e;
        e.key = events[i].data.u64;
        e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        e.readable = (events[i].events & EPOLLIN) != 0 || e.hangup;
        e.writable = (events[i].events & EPOLLOUT) != 0 || e.hangup;
        out.push_back(e);
    }
    return out.size();
}

#else  // portable poll(2) backend

poller::poller() = default;
poller::~poller() = default;

void poller::add(int fd, std::uint64_t key, bool read, bool write) {
    entries_.push_back({fd, key, read, write});
}

void poller::modify(int fd, std::uint64_t key, bool read, bool write) {
    for (entry& e : entries_) {
        if (e.fd == fd) {
            e.key = key;
            e.read = read;
            e.write = write;
            return;
        }
    }
    throw socket_error("poller: modify of an unregistered fd");
}

void poller::remove(int fd) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].fd == fd) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

std::size_t poller::wait(std::vector<event>& out, int timeout_ms) {
    out.clear();
    std::vector<pollfd> fds;
    fds.reserve(entries_.size());
    for (const entry& e : entries_) {
        pollfd p{};
        p.fd = e.fd;
        p.events = 0;
        if (e.read) p.events |= POLLIN;
        if (e.write) p.events |= POLLOUT;
        fds.push_back(p);
    }
    int n;
    do {
        n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw errno_error("poller: poll failed", errno);
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        event e;
        e.key = entries_[i].key;
        e.hangup = (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
        e.readable = (fds[i].revents & POLLIN) != 0 || e.hangup;
        e.writable = (fds[i].revents & POLLOUT) != 0 || e.hangup;
        out.push_back(e);
    }
    return out.size();
}

#endif

}  // namespace wrpt::svc
