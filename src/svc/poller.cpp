#include "svc/poller.h"

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>

#include "svc/socket.h"

#if defined(WRPT_POLLER_HAS_EPOLL)
#include <sys/epoll.h>
#endif

namespace wrpt::svc {

namespace {

bool env_forces_poll() {
    const char* v = std::getenv("WRPT_FORCE_POLL");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Relaxed atomics: the flag is a coarse mode switch read once per poller
// construction; tests flip it between (not during) server lifetimes.
std::atomic<bool> force_poll_flag{env_forces_poll()};

}  // namespace

bool poller::poll_forced() {
#if defined(WRPT_POLLER_HAS_EPOLL)
    return force_poll_flag.load(std::memory_order_relaxed);
#else
    return true;  // the platform (or -DWRPT_FORCE_POLL) decided already
#endif
}

void poller::set_force_poll(bool force) {
    force_poll_flag.store(force, std::memory_order_relaxed);
}

const char* poller::backend_name() const {
    return use_poll_ ? "poll" : "epoll";
}

poller::poller() {
#if defined(WRPT_POLLER_HAS_EPOLL)
    if (!poll_forced()) {
        epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (epoll_fd_ < 0)
            throw errno_error("poller: cannot create epoll instance", errno);
        use_poll_ = false;
        return;
    }
#endif
    use_poll_ = true;
}

poller::~poller() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

// --- epoll backend ----------------------------------------------------------

#if defined(WRPT_POLLER_HAS_EPOLL)

namespace {

epoll_event make_event(std::uint64_t key, bool read, bool write) {
    epoll_event ev{};
    ev.events = 0;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.u64 = key;
    return ev;
}

}  // namespace

#endif  // WRPT_POLLER_HAS_EPOLL

void poller::add(int fd, std::uint64_t key, bool read, bool write) {
#if defined(WRPT_POLLER_HAS_EPOLL)
    if (!use_poll_) {
        epoll_event ev = make_event(key, read, write);
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
            throw errno_error("poller: cannot register fd", errno);
        return;
    }
#endif
    entries_.push_back({fd, key, read, write});
}

void poller::modify(int fd, std::uint64_t key, bool read, bool write) {
#if defined(WRPT_POLLER_HAS_EPOLL)
    if (!use_poll_) {
        epoll_event ev = make_event(key, read, write);
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
            throw errno_error("poller: cannot modify fd interest", errno);
        return;
    }
#endif
    for (entry& e : entries_) {
        if (e.fd == fd) {
            e.key = key;
            e.read = read;
            e.write = write;
            return;
        }
    }
    throw socket_error("poller: modify of an unregistered fd");
}

void poller::remove(int fd) {
#if defined(WRPT_POLLER_HAS_EPOLL)
    if (!use_poll_) {
        epoll_event ev{};
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
        return;
    }
#endif
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].fd == fd) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

std::size_t poller::wait(std::vector<event>& out, int timeout_ms) {
    out.clear();
#if defined(WRPT_POLLER_HAS_EPOLL)
    if (!use_poll_) {
        epoll_event events[128];
        int n;
        do {
            n = ::epoll_wait(epoll_fd_, events,
                             static_cast<int>(std::size(events)),
                             timeout_ms);
        } while (n < 0 && errno == EINTR);
        if (n < 0) throw errno_error("poller: epoll_wait failed", errno);
        out.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            event e;
            e.key = events[i].data.u64;
            e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
            e.readable = (events[i].events & EPOLLIN) != 0 || e.hangup;
            e.writable = (events[i].events & EPOLLOUT) != 0 || e.hangup;
            out.push_back(e);
        }
        return out.size();
    }
#endif
    std::vector<pollfd> fds;
    fds.reserve(entries_.size());
    for (const entry& e : entries_) {
        pollfd p{};
        p.fd = e.fd;
        p.events = 0;
        if (e.read) p.events |= POLLIN;
        if (e.write) p.events |= POLLOUT;
        fds.push_back(p);
    }
    int n;
    do {
        n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw errno_error("poller: poll failed", errno);
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        event e;
        e.key = entries_[i].key;
        e.hangup = (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
        e.readable = (fds[i].revents & POLLIN) != 0 || e.hangup;
        e.writable = (fds[i].revents & POLLOUT) != 0 || e.hangup;
        out.push_back(e);
    }
    return out.size();
}

}  // namespace wrpt::svc
