// Named multi-tenant circuit registry — the catalog layer above
// exec/batch_session.
//
// The session deals in integer handles; the registry gives those handles
// durable names. A circuit registers as "tenant/name", jobs address it by
// that string, and the server resolves the name to a handle before the
// job touches the cache or the session. Three properties make the catalog
// serve-shaped:
//
//  * Lazy residency with a bounded view LRU. register_circuit parses and
//    stores the netlist master but compiles nothing, so thousands of
//    registrations stay cheap; the first named job compiles the view
//    (restore_circuit under the entry's reserved handle) and, when the
//    resident count would exceed options.max_views, the coldest resident
//    view — least-recently resolved, by an atomic use stamp exactly like
//    engine_pool's checkout stamps — is unloaded. Because a master copy
//    shares the master's revision stamp (the netlist copy contract),
//    results cached before an eviction revalidate after the rebuild: the
//    cache bucket's revision still matches.
//
//  * Atomic hot reload. reload_circuit swaps the master for a freshly
//    parsed netlist (new revision) and, if the entry is resident,
//    recompiles in place under the same handle while the caller holds the
//    session lock exclusively — in-flight jobs have already drained, the
//    old view's warm engine pool is destroyed with it, and the old cache
//    bucket is orphaned by the revision re-stamp on first insert. A
//    request therefore only ever observes one revision end to end.
//
//  * Per-tenant quotas. A uniform tenant_quota bounds registered circuits
//    (typed "quota" refusal past the cap), clamps each compiled view's
//    engine-pool capacity, and caps result-cache bytes (enforced by the
//    service's insert path, which attributes entries to tenants). Refusal
//    envelopes carry a machine-readable `code` so clients can tell quota
//    pressure from not-found from malformed input.
//
// Locking: the registry has its own shared_mutex, always acquired under
// the service's session lock (lock order: session_mutex_ -> registry
// mutex_ -> cache_mutex_; the registry is never locked while cache_mutex_
// is held). Mutators (register/reload/ensure_resident) additionally
// require the caller to hold the session lock exclusively, because they
// reshape the session's circuit table; resolve/list/stats run under a
// shared session lock and a shared registry lock, with LRU stamps as
// atomics so readers never need the exclusive side.

#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/batch_session.h"
#include "netlist/netlist.h"
#include "svc/request.h"
#include "util/sync.h"

namespace wrpt {
class engine_pool;
}

namespace wrpt::svc {

/// Typed refusal: `code()` travels in the error envelope's `code` field
/// ("not-found", "exists", "quota", "invalid"), so clients can branch on
/// the refusal class without parsing prose.
class registry_error : public std::runtime_error {
public:
    registry_error(std::string code, const std::string& message)
        : std::runtime_error(message), code_(std::move(code)) {}
    const std::string& code() const { return code_; }

private:
    std::string code_;
};

class registry {
public:
    /// Uniform per-tenant limits; every field 0 = unbounded.
    struct tenant_quota {
        std::size_t max_circuits = 0;     ///< registered entries per tenant
        std::size_t max_engines = 0;      ///< engine-pool cap per circuit
        std::uint64_t max_cache_bytes = 0;  ///< result-cache bytes per tenant
    };

    struct options {
        /// Resident compiled views across the whole catalog (0 =
        /// unbounded): the coldest view is unloaded when a compile would
        /// exceed it.
        std::size_t max_views = 0;
        tenant_quota quota;
    };

    registry() = default;
    explicit registry(options opt) : options_(opt) {}

    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    const options& config() const { return options_; }

    struct registered {
        std::size_t handle = 0;
        std::uint64_t revision = 0;
    };
    struct reloaded {
        std::size_t handle = 0;
        std::uint64_t revision = 0;
        std::uint64_t old_revision = 0;
        std::uint64_t reloads = 0;
    };
    struct resolution {
        bool found = false;
        bool resident = false;
        std::size_t handle = 0;
    };

    /// Register `nl` as "tenant/name". Lazy: reserves a session handle and
    /// stores the master netlist, compiling nothing. Throws registry_error
    /// ("invalid" for a malformed address, "exists" for a taken name,
    /// "quota" past the tenant's circuit cap — counted as a rejection).
    /// Caller holds the session lock exclusively.
    registered register_circuit(batch_session& session,
                                const std::string& tenant,
                                const std::string& name, netlist nl);

    /// Swap the master for "tenant/name" and, if resident, recompile under
    /// the same handle. Throws registry_error("not-found") for unknown
    /// names. Caller holds the session lock exclusively.
    reloaded reload_circuit(batch_session& session, const std::string& tenant,
                            const std::string& name, netlist nl);

    /// Look up "tenant/name" and stamp its LRU clock. Safe under a shared
    /// session lock; never compiles.
    resolution resolve(const std::string& address) const;

    /// True when `address` names a registered entry whose view is not
    /// resident (the caller must upgrade to the exclusive session lock and
    /// ensure_resident before running jobs on it).
    bool needs_compile(const std::string& address) const;

    /// Compile `address`'s view if registered and not resident, then
    /// unload the coldest resident views beyond options.max_views. A
    /// no-op for unknown names (resolve reports those as typed errors).
    /// Caller holds the session lock exclusively.
    void ensure_resident(batch_session& session, const std::string& address);

    /// Catalog rows, sorted by "tenant/name"; `tenant` filters when
    /// non-empty. Safe under a shared session lock.
    std::vector<catalog_entry_payload> list(const std::string& tenant) const;

    struct tenant_row {
        std::string tenant;
        std::size_t circuits = 0;
        std::uint64_t rejections = 0;  ///< typed quota refusals issued
    };
    struct counters {
        std::size_t circuits = 0;  ///< registered entries
        std::size_t resident = 0;  ///< entries with a compiled view
        std::uint64_t view_evictions = 0;
        std::uint64_t view_rebuilds = 0;
        std::vector<tenant_row> tenants;  ///< sorted by tenant
    };
    counters stats() const;

private:
    struct entry {
        std::string tenant;
        std::string name;
        std::size_t handle = 0;
        netlist master;  ///< source of truth; copies share its revision
        std::uint64_t revision = 0;
        bool resident = false;
        std::uint64_t reloads = 0;
        /// LRU stamp, written by resolve() under the shared lock — atomic
        /// so concurrent resolvers never race (mutable because stamping is
        /// a read-path side effect); entries live in node-stable
        /// unordered_map nodes, so the address is durable.
        mutable std::atomic<std::uint64_t> last_use{0};
    };
    struct tenant_state {
        std::size_t circuits = 0;
        std::uint64_t rejections = 0;
    };

    void touch(const entry& e) const {
        e.last_use.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    }
    /// Clamp a freshly compiled view's engine pool to the tenant quota
    /// (the tighter of the session default and the quota wins).
    void apply_engine_quota(engine_pool& pool) const;
    /// Unload coldest resident views until at most options.max_views
    /// remain; `keep` is never a victim.
    void evict_excess(batch_session& session, const entry* keep)
        WRPT_REQUIRES(mutex_);

    options options_;
    /// Registry-structure lock; see the header comment for the order
    /// relative to the service's locks.
    mutable wrpt::shared_mutex mutex_;
    /// Address "tenant/name" -> entry. String-keyed and node-stable by
    /// design: names are arbitrary text (no dense integer domain) and the
    /// atomic LRU stamps need durable addresses, which the dense map's
    /// relocating maintenance would break.
    std::unordered_map<std::string, entry>  // wrpt-lint: allow(dense-map)
        entries_ WRPT_GUARDED_BY(mutex_);
    std::unordered_map<std::string, tenant_state>  // wrpt-lint: allow(dense-map)
        tenants_ WRPT_GUARDED_BY(mutex_);
    std::size_t resident_ WRPT_GUARDED_BY(mutex_) = 0;
    std::uint64_t view_evictions_ WRPT_GUARDED_BY(mutex_) = 0;
    std::uint64_t view_rebuilds_ WRPT_GUARDED_BY(mutex_) = 0;
    mutable std::atomic<std::uint64_t> use_clock_{0};
};

}  // namespace wrpt::svc
