#include "svc/wire.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

namespace wrpt::svc {

namespace {

// --- minimal JSON value model + recursive-descent parser --------------------

struct jvalue {
    enum kind_t { null_v, bool_v, num_v, str_v, arr_v, obj_v };
    kind_t kind = null_v;
    bool b = false;
    double num = 0.0;
    std::uint64_t unum = 0;   // exact value for unsigned integer literals
    bool has_unum = false;
    std::string str;
    std::vector<jvalue> arr;
    std::vector<std::pair<std::string, jvalue>> obj;

    const jvalue* find(const std::string& key) const {
        for (const auto& [k, v] : obj)
            if (k == key) return &v;
        return nullptr;
    }
};

class parser {
public:
    // A view, not a string: decode paths parse straight out of the
    // caller's buffer (connection inbuf, bench transcript) with no copy.
    explicit parser(std::string_view text)
        : p_(text.data()), end_(text.data() + text.size()) {}

    jvalue parse() {
        jvalue v = value();
        skip_ws();
        if (p_ != end_) fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw wire_error("wire: " + why);
    }

    void skip_ws() {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' || *p_ == '\n'))
            ++p_;
    }

    char peek() {
        skip_ws();
        if (p_ == end_) fail("unexpected end of input");
        return *p_;
    }

    void expect(char c) {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + *p_ + "'");
        ++p_;
    }

    bool consume(char c) {
        skip_ws();
        if (p_ != end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    // A long-lived daemon must answer a hostile line with an error
    // envelope, not a blown stack: cap the recursion depth far above any
    // legitimate request shape (matrix responses nest three levels).
    static constexpr int max_depth = 64;

    jvalue value() {
        if (depth_ >= max_depth) fail("nesting deeper than 64 levels");
        ++depth_;
        jvalue v;
        switch (peek()) {
            case '{': v = object(); break;
            case '[': v = array(); break;
            case '"': v = string_value(); break;
            case 't': case 'f': v = boolean(); break;
            case 'n': v = null_value(); break;
            default: v = number(); break;
        }
        --depth_;
        return v;
    }

    jvalue object() {
        expect('{');
        jvalue v;
        v.kind = jvalue::obj_v;
        if (consume('}')) return v;
        do {
            jvalue key = string_value();
            expect(':');
            v.obj.emplace_back(std::move(key.str), value());
        } while (consume(','));
        expect('}');
        return v;
    }

    jvalue array() {
        expect('[');
        jvalue v;
        v.kind = jvalue::arr_v;
        if (consume(']')) return v;
        do {
            v.arr.push_back(value());
        } while (consume(','));
        expect(']');
        return v;
    }

    jvalue string_value() {
        expect('"');
        jvalue v;
        v.kind = jvalue::str_v;
        while (true) {
            if (p_ == end_) fail("unterminated string");
            const char c = *p_++;
            if (c == '"') break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                v.str.push_back(c);
                continue;
            }
            if (p_ == end_) fail("unterminated escape");
            const char e = *p_++;
            switch (e) {
                case '"': v.str.push_back('"'); break;
                case '\\': v.str.push_back('\\'); break;
                case '/': v.str.push_back('/'); break;
                case 'b': v.str.push_back('\b'); break;
                case 'f': v.str.push_back('\f'); break;
                case 'n': v.str.push_back('\n'); break;
                case 'r': v.str.push_back('\r'); break;
                case 't': v.str.push_back('\t'); break;
                case 'u': v.str += unicode_escape(); break;
                default: fail("bad escape character");
            }
        }
        return v;
    }

    unsigned hex4() {
        if (end_ - p_ < 4) fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = *p_++;
            code <<= 4;
            if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else fail("bad \\u escape digit");
        }
        return code;
    }

    std::string unicode_escape() {
        // The encoder only emits \u00XX for control characters, but
        // accept the full range — including surrogate pairs, which must
        // combine into one code point (raw CESU-8 would poison every
        // later response with invalid UTF-8).
        unsigned code = hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (end_ - p_ < 2 || p_[0] != '\\' || p_[1] != 'u')
                fail("unpaired high surrogate in \\u escape");
            p_ += 2;
            const unsigned low = hex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("bad low surrogate in \\u escape");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
        }
        std::string out;
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        return out;
    }

    jvalue boolean() {
        jvalue v;
        v.kind = jvalue::bool_v;
        if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
            v.b = true;
            p_ += 4;
        } else if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
            v.b = false;
            p_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    jvalue null_value() {
        if (end_ - p_ < 4 || std::string_view(p_, 4) != "null")
            fail("bad literal");
        p_ += 4;
        jvalue v;
        v.kind = jvalue::null_v;
        return v;
    }

    jvalue number() {
        const char* start = p_;
        if (p_ != end_ && *p_ == '-') ++p_;
        while (p_ != end_ &&
               ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                *p_ == 'E' || *p_ == '+' || *p_ == '-'))
            ++p_;
        if (p_ == start) fail("expected a value");
        jvalue v;
        v.kind = jvalue::num_v;
        const auto [dp, derr] = std::from_chars(start, p_, v.num);
        if (derr != std::errc{} || dp != p_ || !std::isfinite(v.num))
            fail("bad number (non-finite values are not representable)");
        // Keep the exact value of unsigned integer literals (revision
        // stamps, seeds, SIZE_MAX-style sentinels exceed 2^53).
        if (*start != '-') {
            std::uint64_t u = 0;
            const auto [up, uerr] = std::from_chars(start, p_, u);
            if (uerr == std::errc{} && up == p_) {
                v.unum = u;
                v.has_unum = true;
            }
        }
        return v;
    }

    const char* p_;
    const char* end_;
    int depth_ = 0;
};

// --- typed field accessors (tolerant: missing/unknown fields keep defaults) -

[[noreturn]] void bad(const std::string& why) { throw wire_error("wire: " + why); }

const jvalue& member(const jvalue& o, const std::string& key) {
    const jvalue* v = o.find(key);
    if (!v) bad("missing field \"" + key + "\"");
    return *v;
}

std::uint64_t get_u64(const jvalue& o, const std::string& key,
                      std::uint64_t fallback) {
    const jvalue* v = o.find(key);
    if (!v) return fallback;
    if (v->kind != jvalue::num_v || !v->has_unum)
        bad("field \"" + key + "\" must be an unsigned integer");
    return v->unum;
}

std::size_t get_size(const jvalue& o, const std::string& key,
                     std::size_t fallback) {
    return static_cast<std::size_t>(get_u64(o, key, fallback));
}

double get_double(const jvalue& o, const std::string& key, double fallback) {
    const jvalue* v = o.find(key);
    if (!v) return fallback;
    if (v->kind != jvalue::num_v) bad("field \"" + key + "\" must be a number");
    return v->num;
}

bool get_bool(const jvalue& o, const std::string& key, bool fallback) {
    const jvalue* v = o.find(key);
    if (!v) return fallback;
    if (v->kind != jvalue::bool_v)
        bad("field \"" + key + "\" must be a boolean");
    return v->b;
}

std::string get_string(const jvalue& o, const std::string& key,
                       const std::string& fallback) {
    const jvalue* v = o.find(key);
    if (!v) return fallback;
    if (v->kind != jvalue::str_v) bad("field \"" + key + "\" must be a string");
    return v->str;
}

weight_vector get_weights(const jvalue& o, const std::string& key) {
    const jvalue* v = o.find(key);
    if (!v) return {};
    if (v->kind != jvalue::arr_v) bad("field \"" + key + "\" must be an array");
    weight_vector w;
    w.reserve(v->arr.size());
    for (const jvalue& e : v->arr) {
        if (e.kind != jvalue::num_v)
            bad("field \"" + key + "\" must hold numbers");
        w.push_back(e.num);
    }
    return w;
}

// --- canonical encoder helpers ----------------------------------------------

void put_escaped(std::string& out, std::string_view s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void put_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    const auto [p, err] = std::to_chars(buf, buf + sizeof buf, v);
    (void)err;
    out.append(buf, p);
}

void put_double(std::string& out, double v) {
    if (!std::isfinite(v))
        bad("cannot encode non-finite number");
    // Shortest representation that round-trips exactly; integral values
    // print without an exponent or trailing ".0", matching the parser's
    // unsigned-integer fast path.
    char buf[32];
    const auto [p, err] = std::to_chars(buf, buf + sizeof buf, v);
    (void)err;
    out.append(buf, p);
}

void put_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

void put_weights(std::string& out, const weight_vector& w) {
    out.push_back('[');
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (i) out.push_back(',');
        put_double(out, w[i]);
    }
    out.push_back(']');
}

// Tiny object-writer: field(...) inserts the comma separators so every
// encoder below reads as a flat field list in canonical order.
struct owriter {
    std::string& out;
    bool first = true;

    void key(std::string_view k) {
        if (!first) out.push_back(',');
        first = false;
        put_escaped(out, k);
        out.push_back(':');
    }
    void field(std::string_view k, std::string_view v) {
        key(k);
        put_escaped(out, v);
    }
    void field_u64(std::string_view k, std::uint64_t v) {
        key(k);
        put_u64(out, v);
    }
    void field_double(std::string_view k, double v) {
        key(k);
        put_double(out, v);
    }
    void field_bool(std::string_view k, bool v) {
        key(k);
        put_bool(out, v);
    }
    void field_weights(std::string_view k, const weight_vector& w) {
        key(k);
        put_weights(out, w);
    }
};

// --- optimize_options <-> JSON ----------------------------------------------

void put_options(std::string& out, const optimize_options& o) {
    out.push_back('{');
    owriter w{out};
    w.field_double("confidence", o.confidence);
    w.field_double("alpha", o.alpha);
    w.field_u64("max_sweeps", o.max_sweeps);
    w.field_double("weight_min", o.weight_min);
    w.field_double("weight_max", o.weight_max);
    w.field_double("grid", o.grid);
    w.field_u64("max_relevant_faults", o.max_relevant_faults);
    w.field_double("relevance_window", o.relevance_window);
    w.field_bool("saddle_escape", o.saddle_escape);
    w.field_double("saddle_perturbation", o.saddle_perturbation);
    w.field_double("trust_step", o.trust_step);
    w.field_u64("prepare_block", o.prepare_block);
    w.field_u64("threads", o.threads);
    out.push_back('}');
}

optimize_options get_options(const jvalue& parent, const std::string& key) {
    optimize_options o;
    const jvalue* v = parent.find(key);
    if (!v) return o;
    if (v->kind != jvalue::obj_v)
        bad("field \"" + key + "\" must be an object");
    o.confidence = get_double(*v, "confidence", o.confidence);
    o.alpha = get_double(*v, "alpha", o.alpha);
    o.max_sweeps = get_size(*v, "max_sweeps", o.max_sweeps);
    o.weight_min = get_double(*v, "weight_min", o.weight_min);
    o.weight_max = get_double(*v, "weight_max", o.weight_max);
    o.grid = get_double(*v, "grid", o.grid);
    o.max_relevant_faults =
        get_size(*v, "max_relevant_faults", o.max_relevant_faults);
    o.relevance_window = get_double(*v, "relevance_window", o.relevance_window);
    o.saddle_escape = get_bool(*v, "saddle_escape", o.saddle_escape);
    o.saddle_perturbation =
        get_double(*v, "saddle_perturbation", o.saddle_perturbation);
    o.trust_step = get_double(*v, "trust_step", o.trust_step);
    o.prepare_block = get_size(*v, "prepare_block", o.prepare_block);
    o.threads = static_cast<unsigned>(get_u64(*v, "threads", o.threads));
    return o;
}

// --- kind names -------------------------------------------------------------

const char* job_kind_name(job_kind k) {
    switch (k) {
        case job_kind::test_length: return "test_length";
        case job_kind::optimize: return "optimize";
        case job_kind::fault_sim: return "fault_sim";
    }
    bad("bad job kind");
}

job_kind job_kind_from(const std::string& name) {
    if (name == "test_length") return job_kind::test_length;
    if (name == "optimize") return job_kind::optimize;
    if (name == "fault_sim") return job_kind::fault_sim;
    bad("unknown job kind \"" + name + "\"");
}

// --- length payload ---------------------------------------------------------

void put_length(std::string& out, const length_payload& l) {
    out.push_back('{');
    owriter w{out};
    w.field_bool("feasible", l.feasible);
    w.field_double("test_length", l.test_length);
    w.field_u64("relevant_faults", l.relevant_faults);
    w.field_u64("zero_prob_faults", l.zero_prob_faults);
    w.field_double("hardest_probability", l.hardest_probability);
    out.push_back('}');
}

length_payload get_length(const jvalue& parent, const std::string& key) {
    length_payload l;
    const jvalue* v = parent.find(key);
    if (!v) return l;
    if (v->kind != jvalue::obj_v)
        bad("field \"" + key + "\" must be an object");
    l.feasible = get_bool(*v, "feasible", l.feasible);
    l.test_length = get_double(*v, "test_length", l.test_length);
    l.relevant_faults = get_size(*v, "relevant_faults", l.relevant_faults);
    l.zero_prob_faults = get_size(*v, "zero_prob_faults", l.zero_prob_faults);
    l.hardest_probability =
        get_double(*v, "hardest_probability", l.hardest_probability);
    return l;
}

response decode_response_value(const jvalue& o);

}  // namespace

// --- request encoding -------------------------------------------------------

namespace {

/// Append-only core of the request encoder: writes q's canonical JSON at
/// the end of `out` without clearing it, so callers can reuse one buffer
/// across encodes (and the matrix encoder can nest without temporaries).
void append_request(const request& q, std::string& out) {
    out.push_back('{');
    owriter w{out};
    std::visit(
        [&](const auto& p) {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, load_circuit_request>) {
                w.field("req", "load_circuit");
                w.field_u64("id", q.id);
                w.field("name", p.name);
                w.field("bench", p.bench);
                w.field("path", p.path);
                w.field("suite", p.suite);
            } else if constexpr (std::is_same_v<T, test_length_request>) {
                w.field("req", "test_length");
                w.field_u64("id", q.id);
                w.field_u64("circuit", p.circuit);
                // Registry addressing is opt-in: the "name" key appears
                // only when used, so handle-addressed encodings are
                // byte-identical to the pre-registry wire format.
                if (!p.name.empty()) w.field("name", p.name);
                w.field_weights("weights", p.weights);
                w.field_double("confidence", p.confidence);
                w.field_u64("threads", p.threads);
            } else if constexpr (std::is_same_v<T, optimize_request>) {
                w.field("req", "optimize");
                w.field_u64("id", q.id);
                w.field_u64("circuit", p.circuit);
                if (!p.name.empty()) w.field("name", p.name);
                w.field_weights("weights", p.weights);
                w.key("options");
                put_options(out, p.options);
            } else if constexpr (std::is_same_v<T, fault_sim_request>) {
                w.field("req", "fault_sim");
                w.field_u64("id", q.id);
                w.field_u64("circuit", p.circuit);
                if (!p.name.empty()) w.field("name", p.name);
                w.field_weights("weights", p.weights);
                w.field_u64("patterns", p.patterns);
                w.field_u64("seed", p.seed);
            } else if constexpr (std::is_same_v<T, matrix_request>) {
                w.field("req", "matrix");
                w.field_u64("id", q.id);
                w.field("kind", job_kind_name(p.kind));
                w.key("circuits");
                out.push_back('[');
                for (std::size_t i = 0; i < p.circuits.size(); ++i) {
                    if (i) out.push_back(',');
                    put_u64(out, p.circuits[i]);
                }
                out.push_back(']');
                w.key("weight_sets");
                out.push_back('[');
                for (std::size_t i = 0; i < p.weight_sets.size(); ++i) {
                    if (i) out.push_back(',');
                    put_weights(out, p.weight_sets[i]);
                }
                out.push_back(']');
                w.key("options");
                put_options(out, p.options);
                w.field_u64("patterns", p.patterns);
                w.field_u64("seed", p.seed);
                w.field_double("confidence", p.confidence);
            } else if constexpr (std::is_same_v<T, stats_request>) {
                w.field("req", "stats");
                w.field_u64("id", q.id);
            } else if constexpr (std::is_same_v<T, evict_request>) {
                w.field("req", "evict");
                w.field_u64("id", q.id);
                w.field_bool("all", p.all);
                w.field_u64("circuit", p.circuit);
                w.field_u64("keep_engines", p.keep_engines);
            } else if constexpr (std::is_same_v<T, shutdown_request>) {
                w.field("req", "shutdown");
                w.field_u64("id", q.id);
            } else if constexpr (std::is_same_v<T, register_circuit_request>) {
                w.field("req", "register_circuit");
                w.field_u64("id", q.id);
                w.field("tenant", p.tenant);
                w.field("name", p.name);
                w.field("bench", p.bench);
                w.field("path", p.path);
                w.field("suite", p.suite);
            } else if constexpr (std::is_same_v<T, reload_circuit_request>) {
                w.field("req", "reload_circuit");
                w.field_u64("id", q.id);
                w.field("tenant", p.tenant);
                w.field("name", p.name);
                w.field("bench", p.bench);
                w.field("path", p.path);
                w.field("suite", p.suite);
            } else if constexpr (std::is_same_v<T, list_circuits_request>) {
                w.field("req", "list_circuits");
                w.field_u64("id", q.id);
                if (!p.tenant.empty()) w.field("tenant", p.tenant);
            }
        },
        q.payload);
    out.push_back('}');
}

}  // namespace

std::string encode(const request& q) {
    std::string out;
    append_request(q, out);
    return out;
}

void encode_into(const request& q, std::string& out) {
    out.clear();  // keeps capacity: steady-state encodes never allocate
    append_request(q, out);
}

// --- request decoding -------------------------------------------------------

request decode_request(std::string_view line) {
    const jvalue o = parser(line).parse();
    if (o.kind != jvalue::obj_v) bad("request must be a JSON object");
    const std::string kind = member(o, "req").str;
    request q;
    q.id = get_u64(o, "id", 0);
    if (kind == "load_circuit") {
        load_circuit_request p;
        p.name = get_string(o, "name", "");
        p.bench = get_string(o, "bench", "");
        p.path = get_string(o, "path", "");
        p.suite = get_string(o, "suite", "");
        q.payload = std::move(p);
    } else if (kind == "test_length") {
        test_length_request p;
        p.circuit = get_size(o, "circuit", 0);
        p.name = get_string(o, "name", "");
        p.weights = get_weights(o, "weights");
        p.confidence = get_double(o, "confidence", 0.0);
        p.threads = static_cast<unsigned>(get_u64(o, "threads", 1));
        q.payload = std::move(p);
    } else if (kind == "optimize") {
        optimize_request p;
        p.circuit = get_size(o, "circuit", 0);
        p.name = get_string(o, "name", "");
        p.weights = get_weights(o, "weights");
        p.options = get_options(o, "options");
        q.payload = std::move(p);
    } else if (kind == "fault_sim") {
        fault_sim_request p;
        p.circuit = get_size(o, "circuit", 0);
        p.name = get_string(o, "name", "");
        p.weights = get_weights(o, "weights");
        p.patterns = get_u64(o, "patterns", p.patterns);
        p.seed = get_u64(o, "seed", p.seed);
        q.payload = std::move(p);
    } else if (kind == "matrix") {
        matrix_request p;
        p.kind = job_kind_from(get_string(o, "kind", "test_length"));
        if (const jvalue* v = o.find("circuits")) {
            if (v->kind != jvalue::arr_v) bad("\"circuits\" must be an array");
            for (const jvalue& e : v->arr) {
                if (e.kind != jvalue::num_v || !e.has_unum)
                    bad("\"circuits\" must hold unsigned integers");
                p.circuits.push_back(static_cast<std::size_t>(e.unum));
            }
        }
        if (const jvalue* v = o.find("weight_sets")) {
            if (v->kind != jvalue::arr_v)
                bad("\"weight_sets\" must be an array");
            for (const jvalue& e : v->arr) {
                if (e.kind != jvalue::arr_v)
                    bad("\"weight_sets\" must hold arrays");
                weight_vector ws;
                ws.reserve(e.arr.size());
                for (const jvalue& n : e.arr) {
                    if (n.kind != jvalue::num_v)
                        bad("\"weight_sets\" must hold numbers");
                    ws.push_back(n.num);
                }
                p.weight_sets.push_back(std::move(ws));
            }
        }
        p.options = get_options(o, "options");
        p.patterns = get_u64(o, "patterns", p.patterns);
        p.seed = get_u64(o, "seed", p.seed);
        p.confidence = get_double(o, "confidence", p.confidence);
        q.payload = std::move(p);
    } else if (kind == "stats") {
        q.payload = stats_request{};
    } else if (kind == "evict") {
        evict_request p;
        // Naming a circuit implies a per-circuit evict; "all" must be
        // explicit to wipe the whole daemon when a circuit is given.
        p.all = get_bool(o, "all", o.find("circuit") == nullptr);
        p.circuit = get_size(o, "circuit", 0);
        p.keep_engines = get_size(o, "keep_engines", 0);
        q.payload = std::move(p);
    } else if (kind == "shutdown") {
        q.payload = shutdown_request{};
    } else if (kind == "register_circuit") {
        register_circuit_request p;
        p.tenant = get_string(o, "tenant", "");
        p.name = get_string(o, "name", "");
        p.bench = get_string(o, "bench", "");
        p.path = get_string(o, "path", "");
        p.suite = get_string(o, "suite", "");
        q.payload = std::move(p);
    } else if (kind == "reload_circuit") {
        reload_circuit_request p;
        p.tenant = get_string(o, "tenant", "");
        p.name = get_string(o, "name", "");
        p.bench = get_string(o, "bench", "");
        p.path = get_string(o, "path", "");
        p.suite = get_string(o, "suite", "");
        q.payload = std::move(p);
    } else if (kind == "list_circuits") {
        list_circuits_request p;
        p.tenant = get_string(o, "tenant", "");
        q.payload = std::move(p);
    } else {
        bad("unknown request kind \"" + kind + "\"");
    }
    return q;
}

// --- response encoding ------------------------------------------------------

namespace {

/// Append-only core of the response encoder (see append_request).
void append_response(const response& r, std::string& out) {
    out.push_back('{');
    owriter w{out};
    w.field_u64("id", r.id);
    w.field_bool("ok", r.ok);
    std::visit(
        [&](const auto& p) {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, error_response>) {
                w.field("resp", "error");
                w.field("error", p.message);
                // Typed refusals ("quota", "not_found", ...) carry a code;
                // generic envelopes stay byte-identical to the old format.
                if (!p.code.empty()) w.field("code", p.code);
            } else if constexpr (std::is_same_v<T, load_circuit_response>) {
                w.field("resp", "load_circuit");
                w.field_u64("circuit", p.circuit);
                w.field("name", p.name);
                w.field_u64("inputs", p.inputs);
                w.field_u64("outputs", p.outputs);
                w.field_u64("gates", p.gates);
                w.field_u64("faults", p.faults);
                w.field_u64("revision", p.revision);
            } else if constexpr (std::is_same_v<T, test_length_response>) {
                w.field("resp", "test_length");
                w.field_u64("circuit", p.circuit);
                w.field_u64("revision", p.revision);
                w.field_bool("cached", p.cached);
                w.field_double("elapsed_ms", p.elapsed_ms);
                w.key("length");
                put_length(out, p.length);
            } else if constexpr (std::is_same_v<T, optimize_response>) {
                w.field("resp", "optimize");
                w.field_u64("circuit", p.circuit);
                w.field_u64("revision", p.revision);
                w.field_bool("cached", p.cached);
                w.field_double("elapsed_ms", p.elapsed_ms);
                w.field_bool("feasible", p.feasible);
                w.field_double("initial_length", p.initial_length);
                w.field_double("final_length", p.final_length);
                w.field_u64("sweeps", p.sweeps);
                w.field_u64("analysis_calls", p.analysis_calls);
                w.field_u64("zero_prob_faults", p.zero_prob_faults);
                w.field_weights("weights", p.weights);
                w.key("length");
                put_length(out, p.length);
            } else if constexpr (std::is_same_v<T, fault_sim_response>) {
                w.field("resp", "fault_sim");
                w.field_u64("circuit", p.circuit);
                w.field_u64("revision", p.revision);
                w.field_bool("cached", p.cached);
                w.field_double("elapsed_ms", p.elapsed_ms);
                w.field_u64("patterns", p.patterns);
                w.field_u64("faults", p.faults);
                w.field_u64("detected", p.detected);
                w.field_double("coverage", p.coverage);
            } else if constexpr (std::is_same_v<T, matrix_response>) {
                w.field("resp", "matrix");
                w.key("results");
                out.push_back('[');
                for (std::size_t i = 0; i < p.results.size(); ++i) {
                    if (i) out.push_back(',');
                    // Append in place: no per-result temporary string.
                    append_response(p.results[i], out);
                }
                out.push_back(']');
            } else if constexpr (std::is_same_v<T, stats_response>) {
                w.field("resp", "stats");
                w.field_u64("requests", p.requests);
                w.key("cache");
                {
                    out.push_back('{');
                    owriter c{out};
                    c.field_u64("probes", p.cache_probes);
                    c.field_u64("hits", p.cache_hits);
                    c.field_u64("misses", p.cache_misses);
                    c.field_u64("entries", p.cache_entries);
                    c.field_u64("evictions", p.cache_evictions);
                    c.field_u64("bytes", p.cache_bytes);
                    out.push_back('}');
                }
                w.field_u64("circuits", p.circuits);
                w.field("simd_isa", p.simd_isa);
                w.field_u64("simd_lanes", p.simd_lanes);
                w.key("pools");
                out.push_back('[');
                for (std::size_t i = 0; i < p.pools.size(); ++i) {
                    if (i) out.push_back(',');
                    const pool_stats_payload& ps = p.pools[i];
                    out.push_back('{');
                    owriter c{out};
                    c.field_u64("circuit", ps.circuit);
                    c.field_u64("revision", ps.revision);
                    c.field_u64("engines", ps.engines);
                    c.field_u64("warm", ps.warm);
                    c.field_u64("capacity", ps.capacity);
                    c.field_u64("hits", ps.hits);
                    c.field_u64("misses", ps.misses);
                    c.field_u64("resyncs", ps.resyncs);
                    c.field_u64("evictions", ps.evictions);
                    c.field_u64("relocations", ps.relocations);
                    out.push_back('}');
                }
                out.push_back(']');
                // Registry catalog section: encoded only once a circuit
                // has been registered, so registry-free transcripts are
                // byte-identical to the pre-registry wire format.
                if (p.registry.present) {
                    const registry_stats_payload& rg = p.registry;
                    w.key("registry");
                    out.push_back('{');
                    owriter c{out};
                    c.field_u64("circuits", rg.circuits);
                    c.field_u64("resident", rg.resident);
                    c.field_u64("max_views", rg.max_views);
                    c.field_u64("view_evictions", rg.view_evictions);
                    c.field_u64("view_rebuilds", rg.view_rebuilds);
                    c.key("tenants");
                    out.push_back('[');
                    for (std::size_t i = 0; i < rg.tenants.size(); ++i) {
                        if (i) out.push_back(',');
                        const tenant_stats_payload& ts = rg.tenants[i];
                        out.push_back('{');
                        owriter t{out};
                        t.field("tenant", ts.tenant);
                        t.field_u64("circuits", ts.circuits);
                        t.field_u64("cache_bytes", ts.cache_bytes);
                        t.field_u64("max_circuits", ts.max_circuits);
                        t.field_u64("max_engines", ts.max_engines);
                        t.field_u64("max_cache_bytes", ts.max_cache_bytes);
                        t.field_u64("rejections", ts.rejections);
                        out.push_back('}');
                    }
                    out.push_back(']');
                    out.push_back('}');
                }
                // Socket-server admission section: encoded last, and
                // only when a svc::server stamped it, so stdin-daemon
                // and in-process transcripts are byte-identical to the
                // pre-reactor wire format.
                if (p.server.present) {
                    const server_stats_payload& sv = p.server;
                    w.key("server");
                    out.push_back('{');
                    owriter c{out};
                    c.field_u64("active", sv.active);
                    c.field_u64("workers", sv.workers);
                    c.field_u64("max_connections", sv.max_connections);
                    c.field_u64("queue_depth", sv.queue_depth);
                    c.field_u64("queue_bytes", sv.queue_bytes);
                    c.field_u64("accepted", sv.accepted);
                    c.field_u64("refused", sv.refused);
                    c.field_u64("requests", sv.requests);
                    c.field_u64("protocol_errors", sv.protocol_errors);
                    c.field_u64("overflows", sv.overflows);
                    c.field_u64("timeouts", sv.timeouts);
                    c.field_u64("queue_drops", sv.queue_drops);
                    c.field_u64("accept_backoffs", sv.accept_backoffs);
                    out.push_back('}');
                }
            } else if constexpr (std::is_same_v<T, evict_response>) {
                w.field("resp", "evict");
                w.field_u64("cache_entries", p.cache_entries);
                w.field_u64("engines", p.engines);
            } else if constexpr (std::is_same_v<T, shutdown_response>) {
                w.field("resp", "shutdown");
            } else if constexpr (std::is_same_v<T, register_circuit_response>) {
                w.field("resp", "register_circuit");
                w.field("tenant", p.tenant);
                w.field("name", p.name);
                w.field_u64("circuit", p.circuit);
                w.field_u64("revision", p.revision);
                w.field_u64("inputs", p.inputs);
                w.field_u64("outputs", p.outputs);
                w.field_u64("gates", p.gates);
            } else if constexpr (std::is_same_v<T, reload_circuit_response>) {
                w.field("resp", "reload_circuit");
                w.field("tenant", p.tenant);
                w.field("name", p.name);
                w.field_u64("circuit", p.circuit);
                w.field_u64("revision", p.revision);
                w.field_u64("old_revision", p.old_revision);
                w.field_u64("reloads", p.reloads);
            } else if constexpr (std::is_same_v<T, list_circuits_response>) {
                w.field("resp", "list_circuits");
                w.key("entries");
                out.push_back('[');
                for (std::size_t i = 0; i < p.entries.size(); ++i) {
                    if (i) out.push_back(',');
                    const catalog_entry_payload& e = p.entries[i];
                    out.push_back('{');
                    owriter c{out};
                    c.field("tenant", e.tenant);
                    c.field("name", e.name);
                    c.field_u64("circuit", e.circuit);
                    c.field_u64("revision", e.revision);
                    c.field_bool("resident", e.resident);
                    c.field_u64("reloads", e.reloads);
                    out.push_back('}');
                }
                out.push_back(']');
            }
        },
        r.payload);
    out.push_back('}');
}

}  // namespace

std::string encode(const response& r) {
    std::string out;
    append_response(r, out);
    return out;
}

void encode_into(const response& r, std::string& out) {
    out.clear();  // keeps capacity: steady-state encodes never allocate
    append_response(r, out);
}

// --- response decoding ------------------------------------------------------

namespace {

response decode_response_value(const jvalue& o) {
    if (o.kind != jvalue::obj_v) bad("response must be a JSON object");
    const std::string kind = member(o, "resp").str;
    response r;
    r.id = get_u64(o, "id", 0);
    r.ok = get_bool(o, "ok", true);
    if (kind == "error") {
        error_response p;
        p.message = get_string(o, "error", "");
        p.code = get_string(o, "code", "");
        r.payload = std::move(p);
    } else if (kind == "load_circuit") {
        load_circuit_response p;
        p.circuit = get_size(o, "circuit", 0);
        p.name = get_string(o, "name", "");
        p.inputs = get_size(o, "inputs", 0);
        p.outputs = get_size(o, "outputs", 0);
        p.gates = get_size(o, "gates", 0);
        p.faults = get_size(o, "faults", 0);
        p.revision = get_u64(o, "revision", 0);
        r.payload = std::move(p);
    } else if (kind == "test_length") {
        test_length_response p;
        p.circuit = get_size(o, "circuit", 0);
        p.revision = get_u64(o, "revision", 0);
        p.cached = get_bool(o, "cached", false);
        p.elapsed_ms = get_double(o, "elapsed_ms", 0.0);
        p.length = get_length(o, "length");
        r.payload = std::move(p);
    } else if (kind == "optimize") {
        optimize_response p;
        p.circuit = get_size(o, "circuit", 0);
        p.revision = get_u64(o, "revision", 0);
        p.cached = get_bool(o, "cached", false);
        p.elapsed_ms = get_double(o, "elapsed_ms", 0.0);
        p.feasible = get_bool(o, "feasible", false);
        p.initial_length = get_double(o, "initial_length", 0.0);
        p.final_length = get_double(o, "final_length", 0.0);
        p.sweeps = get_size(o, "sweeps", 0);
        p.analysis_calls = get_size(o, "analysis_calls", 0);
        p.zero_prob_faults = get_size(o, "zero_prob_faults", 0);
        p.weights = get_weights(o, "weights");
        p.length = get_length(o, "length");
        r.payload = std::move(p);
    } else if (kind == "fault_sim") {
        fault_sim_response p;
        p.circuit = get_size(o, "circuit", 0);
        p.revision = get_u64(o, "revision", 0);
        p.cached = get_bool(o, "cached", false);
        p.elapsed_ms = get_double(o, "elapsed_ms", 0.0);
        p.patterns = get_u64(o, "patterns", 0);
        p.faults = get_size(o, "faults", 0);
        p.detected = get_size(o, "detected", 0);
        p.coverage = get_double(o, "coverage", 0.0);
        r.payload = std::move(p);
    } else if (kind == "matrix") {
        matrix_response p;
        if (const jvalue* v = o.find("results")) {
            if (v->kind != jvalue::arr_v) bad("\"results\" must be an array");
            for (const jvalue& e : v->arr)
                p.results.push_back(decode_response_value(e));
        }
        r.payload = std::move(p);
    } else if (kind == "stats") {
        stats_response p;
        p.requests = get_u64(o, "requests", 0);
        if (const jvalue* v = o.find("cache")) {
            if (v->kind != jvalue::obj_v) bad("\"cache\" must be an object");
            p.cache_probes = get_u64(*v, "probes", 0);
            p.cache_hits = get_u64(*v, "hits", 0);
            p.cache_misses = get_u64(*v, "misses", 0);
            p.cache_entries = get_size(*v, "entries", 0);
            p.cache_evictions = get_u64(*v, "evictions", 0);
            p.cache_bytes = get_u64(*v, "bytes", 0);
        }
        p.circuits = get_size(o, "circuits", 0);
        if (const jvalue* v = o.find("simd_isa")) p.simd_isa = v->str;
        p.simd_lanes = get_size(o, "simd_lanes", 0);
        if (const jvalue* v = o.find("pools")) {
            if (v->kind != jvalue::arr_v) bad("\"pools\" must be an array");
            for (const jvalue& e : v->arr) {
                if (e.kind != jvalue::obj_v)
                    bad("\"pools\" must hold objects");
                pool_stats_payload ps;
                ps.circuit = get_size(e, "circuit", 0);
                ps.revision = get_u64(e, "revision", 0);
                ps.engines = get_size(e, "engines", 0);
                ps.warm = get_size(e, "warm", 0);
                ps.capacity = get_size(e, "capacity", 0);
                ps.hits = get_size(e, "hits", 0);
                ps.misses = get_size(e, "misses", 0);
                ps.resyncs = get_size(e, "resyncs", 0);
                ps.evictions = get_size(e, "evictions", 0);
                ps.relocations = get_size(e, "relocations", 0);
                p.pools.push_back(ps);
            }
        }
        if (const jvalue* v = o.find("registry")) {
            if (v->kind != jvalue::obj_v) bad("\"registry\" must be an object");
            registry_stats_payload rg;
            rg.present = true;
            rg.circuits = get_size(*v, "circuits", 0);
            rg.resident = get_size(*v, "resident", 0);
            rg.max_views = get_size(*v, "max_views", 0);
            rg.view_evictions = get_u64(*v, "view_evictions", 0);
            rg.view_rebuilds = get_u64(*v, "view_rebuilds", 0);
            if (const jvalue* ta = v->find("tenants")) {
                if (ta->kind != jvalue::arr_v)
                    bad("\"tenants\" must be an array");
                for (const jvalue& e : ta->arr) {
                    if (e.kind != jvalue::obj_v)
                        bad("\"tenants\" must hold objects");
                    tenant_stats_payload ts;
                    ts.tenant = get_string(e, "tenant", "");
                    ts.circuits = get_size(e, "circuits", 0);
                    ts.cache_bytes = get_size(e, "cache_bytes", 0);
                    ts.max_circuits = get_size(e, "max_circuits", 0);
                    ts.max_engines = get_size(e, "max_engines", 0);
                    ts.max_cache_bytes = get_size(e, "max_cache_bytes", 0);
                    ts.rejections = get_u64(e, "rejections", 0);
                    rg.tenants.push_back(std::move(ts));
                }
            }
            p.registry = std::move(rg);
        }
        if (const jvalue* v = o.find("server")) {
            if (v->kind != jvalue::obj_v) bad("\"server\" must be an object");
            server_stats_payload sv;
            sv.present = true;
            sv.active = get_size(*v, "active", 0);
            sv.workers = get_size(*v, "workers", 0);
            sv.max_connections = get_size(*v, "max_connections", 0);
            sv.queue_depth = get_size(*v, "queue_depth", 0);
            sv.queue_bytes = get_size(*v, "queue_bytes", 0);
            sv.accepted = get_u64(*v, "accepted", 0);
            sv.refused = get_u64(*v, "refused", 0);
            sv.requests = get_u64(*v, "requests", 0);
            sv.protocol_errors = get_u64(*v, "protocol_errors", 0);
            sv.overflows = get_u64(*v, "overflows", 0);
            sv.timeouts = get_u64(*v, "timeouts", 0);
            sv.queue_drops = get_u64(*v, "queue_drops", 0);
            sv.accept_backoffs = get_u64(*v, "accept_backoffs", 0);
            p.server = sv;
        }
        r.payload = std::move(p);
    } else if (kind == "evict") {
        evict_response p;
        p.cache_entries = get_size(o, "cache_entries", 0);
        p.engines = get_size(o, "engines", 0);
        r.payload = std::move(p);
    } else if (kind == "shutdown") {
        r.payload = shutdown_response{};
    } else if (kind == "register_circuit") {
        register_circuit_response p;
        p.tenant = get_string(o, "tenant", "");
        p.name = get_string(o, "name", "");
        p.circuit = get_size(o, "circuit", 0);
        p.revision = get_u64(o, "revision", 0);
        p.inputs = get_size(o, "inputs", 0);
        p.outputs = get_size(o, "outputs", 0);
        p.gates = get_size(o, "gates", 0);
        r.payload = std::move(p);
    } else if (kind == "reload_circuit") {
        reload_circuit_response p;
        p.tenant = get_string(o, "tenant", "");
        p.name = get_string(o, "name", "");
        p.circuit = get_size(o, "circuit", 0);
        p.revision = get_u64(o, "revision", 0);
        p.old_revision = get_u64(o, "old_revision", 0);
        p.reloads = get_u64(o, "reloads", 0);
        r.payload = std::move(p);
    } else if (kind == "list_circuits") {
        list_circuits_response p;
        if (const jvalue* v = o.find("entries")) {
            if (v->kind != jvalue::arr_v) bad("\"entries\" must be an array");
            for (const jvalue& e : v->arr) {
                if (e.kind != jvalue::obj_v)
                    bad("\"entries\" must hold objects");
                catalog_entry_payload ce;
                ce.tenant = get_string(e, "tenant", "");
                ce.name = get_string(e, "name", "");
                ce.circuit = get_size(e, "circuit", 0);
                ce.revision = get_u64(e, "revision", 0);
                ce.resident = get_bool(e, "resident", false);
                ce.reloads = get_u64(e, "reloads", 0);
                p.entries.push_back(std::move(ce));
            }
        }
        r.payload = std::move(p);
    } else {
        bad("unknown response kind \"" + kind + "\"");
    }
    return r;
}

}  // namespace

response decode_response(std::string_view line) {
    return decode_response_value(parser(line).parse());
}

std::uint64_t extract_id(std::string_view line) {
    try {
        const jvalue o = parser(line).parse();
        if (o.kind == jvalue::obj_v) return get_u64(o, "id", 0);
    } catch (const wire_error&) {
        // Malformed line: fall through to the text scan below.
    }
    // Cheap scan for an "id":<digits> pair so even truncated lines get an
    // addressed error envelope.
    const std::string_view needle = "\"id\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string_view::npos) return 0;
    std::uint64_t id = 0;
    const auto [p, err] = std::from_chars(
        line.data() + pos + needle.size(), line.data() + line.size(), id);
    (void)p;
    return err == std::errc{} ? id : 0;
}

}  // namespace wrpt::svc
