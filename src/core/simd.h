// Portable SIMD shim — the one place that knows which vector ISA this
// build carries and whether it is allowed to use it.
//
// The compute kernels (lane-blocked COP sweeps in prob/cop_kernels, the
// batched objective-term evaluator below, the blocked PPSFP word loops)
// are written twice: a scalar reference — the original per-element code,
// kept as the semantic definition — and a lane-blocked variant that must
// be bit-identical to it. This header decides, once, which variant runs:
//
//   compile time   the widest ISA the build flags guarantee (WRPT_SIMD_*
//                  macros, lane width as a constant),
//   runtime        an AVX2 step-up on baseline x86-64 builds via
//                  function multiversioning (__builtin_cpu_supports),
//                  and a global force-scalar switch (WRPT_FORCE_SCALAR
//                  environment variable, or set_force_scalar() from
//                  tests) that routes every kernel to its reference.
//
// Building with -DWRPT_FORCE_SCALAR (the CI fallback leg) compiles the
// vector variants out entirely; the dispatch then always answers
// isa::scalar. Bit-identity holds because every lane performs exactly
// the per-element operation sequence of the scalar source expression —
// no FMA contraction, no reassociation, no fast-math — so the only
// difference is which elements share an instruction.

#pragma once

#include <cstddef>

// Compile-time tier: the widest vector extension the build flags let us
// emit unconditionally. WRPT_FORCE_SCALAR (a CMake option) wins over
// everything and strips the vector paths from the binary.
#if !defined(WRPT_FORCE_SCALAR)
#if defined(__AVX2__)
#define WRPT_SIMD_AVX2 1
#define WRPT_SIMD_SSE2 1
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define WRPT_SIMD_SSE2 1
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define WRPT_SIMD_NEON 1
#endif
// Runtime AVX2 step-up for baseline x86 builds: kernels carry an extra
// __attribute__((target("avx2"))) version, selected per call when the
// CPU reports AVX2. Needs the GNU target attribute (GCC/clang).
#if defined(WRPT_SIMD_SSE2) && !defined(WRPT_SIMD_AVX2) && defined(__GNUC__)
#define WRPT_SIMD_AVX2_DISPATCH 1
#endif
#endif  // !WRPT_FORCE_SCALAR

namespace wrpt::simd {

enum class isa {
    scalar,  ///< reference loops, one element at a time
    sse2,    ///< 2 x double / 2 x u64 (x86-64 baseline)
    neon,    ///< 2 x double / 2 x u64 (aarch64 baseline)
    avx2,    ///< 4 x double / 4 x u64
};

/// Stable lowercase name ("scalar", "sse2", "neon", "avx2") — surfaced
/// in svc stats responses and serve startup output so benchmark rows are
/// attributable to the hardware they ran on.
const char* isa_name(isa i);

/// Doubles (equivalently 64-bit words) per vector register.
unsigned lane_width(isa i);

/// The widest ISA the compile flags guarantee without a CPU check.
isa compiled_isa();

/// The ISA the kernels will actually use right now: scalar when forced,
/// otherwise the compiled tier plus the runtime AVX2 step-up where the
/// CPU supports it. Cheap enough to call per sweep.
isa active_isa();

/// True when kernels must take their scalar reference path — set by the
/// WRPT_FORCE_SCALAR environment variable at startup or by
/// set_force_scalar() (tests toggle it around equivalence runs).
bool scalar_forced();
void set_force_scalar(bool force);

/// Batched objective terms: out[i] = std::exp(-x[i] * m) for i in [0,n).
/// The products are staged lane-blocked; each exponential is the same
/// std::exp call the scalar reference makes, so every element is
/// bit-identical to `out[i] = std::exp(-x[i] * m)` evaluated in a plain
/// loop (IEEE multiply is rounding-symmetric under sign flip, and the
/// reduction order is the caller's, untouched). `x` and `out` may alias
/// only if they are equal pointers.
void exp_neg_scale(const double* x, double m, double* out, std::size_t n);

}  // namespace wrpt::simd
