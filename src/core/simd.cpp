#include "core/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(WRPT_SIMD_SSE2)
#include <immintrin.h>
#elif defined(WRPT_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace wrpt::simd {

namespace {

bool env_forces_scalar() {
    const char* v = std::getenv("WRPT_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Relaxed atomics: the flag is a coarse mode switch read at kernel entry;
// tests flip it between (not during) parallel sections.
std::atomic<bool> force_scalar_flag{env_forces_scalar()};

bool runtime_avx2() {
#if defined(WRPT_SIMD_AVX2)
    return true;  // the build already assumes it
#elif defined(WRPT_SIMD_AVX2_DISPATCH)
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
#else
    return false;
#endif
}

}  // namespace

const char* isa_name(isa i) {
    switch (i) {
        case isa::scalar: return "scalar";
        case isa::sse2: return "sse2";
        case isa::neon: return "neon";
        case isa::avx2: return "avx2";
    }
    return "scalar";
}

unsigned lane_width(isa i) {
    switch (i) {
        case isa::scalar: return 1;
        case isa::sse2: return 2;
        case isa::neon: return 2;
        case isa::avx2: return 4;
    }
    return 1;
}

isa compiled_isa() {
#if defined(WRPT_SIMD_AVX2)
    return isa::avx2;
#elif defined(WRPT_SIMD_SSE2)
    return isa::sse2;
#elif defined(WRPT_SIMD_NEON)
    return isa::neon;
#else
    return isa::scalar;
#endif
}

isa active_isa() {
    if (force_scalar_flag.load(std::memory_order_relaxed)) return isa::scalar;
    if (runtime_avx2()) return isa::avx2;
    return compiled_isa();
}

bool scalar_forced() {
    return force_scalar_flag.load(std::memory_order_relaxed);
}

void set_force_scalar(bool force) {
    force_scalar_flag.store(force, std::memory_order_relaxed);
}

// --- exp_neg_scale ----------------------------------------------------------

namespace {

// Scalar reference — the loop opt/normalize.cpp used to spell inline.
void exp_neg_scale_scalar(const double* x, double m, double* out,
                          std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(-x[i] * m);
}

#if defined(WRPT_SIMD_SSE2) || defined(WRPT_SIMD_NEON)
// Lane-blocked products staged through a small buffer, exponentials by
// the same std::exp per element. (-x)*m in vector lanes rounds exactly
// like the scalar expression; exp sees bit-identical arguments.
void exp_neg_scale_vec(const double* x, double m, double* out,
                       std::size_t n) {
    constexpr std::size_t block = 64;
    double prod[block];
#if defined(WRPT_SIMD_SSE2)
    const __m128d vm = _mm_set1_pd(m);
    const __m128d sign = _mm_set1_pd(-0.0);
#else
    const float64x2_t vm = vdupq_n_f64(m);
#endif
    std::size_t i = 0;
    for (; i + block <= n; i += block) {
        for (std::size_t j = 0; j < block; j += 2) {
#if defined(WRPT_SIMD_SSE2)
            const __m128d v = _mm_loadu_pd(x + i + j);
            _mm_storeu_pd(prod + j,
                          _mm_mul_pd(_mm_xor_pd(v, sign), vm));
#else
            const float64x2_t v = vld1q_f64(x + i + j);
            vst1q_f64(prod + j, vmulq_f64(vnegq_f64(v), vm));
#endif
        }
        for (std::size_t j = 0; j < block; ++j)
            out[i + j] = std::exp(prod[j]);
    }
    exp_neg_scale_scalar(x + i, m, out + i, n - i);
}
#endif

}  // namespace

void exp_neg_scale(const double* x, double m, double* out, std::size_t n) {
#if defined(WRPT_SIMD_SSE2) || defined(WRPT_SIMD_NEON)
    if (active_isa() != isa::scalar) {
        exp_neg_scale_vec(x, m, out, n);
        return;
    }
#endif
    exp_neg_scale_scalar(x, m, out, n);
}

}  // namespace wrpt::simd
