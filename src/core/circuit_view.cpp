#include "core/circuit_view.h"

#include <algorithm>
#include <utility>

#include "util/dense_map.h"
#include "util/error.h"

namespace wrpt {

circuit_view circuit_view::compile(const netlist& nl) {
    return compile(nl, compile_options{});
}

circuit_view circuit_view::compile(const netlist& nl,
                                   const compile_options& options) {
    nl.validate();
    circuit_view cv;
    cv.nl_ = &nl;

    const std::size_t n = nl.node_count();
    cv.kind_.resize(n);
    cv.level_.resize(n);
    cv.fanin_offset_.assign(n + 1, 0);
    cv.is_output_.assign(n, 0);
    cv.input_index_.assign(n, no_index);

    for (node_id id = 0; id < n; ++id) {
        cv.kind_[id] = nl.kind(id);
        cv.level_[id] = static_cast<std::uint32_t>(nl.level(id));
        cv.depth_ = std::max<std::size_t>(cv.depth_, cv.level_[id]);
        const auto fi = nl.fanins(id);
        cv.max_arity_ = std::max(cv.max_arity_, fi.size());
        cv.fanin_offset_[id + 1] =
            cv.fanin_offset_[id] + static_cast<std::uint32_t>(fi.size());
    }
    cv.fanin_pool_.resize(cv.fanin_offset_[n]);
    for (node_id id = 0; id < n; ++id) {
        const auto fi = nl.fanins(id);
        std::copy(fi.begin(), fi.end(),
                  cv.fanin_pool_.begin() + cv.fanin_offset_[id]);
    }

    // Fanout CSR by counting sort over the fanin edges, preserving the
    // consumer-id order the netlist's own lazy lists produce.
    cv.fanout_offset_.assign(n + 1, 0);
    for (node_id f : cv.fanin_pool_) ++cv.fanout_offset_[f + 1];
    for (std::size_t i = 1; i <= n; ++i)
        cv.fanout_offset_[i] += cv.fanout_offset_[i - 1];
    cv.fanout_pool_.resize(cv.fanin_pool_.size());
    {
        std::vector<std::uint32_t> cursor(cv.fanout_offset_.begin(),
                                          cv.fanout_offset_.end() - 1);
        for (node_id id = 0; id < n; ++id)
            for (node_id f : cv.fanins(id)) cv.fanout_pool_[cursor[f]++] = id;
    }

    // Driven-pin transpose: for each stem, the pin indices its consumers
    // read it on, in fanout-scan order (one sublist of matching pins per
    // driving edge, mirroring the scan the backward passes used to do).
    if (options.driven_pins) {
        cv.driven_offset_.assign(n + 1, 0);
        std::vector<std::uint32_t> count(n, 0);
        for (node_id id = 0; id < n; ++id) {
            const auto fi = cv.fanins(id);
            for (node_id f : fi) {
                std::uint32_t matches = 0;
                for (node_id g : fi)
                    if (g == f) ++matches;
                count[f] += matches;
            }
        }
        for (std::size_t i = 0; i < n; ++i)
            cv.driven_offset_[i + 1] = cv.driven_offset_[i] + count[i];
        cv.driven_pool_.resize(cv.driven_offset_[n]);
        std::vector<std::uint32_t> cursor(cv.driven_offset_.begin(),
                                          cv.driven_offset_.end() - 1);
        for (node_id stem = 0; stem < n; ++stem) {
            for (node_id g : cv.fanouts(stem)) {
                const auto fi = cv.fanins(g);
                for (std::size_t k = 0; k < fi.size(); ++k)
                    if (fi[k] == stem)
                        cv.driven_pool_[cursor[stem]++] =
                            cv.fanin_offset_[g] + static_cast<std::uint32_t>(k);
            }
        }
    }

    // Level buckets by counting sort over levels (stable in node id).
    cv.level_offset_.assign(cv.depth_ + 2, 0);
    for (std::uint32_t l : cv.level_) ++cv.level_offset_[l + 1];
    for (std::size_t i = 1; i < cv.level_offset_.size(); ++i)
        cv.level_offset_[i] += cv.level_offset_[i - 1];
    cv.level_nodes_.resize(n);
    {
        std::vector<std::uint32_t> cursor(cv.level_offset_.begin(),
                                          cv.level_offset_.end() - 1);
        for (node_id id = 0; id < n; ++id)
            cv.level_nodes_[cursor[cv.level_[id]]++] = id;
    }

    cv.inputs_.assign(nl.inputs().begin(), nl.inputs().end());
    cv.outputs_.assign(nl.outputs().begin(), nl.outputs().end());
    for (std::size_t i = 0; i < cv.inputs_.size(); ++i)
        cv.input_index_[cv.inputs_[i]] = static_cast<std::uint32_t>(i);
    for (node_id o : cv.outputs_) cv.is_output_[o] = 1;

    if (options.input_cones) {
        // One forward mark-propagation pass per input: a node is in the
        // cone iff some fanin is, and ids are topological, so a single
        // ascending scan both discovers and emits the cone in topological
        // order. The stamp array avoids clearing between inputs.
        std::vector<std::uint32_t> stamp(n, no_index);
        cv.cone_offset_.assign(cv.inputs_.size() + 1, 0);
        for (std::size_t i = 0; i < cv.inputs_.size(); ++i) {
            const node_id start = cv.inputs_[i];
            const std::uint32_t mark = static_cast<std::uint32_t>(i);
            stamp[start] = mark;
            cv.cone_pool_.push_back(start);
            for (node_id id = start + 1; id < n; ++id) {
                for (node_id f : cv.fanins(id)) {
                    if (stamp[f] == mark) {
                        stamp[id] = mark;
                        cv.cone_pool_.push_back(id);
                        break;
                    }
                }
            }
            cv.cone_offset_[i + 1] =
                static_cast<std::uint32_t>(cv.cone_pool_.size());
        }
    }

    if (options.lane_groups) {
        // Group each level bucket by (kind, arity), packed into one small
        // dense shape code `kind * (max_arity + 1) + arity`. The code
        // universe is tiny (#kinds * (max_arity + 1)), so reserve_array
        // pins every probe to the direct-index path, and dense_map's
        // ascending-key iteration reproduces the (kind, arity)
        // lexicographic order the std::map-based builder emitted — the
        // grouping stays bit-identical. The bucket scan keeps node order
        // ascending within a group.
        cv.lane_groups_built_ = true;
        cv.lane_node_pool_.reserve(n);
        const std::uint64_t shape_span =
            static_cast<std::uint64_t>(cv.max_arity_) + 1;
        util::dense_map<std::vector<node_id>> by_shape;
        by_shape.reserve_array(
            (static_cast<std::uint64_t>(gate_kind::xnor_) + 1) * shape_span);
        for (std::size_t l = 0; l <= cv.depth_; ++l) {
            by_shape.clear();
            for (node_id id : cv.nodes_at_level(l))
                by_shape[static_cast<std::uint64_t>(cv.kind_[id]) * shape_span +
                         cv.fanin_count(id)]
                    .push_back(id);
            by_shape.for_each([&](std::uint64_t code,
                                  const std::vector<node_id>& nodes) {
                lane_group g;
                g.kind = static_cast<gate_kind>(code / shape_span);
                g.arity = static_cast<std::uint32_t>(code % shape_span);
                g.offset = static_cast<std::uint32_t>(cv.lane_node_pool_.size());
                g.count = static_cast<std::uint32_t>(nodes.size());
                g.args_offset =
                    static_cast<std::uint32_t>(cv.lane_args_pool_.size());
                cv.lane_node_pool_.insert(cv.lane_node_pool_.end(),
                                          nodes.begin(), nodes.end());
                // k-major gather matrix: all lanes of fanin pin 0, then
                // pin 1, ... — unit-stride index loads in the kernel.
                for (std::uint32_t k = 0; k < g.arity; ++k)
                    for (node_id id : nodes)
                        cv.lane_args_pool_.push_back(cv.fanins(id)[k]);
                cv.lane_group_.push_back(g);
            });
        }
    }

    return cv;
}

std::span<const node_id> circuit_view::input_cone(std::size_t input_idx) const {
    require(has_input_cones(),
            "circuit_view::input_cone: view compiled without input cones");
    require(input_idx < inputs_.size(),
            "circuit_view::input_cone: input index out of range");
    return {cone_pool_.data() + cone_offset_[input_idx],
            cone_pool_.data() + cone_offset_[input_idx + 1]};
}

}  // namespace wrpt
