// Compiled circuit view: one immutable, levelized, structure-of-arrays
// representation of a netlist shared by every analysis layer.
//
// The paper's whole pipeline — signal probabilities, fault detection
// profiles, the coordinate-descent OPTIMIZE loop — is repeated traversals
// of the same combinational network. The view compiles the traversal
// structure once: flat CSR fanin/fanout arrays, level buckets for
// event-driven wavefronts, and (optionally) the precomputed transitive
// fanout cone of every primary input, which turns the optimizer's
// per-input re-analysis from O(nodes) into O(cone).
//
// A view is immutable after compile() and safe to share across threads;
// the block-parallel fault simulator hands one view to every worker.
// Node ids are dense and topologically ordered (inherited from netlist
// construction), so ascending id order is a forward sweep and descending
// id order a backward sweep.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

class circuit_view {
public:
    struct compile_options {
        /// Precompute the transitive fanout cone of every primary input
        /// (the optimizer's incremental COP engine needs them; throwaway
        /// simulator views do not).
        bool input_cones = false;
        /// Precompute the stem -> driven-pin transpose the COP backward
        /// passes fold over. Worth it for views reused across many
        /// backward sweeps (the incremental engine); throwaway simulator
        /// views skip it.
        bool driven_pins = false;
        /// Precompute the lane-blocked level groups (same level, same
        /// kind, same arity) plus the k-major fanin gather matrix that
        /// the vectorized COP forward sweep consumes. Worth it for views
        /// the probability analyses sweep repeatedly; throwaway simulator
        /// views skip it.
        bool lane_groups = false;
    };

    /// Compile a view of `nl`. The netlist must outlive the view and stay
    /// structurally unchanged (the view keeps no reference into netlist
    /// internals, but source() returns the original).
    static circuit_view compile(const netlist& nl);
    static circuit_view compile(const netlist& nl,
                                const compile_options& options);

    const netlist& source() const { return *nl_; }

    // --- nodes -----------------------------------------------------------

    std::size_t node_count() const { return kind_.size(); }
    gate_kind kind(node_id n) const { return kind_[n]; }
    std::uint32_t level(node_id n) const { return level_[n]; }
    std::size_t depth() const { return depth_; }
    std::size_t max_arity() const { return max_arity_; }

    std::span<const node_id> fanins(node_id n) const {
        return {fanin_pool_.data() + fanin_offset_[n],
                fanin_pool_.data() + fanin_offset_[n + 1]};
    }
    std::size_t fanin_count(node_id n) const {
        return fanin_offset_[n + 1] - fanin_offset_[n];
    }
    std::span<const node_id> fanouts(node_id n) const {
        return {fanout_pool_.data() + fanout_offset_[n],
                fanout_pool_.data() + fanout_offset_[n + 1]};
    }
    std::size_t fanout_count(node_id n) const {
        return fanout_offset_[n + 1] - fanout_offset_[n];
    }

    /// Fanin pins are numbered globally: pin_offset(n) + k identifies
    /// fanin pin k of node n. pin_count() is the total (== fanin edges).
    std::uint32_t pin_offset(node_id n) const { return fanin_offset_[n]; }
    std::uint32_t pin_count() const {
        return static_cast<std::uint32_t>(fanin_pool_.size());
    }
    /// The full pin offset array (size node_count + 1), for result
    /// structures that carry their own copy of the pin layout.
    std::span<const std::uint32_t> pin_offsets() const {
        return fanin_offset_;
    }

    /// Global pin indices fed by node n's stem — the transpose of the
    /// fanin pin map, in the order a scan over fanouts(n) and each
    /// consumer's fanins would visit them (a consumer using the stem on
    /// several pins contributes its matching pins once per driving edge).
    /// Backward passes fold over this list instead of re-scanning
    /// consumer fanin arrays. Requires compile_options::driven_pins.
    bool has_driven_pins() const { return !driven_offset_.empty(); }
    std::span<const std::uint32_t> driven_pins(node_id n) const {
        return {driven_pool_.data() + driven_offset_[n],
                driven_pool_.data() + driven_offset_[n + 1]};
    }

    /// Nodes of logic level l, ascending node id. l <= depth().
    std::span<const node_id> nodes_at_level(std::size_t l) const {
        return {level_nodes_.data() + level_offset_[l],
                level_nodes_.data() + level_offset_[l + 1]};
    }

    // --- primary inputs / outputs ---------------------------------------

    std::span<const node_id> inputs() const { return inputs_; }
    std::span<const node_id> outputs() const { return outputs_; }
    std::size_t input_count() const { return inputs_.size(); }
    std::size_t output_count() const { return outputs_.size(); }

    bool is_output(node_id n) const { return is_output_[n] != 0; }

    /// Index of a primary input node within inputs(), or SIZE_MAX.
    std::size_t input_index(node_id n) const {
        const std::uint32_t i = input_index_[n];
        return i == no_index ? static_cast<std::size_t>(-1) : i;
    }

    // --- precomputed input cones -----------------------------------------

    bool has_input_cones() const { return !cone_offset_.empty(); }

    /// Mean fanout-cone size over all inputs as a fraction of node_count —
    /// the crossover signal for cone-restricted vs full re-analysis.
    /// Requires compile_options::input_cones.
    double mean_cone_fraction() const {
        if (cone_pool_.empty() || inputs_.empty() || kind_.empty()) return 1.0;
        return static_cast<double>(cone_pool_.size()) /
               (static_cast<double>(inputs_.size()) *
                static_cast<double>(kind_.size()));
    }

    /// Transitive fanout cone of primary input `input_idx` (an index into
    /// inputs()), including the input node itself, ascending node id
    /// (= topological) order. Requires compile_options::input_cones.
    std::span<const node_id> input_cone(std::size_t input_idx) const;

    // --- lane-blocked level groups ----------------------------------------
    //
    // Nodes of one level bucket regrouped by (kind, arity): every node in
    // a group evaluates the same gate function over the same number of
    // fanins, and all its fanins live at strictly lower levels — so a
    // vector kernel can evaluate `lane_width` group members per
    // instruction, gathering fanin k of lanes j..j+L-1 from the k-major
    // index matrix. Group order (levels ascending, (kind, arity) sorted
    // within a level) and the ascending node order inside a group are
    // deterministic; evaluation order across groups of one level is
    // immaterial because intra-level nodes never feed each other.

    struct lane_group {
        gate_kind kind;
        std::uint32_t arity;
        std::uint32_t offset;       ///< into lane_nodes()
        std::uint32_t count;        ///< nodes in the group
        std::uint32_t args_offset;  ///< into the gather-index pool
    };

    bool has_lane_groups() const { return lane_groups_built_; }
    std::span<const lane_group> lane_groups() const { return lane_group_; }
    /// The group's nodes, ascending node id.
    const node_id* lane_nodes(const lane_group& g) const {
        return lane_node_pool_.data() + g.offset;
    }
    /// The group's fanin gather indices, k-major: entry [k * count + j]
    /// is fanin pin k of the group's j-th node (a global node id).
    const std::uint32_t* lane_args(const lane_group& g) const {
        return lane_args_pool_.data() + g.args_offset;
    }

private:
    static constexpr std::uint32_t no_index = 0xffffffffu;

    const netlist* nl_ = nullptr;

    std::vector<gate_kind> kind_;
    std::vector<std::uint32_t> level_;
    std::vector<std::uint32_t> fanin_offset_;   // size node_count + 1
    std::vector<node_id> fanin_pool_;
    std::vector<std::uint32_t> fanout_offset_;  // size node_count + 1
    std::vector<node_id> fanout_pool_;
    std::vector<std::uint32_t> level_offset_;   // size depth + 2
    std::vector<node_id> level_nodes_;
    std::vector<std::uint32_t> driven_offset_;  // size node_count + 1
    std::vector<std::uint32_t> driven_pool_;

    std::vector<node_id> inputs_;
    std::vector<node_id> outputs_;
    std::vector<std::uint8_t> is_output_;
    std::vector<std::uint32_t> input_index_;    // per node, no_index if gate

    std::vector<std::uint32_t> cone_offset_;    // size input_count + 1
    std::vector<node_id> cone_pool_;

    bool lane_groups_built_ = false;
    std::vector<lane_group> lane_group_;
    std::vector<node_id> lane_node_pool_;
    std::vector<std::uint32_t> lane_args_pool_;

    std::size_t depth_ = 0;
    std::size_t max_arity_ = 0;
};

// --- shared sweep shapes -----------------------------------------------------
//
// Node ids are topologically ordered, so the two sweep shapes every
// analysis uses are plain id loops; naming them keeps the intent visible
// at call sites and concentrates the iteration contract in one place.

/// Visit every node in topological (fanin-before-gate) order.
template <class Visit>
void forward_sweep(const circuit_view& cv, Visit&& visit) {
    const node_id n = static_cast<node_id>(cv.node_count());
    for (node_id i = 0; i < n; ++i) visit(i);
}

/// Visit every node in reverse topological (fanout-before-stem) order.
template <class Visit>
void backward_sweep(const circuit_view& cv, Visit&& visit) {
    for (node_id i = static_cast<node_id>(cv.node_count()); i-- > 0;) visit(i);
}

}  // namespace wrpt
