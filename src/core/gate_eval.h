// The single gate-evaluation kernel shared by every analysis layer.
//
// Each layer interprets the same gate structure over a different algebra:
// 64-pattern machine words (simulation), scalar booleans (reference paths),
// probabilities under the independence assumption (COP), ternary values
// (PODEM), BDD references (exact analysis). eval_gate() holds the one
// switch over gate_kind; an algebra supplies the carrier type and the
// zero/one/not/and/or/xor operations. Every former per-layer gate switch
// (logic_sim, signal_prob, podem, detect/bdd) now instantiates this
// template instead of repeating the decomposition.
//
// Inverting kinds (nand/nor/xnor) are evaluated as the monotone/parity body
// folded left-to-right over the fanins, inverted once at the root. The
// left fold fixes the association order, so two layers using the same
// algebra produce bit-identical results — the property the incremental COP
// engine's equivalence guarantee rests on.

#pragma once

#include <cstdint>

#include "netlist/gate.h"
#include "util/error.h"

namespace wrpt {

/// 64 patterns per value, one bit each.
struct word_algebra {
    using value_type = std::uint64_t;
    value_type zero() const { return 0; }
    value_type one() const { return ~0ULL; }
    value_type not_(value_type a) const { return ~a; }
    value_type and_(value_type a, value_type b) const { return a & b; }
    value_type or_(value_type a, value_type b) const { return a | b; }
    value_type xor_(value_type a, value_type b) const { return a ^ b; }
};

/// Scalar booleans (reference semantics for tests).
struct bool_algebra {
    using value_type = bool;
    value_type zero() const { return false; }
    value_type one() const { return true; }
    value_type not_(value_type a) const { return !a; }
    value_type and_(value_type a, value_type b) const { return a && b; }
    value_type or_(value_type a, value_type b) const { return a || b; }
    value_type xor_(value_type a, value_type b) const { return a != b; }
};

/// Signal probabilities under the independence assumption — the paper's
/// arithmetic embedding rules (2)-(4): P(not x) = 1-P(x), P(x and y) =
/// P(x)P(y), xor combines as p + q - 2pq.
struct cop_algebra {
    using value_type = double;
    value_type zero() const { return 0.0; }
    value_type one() const { return 1.0; }
    value_type not_(value_type a) const { return 1.0 - a; }
    value_type and_(value_type a, value_type b) const { return a * b; }
    value_type or_(value_type a, value_type b) const { return a + b - a * b; }
    value_type xor_(value_type a, value_type b) const {
        return a + b - 2.0 * a * b;
    }
};

/// Three-valued logic for test generation (0, 1, unknown).
enum class ternary_value : std::uint8_t { zero, one, x };

struct ternary_algebra {
    using value_type = ternary_value;
    value_type zero() const { return ternary_value::zero; }
    value_type one() const { return ternary_value::one; }
    value_type not_(value_type a) const {
        if (a == ternary_value::x) return ternary_value::x;
        return a == ternary_value::zero ? ternary_value::one
                                        : ternary_value::zero;
    }
    value_type and_(value_type a, value_type b) const {
        if (a == ternary_value::zero || b == ternary_value::zero)
            return ternary_value::zero;
        if (a == ternary_value::x || b == ternary_value::x)
            return ternary_value::x;
        return ternary_value::one;
    }
    value_type or_(value_type a, value_type b) const {
        if (a == ternary_value::one || b == ternary_value::one)
            return ternary_value::one;
        if (a == ternary_value::x || b == ternary_value::x)
            return ternary_value::x;
        return ternary_value::zero;
    }
    value_type xor_(value_type a, value_type b) const {
        if (a == ternary_value::x || b == ternary_value::x)
            return ternary_value::x;
        return a == b ? ternary_value::zero : ternary_value::one;
    }
};

/// Evaluate one gate over `count` fanin values produced by `arg(i)` —
/// the single gate_kind switch every layer shares. The algebra is passed
/// by const reference so stateful algebras (a BDD manager wrapper) work
/// alongside the stateless ones above. The getter form lets hot paths
/// read fanin values straight out of their value arrays without staging
/// them in a scratch buffer.
template <class Algebra, class ArgGetter>
typename Algebra::value_type eval_gate_with(const Algebra& alg, gate_kind kind,
                                            ArgGetter&& arg,
                                            std::size_t count) {
    using value = typename Algebra::value_type;
    switch (kind) {
        case gate_kind::input:
            // Inputs carry externally assigned values; evaluating one is a
            // bug in the caller.
            throw error("eval_gate: primary input has no gate function");
        case gate_kind::const0: return alg.zero();
        case gate_kind::const1: return alg.one();
        case gate_kind::buf: return arg(0);
        case gate_kind::not_: return alg.not_(arg(0));
        case gate_kind::and_:
        case gate_kind::nand_: {
            value acc = alg.one();
            for (std::size_t i = 0; i < count; ++i)
                acc = alg.and_(acc, arg(i));
            return kind == gate_kind::nand_ ? alg.not_(acc) : acc;
        }
        case gate_kind::or_:
        case gate_kind::nor_: {
            value acc = alg.zero();
            for (std::size_t i = 0; i < count; ++i)
                acc = alg.or_(acc, arg(i));
            return kind == gate_kind::nor_ ? alg.not_(acc) : acc;
        }
        case gate_kind::xor_:
        case gate_kind::xnor_: {
            value acc = alg.zero();
            for (std::size_t i = 0; i < count; ++i)
                acc = alg.xor_(acc, arg(i));
            return kind == gate_kind::xnor_ ? alg.not_(acc) : acc;
        }
    }
    throw error("eval_gate: unknown gate kind");
}

/// Array form: fanin values staged contiguously in `args`.
template <class Algebra>
typename Algebra::value_type eval_gate(const Algebra& alg, gate_kind kind,
                                       const typename Algebra::value_type* args,
                                       std::size_t count) {
    return eval_gate_with(alg, kind, [args](std::size_t i) { return args[i]; },
                          count);
}

}  // namespace wrpt
