// Static test-set compaction by reverse-order fault simulation.
//
// The section 5.2 flow (optimized random patterns + PODEM top-up) yields a
// correct but redundant test set: late patterns re-detect faults earlier
// ones already covered. Classic static compaction simulates the set in
// reverse order with fault dropping and keeps only patterns that
// first-detect something — typically shrinking random-heavy sets several
// fold without losing coverage.

#pragma once

#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wrpt {

struct compaction_result {
    std::vector<std::vector<bool>> patterns;  ///< the compacted set
    std::size_t detected = 0;   ///< faults covered by the compacted set
    std::size_t original_size = 0;
};

/// Keep a subset of `patterns` with the same fault coverage (w.r.t.
/// `faults`). Patterns are considered in reverse order; a pattern is kept
/// iff it detects a fault not yet covered by the already-kept ones.
compaction_result compact_test_set(const netlist& nl,
                                   const std::vector<fault>& faults,
                                   const std::vector<std::vector<bool>>& patterns);

}  // namespace wrpt
