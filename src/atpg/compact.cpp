#include "atpg/compact.h"

#include <algorithm>
#include <bit>

#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "util/error.h"

namespace wrpt {

compaction_result compact_test_set(
    const netlist& nl, const std::vector<fault>& faults,
    const std::vector<std::vector<bool>>& patterns) {
    compaction_result res;
    res.original_size = patterns.size();
    if (patterns.empty()) return res;
    for (const auto& p : patterns)
        require(p.size() == nl.input_count(),
                "compact_test_set: pattern width mismatch");

    // Reverse-order simulation with fault dropping: per 64-pattern block,
    // a pattern is kept iff it is the block-first detector of some still
    // undetected fault.
    simulator sim(nl);
    std::vector<bool> live(faults.size(), true);
    std::vector<bool> keep(patterns.size(), false);
    std::size_t live_count = faults.size();

    std::vector<std::uint64_t> words(nl.input_count());
    const std::size_t n = patterns.size();
    for (std::size_t base = 0; base < n && live_count > 0; base += 64) {
        const std::size_t block = std::min<std::size_t>(64, n - base);
        std::fill(words.begin(), words.end(), 0);
        for (std::size_t b = 0; b < block; ++b) {
            // Reverse order: block entry b is pattern n-1-(base+b).
            const auto& p = patterns[n - 1 - (base + b)];
            for (std::size_t i = 0; i < p.size(); ++i)
                if (p[i]) words[i] |= (1ULL << b);
        }
        sim.simulate(words);
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (!live[fi]) continue;
            const std::uint64_t mask = sim.detect_mask(faults[fi]);
            if (mask == 0) continue;
            const int bit = std::countr_zero(mask);
            keep[n - 1 - (base + static_cast<std::size_t>(bit))] = true;
            live[fi] = false;
            --live_count;
        }
    }

    for (std::size_t i = 0; i < n; ++i)
        if (keep[i]) res.patterns.push_back(patterns[i]);
    res.detected = faults.size() - live_count;
    return res;
}

}  // namespace wrpt
