// PODEM deterministic test pattern generation and redundancy proof.
//
// Two roles in the reproduction:
//  1. Redundancy identification. The paper reports Table 2/4 coverage
//     "only with respect to those faults which are not proven to be
//     undetectable due to redundancy". PROTEST's 0/1-probability proof
//     misses most redundancies (the paper says so); a complete ATPG run
//     that exhausts its search space without finding a test IS a proof.
//     Our generated S2 (restoring array divider) contains such faults —
//     the R < V invariant makes parts of the restore logic unreachable.
//  2. Deterministic TPG support (paper section 5.2): optimized random
//     patterns + fault dropping first, PODEM for the remainder.
//
// The engine is classical PODEM: ternary (0/1/X) composite good/faulty
// simulation, objective selection from the D-frontier, backtrace to a
// primary input, decision stack with chronological backtracking. A
// backtrack limit turns long searches into "aborted" rather than wrong
// answers; "redundant" is only reported when the search space is exhausted.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wrpt {

enum class podem_status : std::uint8_t {
    detected,   ///< test found (pattern filled below)
    redundant,  ///< proven untestable: search space exhausted
    aborted,    ///< backtrack limit hit; fault remains unclassified
};

struct podem_options {
    std::size_t backtrack_limit = 512;
    /// Unassigned inputs in a found test are filled randomly with this seed.
    std::uint64_t random_fill_seed = 0xf111;
};

struct podem_result {
    podem_status status = podem_status::aborted;
    std::vector<bool> pattern;  ///< valid iff status == detected
    std::size_t backtracks = 0;
    std::size_t decisions = 0;
};

/// Single-fault PODEM.
class podem_engine {
public:
    explicit podem_engine(const netlist& nl, podem_options options = {});

    /// Generate a test for `f` or prove it redundant. Detected results are
    /// verified against the parallel-pattern simulator before returning.
    podem_result generate(const fault& f);

private:
    struct ternary_frame;
    const netlist* nl_;
    podem_options options_;
};

/// Classification of a whole fault list (used for coverage accounting).
struct fault_classification {
    std::vector<podem_status> status;          ///< per fault
    std::vector<std::vector<bool>> tests;      ///< per detected fault
    std::size_t detected = 0;
    std::size_t redundant = 0;
    std::size_t aborted = 0;
};

/// Run PODEM over every fault in the list.
fault_classification classify_faults(const netlist& nl,
                                     const std::vector<fault>& faults,
                                     const podem_options& options = {});

}  // namespace wrpt
