#include "atpg/podem.h"

#include <algorithm>

#include "core/gate_eval.h"
#include "sim/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

// Three-valued logic comes from the shared gate-eval kernel; the local
// alias keeps the engine body terse.
using tv = ternary_value;

tv tv_not(tv v) { return ternary_algebra{}.not_(v); }

tv tv_from_bool(bool b) { return b ? tv::one : tv::zero; }

}  // namespace

/// All per-attempt state of one PODEM run, with event-driven composite
/// (good, bad, diff-possible) propagation: a decision assigns one primary
/// input, so only its fanout cone is recomputed.
struct podem_engine::ternary_frame {
    const netlist* nl = nullptr;
    fault f;
    node_id site = null_node;
    tv stuck = tv::x;

    std::vector<tv> pi;
    std::vector<tv> good;
    std::vector<tv> bad;
    std::vector<bool> dp;  ///< some output difference still possible via n

    std::vector<std::vector<node_id>> buckets;  // by level
    std::vector<std::uint8_t> queued;

    void init(const netlist& n, const fault& fault_, node_id site_, tv stuck_) {
        nl = &n;
        f = fault_;
        site = site_;
        stuck = stuck_;
        pi.assign(n.input_count(), tv::x);
        good.assign(n.node_count(), tv::x);
        bad.assign(n.node_count(), tv::x);
        dp.assign(n.node_count(), false);
        buckets.resize(n.depth() + 1);
        queued.assign(n.node_count(), 0);
        for (node_id id = 0; id < n.node_count(); ++id) recompute(id);
    }

    /// Recompute (good, bad, dp) of one node from its fanins; returns true
    /// if anything changed.
    bool recompute(node_id n) {
        const netlist& net = *nl;
        const auto fi = net.fanins(n);
        tv vals[64] = {};
        require(fi.size() <= 64, "podem: gate arity beyond kernel limit");
        tv g, b;
        if (net.kind(n) == gate_kind::input) {
            g = pi[net.input_index(n)];
            b = g;
        } else {
            for (std::size_t k = 0; k < fi.size(); ++k) vals[k] = good[fi[k]];
            g = eval_gate(ternary_algebra{}, net.kind(n), vals, fi.size());
            for (std::size_t k = 0; k < fi.size(); ++k) vals[k] = bad[fi[k]];
            if (!f.is_stem() && n == f.where)
                vals[static_cast<std::size_t>(f.pin)] = stuck;
            b = eval_gate(ternary_algebra{}, net.kind(n), vals, fi.size());
        }
        if (f.is_stem() && n == f.where) b = stuck;

        // Conservative difference-possibility: a fully known pair decides;
        // an unknown pair can differ only if a fanin can — except at the
        // fault insertion point, where the difference originates whenever
        // activation is still possible.
        bool d;
        if (g != tv::x && b != tv::x) {
            d = g != b;
        } else {
            d = false;
            for (node_id x : fi)
                if (dp[x]) {
                    d = true;
                    break;
                }
            if (n == f.where) {
                // For a stem fault the site's fault-free value is the one
                // being computed right now; for a branch fault the driver
                // is upstream and already final.
                const tv site_good = f.is_stem() ? g : good[site];
                if (site_good == tv::x || site_good != stuck) d = true;
            }
        }
        const bool changed = g != good[n] || b != bad[n] || d != dp[n];
        good[n] = g;
        bad[n] = b;
        dp[n] = d;
        return changed;
    }

    void schedule(node_id n) {
        if (!queued[n]) {
            queued[n] = 1;
            buckets[nl->level(n)].push_back(n);
        }
    }

    /// Assign (or unassign with tv::x) one primary input and propagate.
    void set_pi(std::size_t index, tv value) {
        if (pi[index] == value) return;
        pi[index] = value;
        const node_id start = nl->inputs()[index];
        if (!recompute(start)) return;
        for (node_id fo : nl->fanouts(start)) schedule(fo);
        for (std::size_t lvl = 0; lvl < buckets.size(); ++lvl) {
            auto& bucket = buckets[lvl];
            for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
                const node_id n = bucket[idx];
                queued[n] = 0;
                if (recompute(n))
                    for (node_id fo : nl->fanouts(n)) schedule(fo);
            }
            bucket.clear();
        }
    }
};

podem_engine::podem_engine(const netlist& nl, podem_options options)
    : nl_(&nl), options_(options) {
    nl.validate();
}

podem_result podem_engine::generate(const fault& f) {
    const netlist& nl = *nl_;
    const node_id site = fault_site_driver(nl, f);
    const tv stuck_tv = tv_from_bool(stuck_value(f.value));

    ternary_frame fr;
    fr.init(nl, f, site, stuck_tv);

    auto is_d_node = [&](node_id n) {
        return fr.good[n] != tv::x && fr.bad[n] != tv::x &&
               fr.good[n] != fr.bad[n];
    };

    auto detected_at_output = [&] {
        for (node_id o : nl.outputs())
            if (is_d_node(o)) return true;
        return false;
    };

    auto failure = [&] {
        if (fr.good[site] != tv::x && fr.good[site] == stuck_tv) return true;
        for (node_id o : nl.outputs())
            if (fr.dp[o]) return false;
        return true;
    };

    struct objective {
        node_id node = null_node;
        tv value = tv::x;
    };
    // The difference can only live in the fanout cone of the fault, so the
    // D-frontier scan starts at the insertion point.
    const node_id frontier_start = std::min(site, f.where);
    auto pick_objective = [&]() -> objective {
        if (fr.good[site] == tv::x) return {site, tv_not(stuck_tv)};
        for (node_id n = frontier_start; n < nl.node_count(); ++n) {
            if (fr.good[n] != tv::x && fr.bad[n] != tv::x) continue;
            if (!fr.dp[n]) continue;
            const auto fi = nl.fanins(n);
            bool has_d_input = false;
            for (node_id x : fi) {
                if (is_d_node(x)) {
                    has_d_input = true;
                    break;
                }
            }
            if (!f.is_stem() && n == f.where) has_d_input = true;
            if (!has_d_input) continue;
            for (node_id x : fi) {
                if (fr.good[x] == tv::x) {
                    tv want = tv::one;
                    if (kind_has_controlling_value(nl.kind(n)))
                        want = tv_from_bool(!controlling_value(nl.kind(n)));
                    return {x, want};
                }
            }
        }
        for (std::size_t i = 0; i < nl.input_count(); ++i)
            if (fr.pi[i] == tv::x) return {nl.inputs()[i], tv::one};
        return {};
    };

    // Backtrace an objective to an unassigned primary input. For and/or
    // bodies the required input value equals the objective value (all-1 to
    // set an and, any-0 to clear it, dually for or); inverting gates flip;
    // xor picks a polarity and relies on the decision search for the other.
    auto backtrace = [&](objective obj) -> std::pair<std::size_t, bool> {
        node_id n = obj.node;
        tv v = obj.value;
        while (nl.kind(n) != gate_kind::input) {
            if (kind_inverts(nl.kind(n))) v = tv_not(v);
            node_id next = null_node;
            for (node_id x : nl.fanins(n)) {
                if (fr.good[x] == tv::x) {
                    next = x;
                    break;
                }
            }
            require(next != null_node, "podem: backtrace hit a justified gate");
            n = next;
        }
        return {nl.input_index(n), v == tv::one};
    };

    struct decision {
        std::size_t input;
        bool value;
        bool flipped;
    };
    std::vector<decision> stack;
    podem_result res;

    while (true) {
        if (detected_at_output()) {
            rng filler(options_.random_fill_seed);
            res.pattern.assign(nl.input_count(), false);
            for (std::size_t i = 0; i < nl.input_count(); ++i) {
                if (fr.pi[i] == tv::x)
                    res.pattern[i] = filler.next_bool(0.5);
                else
                    res.pattern[i] = fr.pi[i] == tv::one;
            }
            const auto good_out = evaluate(nl, res.pattern);
            const auto bad_out = evaluate_with_fault(nl, res.pattern, f);
            if (good_out == bad_out)
                throw error("podem: generated test failed verification for " +
                            to_string(nl, f));
            res.status = podem_status::detected;
            return res;
        }

        if (failure()) {
            while (!stack.empty() && stack.back().flipped) {
                fr.set_pi(stack.back().input, tv::x);
                stack.pop_back();
            }
            if (stack.empty()) {
                res.status = podem_status::redundant;
                return res;
            }
            if (++res.backtracks > options_.backtrack_limit) {
                res.status = podem_status::aborted;
                return res;
            }
            decision& d = stack.back();
            d.value = !d.value;
            d.flipped = true;
            fr.set_pi(d.input, tv_from_bool(d.value));
            continue;
        }

        const objective obj = pick_objective();
        if (obj.node == null_node) {
            res.status = podem_status::aborted;
            return res;
        }
        const auto [input, value] = backtrace(obj);
        stack.push_back({input, value, false});
        ++res.decisions;
        fr.set_pi(input, tv_from_bool(value));
    }
}

fault_classification classify_faults(const netlist& nl,
                                     const std::vector<fault>& faults,
                                     const podem_options& options) {
    podem_engine engine(nl, options);
    fault_classification out;
    out.status.reserve(faults.size());
    for (const fault& f : faults) {
        const podem_result r = engine.generate(f);
        out.status.push_back(r.status);
        switch (r.status) {
            case podem_status::detected:
                ++out.detected;
                out.tests.push_back(r.pattern);
                break;
            case podem_status::redundant: ++out.redundant; break;
            case podem_status::aborted: ++out.aborted; break;
        }
    }
    return out;
}

}  // namespace wrpt
