#include "fault/fault.h"

#include <numeric>
#include <unordered_map>

#include "util/error.h"
#include "util/label.h"

namespace wrpt {

std::string to_string(const netlist& nl, const fault& f) {
    auto node_label = [&nl](node_id n) {
        const std::string& nm = nl.node_name(n);
        if (!nm.empty()) return nm;
        return label("n", n);
    };
    std::string s = node_label(f.where);
    if (!f.is_stem()) {
        s += ".in";
        s += std::to_string(f.pin);
    }
    s += stuck_value(f.value) ? " sa1" : " sa0";
    return s;
}

node_id fault_site_driver(const netlist& nl, const fault& f) {
    if (f.is_stem()) return f.where;
    return nl.fanins(f.where)[static_cast<std::size_t>(f.pin)];
}

std::vector<fault> generate_full_faults(const netlist& nl) {
    std::vector<fault> out;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        const bool dead = nl.fanout_count(n) == 0 && !nl.is_output(n);
        if (dead) continue;
        // Skip the "stuck at its own value" faults of constant nodes: they
        // are undetectable by construction.
        const bool skip0 = nl.kind(n) == gate_kind::const0;
        const bool skip1 = nl.kind(n) == gate_kind::const1;
        if (!skip0) out.push_back({n, -1, stuck_at::zero});
        if (!skip1) out.push_back({n, -1, stuck_at::one});
    }
    for (node_id g = 0; g < nl.node_count(); ++g) {
        if (nl.fanout_count(g) == 0 && !nl.is_output(g)) continue;  // dead
        const auto fi = nl.fanins(g);
        for (std::size_t k = 0; k < fi.size(); ++k) {
            if (nl.fanout_count(fi[k]) <= 1) continue;  // branch == stem
            out.push_back({g, static_cast<std::int32_t>(k), stuck_at::zero});
            out.push_back({g, static_cast<std::int32_t>(k), stuck_at::one});
        }
    }
    return out;
}

namespace {

/// Union-find with path compression.
class union_find {
public:
    explicit union_find(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a != b) parent_[std::max(a, b)] = std::min(a, b);
    }

private:
    std::vector<std::size_t> parent_;
};

/// Key identifying a fault uniquely: (line id, stuck value).
std::uint64_t fault_key(const netlist& nl, const fault& f) {
    // Line id: stems use node ids; branches use node_count + global pin no.
    std::uint64_t line;
    if (f.is_stem()) {
        line = f.where;
    } else {
        // Unique per (gate, pin): gate id * max_arity-ish packing.
        line = (static_cast<std::uint64_t>(f.where) << 16) |
               static_cast<std::uint64_t>(f.pin);
        line += static_cast<std::uint64_t>(nl.node_count()) << 1;
    }
    return (line << 1) | (stuck_value(f.value) ? 1u : 0u);
}

}  // namespace

collapsed_faults collapse_faults(const netlist& nl) {
    return collapse_faults(nl, generate_full_faults(nl));
}

collapsed_faults collapse_faults(const netlist& nl,
                                 const std::vector<fault>& full) {
    collapsed_faults out;
    out.all = full;

    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(full.size() * 2);
    for (std::size_t i = 0; i < full.size(); ++i)
        index.emplace(fault_key(nl, full[i]), i);

    auto lookup = [&](const fault& f) -> std::ptrdiff_t {
        auto it = index.find(fault_key(nl, f));
        return it == index.end() ? -1 : static_cast<std::ptrdiff_t>(it->second);
    };
    // The fault "value v on pin k of gate g", expressed on the line that
    // actually carries it: the branch when the driver has fanout > 1,
    // otherwise the driver's stem.
    auto input_fault = [&](node_id g, std::size_t k, stuck_at v) -> fault {
        const node_id drv = nl.fanins(g)[k];
        if (nl.fanout_count(drv) > 1)
            return {g, static_cast<std::int32_t>(k), v};
        return {drv, -1, v};
    };

    union_find uf(full.size());
    for (node_id g = 0; g < nl.node_count(); ++g) {
        const gate_kind kind = nl.kind(g);
        const auto fi = nl.fanins(g);
        if (fi.empty()) continue;
        if (nl.fanout_count(g) == 0 && !nl.is_output(g)) continue;

        if (kind == gate_kind::buf || kind == gate_kind::not_) {
            const bool inv = (kind == gate_kind::not_);
            for (stuck_at v : {stuck_at::zero, stuck_at::one}) {
                const stuck_at ov =
                    (stuck_value(v) != inv) ? stuck_at::one : stuck_at::zero;
                const auto a = lookup(input_fault(g, 0, v));
                const auto b = lookup(fault{g, -1, ov});
                if (a >= 0 && b >= 0)
                    uf.unite(static_cast<std::size_t>(a),
                             static_cast<std::size_t>(b));
            }
            continue;
        }
        if (!kind_has_controlling_value(kind)) continue;  // xor/xnor: none

        const bool c = controlling_value(kind);
        // Output value when an input is stuck at the controlling value.
        const bool out_val = kind_inverts(kind) ? !c : c;
        const stuck_at cv = c ? stuck_at::one : stuck_at::zero;
        const stuck_at ov = out_val ? stuck_at::one : stuck_at::zero;
        const auto ob = lookup(fault{g, -1, ov});
        if (ob < 0) continue;
        for (std::size_t k = 0; k < fi.size(); ++k) {
            const auto a = lookup(input_fault(g, k, cv));
            if (a >= 0)
                uf.unite(static_cast<std::size_t>(a),
                         static_cast<std::size_t>(ob));
        }
    }

    // Number the classes by their smallest member (the representative).
    out.class_of.assign(full.size(), 0);
    std::unordered_map<std::size_t, std::uint32_t> class_id;
    for (std::size_t i = 0; i < full.size(); ++i) {
        const std::size_t root = uf.find(i);
        auto it = class_id.find(root);
        if (it == class_id.end()) {
            const auto id = static_cast<std::uint32_t>(out.representative.size());
            class_id.emplace(root, id);
            out.representative.push_back(static_cast<std::uint32_t>(i));
            out.class_of[i] = id;
        } else {
            out.class_of[i] = it->second;
        }
    }
    return out;
}

}  // namespace wrpt
