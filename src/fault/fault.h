// Single stuck-at fault model over netlist lines.
//
// Lines are stems (a node's output) and fanout branches (a particular
// fanin pin of a consuming gate, when the driving stem has fanout > 1).
// This matches the paper's combinational fault model F: it "must contain
// all stuck-at-0 and stuck-at-1 faults at the primary inputs" and may
// contain an arbitrary number of further combinational faults; we include
// the standard full single-stuck-at list over all lines.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace wrpt {

enum class stuck_at : std::uint8_t { zero = 0, one = 1 };

inline bool stuck_value(stuck_at s) { return s == stuck_at::one; }

/// One stuck-at fault.
///
/// pin == -1: stem fault on the output of node `where`.
/// pin >= 0:  branch fault on fanin pin `pin` of gate `where`.
struct fault {
    node_id where = null_node;
    std::int32_t pin = -1;
    stuck_at value = stuck_at::zero;

    bool is_stem() const { return pin < 0; }
    bool operator==(const fault&) const = default;
};

/// Human-readable fault name, e.g. "G17 sa0" or "G22.in1 sa1".
std::string to_string(const netlist& nl, const fault& f);

/// The node whose signal value controls detection: the driving node of the
/// faulty line (the stem for stem faults, the branch's driver for branch
/// faults).
node_id fault_site_driver(const netlist& nl, const fault& f);

/// Generate the full single-stuck-at fault list: two faults per stem and
/// two per fanout branch of multi-fanout stems. Dead internal nodes
/// (fanout-free non-outputs) are skipped.
std::vector<fault> generate_full_faults(const netlist& nl);

/// Structural equivalence collapsing.
///
/// Classic rules: every input-sa-c of an and/nand/or/nor gate (c the
/// controlling value) is equivalent to the corresponding output fault;
/// buf/not input faults are equivalent to their output faults. Classes are
/// computed with union-find over the full list.
struct collapsed_faults {
    std::vector<fault> all;                   ///< the full fault list
    std::vector<std::uint32_t> class_of;      ///< full index -> class id
    std::vector<std::uint32_t> representative;///< class id -> full index
    std::size_t class_count() const { return representative.size(); }
};

collapsed_faults collapse_faults(const netlist& nl);
collapsed_faults collapse_faults(const netlist& nl,
                                 const std::vector<fault>& full);

}  // namespace wrpt
