// Gate primitives of the combinational network model.
//
// The model matches the paper's setting (section 2.1): a combinational
// network C with nodes K, primary inputs I and primary outputs O. Gates are
// the usual Boolean primitives; sequential elements are assumed to be
// configured into scan/LFSR structures by the surrounding BIST scheme and
// are therefore outside the model.

#pragma once

#include <cstdint>
#include <string_view>

namespace wrpt {

/// Identifier of a node (gate or primary input) within one netlist.
/// Node ids are dense and topologically ordered by construction: every
/// fanin id is smaller than the gate's own id.
using node_id = std::uint32_t;

/// Sentinel for "no node".
inline constexpr node_id null_node = 0xffffffffu;

/// Supported gate functions.
enum class gate_kind : std::uint8_t {
    input,   ///< primary input, no fanins
    const0,  ///< constant 0, no fanins
    const1,  ///< constant 1, no fanins
    buf,     ///< identity, 1 fanin
    not_,    ///< inversion, 1 fanin
    and_,    ///< conjunction, >= 1 fanins
    nand_,   ///< negated conjunction, >= 1 fanins
    or_,     ///< disjunction, >= 1 fanins
    nor_,    ///< negated disjunction, >= 1 fanins
    xor_,    ///< parity, >= 1 fanins
    xnor_,   ///< negated parity, >= 1 fanins
};

/// Printable name of a gate kind (stable; used by the .bench writer).
std::string_view to_string(gate_kind kind);

/// Parse a gate kind name (case-insensitive); returns true on success.
bool gate_kind_from_string(std::string_view text, gate_kind& out);

/// Number of fanins this kind requires; 0 for fixed-arity-0 kinds,
/// 1 for buf/not, and 2+ meaning "at least one" for the n-ary kinds.
inline bool kind_has_fanins(gate_kind kind) {
    return kind != gate_kind::input && kind != gate_kind::const0 &&
           kind != gate_kind::const1;
}

/// True for and/nand/or/nor: gates with a controlling input value.
inline bool kind_has_controlling_value(gate_kind kind) {
    return kind == gate_kind::and_ || kind == gate_kind::nand_ ||
           kind == gate_kind::or_ || kind == gate_kind::nor_;
}

/// Controlling input value of an and/nand/or/nor gate
/// (0 for and/nand, 1 for or/nor). Precondition: kind_has_controlling_value.
inline bool controlling_value(gate_kind kind) {
    return kind == gate_kind::or_ || kind == gate_kind::nor_;
}

/// True if the gate's output is the inversion of the underlying
/// monotone/parity body (not, nand, nor, xnor).
inline bool kind_inverts(gate_kind kind) {
    return kind == gate_kind::not_ || kind == gate_kind::nand_ ||
           kind == gate_kind::nor_ || kind == gate_kind::xnor_;
}

/// Evaluate a gate over 64 patterns in parallel (one bit per pattern).
/// `fanins` points at the fanin words, `count` is the fanin count.
std::uint64_t eval_gate_words(gate_kind kind, const std::uint64_t* fanins,
                              std::size_t count);

/// Evaluate a gate on scalar booleans (reference semantics for tests).
bool eval_gate_bool(gate_kind kind, const bool* fanins, std::size_t count);

}  // namespace wrpt
