// Structure-changing, function-preserving netlist transformations.

#pragma once

#include "netlist/netlist.h"

namespace wrpt {

/// Rebuild `nl` with every XOR/XNOR gate expanded into the classic
/// four-NAND network (pairwise, chained for wider gates). The result is
/// functionally equivalent but structurally different — the relationship
/// between the ISCAS'85 benchmarks c499 (XOR form) and c1355 (NAND form).
netlist expand_xor(const netlist& nl);

/// Rebuild `nl` replacing wide AND/OR/NAND/NOR gates (arity > max_arity)
/// with balanced trees of gates of at most `max_arity` inputs.
netlist limit_arity(const netlist& nl, std::size_t max_arity);

/// Constant propagation + buffer collapsing + dead-logic sweep.
///
/// Folds gates with constant fanins (and(0,x) -> 0, xor(1,x) -> not x, ...),
/// collapses buffers, and removes logic not in the fanin cone of any output.
/// Primary inputs are always kept, even if they become disconnected. The
/// generators run this as a final step so that structurally trivial
/// redundancies (stuck-at faults on folded constant lines) do not pollute
/// the fault list — the paper's "some redundancies are removed".
netlist propagate_constants(const netlist& nl);

/// Keep only nodes reachable from the outputs (plus all primary inputs).
netlist sweep_dead(const netlist& nl);

}  // namespace wrpt
