#include "netlist/transform.h"

#include <vector>

#include "util/error.h"

namespace wrpt {
namespace {

/// xor2 via four NAND gates: t = nand(a,b); xor = nand(nand(a,t), nand(b,t)).
node_id nand_xor2(netlist& out, node_id a, node_id b) {
    const node_id t = out.add_binary(gate_kind::nand_, a, b);
    const node_id u = out.add_binary(gate_kind::nand_, a, t);
    const node_id v = out.add_binary(gate_kind::nand_, b, t);
    return out.add_binary(gate_kind::nand_, u, v);
}

}  // namespace

netlist expand_xor(const netlist& nl) {
    netlist out(nl.name() + "_nand");
    std::vector<node_id> map(nl.node_count(), null_node);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        const gate_kind k = nl.kind(n);
        if (k == gate_kind::input) {
            map[n] = out.add_input(nl.node_name(n));
            continue;
        }
        std::vector<node_id> fi;
        for (node_id f : nl.fanins(n)) fi.push_back(map[f]);
        if (k == gate_kind::xor_ || k == gate_kind::xnor_) {
            node_id acc = fi[0];
            for (std::size_t i = 1; i < fi.size(); ++i)
                acc = nand_xor2(out, acc, fi[i]);
            if (fi.size() == 1 && k == gate_kind::xor_) {
                // Single-input xor is a buffer.
                acc = out.add_unary(gate_kind::buf, acc);
            }
            if (k == gate_kind::xnor_) acc = out.add_unary(gate_kind::not_, acc);
            map[n] = acc;
        } else {
            map[n] = out.add_gate(k, fi);
        }
    }
    for (node_id o : nl.outputs()) {
        node_id m = map[o];
        // A node may implement several outputs after mapping; keep 1:1 by
        // inserting buffers on duplicates.
        if (out.is_output(m)) m = out.add_unary(gate_kind::buf, m);
        out.mark_output(m, nl.output_name(o));
    }
    out.validate();
    return out;
}

netlist limit_arity(const netlist& nl, std::size_t max_arity) {
    require(max_arity >= 2, "limit_arity: max_arity must be >= 2");
    netlist out(nl.name());
    std::vector<node_id> map(nl.node_count(), null_node);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        const gate_kind k = nl.kind(n);
        if (k == gate_kind::input) {
            map[n] = out.add_input(nl.node_name(n));
            continue;
        }
        std::vector<node_id> fi;
        for (node_id f : nl.fanins(n)) fi.push_back(map[f]);
        if (fi.size() <= max_arity) {
            map[n] = out.add_gate(k, fi);
            continue;
        }
        switch (k) {
            case gate_kind::and_:
            case gate_kind::or_:
            case gate_kind::xor_:
            case gate_kind::nand_:
            case gate_kind::nor_:
            case gate_kind::xnor_:
                map[n] = out.add_tree(k, fi);
                break;
            default:
                map[n] = out.add_gate(k, fi);
        }
    }
    for (node_id o : nl.outputs()) {
        node_id m = map[o];
        if (out.is_output(m)) m = out.add_unary(gate_kind::buf, m);
        out.mark_output(m, nl.output_name(o));
    }
    out.validate();
    return out;
}

namespace {

/// Mapping target during constant propagation: either a node alias or a
/// known constant value.
struct folded {
    bool is_const = false;
    bool value = false;
    node_id node = null_node;
};

}  // namespace

netlist propagate_constants(const netlist& nl) {
    netlist out(nl.name());
    std::vector<folded> map(nl.node_count());

    node_id const_nodes[2] = {null_node, null_node};
    auto const_node = [&](bool v) {
        auto& slot = const_nodes[v ? 1 : 0];
        if (slot == null_node) slot = out.add_const(v);
        return slot;
    };
    auto materialize = [&](const folded& f) {
        return f.is_const ? const_node(f.value) : f.node;
    };

    for (node_id n = 0; n < nl.node_count(); ++n) {
        const gate_kind k = nl.kind(n);
        folded& slot = map[n];
        switch (k) {
            case gate_kind::input:
                slot.node = out.add_input(nl.node_name(n));
                continue;
            case gate_kind::const0:
            case gate_kind::const1:
                slot.is_const = true;
                slot.value = (k == gate_kind::const1);
                continue;
            case gate_kind::buf:
                slot = map[nl.fanins(n)[0]];
                continue;
            case gate_kind::not_: {
                const folded& f = map[nl.fanins(n)[0]];
                if (f.is_const) {
                    slot.is_const = true;
                    slot.value = !f.value;
                } else {
                    slot.node = out.add_unary(gate_kind::not_, f.node);
                }
                continue;
            }
            default: break;
        }

        // n-ary gates: partial evaluation.
        const bool is_xor_family =
            (k == gate_kind::xor_ || k == gate_kind::xnor_);
        std::vector<node_id> live;
        bool flip = kind_inverts(k);
        bool annihilated = false;
        const bool ctrl =
            kind_has_controlling_value(k) ? controlling_value(k) : false;
        for (node_id fi : nl.fanins(n)) {
            const folded& f = map[fi];
            if (!f.is_const) {
                live.push_back(f.node);
                continue;
            }
            if (is_xor_family) {
                if (f.value) flip = !flip;
            } else if (f.value == ctrl) {
                annihilated = true;  // controlling constant
            }
            // Non-controlling constants are simply dropped.
        }
        if (!is_xor_family && annihilated) {
            // Controlling constant in -> output = ctrl (and/or), then invert.
            slot.is_const = true;
            slot.value = kind_inverts(k) ? !ctrl : ctrl;
            continue;
        }
        if (live.empty()) {
            slot.is_const = true;
            if (is_xor_family) {
                slot.value = flip;
            } else {
                // Empty and/or: identity element, then inversion.
                const bool identity = !ctrl;  // and: 1, or: 0
                slot.value = kind_inverts(k) ? !identity : identity;
            }
            continue;
        }
        if (live.size() == 1) {
            const bool invert = is_xor_family ? flip : kind_inverts(k);
            slot.node = invert ? out.add_unary(gate_kind::not_, live[0]) : live[0];
            continue;
        }
        gate_kind nk = k;
        if (is_xor_family)
            nk = flip ? gate_kind::xnor_ : gate_kind::xor_;
        slot.node = out.add_gate(nk, live);
    }

    for (node_id o : nl.outputs()) {
        node_id m = materialize(map[o]);
        if (out.is_output(m)) m = out.add_unary(gate_kind::buf, m);
        out.mark_output(m, nl.output_name(o));
    }
    out.validate();
    return sweep_dead(out);
}

netlist sweep_dead(const netlist& nl) {
    std::vector<bool> keep(nl.node_count(), false);
    std::vector<node_id> stack;
    for (node_id o : nl.outputs()) {
        if (!keep[o]) {
            keep[o] = true;
            stack.push_back(o);
        }
    }
    while (!stack.empty()) {
        const node_id n = stack.back();
        stack.pop_back();
        for (node_id f : nl.fanins(n)) {
            if (!keep[f]) {
                keep[f] = true;
                stack.push_back(f);
            }
        }
    }
    netlist out(nl.name());
    std::vector<node_id> map(nl.node_count(), null_node);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) {
            map[n] = out.add_input(nl.node_name(n));  // inputs always kept
            continue;
        }
        if (!keep[n]) continue;
        std::vector<node_id> fi;
        for (node_id f : nl.fanins(n)) fi.push_back(map[f]);
        map[n] = out.add_gate(nl.kind(n), fi, nl.node_name(n));
    }
    for (node_id o : nl.outputs()) {
        node_id m = map[o];
        if (out.is_output(m)) m = out.add_unary(gate_kind::buf, m);
        out.mark_output(m, nl.output_name(o));
    }
    out.validate();
    return out;
}

}  // namespace wrpt
