#include "netlist/netlist.h"

#include <algorithm>
#include <cctype>

#include "core/gate_eval.h"
#include "util/error.h"

namespace wrpt {

// --- gate.h free functions --------------------------------------------------

std::string_view to_string(gate_kind kind) {
    switch (kind) {
        case gate_kind::input: return "INPUT";
        case gate_kind::const0: return "CONST0";
        case gate_kind::const1: return "CONST1";
        case gate_kind::buf: return "BUF";
        case gate_kind::not_: return "NOT";
        case gate_kind::and_: return "AND";
        case gate_kind::nand_: return "NAND";
        case gate_kind::or_: return "OR";
        case gate_kind::nor_: return "NOR";
        case gate_kind::xor_: return "XOR";
        case gate_kind::xnor_: return "XNOR";
    }
    return "?";
}

bool gate_kind_from_string(std::string_view text, gate_kind& out) {
    std::string upper(text.size(), '\0');
    std::transform(text.begin(), text.end(), upper.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    struct entry {
        std::string_view name;
        gate_kind kind;
    };
    static constexpr entry table[] = {
        {"INPUT", gate_kind::input}, {"CONST0", gate_kind::const0},
        {"CONST1", gate_kind::const1}, {"BUF", gate_kind::buf},
        {"BUFF", gate_kind::buf},      {"NOT", gate_kind::not_},
        {"INV", gate_kind::not_},      {"AND", gate_kind::and_},
        {"NAND", gate_kind::nand_},    {"OR", gate_kind::or_},
        {"NOR", gate_kind::nor_},      {"XOR", gate_kind::xor_},
        {"XNOR", gate_kind::xnor_},
    };
    for (const auto& e : table) {
        if (upper == e.name) {
            out = e.kind;
            return true;
        }
    }
    return false;
}

std::uint64_t eval_gate_words(gate_kind kind, const std::uint64_t* fanins,
                              std::size_t count) {
    return eval_gate(word_algebra{}, kind, fanins, count);
}

bool eval_gate_bool(gate_kind kind, const bool* fanins, std::size_t count) {
    return eval_gate(bool_algebra{}, kind, fanins, count);
}

// --- netlist -----------------------------------------------------------------

std::uint64_t netlist::next_revision() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

node_id netlist::new_node(gate_kind kind, std::span<const node_id> fanins,
                          const std::string& name) {
    const auto id = static_cast<node_id>(kinds_.size());
    require(kinds_.size() < null_node, "netlist: node capacity exceeded");
    for (node_id f : fanins)
        require(f < id, "netlist: fanin does not exist yet (topological order)");
    if (!name.empty()) {
        auto [it, inserted] = by_name_.emplace(name, id);
        (void)it;
        require(inserted, "netlist: duplicate node name '" + name + "'");
    }
    kinds_.push_back(kind);
    fanin_offset_.push_back(static_cast<std::uint32_t>(fanin_pool_.size()));
    fanin_pool_.insert(fanin_pool_.end(), fanins.begin(), fanins.end());
    std::uint32_t lvl = 0;
    for (node_id f : fanins) lvl = std::max(lvl, levels_[f] + 1);
    levels_.push_back(lvl);
    node_names_.push_back(name);
    fanouts_cache_.built.store(false, std::memory_order_release);
    revision_ = next_revision();
    return id;
}

node_id netlist::add_input(const std::string& name) {
    require(!name.empty(), "netlist::add_input: inputs must be named");
    const node_id id = new_node(gate_kind::input, {}, name);
    input_index_.emplace(id, inputs_.size());
    inputs_.push_back(id);
    return id;
}

node_id netlist::add_gate(gate_kind kind, std::span<const node_id> fanins,
                          const std::string& name) {
    require(kind != gate_kind::input, "netlist::add_gate: use add_input");
    if (kind == gate_kind::const0 || kind == gate_kind::const1)
        require(fanins.empty(), "netlist::add_gate: constants take no fanins");
    else if (kind == gate_kind::buf || kind == gate_kind::not_)
        require(fanins.size() == 1, "netlist::add_gate: buf/not take one fanin");
    else
        require(!fanins.empty(), "netlist::add_gate: n-ary gate needs fanins");
    return new_node(kind, fanins, name);
}

node_id netlist::add_gate(gate_kind kind, std::initializer_list<node_id> fanins,
                          const std::string& name) {
    return add_gate(kind, std::span<const node_id>(fanins.begin(), fanins.size()),
                    name);
}

node_id netlist::add_unary(gate_kind kind, node_id a, const std::string& name) {
    return add_gate(kind, {a}, name);
}

node_id netlist::add_binary(gate_kind kind, node_id a, node_id b,
                            const std::string& name) {
    return add_gate(kind, {a, b}, name);
}

node_id netlist::add_const(bool value, const std::string& name) {
    return add_gate(value ? gate_kind::const1 : gate_kind::const0, {}, name);
}

void netlist::mark_output(node_id node, const std::string& name) {
    require(node < node_count(), "netlist::mark_output: no such node");
    require(!name.empty(), "netlist::mark_output: outputs must be named");
    require(!output_names_.contains(node),
            "netlist::mark_output: node already an output");
    for (const auto& [n, nm] : output_names_)
        require(nm != name, "netlist::mark_output: duplicate output name");
    outputs_.push_back(node);
    output_names_.emplace(node, name);
    revision_ = next_revision();
}

node_id netlist::add_tree(gate_kind kind, std::span<const node_id> leaves) {
    require(!leaves.empty(), "netlist::add_tree: need at least one leaf");
    require(kind_has_fanins(kind) && kind != gate_kind::buf &&
                kind != gate_kind::not_,
            "netlist::add_tree: kind must be n-ary");
    if (leaves.size() == 1) {
        if (kind_inverts(kind)) return add_unary(gate_kind::not_, leaves[0]);
        return leaves[0];
    }
    // Build the body with the non-inverting version and invert once at the
    // root; that keeps internal nodes monotone (xor stays xor).
    gate_kind body = kind;
    switch (kind) {
        case gate_kind::nand_: body = gate_kind::and_; break;
        case gate_kind::nor_: body = gate_kind::or_; break;
        case gate_kind::xnor_: body = gate_kind::xor_; break;
        default: break;
    }
    std::vector<node_id> layer(leaves.begin(), leaves.end());
    while (layer.size() > 1) {
        std::vector<node_id> next;
        next.reserve((layer.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(add_binary(body, layer[i], layer[i + 1]));
        if (layer.size() % 2 != 0) next.push_back(layer.back());
        layer = std::move(next);
    }
    if (kind_inverts(kind)) return add_unary(gate_kind::not_, layer[0]);
    return layer[0];
}

std::span<const node_id> netlist::fanins(node_id n) const {
    const std::uint32_t begin = fanin_offset_[n];
    const std::uint32_t end = (n + 1 < fanin_offset_.size())
                                  ? fanin_offset_[n + 1]
                                  : static_cast<std::uint32_t>(fanin_pool_.size());
    return {fanin_pool_.data() + begin, fanin_pool_.data() + end};
}

std::size_t netlist::fanin_count(node_id n) const { return fanins(n).size(); }

std::size_t netlist::input_index(node_id n) const {
    auto it = input_index_.find(n);
    return it == input_index_.end() ? static_cast<std::size_t>(-1) : it->second;
}

bool netlist::is_output(node_id n) const { return output_names_.contains(n); }

const std::string& netlist::node_name(node_id n) const { return node_names_[n]; }

const std::string& netlist::output_name(node_id n) const {
    static const std::string empty;
    auto it = output_names_.find(n);
    return it == output_names_.end() ? empty : it->second;
}

node_id netlist::find(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? null_node : it->second;
}

std::size_t netlist::level(node_id n) const { return levels_[n]; }

std::size_t netlist::depth() const {
    std::uint32_t d = 0;
    for (std::uint32_t l : levels_) d = std::max(d, l);
    return d;
}

void netlist::ensure_fanouts() const {
    if (fanouts_cache_.built.load(std::memory_order_acquire)) return;
    lock_guard lock(fanouts_cache_.build_mutex);
    if (fanouts_cache_.built.load(std::memory_order_relaxed)) return;
    auto& offset = fanouts_cache_.offset;
    auto& pool = fanouts_cache_.pool;
    offset.assign(node_count() + 1, 0);
    for (node_id n = 0; n < node_count(); ++n)
        for (node_id f : fanins(n)) ++offset[f + 1];
    for (std::size_t i = 1; i < offset.size(); ++i) offset[i] += offset[i - 1];
    pool.assign(fanin_pool_.size(), 0);
    std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (node_id n = 0; n < node_count(); ++n)
        for (node_id f : fanins(n)) pool[cursor[f]++] = n;
    fanouts_cache_.built.store(true, std::memory_order_release);
}

std::span<const node_id> netlist::fanouts(node_id n) const {
    ensure_fanouts();
    return {fanouts_cache_.pool.data() + fanouts_cache_.offset[n],
            fanouts_cache_.pool.data() + fanouts_cache_.offset[n + 1]};
}

std::vector<node_id> netlist::fanin_cone(node_id n) const {
    std::vector<bool> seen(node_count(), false);
    std::vector<node_id> stack{n};
    seen[n] = true;
    while (!stack.empty()) {
        const node_id cur = stack.back();
        stack.pop_back();
        for (node_id f : fanins(cur)) {
            if (!seen[f]) {
                seen[f] = true;
                stack.push_back(f);
            }
        }
    }
    std::vector<node_id> cone;
    for (node_id i = 0; i < node_count(); ++i)
        if (seen[i]) cone.push_back(i);
    return cone;
}

std::vector<node_id> netlist::fanout_cone(node_id n) const {
    ensure_fanouts();
    std::vector<bool> seen(node_count(), false);
    std::vector<node_id> stack{n};
    seen[n] = true;
    while (!stack.empty()) {
        const node_id cur = stack.back();
        stack.pop_back();
        for (node_id f : fanouts(cur)) {
            if (!seen[f]) {
                seen[f] = true;
                stack.push_back(f);
            }
        }
    }
    std::vector<node_id> cone;
    for (node_id i = 0; i < node_count(); ++i)
        if (seen[i]) cone.push_back(i);
    return cone;
}

netlist_stats netlist::stats() const {
    netlist_stats s;
    s.node_count = node_count();
    s.input_count = inputs_.size();
    s.output_count = outputs_.size();
    s.per_kind.assign(static_cast<std::size_t>(gate_kind::xnor_) + 1, 0);
    for (gate_kind k : kinds_) ++s.per_kind[static_cast<std::size_t>(k)];
    s.gate_count = s.node_count - s.input_count;
    // Fault sites: every node output (stem) plus every fanout branch of
    // nodes with more than one consumer.
    s.line_count = s.node_count;
    for (node_id n = 0; n < node_count(); ++n) {
        const std::size_t fo = fanouts(n).size();
        if (fo > 1) s.line_count += fo;
    }
    s.depth = depth();
    return s;
}

void netlist::validate() const {
    for (node_id n = 0; n < node_count(); ++n) {
        const auto fi = fanins(n);
        switch (kind(n)) {
            case gate_kind::input:
            case gate_kind::const0:
            case gate_kind::const1:
                require(fi.empty(), "validate: nullary node has fanins");
                break;
            case gate_kind::buf:
            case gate_kind::not_:
                require(fi.size() == 1, "validate: unary node arity");
                break;
            default:
                require(!fi.empty(), "validate: n-ary node without fanins");
        }
        for (node_id f : fi) require(f < n, "validate: fanin order violated");
    }
    for (node_id o : outputs_)
        require(o < node_count(), "validate: dangling output");
    require(!inputs_.empty(), "validate: netlist without primary inputs");
    require(!outputs_.empty(), "validate: netlist without primary outputs");
}

}  // namespace wrpt
