// Combinational netlist container.
//
// Storage is structure-of-arrays keyed by dense node ids. Construction is
// incremental and enforces topological order (fanins must already exist),
// so the netlist is acyclic by construction and node ids double as a
// topological order. Levels, fanout lists and cones are derived lazily.

#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"
#include "util/sync.h"

namespace wrpt {

/// Per-kind gate census and other structural statistics.
struct netlist_stats {
    std::size_t node_count = 0;    ///< all nodes including primary inputs
    std::size_t input_count = 0;
    std::size_t output_count = 0;
    std::size_t gate_count = 0;    ///< nodes that are not primary inputs
    std::size_t line_count = 0;    ///< stems + fanout branches (fault sites)
    std::size_t depth = 0;         ///< maximum logic level
    std::vector<std::size_t> per_kind;  ///< indexed by gate_kind value
};

/// A combinational gate-level network.
class netlist {
public:
    netlist() = default;
    explicit netlist(std::string name) : name_(std::move(name)) {}

    // --- construction ----------------------------------------------------

    /// Add a primary input. Names must be unique and non-empty.
    node_id add_input(const std::string& name);

    /// Add a gate over already existing fanins. Name optional, but unique
    /// if given. Returns the new node id.
    node_id add_gate(gate_kind kind, std::span<const node_id> fanins,
                     const std::string& name = {});

    /// Convenience overloads for fixed small arities.
    node_id add_gate(gate_kind kind, std::initializer_list<node_id> fanins,
                     const std::string& name = {});
    node_id add_unary(gate_kind kind, node_id a, const std::string& name = {});
    node_id add_binary(gate_kind kind, node_id a, node_id b,
                       const std::string& name = {});

    /// Add a constant node.
    node_id add_const(bool value, const std::string& name = {});

    /// Declare `node` a primary output under `name` (unique, non-empty).
    void mark_output(node_id node, const std::string& name);

    /// Balanced reduction tree of `kind` over `leaves` (>= 1 leaf).
    /// For a single leaf returns it unchanged (inverting kinds insert the
    /// inversion).
    node_id add_tree(gate_kind kind, std::span<const node_id> leaves);

    // --- accessors --------------------------------------------------------

    const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    /// Structural revision stamp: process-unique, re-stamped on every
    /// structural mutation (copies keep their source's stamp — they are
    /// structurally identical). Lets analysis caches key on netlist
    /// identity without address-reuse or in-place-mutation hazards.
    std::uint64_t revision() const { return revision_; }

    std::size_t node_count() const { return kinds_.size(); }
    gate_kind kind(node_id n) const { return kinds_[n]; }
    std::span<const node_id> fanins(node_id n) const;
    std::size_t fanin_count(node_id n) const;

    const std::vector<node_id>& inputs() const { return inputs_; }
    const std::vector<node_id>& outputs() const { return outputs_; }
    std::size_t input_count() const { return inputs_.size(); }
    std::size_t output_count() const { return outputs_.size(); }

    /// Index of a primary input node within inputs(), or SIZE_MAX.
    std::size_t input_index(node_id n) const;

    /// True if `n` is marked as a primary output.
    bool is_output(node_id n) const;

    /// Node name; empty string if the node is unnamed.
    const std::string& node_name(node_id n) const;
    /// Name under which the node is exported as output (empty if none).
    const std::string& output_name(node_id n) const;

    /// Find a node by its (gate or input) name; null_node if absent.
    node_id find(const std::string& name) const;

    // --- derived structure -------------------------------------------------

    /// Logic level: 0 for inputs/constants, else 1 + max fanin level.
    std::size_t level(node_id n) const;
    std::size_t depth() const;

    /// Fanout list of a node (gates that consume it). Built lazily.
    /// Outside the lock analysis: the fast path reads offset/pool without
    /// the build mutex, made safe by the release-store of `built` in
    /// ensure_fanouts() paired with its acquire-load here (publication,
    /// not mutual exclusion — once built, the arrays are immutable).
    std::span<const node_id> fanouts(node_id n) const
        WRPT_NO_THREAD_SAFETY_ANALYSIS;
    std::size_t fanout_count(node_id n) const { return fanouts(n).size(); }

    /// Transitive fanin set (including `n` itself), as sorted node ids.
    std::vector<node_id> fanin_cone(node_id n) const;
    /// Transitive fanout set (including `n` itself), as sorted node ids.
    std::vector<node_id> fanout_cone(node_id n) const;

    netlist_stats stats() const;

    /// Validate structural invariants (arities, unique names, outputs
    /// exist). Throws invalid_input on violation.
    void validate() const;

private:
    void ensure_fanouts() const;
    node_id new_node(gate_kind kind, std::span<const node_id> fanins,
                     const std::string& name);
    static std::uint64_t next_revision();

    std::string name_;
    std::uint64_t revision_ = next_revision();

    // Structure of arrays over node id.
    std::vector<gate_kind> kinds_;
    std::vector<std::uint32_t> fanin_offset_;  // into fanin_pool_, size n+1
    std::vector<node_id> fanin_pool_;
    std::vector<std::uint32_t> levels_;
    std::vector<std::string> node_names_;

    std::vector<node_id> inputs_;
    std::vector<node_id> outputs_;
    std::unordered_map<node_id, std::string> output_names_;
    std::unordered_map<std::string, node_id> by_name_;
    std::unordered_map<node_id, std::size_t> input_index_;

    // Lazy fanout structure with a double-checked build: const accessors
    // (fanouts, fanout_cone, stats) may be called concurrently — the
    // block-parallel fault simulator does — so the build is guarded by a
    // mutex behind an atomic fast path. Mutation (add_*) stays
    // single-threaded by contract and just invalidates the flag.
    // The wrapper restores copy/move for netlist (atomics have neither).
    struct lazy_fanouts {
        mutable wrpt::mutex build_mutex;
        // offset/pool are written only by the build (under build_mutex)
        // and published by the `built` release-store; readers on the
        // acquire fast path (netlist::fanouts) see them complete without
        // the lock — that one reader opts out of the analysis, every
        // writer is checked.
        std::vector<std::uint32_t> offset WRPT_GUARDED_BY(build_mutex);
        std::vector<node_id> pool WRPT_GUARDED_BY(build_mutex);
        std::atomic<bool> built{false};

        lazy_fanouts() = default;
        // Copying locks the source: copying a netlist is a const operation
        // and may race with a concurrent lazy build on the source. The
        // destination is under construction / exclusively owned, so its
        // own members are written without its lock — outside the analysis.
        lazy_fanouts(const lazy_fanouts& other)
            WRPT_NO_THREAD_SAFETY_ANALYSIS {
            lock_guard lock(other.build_mutex);
            offset = other.offset;
            pool = other.pool;
            built.store(other.built.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
        }
        // Moving mutates the source, which the caller must already have
        // exclusive access to; no locking needed (and none analyzable).
        lazy_fanouts(lazy_fanouts&& other) noexcept
            WRPT_NO_THREAD_SAFETY_ANALYSIS
            : offset(std::move(other.offset)),
              pool(std::move(other.pool)),
              built(other.built.load(std::memory_order_relaxed)) {}
        lazy_fanouts& operator=(const lazy_fanouts& other)
            WRPT_NO_THREAD_SAFETY_ANALYSIS {
            if (this == &other) return *this;
            lock_guard lock(other.build_mutex);
            offset = other.offset;
            pool = other.pool;
            built.store(other.built.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
            return *this;
        }
        lazy_fanouts& operator=(lazy_fanouts&& other) noexcept
            WRPT_NO_THREAD_SAFETY_ANALYSIS {
            offset = std::move(other.offset);
            pool = std::move(other.pool);
            built.store(other.built.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
            return *this;
        }
    };
    mutable lazy_fanouts fanouts_cache_;
};

}  // namespace wrpt
