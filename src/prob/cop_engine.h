// Incremental COP testability engine — the optimizer's PREPARE fast path.
//
// The paper's efficiency accounting says one coordinate step costs "two
// testability analyses per input"; with a full recompute each analysis is
// O(nodes). This engine keeps the complete COP state (signal
// probabilities, stem and pin observabilities) for one weight vector and
// re-propagates a single-input change incrementally:
//
//   forward   — restricted to the input's precomputed fanout cone (exact:
//               nothing outside the cone can change),
//   backward  — event-driven from the gates whose pin sensitization or
//               stem observability actually changed, processed in
//               descending level order so every node is finalized once.
//
// Every changed cell is recorded in an undo log, so a probe (PREPARE
// evaluates x_i = lo and x_i = hi, then moves on) rolls back in O(changes).
// All arithmetic goes through the shared cop_rules primitives, so the
// incrementally maintained state is bit-identical to a full recompute —
// tested in test_circuit_view.cpp.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/circuit_view.h"
#include "fault/fault.h"
#include "io/weights_io.h"
#include "prob/probe.h"

namespace wrpt {

class cop_engine {
public:
    /// Full analysis at `weights`. The view must outlive the engine and be
    /// compiled with input_cones.
    cop_engine(const circuit_view& cv, weight_vector weights);

    const circuit_view& view() const { return *cv_; }
    const weight_vector& weights() const { return weights_; }

    std::span<const double> probabilities() const { return p_; }
    std::span<const double> stem_observability() const { return stem_; }
    double pin_observability(node_id gate, std::size_t k) const {
        return pin_[cv_->pin_offset(gate) + k];
    }

    /// COP detection probability of one fault under the current state:
    /// activation (the line carries the opposite of the stuck value) times
    /// line observability.
    double fault_probability(const fault& f) const;

    /// Move input `input_idx` to probability `value` and re-propagate
    /// incrementally. Changes are appended to the undo log.
    void set_input(std::size_t input_idx, double value) {
        const input_move m{input_idx, value};
        set_inputs({&m, 1});
    }

    /// Apply several input moves as one incremental transaction: one
    /// forward pass over the union of the moved inputs' fanout cones, one
    /// event-driven backward pass, all changes in the same undo log. This
    /// is how multi-input probes (saddle-escape candidates) avoid a full
    /// rebuild: the transaction costs O(union of cones) and rolls back in
    /// O(changes) like any single-input move.
    void set_inputs(std::span<const input_move> moves);

    /// Undo log positions: mark() before a probe, rollback() to restore
    /// the exact prior state. commit() forgets history instead (after a
    /// permanent base move).
    using checkpoint = std::size_t;
    checkpoint mark() const { return log_.size(); }
    void rollback(checkpoint mark);
    void commit() { log_.clear(); }

private:
    enum class cell : std::uint8_t { prob, stem, pin, weight };
    struct undo_entry {
        cell where;
        std::uint32_t index;
        double old_value;
    };
    void record(cell where, std::uint32_t index, double old_value) {
        log_.push_back({where, index, old_value});
    }
    void schedule(node_id n);

    const circuit_view* cv_;
    weight_vector weights_;
    std::vector<double> p_;     // signal probability per node
    std::vector<double> stem_;  // stem observability per node
    std::vector<double> pin_;   // pin observability, view pin layout
    std::vector<undo_entry> log_;

    // Scratch for one set_inputs call.
    std::vector<node_id> union_nodes_;       // merged cones, topological
    std::vector<std::uint8_t> in_union_;
    std::vector<node_id> changed_nodes_;
    std::vector<std::uint8_t> queued_;
    std::vector<std::uint8_t> stem_dirty_;
    std::vector<std::uint8_t> pin_dirty_;
    std::vector<std::vector<node_id>> buckets_;  // by level
    std::size_t max_scheduled_level_ = 0;
};

}  // namespace wrpt
