// COP-style observability analysis (backward pass).
//
// obs(line) approximates the probability that a value change on the line
// propagates to some primary output, under the same independence
// assumption as cop_signal_probabilities. Exact on fanout-free circuits
// with and/or/not (trees), an estimate elsewhere.

#pragma once

#include <vector>

#include "core/circuit_view.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"

namespace wrpt {

struct observability_result {
    /// Stem observability per node.
    std::vector<double> stem;
    /// Pin observability: pin_offset[g] + k indexes pin k of gate g.
    std::vector<double> pin;
    std::vector<std::uint32_t> pin_offset;

    double pin_obs(node_id gate, std::size_t k) const {
        return pin[pin_offset[gate] + k];
    }
};

/// Compute observabilities given node signal probabilities (from
/// cop_signal_probabilities or any other engine).
observability_result cop_observabilities(const netlist& nl,
                                         const std::vector<double>& node_prob);

/// Same backward sweep over an already compiled view (the shared path; the
/// netlist overload compiles a throwaway view).
observability_result cop_observabilities(const circuit_view& cv,
                                         const std::vector<double>& node_prob);

}  // namespace wrpt
