// COP propagation rules over a compiled circuit_view — the shared
// primitives behind the full forward/backward analyses and the optimizer's
// incremental engine.
//
// Both the full sweeps (cop_signal_probabilities, cop_observabilities) and
// the event-driven incremental updates (cop_engine) evaluate exactly these
// functions, in the same per-gate argument order, so an incremental update
// is bit-identical to a full recompute — the equivalence the optimizer's
// PREPARE fast path rests on.

#pragma once

#include <span>

#include "core/circuit_view.h"
#include "core/gate_eval.h"

namespace wrpt::cop {

/// Forward rule: signal probability of node `n` from its fanins'
/// probabilities (inputs read their weight).
inline double node_probability(const circuit_view& cv,
                               std::span<const double> p,
                               std::span<const double> weights, node_id n) {
    if (cv.kind(n) == gate_kind::input) return weights[cv.input_index(n)];
    const auto fi = cv.fanins(n);
    return eval_gate_with(cop_algebra{}, cv.kind(n),
                          [&](std::size_t k) { return p[fi[k]]; }, fi.size());
}

/// One-level sensitization probability of fanin pin `k` of node `n`: the
/// probability that toggling the pin toggles the node's output, under the
/// independence assumption. 1 for buf/not/xor/xnor; for and/nand/or/nor
/// the probability that every other pin holds the non-controlling value.
inline double pin_sensitization(const circuit_view& cv,
                                std::span<const double> p, node_id n,
                                std::size_t k) {
    const gate_kind kind = cv.kind(n);
    switch (kind) {
        case gate_kind::buf:
        case gate_kind::not_:
        case gate_kind::xor_:
        case gate_kind::xnor_:
            return 1.0;
        case gate_kind::and_:
        case gate_kind::nand_:
        case gate_kind::or_:
        case gate_kind::nor_: {
            const auto fi = cv.fanins(n);
            const double noncontrolling = controlling_value(kind) ? 0.0 : 1.0;
            double sens = 1.0;
            for (std::size_t j = 0; j < fi.size(); ++j) {
                if (j == k) continue;
                const double pj = p[fi[j]];
                sens *= (noncontrolling == 1.0) ? pj : 1.0 - pj;
            }
            return sens;
        }
        default:
            return 0.0;  // input/const have no pins
    }
}

/// Backward rule: stem observability of node `n` from the pin
/// observabilities of its consumers. A stem is observed if any of its
/// branches is (OR-combined under independence); an output stem is
/// observed directly. When the view precompiled the driven-pin transpose
/// it supplies the branch pins directly; otherwise the consumer fanin
/// arrays are scanned. Both visit the same pins in the same order, so
/// the two paths are bit-identical.
inline double stem_observability(const circuit_view& cv,
                                 std::span<const double> pin, node_id n) {
    double miss = cv.is_output(n) ? 0.0 : 1.0;
    if (cv.has_driven_pins()) {
        for (std::uint32_t pin_index : cv.driven_pins(n))
            miss *= 1.0 - pin[pin_index];
        return 1.0 - miss;
    }
    for (node_id g : cv.fanouts(n)) {
        // Locate the pins of g driven by n (a gate may use a stem on
        // several pins).
        const auto fi = cv.fanins(g);
        for (std::size_t k = 0; k < fi.size(); ++k) {
            if (fi[k] != n) continue;
            miss *= 1.0 - pin[cv.pin_offset(g) + k];
        }
    }
    return 1.0 - miss;
}

/// Chain observabilities backward over the whole view: stem[n] from the
/// consumers' pins, then pin[pin_offset(n)+k] = stem[n] * sens(n, k).
/// `sens(n, k)` supplies the one-level pin sensitization — analytic
/// (pin_sensitization) for COP, counted for STAFAN. stem/pin must be
/// sized node_count()/pin_count().
template <class PinSens>
void chain_observabilities(const circuit_view& cv, PinSens&& sens,
                           std::span<double> stem, std::span<double> pin) {
    backward_sweep(cv, [&](node_id n) {
        stem[n] = stem_observability(cv, pin, n);
        const std::size_t arity = cv.fanin_count(n);
        const std::uint32_t off = cv.pin_offset(n);
        for (std::size_t k = 0; k < arity; ++k)
            pin[off + k] = stem[n] * sens(n, k);
    });
}

}  // namespace wrpt::cop
