#include "prob/cutting.h"

#include <algorithm>

#include "util/error.h"

namespace wrpt {
namespace {

probability_interval interval_not(probability_interval a) {
    return {1.0 - a.high, 1.0 - a.low};
}

probability_interval interval_xor2(probability_interval a,
                                   probability_interval b) {
    // f(p,q) = p + q - 2pq is bilinear: extrema at the corners.
    const double c[4] = {
        a.low + b.low - 2.0 * a.low * b.low,
        a.low + b.high - 2.0 * a.low * b.high,
        a.high + b.low - 2.0 * a.high * b.low,
        a.high + b.high - 2.0 * a.high * b.high,
    };
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

}  // namespace

std::vector<probability_interval> cutting_signal_bounds(
    const netlist& nl, const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "cutting_signal_bounds: weight count mismatch");

    // Every branch of every multi-fanout stem is cut to [0,1]. This is the
    // sound formulation: after cutting, each remaining tree's leaves have
    // global fanout one, so they are independent of the cut stems' values,
    // and the corner-evaluated intervals provably contain the true
    // probability. (Keeping "the first branch" live is NOT sound: for
    // y = xor(s, s) it would yield [p, 1-p], excluding the true value 0.)
    std::vector<probability_interval> iv(nl.node_count());
    for (node_id n = 0; n < nl.node_count(); ++n) {
        const auto fi = nl.fanins(n);
        std::vector<probability_interval> pin(fi.size());
        for (std::size_t k = 0; k < fi.size(); ++k) {
            const node_id d = fi[k];
            if (nl.fanout_count(d) > 1) {
                pin[k] = {0.0, 1.0};  // cut line
                continue;
            }
            pin[k] = iv[d];
        }
        switch (nl.kind(n)) {
            case gate_kind::input: {
                const double w = weights[nl.input_index(n)];
                iv[n] = {w, w};
                break;
            }
            case gate_kind::const0: iv[n] = {0.0, 0.0}; break;
            case gate_kind::const1: iv[n] = {1.0, 1.0}; break;
            case gate_kind::buf: iv[n] = pin[0]; break;
            case gate_kind::not_: iv[n] = interval_not(pin[0]); break;
            case gate_kind::and_:
            case gate_kind::nand_: {
                probability_interval acc{1.0, 1.0};
                for (const auto& x : pin) {
                    acc.low *= x.low;
                    acc.high *= x.high;
                }
                iv[n] = (nl.kind(n) == gate_kind::nand_) ? interval_not(acc) : acc;
                break;
            }
            case gate_kind::or_:
            case gate_kind::nor_: {
                probability_interval acc{0.0, 0.0};
                for (const auto& x : pin) {
                    acc.low = 1.0 - (1.0 - acc.low) * (1.0 - x.low);
                    acc.high = 1.0 - (1.0 - acc.high) * (1.0 - x.high);
                }
                iv[n] = (nl.kind(n) == gate_kind::nor_) ? interval_not(acc) : acc;
                break;
            }
            case gate_kind::xor_:
            case gate_kind::xnor_: {
                probability_interval acc{0.0, 0.0};
                for (const auto& x : pin) acc = interval_xor2(acc, x);
                iv[n] = (nl.kind(n) == gate_kind::xnor_) ? interval_not(acc) : acc;
                break;
            }
        }
    }
    return iv;
}

}  // namespace wrpt
