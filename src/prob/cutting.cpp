#include "prob/cutting.h"

#include <algorithm>

#include "core/gate_eval.h"
#include "util/error.h"

namespace wrpt {
namespace {

/// Gate-eval algebra over probability intervals (exact on trees). and/or
/// are monotone in both operands, so endpoint-wise evaluation is exact;
/// xor is bilinear, so its extrema sit at the corners.
struct interval_algebra {
    using value_type = probability_interval;
    value_type zero() const { return {0.0, 0.0}; }
    value_type one() const { return {1.0, 1.0}; }
    value_type not_(value_type a) const { return {1.0 - a.high, 1.0 - a.low}; }
    value_type and_(value_type a, value_type b) const {
        return {a.low * b.low, a.high * b.high};
    }
    value_type or_(value_type a, value_type b) const {
        return {1.0 - (1.0 - a.low) * (1.0 - b.low),
                1.0 - (1.0 - a.high) * (1.0 - b.high)};
    }
    value_type xor_(value_type a, value_type b) const {
        const double c[4] = {
            a.low + b.low - 2.0 * a.low * b.low,
            a.low + b.high - 2.0 * a.low * b.high,
            a.high + b.low - 2.0 * a.high * b.low,
            a.high + b.high - 2.0 * a.high * b.high,
        };
        return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
    }
};

}  // namespace

std::vector<probability_interval> cutting_signal_bounds(
    const netlist& nl, const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "cutting_signal_bounds: weight count mismatch");

    // Every branch of every multi-fanout stem is cut to [0,1]. This is the
    // sound formulation: after cutting, each remaining tree's leaves have
    // global fanout one, so they are independent of the cut stems' values,
    // and the corner-evaluated intervals provably contain the true
    // probability. (Keeping "the first branch" live is NOT sound: for
    // y = xor(s, s) it would yield [p, 1-p], excluding the true value 0.)
    std::vector<probability_interval> iv(nl.node_count());
    std::vector<probability_interval> pin;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) {
            const double w = weights[nl.input_index(n)];
            iv[n] = {w, w};
            continue;
        }
        const auto fi = nl.fanins(n);
        pin.resize(fi.size());
        for (std::size_t k = 0; k < fi.size(); ++k) {
            const node_id d = fi[k];
            if (nl.fanout_count(d) > 1) {
                pin[k] = {0.0, 1.0};  // cut line
                continue;
            }
            pin[k] = iv[d];
        }
        iv[n] = eval_gate(interval_algebra{}, nl.kind(n), pin.data(),
                          pin.size());
    }
    return iv;
}

}  // namespace wrpt
