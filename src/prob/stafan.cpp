#include "prob/stafan.h"

#include <bit>

#include "prob/cop_rules.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "util/error.h"

namespace wrpt {

stafan_counts stafan_count(const netlist& nl, const weight_vector& weights,
                           std::uint64_t patterns, std::uint64_t seed) {
    return stafan_count(circuit_view::compile(nl), weights, patterns, seed);
}

stafan_counts stafan_count(const circuit_view& cv, const weight_vector& weights,
                           std::uint64_t patterns, std::uint64_t seed) {
    require(patterns >= 64, "stafan_count: needs at least one block");
    stafan_counts sc;
    sc.pin_offset.assign(cv.pin_offsets().begin(), cv.pin_offsets().end());

    std::vector<std::uint64_t> ones(cv.node_count(), 0);
    std::vector<std::uint64_t> sens(cv.pin_count(), 0);

    simulator sim(cv);
    weighted_random_source source(weights, seed);
    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < patterns) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block =
            std::min<std::uint64_t>(64, patterns - applied);
        const std::uint64_t valid = block == 64 ? ~0ULL : ((1ULL << block) - 1);

        for (node_id n = 0; n < cv.node_count(); ++n) {
            ones[n] +=
                static_cast<std::uint64_t>(std::popcount(sim.value(n) & valid));
            const auto fi = cv.fanins(n);
            if (fi.empty()) continue;
            switch (cv.kind(n)) {
                case gate_kind::buf:
                case gate_kind::not_:
                    sens[cv.pin_offset(n)] +=
                        static_cast<std::uint64_t>(std::popcount(valid));
                    break;
                case gate_kind::and_:
                case gate_kind::nand_:
                case gate_kind::or_:
                case gate_kind::nor_: {
                    // Pin k is one-level sensitized when all other pins hold
                    // the non-controlling value.
                    const bool ctrl = controlling_value(cv.kind(n));
                    for (std::size_t k = 0; k < fi.size(); ++k) {
                        std::uint64_t mask = valid;
                        for (std::size_t j = 0; j < fi.size() && mask; ++j) {
                            if (j == k) continue;
                            const std::uint64_t v = sim.value(fi[j]);
                            mask &= ctrl ? ~v : v;
                        }
                        sens[cv.pin_offset(n) + k] +=
                            static_cast<std::uint64_t>(std::popcount(mask));
                    }
                    break;
                }
                case gate_kind::xor_:
                case gate_kind::xnor_:
                    for (std::size_t k = 0; k < fi.size(); ++k)
                        sens[cv.pin_offset(n) + k] +=
                            static_cast<std::uint64_t>(std::popcount(valid));
                    break;
                default:
                    break;
            }
        }
        applied += block;
    }

    sc.patterns = applied;
    // Laplace smoothing: events never observed in N patterns are reported
    // at ~1/(2N) instead of 0, so rare-but-possible conditions keep a
    // nonzero (and optimizable) estimate instead of being dropped as
    // undetectable.
    const double n = static_cast<double>(applied);
    sc.one_controllability.resize(cv.node_count());
    for (node_id id = 0; id < cv.node_count(); ++id)
        sc.one_controllability[id] =
            (static_cast<double>(ones[id]) + 0.5) / (n + 1.0);
    sc.pin_sensitization.resize(sens.size());
    for (std::size_t i = 0; i < sens.size(); ++i)
        sc.pin_sensitization[i] = (static_cast<double>(sens[i]) + 0.5) / (n + 1.0);
    return sc;
}

std::vector<double> stafan_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    if (!view_ || cached_revision_ != nl.revision()) {
        view_ = std::make_unique<circuit_view>(circuit_view::compile(nl));
        cached_revision_ = nl.revision();
    }
    const circuit_view& cv = *view_;
    const stafan_counts sc = stafan_count(cv, weights, patterns_, seed_);

    // Backward observability chaining over the counted sensitizations —
    // the same chaining shape COP uses, with counted pin sensitizations
    // substituted for the analytic ones.
    std::vector<double> stem(cv.node_count(), 0.0);
    std::vector<double> pin(sc.pin_sensitization.size(), 0.0);
    cop::chain_observabilities(
        cv,
        [&](node_id n, std::size_t k) {
            return sc.pin_sensitization[sc.pin_offset[n] + k];
        },
        stem, pin);

    std::vector<double> out;
    out.reserve(faults.size());
    for (const fault& f : faults) {
        const node_id site = fault_site_driver(nl, f);
        const double c1 = sc.one_controllability[site];
        const double act = stuck_value(f.value) ? 1.0 - c1 : c1;
        const double o =
            f.is_stem() ? stem[f.where]
                        : pin[sc.pin_offset[f.where] +
                              static_cast<std::size_t>(f.pin)];
        out.push_back(act * o);
    }
    return out;
}

}  // namespace wrpt
