// Fault detection probability estimation — the paper's "ANALYSIS" tool.
//
// The optimizing procedure (paper section 4) only assumes "a tool available
// computing or estimating fault detection probabilities efficiently"
// (PROTEST there; "with slight modifications PREDICT or STAFAN will
// presumably work as well"). detect_estimator is that pluggable interface;
// four engines are provided:
//
//   cop_detect_estimator    analytic controllability x observability
//                           (fast; the workhorse, PROTEST-like)
//   exact_detect_estimator  BDD Boolean difference (exact; small circuits)
//   stafan_detect_estimator counting from fault-free simulation [AgJa84]
//   mc_detect_estimator     Monte-Carlo fault simulation (unbiased, cannot
//                           resolve probabilities below ~1/patterns)

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "prob/probe.h"

namespace wrpt {

class detect_estimator {
public:
    virtual ~detect_estimator() = default;

    virtual std::string name() const = 0;

    /// Detection probability p_f(X) for each fault under input
    /// probabilities `weights`. Values are in [0,1]; 0 means "not
    /// detectable as far as this engine can tell".
    virtual std::vector<double> estimate(const netlist& nl,
                                         const std::vector<fault>& faults,
                                         const weight_vector& weights) = 0;

    /// Batched PREPARE surface: detection probabilities at `base` with
    /// each probe's moves applied transiently, one result vector per
    /// probe (results[k][j] is fault j under probe k). Probes are
    /// independent given `base`, so implementations may answer them
    /// incrementally, out of order, or in parallel — but results are
    /// keyed by probe index, so the output is identical either way. The
    /// default materializes each probe's vector and runs a full
    /// estimate().
    virtual std::vector<std::vector<double>> estimate_probes(
        const netlist& nl, const std::vector<fault>& faults,
        const weight_vector& base, std::span<const probe> probes) {
        std::vector<std::vector<double>> out(probes.size());
        for (std::size_t k = 0; k < probes.size(); ++k)
            out[k] = estimate(nl, faults, apply_probe(base, probes[k]));
        return out;
    }

    /// Sharded ANALYSIS surface: detection probabilities for a fault
    /// shard (or the whole list) at `weights`, with `threads` workers
    /// (0 = one per hardware thread, 1 = sequential). Results are keyed
    /// by fault index, and each fault's probability is a pure function of
    /// (netlist, weights), so the output is bit-identical for every
    /// thread count — the property the optimizer's sharded ANALYSIS
    /// stage rests on. The default ignores `threads` and materializes a
    /// fault vector for estimate().
    virtual std::vector<double> estimate_faults(const netlist& nl,
                                                std::span<const fault> faults,
                                                const weight_vector& weights,
                                                unsigned threads = 1) {
        (void)threads;
        return estimate(nl, std::vector<fault>(faults.begin(), faults.end()),
                        weights);
    }

    /// Worker-thread hint for estimators whose estimate_probes can
    /// execute probes in parallel (1 = sequential). Purely a performance
    /// knob: results do not depend on it.
    virtual void set_threads(unsigned) {}

    /// Single-input convenience: one probe moving `input` to `value` —
    /// the historical PREPARE query shape, now a wrapper over the batch.
    std::vector<double> estimate_input_delta(const netlist& nl,
                                             const std::vector<fault>& faults,
                                             const weight_vector& base,
                                             std::size_t input, double value) {
        const probe p{{input, value}};
        return std::move(
            estimate_probes(nl, faults, base, {&p, 1}).front());
    }
};

/// Analytic estimator: p_f = P(site carries the error value) * obs(line).
///
/// Keeps a compiled circuit_view and an engine_pool of incremental
/// cop_engines for the last netlist, so PREPARE's single-input probes
/// cost O(fanout cone of the input) instead of O(nodes) — see
/// cop_engine.h — and sharded ANALYSIS reads fault shards on concurrent
/// pool engines. The pool can also be adopted from outside
/// (batch_session keeps one warm per circuit across run() calls).
class cop_detect_estimator final : public detect_estimator {
public:
    cop_detect_estimator();
    ~cop_detect_estimator() override;
    std::string name() const override { return "cop"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;

    /// Sharded ANALYSIS: the fault shard is cut into per-thread chunks,
    /// each read on its own pool engine synced to `weights`. An engine's
    /// state at `weights` is bit-identical whatever engine serves the
    /// chunk (the cop_engine invariant) and results are keyed by fault
    /// index, so the output matches the sequential path exactly for
    /// every thread count.
    std::vector<double> estimate_faults(const netlist& nl,
                                        std::span<const fault> faults,
                                        const weight_vector& weights,
                                        unsigned threads = 1) override;

    /// Batched probes over the incremental engine: each probe is one
    /// multi-input cop_engine transaction (union-of-cones move) answered
    /// from the shared base state and rolled back. With threads > 1 the
    /// probe list is executed by per-thread engines over the shared
    /// compiled circuit_view; results are keyed by probe index and
    /// bit-identical to the sequential path for every thread count.
    std::vector<std::vector<double>> estimate_probes(
        const netlist& nl, const std::vector<fault>& faults,
        const weight_vector& base, std::span<const probe> probes) override;

    /// Worker threads for estimate_probes (0 = one per hardware thread,
    /// 1 = sequential). Results are independent of the setting.
    void set_threads(unsigned threads) override { threads_ = threads; }

    /// Disable the incremental path (full recompute per query) — the
    /// benchmark baseline for the PREPARE speedup.
    void set_incremental(bool on) { incremental_ = on; }

    /// Cost counters (cumulative since construction). The optimizer's
    /// efficiency tests assert on these: a saddle-escape probe must ride
    /// the incremental engine (engine_probes) instead of forcing another
    /// full analysis (engine_builds stays put), and warm-pool reuse in
    /// batch_session is assertable through pool_hits/pool_misses.
    struct counters {
        std::size_t engine_builds = 0;   ///< full cop_engine analyses
        std::size_t engine_probes = 0;   ///< probes answered incrementally
        std::size_t batched_moves = 0;   ///< multi-input transactions
        std::size_t full_estimates = 0;  ///< full-recompute estimate() calls
        std::size_t pool_hits = 0;       ///< checkouts served warm
        std::size_t pool_misses = 0;     ///< checkouts that built an engine
    };
    const counters& stats() const { return stats_; }

    /// The engine only pays off when input cones are small relative to
    /// the circuit (a full COP re-analysis over a warm view is a tight
    /// linear sweep that event-driven updates cannot beat on near-global
    /// cones — S2-like deep circuits). Circuits whose mean cone fraction
    /// exceeds this limit use the full-recompute path even in
    /// incremental mode. 1.0 forces the engine everywhere (benchmarks,
    /// equivalence tests).
    void set_engine_cone_limit(double limit) { engine_cone_limit_ = limit; }

    /// Share an externally compiled view (must be compiled with
    /// input_cones + driven_pins, outlive the estimator, and belong to
    /// every netlist later passed in — checked by revision stamp). The
    /// batch_session compiles each circuit once and hands the view to
    /// every estimator working on it.
    void adopt_view(const class circuit_view& cv);

    /// Share an externally owned engine pool (implies adopting its view).
    /// The pool must outlive the estimator; batch_session keeps one warm
    /// pool per circuit and hands it to every job's estimator, so engines
    /// built by one run() call serve the next — asserted via pool_hits.
    void adopt_pool(class engine_pool& pool);

private:
    const class circuit_view& ensure_view(const netlist& nl,
                                          bool engine_structures);
    class engine_pool& ensure_pool(const netlist& nl);
    bool engine_applies(const netlist& nl);
    void note_checkout(bool fresh) {
        if (fresh) {
            ++stats_.pool_misses;
            ++stats_.engine_builds;
        } else {
            ++stats_.pool_hits;
        }
    }
    std::vector<double> read_faults(const class cop_engine& engine,
                                    std::span<const fault> faults) const;

    bool incremental_ = true;
    unsigned threads_ = 1;
    double engine_cone_limit_ = 0.15;
    std::uint64_t cached_revision_ = 0;
    const class circuit_view* adopted_view_ = nullptr;
    std::unique_ptr<class circuit_view> view_;
    // Engines live in a pool (exec/engine_pool): the sequential paths
    // check one engine out per call and return it warm; parallel
    // ANALYSIS shards and PREPARE probe chunks check out one engine
    // each. A shared pool adopted from batch_session keeps engines warm
    // across estimator lifetimes; otherwise the estimator grows its own.
    class engine_pool* shared_pool_ = nullptr;
    std::unique_ptr<class engine_pool> own_pool_;
    counters stats_;
};

/// Exact estimator via BDD Boolean difference. Throws budget_exhausted when
/// the circuit exceeds the node budget.
///
/// The detection functions do not depend on the input probabilities, so
/// they are built once per (netlist, fault list) pair and reused across
/// estimate() calls — the optimizer re-estimates the same fault set under
/// hundreds of weight vectors.
class exact_detect_estimator final : public detect_estimator {
public:
    // Constructor and destructor are defined in detect.cpp, where
    // bdd_manager is a complete type (required by the unique_ptr member).
    explicit exact_detect_estimator(std::size_t node_limit = std::size_t{1}
                                                             << 22);
    ~exact_detect_estimator() override;
    std::string name() const override { return "exact-bdd"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;

private:
    void rebuild(const netlist& nl, const std::vector<fault>& faults);

    std::size_t node_limit_;
    // Cache of detection BDDs. Subset queries (the optimizer's PREPARE
    // passes ask about the hardest faults only) are answered from the
    // cached superset by lookup; a genuinely new fault triggers a rebuild
    // over the union. Keyed on the netlist's structural revision stamp.
    std::uint64_t cached_revision_ = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> ref_by_fault_;
    std::unique_ptr<class bdd_manager> mgr_;
};

/// Monte-Carlo estimator: simulate `patterns` weighted patterns without
/// fault dropping and count per-fault detections.
class mc_detect_estimator final : public detect_estimator {
public:
    explicit mc_detect_estimator(std::uint64_t patterns = 4096,
                                 std::uint64_t seed = 0x5eed)
        : patterns_(patterns), seed_(seed) {}
    std::string name() const override { return "monte-carlo"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;

    /// Probe k draws its patterns from a private stream derived from
    /// (seed, probe index) — not from state shared across probes — so a
    /// batch gives the same answers whatever order or thread executes
    /// the probes.
    std::vector<std::vector<double>> estimate_probes(
        const netlist& nl, const std::vector<fault>& faults,
        const weight_vector& base, std::span<const probe> probes) override;

private:
    std::vector<double> estimate_seeded(const netlist& nl,
                                        const std::vector<fault>& faults,
                                        const weight_vector& weights,
                                        std::uint64_t seed) const;

    std::uint64_t patterns_;
    std::uint64_t seed_;
};

std::unique_ptr<detect_estimator> make_estimator(const std::string& name);

}  // namespace wrpt
