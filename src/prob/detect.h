// Fault detection probability estimation — the paper's "ANALYSIS" tool.
//
// The optimizing procedure (paper section 4) only assumes "a tool available
// computing or estimating fault detection probabilities efficiently"
// (PROTEST there; "with slight modifications PREDICT or STAFAN will
// presumably work as well"). detect_estimator is that pluggable interface;
// four engines are provided:
//
//   cop_detect_estimator    analytic controllability x observability
//                           (fast; the workhorse, PROTEST-like)
//   exact_detect_estimator  BDD Boolean difference (exact; small circuits)
//   stafan_detect_estimator counting from fault-free simulation [AgJa84]
//   mc_detect_estimator     Monte-Carlo fault simulation (unbiased, cannot
//                           resolve probabilities below ~1/patterns)

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"

namespace wrpt {

class detect_estimator {
public:
    virtual ~detect_estimator() = default;

    virtual std::string name() const = 0;

    /// Detection probability p_f(X) for each fault under input
    /// probabilities `weights`. Values are in [0,1]; 0 means "not
    /// detectable as far as this engine can tell".
    virtual std::vector<double> estimate(const netlist& nl,
                                         const std::vector<fault>& faults,
                                         const weight_vector& weights) = 0;

    /// Detection probabilities at `base` with only input `input` moved to
    /// `value` — the optimizer's PREPARE query shape (two calls per
    /// coordinate). The default materializes the perturbed vector and runs
    /// a full estimate(); engines with incremental state override it.
    virtual std::vector<double> estimate_input_delta(
        const netlist& nl, const std::vector<fault>& faults,
        const weight_vector& base, std::size_t input, double value) {
        weight_vector w = base;
        w[input] = value;
        return estimate(nl, faults, w);
    }
};

/// Analytic estimator: p_f = P(site carries the error value) * obs(line).
///
/// Keeps a compiled circuit_view and an incremental cop_engine for the
/// last (netlist, weights) pair, so PREPARE's single-input probes cost
/// O(fanout cone of the input) instead of O(nodes) — see cop_engine.h.
class cop_detect_estimator final : public detect_estimator {
public:
    cop_detect_estimator();
    ~cop_detect_estimator() override;
    std::string name() const override { return "cop"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;
    std::vector<double> estimate_input_delta(const netlist& nl,
                                             const std::vector<fault>& faults,
                                             const weight_vector& base,
                                             std::size_t input,
                                             double value) override;

    /// Disable the incremental path (full recompute per query) — the
    /// benchmark baseline for the PREPARE speedup.
    void set_incremental(bool on) { incremental_ = on; }

    /// The engine only pays off when input cones are small relative to
    /// the circuit (a full COP re-analysis over a warm view is a tight
    /// linear sweep that event-driven updates cannot beat on near-global
    /// cones — S2-like deep circuits). Circuits whose mean cone fraction
    /// exceeds this limit use the full-recompute path even in
    /// incremental mode. 1.0 forces the engine everywhere (benchmarks,
    /// equivalence tests).
    void set_engine_cone_limit(double limit) { engine_cone_limit_ = limit; }

private:
    const class circuit_view& ensure_view(const netlist& nl,
                                          bool engine_structures);
    class cop_engine& ensure_engine(const netlist& nl,
                                    const weight_vector& weights);
    bool engine_applies(const netlist& nl);

    bool incremental_ = true;
    double engine_cone_limit_ = 0.15;
    std::uint64_t cached_revision_ = 0;
    std::unique_ptr<class circuit_view> view_;
    std::unique_ptr<class cop_engine> engine_;
};

/// Exact estimator via BDD Boolean difference. Throws budget_exhausted when
/// the circuit exceeds the node budget.
///
/// The detection functions do not depend on the input probabilities, so
/// they are built once per (netlist, fault list) pair and reused across
/// estimate() calls — the optimizer re-estimates the same fault set under
/// hundreds of weight vectors.
class exact_detect_estimator final : public detect_estimator {
public:
    // Constructor and destructor are defined in detect.cpp, where
    // bdd_manager is a complete type (required by the unique_ptr member).
    explicit exact_detect_estimator(std::size_t node_limit = std::size_t{1}
                                                             << 22);
    ~exact_detect_estimator() override;
    std::string name() const override { return "exact-bdd"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;

private:
    void rebuild(const netlist& nl, const std::vector<fault>& faults);

    std::size_t node_limit_;
    // Cache of detection BDDs. Subset queries (the optimizer's PREPARE
    // passes ask about the hardest faults only) are answered from the
    // cached superset by lookup; a genuinely new fault triggers a rebuild
    // over the union. Keyed on the netlist's structural revision stamp.
    std::uint64_t cached_revision_ = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> ref_by_fault_;
    std::unique_ptr<class bdd_manager> mgr_;
};

/// Monte-Carlo estimator: simulate `patterns` weighted patterns without
/// fault dropping and count per-fault detections.
class mc_detect_estimator final : public detect_estimator {
public:
    explicit mc_detect_estimator(std::uint64_t patterns = 4096,
                                 std::uint64_t seed = 0x5eed)
        : patterns_(patterns), seed_(seed) {}
    std::string name() const override { return "monte-carlo"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;

private:
    std::uint64_t patterns_;
    std::uint64_t seed_;
};

std::unique_ptr<detect_estimator> make_estimator(const std::string& name);

}  // namespace wrpt
