// Redundancy identification.
//
// The paper (discussion under Table 2): "an estimation with the exact value
// 0 or 1 of a signal probability by PROTEST is a proof (not an
// estimation!) of redundancy. But of course not in all cases a fixed
// signal value can be detected this way". We provide both that cheap proof
// (constant lines under strictly-interior input probabilities can only
// arise structurally) and, budget permitting, the complete BDD proof
// (detection function identically false). Coverage figures are then
// reported "only with respect to those faults which are not proven to be
// undetectable due to redundancy", as the paper does.

#pragma once

#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"

namespace wrpt {

struct redundancy_options {
    bool use_bdd_proof = true;
    std::size_t bdd_node_limit = 1u << 21;
};

/// One flag per fault: true if the fault is *proven* undetectable.
/// Never flags a detectable fault (proof, not estimation); may miss
/// redundancies when the BDD budget is exhausted.
std::vector<bool> prove_redundant(const netlist& nl,
                                  const std::vector<fault>& faults,
                                  const redundancy_options& options = {});

}  // namespace wrpt
