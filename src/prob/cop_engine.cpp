#include "prob/cop_engine.h"

#include <algorithm>

#include "prob/cop_rules.h"
#include "prob/observability.h"
#include "prob/signal_prob.h"
#include "util/error.h"

namespace wrpt {

cop_engine::cop_engine(const circuit_view& cv, weight_vector weights)
    : cv_(&cv), weights_(std::move(weights)) {
    require(cv.has_input_cones(),
            "cop_engine: view compiled without input cones");
    require(weights_.size() == cv.input_count(),
            "cop_engine: weight count mismatch");
    p_ = cop_signal_probabilities(cv, weights_);
    observability_result obs = cop_observabilities(cv, p_);
    stem_ = std::move(obs.stem);
    pin_ = std::move(obs.pin);

    queued_.assign(cv.node_count(), 0);
    in_union_.assign(cv.node_count(), 0);
    stem_dirty_.assign(cv.node_count(), 0);
    pin_dirty_.assign(cv.node_count(), 0);
    buckets_.resize(cv.depth() + 1);
    // A probe can touch ~(p + stem + pin) cells; reserving up front keeps
    // the hot set_input path reallocation-free.
    log_.reserve(2 * cv.node_count() + cv.pin_count());
}

double cop_engine::fault_probability(const fault& f) const {
    const circuit_view& cv = *cv_;
    const node_id site =
        f.is_stem() ? f.where
                    : cv.fanins(f.where)[static_cast<std::size_t>(f.pin)];
    // Activation: the line must carry the opposite of the stuck value.
    const double act = stuck_value(f.value) ? 1.0 - p_[site] : p_[site];
    const double o =
        f.is_stem() ? stem_[f.where]
                    : pin_[cv.pin_offset(f.where) +
                           static_cast<std::size_t>(f.pin)];
    return act * o;
}

void cop_engine::schedule(node_id n) {
    if (!queued_[n]) {
        queued_[n] = 1;
        const std::size_t lvl = cv_->level(n);
        buckets_[lvl].push_back(n);
        max_scheduled_level_ = std::max(max_scheduled_level_, lvl);
    }
}

void cop_engine::set_inputs(std::span<const input_move> moves) {
    const circuit_view& cv = *cv_;
    for (const input_move& m : moves) {
        require(m.input < weights_.size(),
                "cop_engine::set_inputs: input index out of range");
        record(cell::weight, static_cast<std::uint32_t>(m.input),
               weights_[m.input]);
        weights_[m.input] = m.value;
    }

    // Forward: re-propagate signal probabilities over the union of the
    // moved inputs' fanout cones, in topological (ascending id) order.
    // node_probability reads the already updated weights_ for input
    // nodes, so the union sweep needs no per-move special case.
    // Recomputing a cone node whose fanins kept their values reproduces
    // its old value exactly, so no pre-check is needed; only genuine
    // changes are recorded and propagated backward.
    std::span<const node_id> cone;
    if (moves.size() == 1) {
        cone = cv.input_cone(moves.front().input);
    } else {
        union_nodes_.clear();
        for (const input_move& m : moves)
            for (node_id n : cv.input_cone(m.input))
                if (!in_union_[n]) {
                    in_union_[n] = 1;
                    union_nodes_.push_back(n);
                }
        std::sort(union_nodes_.begin(), union_nodes_.end());
        for (node_id n : union_nodes_) in_union_[n] = 0;
        cone = union_nodes_;
    }
    changed_nodes_.clear();
    for (node_id n : cone) {
        const double nv = cop::node_probability(cv, p_, weights_, n);
        if (nv == p_[n]) continue;
        record(cell::prob, n, p_[n]);
        p_[n] = nv;
        changed_nodes_.push_back(n);
    }

    // Backward: a probability change invalidates the pin observabilities
    // of consumers whose sensitization reads the changed value — only
    // and/nand/or/nor gates; buf/not/xor pins have sensitization 1 and
    // follow their stem alone. From there, changes travel stem-by-stem
    // toward the inputs. Seed the wavefront, then process levels
    // descending — a stem depends only on consumer pins at strictly
    // higher levels, so one pass finalizes every affected node.
    max_scheduled_level_ = 0;
    for (node_id x : changed_nodes_) {
        for (node_id g : cv.fanouts(x)) {
            if (!kind_has_controlling_value(cv.kind(g))) continue;
            pin_dirty_[g] = 1;
            schedule(g);
        }
    }
    for (std::size_t lvl = max_scheduled_level_ + 1; lvl-- > 0;) {
        auto& bucket = buckets_[lvl];
        for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
            const node_id n = bucket[idx];
            queued_[n] = 0;
            bool stem_changed = false;
            if (stem_dirty_[n]) {
                stem_dirty_[n] = 0;
                const double ns = cop::stem_observability(cv, pin_, n);
                if (ns != stem_[n]) {
                    record(cell::stem, n, stem_[n]);
                    stem_[n] = ns;
                    stem_changed = true;
                }
            }
            if (pin_dirty_[n] || stem_changed) {
                pin_dirty_[n] = 0;
                const auto fi = cv.fanins(n);
                const std::uint32_t off = cv.pin_offset(n);
                for (std::size_t k = 0; k < fi.size(); ++k) {
                    const double np =
                        stem_[n] * cop::pin_sensitization(cv, p_, n, k);
                    if (np == pin_[off + k]) continue;
                    record(cell::pin, off + static_cast<std::uint32_t>(k),
                           pin_[off + k]);
                    pin_[off + k] = np;
                    stem_dirty_[fi[k]] = 1;
                    schedule(fi[k]);
                }
            }
        }
        bucket.clear();
    }

    changed_nodes_.clear();
}

void cop_engine::rollback(checkpoint mark) {
    require(mark <= log_.size(), "cop_engine::rollback: bad checkpoint");
    while (log_.size() > mark) {
        const undo_entry& e = log_.back();
        switch (e.where) {
            case cell::prob: p_[e.index] = e.old_value; break;
            case cell::stem: stem_[e.index] = e.old_value; break;
            case cell::pin: pin_[e.index] = e.old_value; break;
            case cell::weight: weights_[e.index] = e.old_value; break;
        }
        log_.pop_back();
    }
}

}  // namespace wrpt
