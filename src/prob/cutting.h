// The cutting algorithm [BDS84 / Savir]: guaranteed lower/upper bounds on
// signal probabilities.
//
// Reconvergent fanout branches are "cut" and replaced by the full interval
// [0,1]; the remaining structure is a tree, over which interval arithmetic
// is exact. The resulting bounds always contain the true probability.

#pragma once

#include <vector>

#include "io/weights_io.h"
#include "netlist/netlist.h"

namespace wrpt {

struct probability_interval {
    double low = 0.0;
    double high = 1.0;

    bool contains(double p, double eps = 1e-12) const {
        return p >= low - eps && p <= high + eps;
    }
    double width() const { return high - low; }
};

/// Interval per node. Every fanout branch of a multi-fanout stem is cut to
/// [0,1]; the remaining forest propagates interval arithmetic (exact on
/// trees, conservative bounds under reconvergence).
std::vector<probability_interval> cutting_signal_bounds(
    const netlist& nl, const weight_vector& weights);

}  // namespace wrpt
