#include "prob/observability.h"

#include "util/error.h"

namespace wrpt {

observability_result cop_observabilities(const netlist& nl,
                                         const std::vector<double>& node_prob) {
    require(node_prob.size() == nl.node_count(),
            "cop_observabilities: probability vector size mismatch");
    observability_result res;
    res.stem.assign(nl.node_count(), 0.0);
    res.pin_offset.assign(nl.node_count() + 1, 0);
    for (node_id n = 0; n < nl.node_count(); ++n)
        res.pin_offset[n + 1] =
            res.pin_offset[n] + static_cast<std::uint32_t>(nl.fanin_count(n));
    res.pin.assign(res.pin_offset.back(), 0.0);

    // Backward over the topological order. A stem is observed if any of its
    // branches is (OR-combined under independence); an output stem is
    // observed directly.
    for (node_id step = nl.node_count(); step-- > 0;) {
        const node_id n = step;
        double miss = nl.is_output(n) ? 0.0 : 1.0;
        for (node_id g : nl.fanouts(n)) {
            // Locate the pins of g driven by n (a gate may use a stem on
            // several pins).
            const auto fi = nl.fanins(g);
            for (std::size_t k = 0; k < fi.size(); ++k) {
                if (fi[k] != n) continue;
                const double po = res.pin[res.pin_offset[g] + k];
                miss *= 1.0 - po;
            }
        }
        res.stem[n] = 1.0 - miss;

        // Push the stem observability down to this gate's own input pins.
        const auto fi = nl.fanins(n);
        if (fi.empty()) continue;
        const double og = res.stem[n];
        switch (nl.kind(n)) {
            case gate_kind::buf:
            case gate_kind::not_:
                res.pin[res.pin_offset[n]] = og;
                break;
            case gate_kind::and_:
            case gate_kind::nand_:
            case gate_kind::or_:
            case gate_kind::nor_: {
                const double noncontrolling =
                    controlling_value(nl.kind(n)) ? 0.0 : 1.0;
                for (std::size_t k = 0; k < fi.size(); ++k) {
                    double sens = 1.0;
                    for (std::size_t j = 0; j < fi.size(); ++j) {
                        if (j == k) continue;
                        const double pj = node_prob[fi[j]];
                        sens *= (noncontrolling == 1.0) ? pj : 1.0 - pj;
                    }
                    res.pin[res.pin_offset[n] + k] = og * sens;
                }
                break;
            }
            case gate_kind::xor_:
            case gate_kind::xnor_:
                // Toggling one xor input always toggles the output.
                for (std::size_t k = 0; k < fi.size(); ++k)
                    res.pin[res.pin_offset[n] + k] = og;
                break;
            default:
                break;  // input/const have no pins
        }
    }
    return res;
}

}  // namespace wrpt
