#include "prob/observability.h"

#include "prob/cop_rules.h"
#include "util/error.h"

namespace wrpt {

observability_result cop_observabilities(const circuit_view& cv,
                                         const std::vector<double>& node_prob) {
    require(node_prob.size() == cv.node_count(),
            "cop_observabilities: probability vector size mismatch");
    observability_result res;
    res.stem.assign(cv.node_count(), 0.0);
    res.pin_offset.assign(cv.pin_offsets().begin(), cv.pin_offsets().end());
    res.pin.assign(cv.pin_count(), 0.0);

    cop::chain_observabilities(
        cv,
        [&](node_id n, std::size_t k) {
            return cop::pin_sensitization(cv, node_prob, n, k);
        },
        res.stem, res.pin);
    return res;
}

observability_result cop_observabilities(const netlist& nl,
                                         const std::vector<double>& node_prob) {
    return cop_observabilities(circuit_view::compile(nl), node_prob);
}

}  // namespace wrpt
