// Lane-blocked COP kernels — the vectorized twin of the scalar forward
// sweep in prob/cop_rules.h.
//
// The circuit_view's lane groups (same level, same kind, same arity)
// make the forward signal-probability sweep data-parallel: every node in
// a group applies the same algebra chain to its gathered fanin values,
// so a vector register evaluates `lane_width` gates at once. Each lane
// performs exactly the operation sequence of cop::node_probability —
// same left fold, same literal expressions, no FMA, no reassociation —
// so the vector sweep is bit-identical to the scalar reference; the
// equivalence suite in tests/test_simd.cpp asserts it on the whole gen/
// suite, including forced-fallback dispatch and odd-sized tail buckets.

#pragma once

#include <span>

#include "core/circuit_view.h"
#include "io/weights_io.h"

namespace wrpt::cop {

/// Vectorized forward sweep: fill `p` (size node_count) with the COP
/// signal probability of every node at `weights`. Returns false — with
/// `p` untouched — when the view carries no lane groups or the scalar
/// fallback is forced (simd::scalar_forced()); callers then run the
/// scalar forward_sweep reference.
bool forward_sweep_vectorized(const circuit_view& cv,
                              std::span<const double> weights,
                              std::span<double> p);

}  // namespace wrpt::cop
