// STAFAN-style detection probability estimation [AgJa84].
//
// Controllabilities and one-level sensitization probabilities are *counted*
// during fault-free simulation of random patterns instead of being computed
// analytically; observabilities are then chained backwards as in COP. This
// follows Jain/Agrawal's "STAFAN: An Alternative to Fault Simulation"
// (DAC 1984) with one simplification documented in DESIGN.md: we do not
// split observability by signal value (O0/O1), we chain a single
// sensitization ratio per pin.

#pragma once

#include <cstdint>
#include <memory>

#include "core/circuit_view.h"
#include "prob/detect.h"

namespace wrpt {

class stafan_detect_estimator final : public detect_estimator {
public:
    explicit stafan_detect_estimator(std::uint64_t patterns = 4096,
                                     std::uint64_t seed = 0x57afa)
        : patterns_(patterns), seed_(seed) {}

    std::string name() const override { return "stafan"; }
    std::vector<double> estimate(const netlist& nl,
                                 const std::vector<fault>& faults,
                                 const weight_vector& weights) override;

private:
    std::uint64_t patterns_;
    std::uint64_t seed_;
    // View cache keyed on the netlist's structural revision stamp — the
    // optimizer re-estimates the same circuit hundreds of times.
    std::uint64_t cached_revision_ = 0;
    std::unique_ptr<circuit_view> view_;
};

/// Counted statistics exposed for tests.
struct stafan_counts {
    std::vector<double> one_controllability;   ///< C1 per node
    std::vector<double> pin_sensitization;     ///< per pin (offset layout)
    std::vector<std::uint32_t> pin_offset;
    std::uint64_t patterns = 0;
};

stafan_counts stafan_count(const netlist& nl, const weight_vector& weights,
                           std::uint64_t patterns, std::uint64_t seed);

/// Counting over an already compiled view (the shared path; the netlist
/// overload compiles a throwaway view).
stafan_counts stafan_count(const circuit_view& cv, const weight_vector& weights,
                           std::uint64_t patterns, std::uint64_t seed);

}  // namespace wrpt
