// A probe: a set of simultaneous {input, value} moves evaluated from a
// base weight vector — the unit of the batched PREPARE interface.
//
// The optimizer's coordinate sweep asks "what are the detection
// probabilities with input i moved to lo / hi?" for every input; the
// saddle escape asks the same for wholesale perturbations of the whole
// vector. Both are probes: transient weight changes whose results are
// read and then discarded. Phrasing them as data lets estimators batch
// them (one call per sweep), answer them incrementally (union-of-cones
// moves with a single rollback), and execute them in parallel (each probe
// is independent given the base vector).

#pragma once

#include <cstddef>
#include <vector>

#include "io/weights_io.h"

namespace wrpt {

/// One input move within a probe.
struct input_move {
    std::size_t input;  ///< index into netlist::inputs()
    double value;       ///< new probability for that input
};

/// A set of simultaneous moves from the base vector.
using probe = std::vector<input_move>;

/// Materialize the weight vector a probe describes.
inline weight_vector apply_probe(const weight_vector& base, const probe& p) {
    weight_vector w = base;
    for (const input_move& m : p) w[m.input] = m.value;
    return w;
}

/// The probe that turns `base` into `target` (moves for every differing
/// coordinate) — how the saddle escape phrases its candidate vectors.
inline probe probe_between(const weight_vector& base,
                           const weight_vector& target) {
    probe p;
    for (std::size_t i = 0; i < base.size(); ++i)
        if (base[i] != target[i]) p.push_back({i, target[i]});
    return p;
}

}  // namespace wrpt
