// Signal probability analysis.
//
// cop_signal_probabilities implements the classic forward propagation under
// the independence assumption (exact on trees — the Agrawal/Agrawal 1975
// setting the paper cites; an estimate under reconvergent fanout).
// The arithmetic embedding rules are the paper's formulas (2)-(4):
//   P(not x) = 1 - P(x),  P(x and y) = P(x)P(y) for independent x, y,
//   xor combines as p + q - 2pq.

#pragma once

#include <vector>

#include "core/circuit_view.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"

namespace wrpt {

/// One probability per node (indexed by node id), inputs taken from
/// `weights` (ordered like nl.inputs()).
std::vector<double> cop_signal_probabilities(const netlist& nl,
                                             const weight_vector& weights);

/// Same forward sweep over an already compiled view (the shared path; the
/// netlist overload compiles a throwaway view).
std::vector<double> cop_signal_probabilities(const circuit_view& cv,
                                             const weight_vector& weights);

/// Exact signal probabilities by brute-force weighted enumeration over all
/// 2^inputs patterns. Test oracle for small circuits only (inputs <= 24).
std::vector<double> exact_signal_probabilities_enum(const netlist& nl,
                                                    const weight_vector& weights);

}  // namespace wrpt
