#include "prob/redundancy.h"

#include "bdd/bdd.h"
#include "prob/detect.h"
#include "util/error.h"

namespace wrpt {
namespace {

/// Ternary constant analysis: 0, 1, or unknown per node.
enum class tri : std::uint8_t { zero, one, unknown };

std::vector<tri> constant_lines(const netlist& nl) {
    std::vector<tri> v(nl.node_count(), tri::unknown);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        const auto fi = nl.fanins(n);
        switch (nl.kind(n)) {
            case gate_kind::input: break;
            case gate_kind::const0: v[n] = tri::zero; break;
            case gate_kind::const1: v[n] = tri::one; break;
            case gate_kind::buf: v[n] = v[fi[0]]; break;
            case gate_kind::not_:
                if (v[fi[0]] == tri::zero) v[n] = tri::one;
                else if (v[fi[0]] == tri::one) v[n] = tri::zero;
                break;
            case gate_kind::and_:
            case gate_kind::nand_:
            case gate_kind::or_:
            case gate_kind::nor_: {
                const bool ctrl = controlling_value(nl.kind(n));
                const tri ctrl_tri = ctrl ? tri::one : tri::zero;
                bool has_ctrl = false;
                bool all_known = true;
                for (node_id x : fi) {
                    if (v[x] == ctrl_tri) has_ctrl = true;
                    if (v[x] == tri::unknown) all_known = false;
                }
                if (has_ctrl) {
                    const bool out = kind_inverts(nl.kind(n)) ? !ctrl : ctrl;
                    v[n] = out ? tri::one : tri::zero;
                } else if (all_known) {
                    // All inputs at the non-controlling value.
                    const bool body = !ctrl;
                    const bool out =
                        kind_inverts(nl.kind(n)) ? !body : body;
                    v[n] = out ? tri::one : tri::zero;
                }
                break;
            }
            case gate_kind::xor_:
            case gate_kind::xnor_: {
                bool all_known = true;
                bool parity = (nl.kind(n) == gate_kind::xnor_);
                for (node_id x : fi) {
                    if (v[x] == tri::unknown) {
                        all_known = false;
                        break;
                    }
                    if (v[x] == tri::one) parity = !parity;
                }
                if (all_known) v[n] = parity ? tri::one : tri::zero;
                break;
            }
        }
    }
    return v;
}

}  // namespace

std::vector<bool> prove_redundant(const netlist& nl,
                                  const std::vector<fault>& faults,
                                  const redundancy_options& options) {
    std::vector<bool> redundant(faults.size(), false);

    // Cheap structural proof: a stuck-at-v fault on a line whose fault-free
    // value is the constant v can never be activated.
    const std::vector<tri> constants = constant_lines(nl);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const node_id site = fault_site_driver(nl, faults[i]);
        const tri c = constants[site];
        if (c == tri::unknown) continue;
        const bool value = (c == tri::one);
        if (value == stuck_value(faults[i].value)) redundant[i] = true;
    }

    if (!options.use_bdd_proof) return redundant;

    // Complete proof for the remaining faults: detection function == false.
    try {
        exact_detect_estimator exact(options.bdd_node_limit);
        std::vector<fault> open;
        std::vector<std::size_t> open_index;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            if (!redundant[i]) {
                open.push_back(faults[i]);
                open_index.push_back(i);
            }
        }
        const weight_vector half(nl.input_count(), 0.5);
        const std::vector<double> p = exact.estimate(nl, open, half);
        for (std::size_t k = 0; k < open.size(); ++k)
            if (p[k] == 0.0) redundant[open_index[k]] = true;
    } catch (const budget_exhausted&) {
        // Budget exceeded: keep the structural results only. This mirrors
        // the paper: "there may be redundancies left which cannot be found".
    }
    return redundant;
}

}  // namespace wrpt
