#include "prob/redundancy.h"

#include "bdd/bdd.h"
#include "core/gate_eval.h"
#include "prob/detect.h"
#include "util/error.h"

namespace wrpt {
namespace {

/// Ternary constant analysis: evaluate every gate over the shared ternary
/// algebra with all primary inputs unknown; a node that still resolves to
/// 0 or 1 is structurally constant.
std::vector<ternary_value> constant_lines(const netlist& nl) {
    std::vector<ternary_value> v(nl.node_count(), ternary_value::x);
    std::vector<ternary_value> args;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) continue;
        const auto fi = nl.fanins(n);
        args.resize(fi.size());
        for (std::size_t k = 0; k < fi.size(); ++k) args[k] = v[fi[k]];
        v[n] = eval_gate(ternary_algebra{}, nl.kind(n), args.data(),
                         args.size());
    }
    return v;
}

}  // namespace

std::vector<bool> prove_redundant(const netlist& nl,
                                  const std::vector<fault>& faults,
                                  const redundancy_options& options) {
    std::vector<bool> redundant(faults.size(), false);

    // Cheap structural proof: a stuck-at-v fault on a line whose fault-free
    // value is the constant v can never be activated.
    const std::vector<ternary_value> constants = constant_lines(nl);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const node_id site = fault_site_driver(nl, faults[i]);
        const ternary_value c = constants[site];
        if (c == ternary_value::x) continue;
        const bool value = (c == ternary_value::one);
        if (value == stuck_value(faults[i].value)) redundant[i] = true;
    }

    if (!options.use_bdd_proof) return redundant;

    // Complete proof for the remaining faults: detection function == false.
    try {
        exact_detect_estimator exact(options.bdd_node_limit);
        std::vector<fault> open;
        std::vector<std::size_t> open_index;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            if (!redundant[i]) {
                open.push_back(faults[i]);
                open_index.push_back(i);
            }
        }
        const weight_vector half(nl.input_count(), 0.5);
        const std::vector<double> p = exact.estimate(nl, open, half);
        for (std::size_t k = 0; k < open.size(); ++k)
            if (p[k] == 0.0) redundant[open_index[k]] = true;
    } catch (const budget_exhausted&) {
        // Budget exceeded: keep the structural results only. This mirrors
        // the paper: "there may be redundancies left which cannot be found".
    }
    return redundant;
}

}  // namespace wrpt
