#include "prob/signal_prob.h"

#include <cmath>

#include "prob/cop_kernels.h"
#include "prob/cop_rules.h"
#include "sim/logic_sim.h"
#include "util/error.h"

namespace wrpt {

std::vector<double> cop_signal_probabilities(const circuit_view& cv,
                                             const weight_vector& weights) {
    require(weights.size() == cv.input_count(),
            "cop_signal_probabilities: weight count mismatch");
    std::vector<double> p(cv.node_count(), 0.0);
    // Lane-blocked sweep when the view precompiled lane groups and a
    // vector ISA is active; the scalar forward sweep is the reference
    // (and the fallback), bit-identical by construction.
    if (!cop::forward_sweep_vectorized(cv, weights, p)) {
        forward_sweep(cv, [&](node_id n) {
            p[n] = cop::node_probability(cv, p, weights, n);
        });
    }
    return p;
}

std::vector<double> cop_signal_probabilities(const netlist& nl,
                                             const weight_vector& weights) {
    return cop_signal_probabilities(circuit_view::compile(nl), weights);
}

std::vector<double> exact_signal_probabilities_enum(const netlist& nl,
                                                    const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "exact_signal_probabilities_enum: weight count mismatch");
    require(nl.input_count() <= 24,
            "exact_signal_probabilities_enum: too many inputs for enumeration");
    const std::size_t ins = nl.input_count();
    std::vector<double> p(nl.node_count(), 0.0);
    simulator sim(nl);
    std::vector<std::uint64_t> words(ins);
    const std::uint64_t total = 1ULL << ins;
    // Evaluate 64 assignments per block; weight each assignment by the
    // product of its input-literal probabilities.
    for (std::uint64_t base = 0; base < total; base += 64) {
        const std::uint64_t block =
            std::min<std::uint64_t>(64, total - base);
        for (std::size_t i = 0; i < ins; ++i) {
            std::uint64_t w = 0;
            for (std::uint64_t b = 0; b < block; ++b)
                if (((base + b) >> i) & 1ULL) w |= (1ULL << b);
            words[i] = w;
        }
        sim.simulate(words);
        for (std::uint64_t b = 0; b < block; ++b) {
            double weight = 1.0;
            for (std::size_t i = 0; i < ins; ++i)
                weight *= (((base + b) >> i) & 1ULL) ? weights[i]
                                                     : 1.0 - weights[i];
            for (node_id n = 0; n < nl.node_count(); ++n)
                if ((sim.value(n) >> b) & 1ULL) p[n] += weight;
        }
    }
    return p;
}

}  // namespace wrpt
