#include "prob/signal_prob.h"

#include <cmath>

#include "sim/logic_sim.h"
#include "util/error.h"

namespace wrpt {

std::vector<double> cop_signal_probabilities(const netlist& nl,
                                             const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "cop_signal_probabilities: weight count mismatch");
    std::vector<double> p(nl.node_count(), 0.0);
    for (node_id n = 0; n < nl.node_count(); ++n) {
        const auto fi = nl.fanins(n);
        switch (nl.kind(n)) {
            case gate_kind::input:
                p[n] = weights[nl.input_index(n)];
                break;
            case gate_kind::const0: p[n] = 0.0; break;
            case gate_kind::const1: p[n] = 1.0; break;
            case gate_kind::buf: p[n] = p[fi[0]]; break;
            case gate_kind::not_: p[n] = 1.0 - p[fi[0]]; break;
            case gate_kind::and_:
            case gate_kind::nand_: {
                double acc = 1.0;
                for (node_id x : fi) acc *= p[x];
                p[n] = (nl.kind(n) == gate_kind::nand_) ? 1.0 - acc : acc;
                break;
            }
            case gate_kind::or_:
            case gate_kind::nor_: {
                double acc = 1.0;
                for (node_id x : fi) acc *= 1.0 - p[x];
                p[n] = (nl.kind(n) == gate_kind::nor_) ? acc : 1.0 - acc;
                break;
            }
            case gate_kind::xor_:
            case gate_kind::xnor_: {
                double acc = 0.0;  // parity-true probability
                for (node_id x : fi) acc = acc + p[x] - 2.0 * acc * p[x];
                p[n] = (nl.kind(n) == gate_kind::xnor_) ? 1.0 - acc : acc;
                break;
            }
        }
    }
    return p;
}

std::vector<double> exact_signal_probabilities_enum(const netlist& nl,
                                                    const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "exact_signal_probabilities_enum: weight count mismatch");
    require(nl.input_count() <= 24,
            "exact_signal_probabilities_enum: too many inputs for enumeration");
    const std::size_t ins = nl.input_count();
    std::vector<double> p(nl.node_count(), 0.0);
    simulator sim(nl);
    std::vector<std::uint64_t> words(ins);
    const std::uint64_t total = 1ULL << ins;
    // Evaluate 64 assignments per block; weight each assignment by the
    // product of its input-literal probabilities.
    for (std::uint64_t base = 0; base < total; base += 64) {
        const std::uint64_t block =
            std::min<std::uint64_t>(64, total - base);
        for (std::size_t i = 0; i < ins; ++i) {
            std::uint64_t w = 0;
            for (std::uint64_t b = 0; b < block; ++b)
                if (((base + b) >> i) & 1ULL) w |= (1ULL << b);
            words[i] = w;
        }
        sim.simulate(words);
        for (std::uint64_t b = 0; b < block; ++b) {
            double weight = 1.0;
            for (std::size_t i = 0; i < ins; ++i)
                weight *= (((base + b) >> i) & 1ULL) ? weights[i]
                                                     : 1.0 - weights[i];
            for (node_id n = 0; n < nl.node_count(); ++n)
                if ((sim.value(n) >> b) & 1ULL) p[n] += weight;
        }
    }
    return p;
}

}  // namespace wrpt
