#include "prob/cop_kernels.h"

#include <cstdint>

#include "core/simd.h"
#include "prob/cop_rules.h"

#if defined(WRPT_SIMD_SSE2)
#include <immintrin.h>
#elif defined(WRPT_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace wrpt::cop {

namespace {

// Each wrapper exposes the same five operations over one register type;
// the sweep template below is the only place that spells the COP
// expressions, so every ISA evaluates exactly the cop_algebra source
// text: and_: a*b, or_: (a+b) - a*b, xor_: (a+b) - (2.0*a)*b, root
// inversion 1.0 - acc. Gathers read lane j's index from the k-major
// matrix; scatters write lane j to p[nodes[j]].

#if defined(WRPT_SIMD_SSE2)

struct vec_sse2 {
    static constexpr std::uint32_t lanes = 2;
    using reg = __m128d;
    static reg set1(double v) { return _mm_set1_pd(v); }
    static reg gather(const double* base, const std::uint32_t* idx) {
        return _mm_set_pd(base[idx[1]], base[idx[0]]);
    }
    static void scatter(double* p, const node_id* nodes, reg v) {
        double tmp[lanes];
        _mm_storeu_pd(tmp, v);
        p[nodes[0]] = tmp[0];
        p[nodes[1]] = tmp[1];
    }
    static reg add(reg a, reg b) { return _mm_add_pd(a, b); }
    static reg sub(reg a, reg b) { return _mm_sub_pd(a, b); }
    static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
};

#if defined(WRPT_SIMD_AVX2)
struct vec_avx2 {
    static constexpr std::uint32_t lanes = 4;
    using reg = __m256d;
    static reg set1(double v) { return _mm256_set1_pd(v); }
    static reg gather(const double* base, const std::uint32_t* idx) {
        return _mm256_set_pd(base[idx[3]], base[idx[2]], base[idx[1]],
                             base[idx[0]]);
    }
    static void scatter(double* p, const node_id* nodes, reg v) {
        double tmp[lanes];
        _mm256_storeu_pd(tmp, v);
        p[nodes[0]] = tmp[0];
        p[nodes[1]] = tmp[1];
        p[nodes[2]] = tmp[2];
        p[nodes[3]] = tmp[3];
    }
    static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
    static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
    static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
};
#endif  // WRPT_SIMD_AVX2

#elif defined(WRPT_SIMD_NEON)

struct vec_neon {
    static constexpr std::uint32_t lanes = 2;
    using reg = float64x2_t;
    static reg set1(double v) { return vdupq_n_f64(v); }
    static reg gather(const double* base, const std::uint32_t* idx) {
        const double tmp[lanes] = {base[idx[0]], base[idx[1]]};
        return vld1q_f64(tmp);
    }
    static void scatter(double* p, const node_id* nodes, reg v) {
        double tmp[lanes];
        vst1q_f64(tmp, v);
        p[nodes[0]] = tmp[0];
        p[nodes[1]] = tmp[1];
    }
    static reg add(reg a, reg b) { return vaddq_f64(a, b); }
    static reg sub(reg a, reg b) { return vsubq_f64(a, b); }
    static reg mul(reg a, reg b) { return vmulq_f64(a, b); }
};

#endif

#if defined(WRPT_SIMD_SSE2) || defined(WRPT_SIMD_NEON)

template <class V>
void sweep_lane_groups(const circuit_view& cv, std::span<const double> weights,
                       std::span<double> p) {
    double* const out = p.data();
    // Gathers read the same array being written: every fanin of a group
    // member lives at a strictly lower level, so its slot is final before
    // any lane of the group stores.
    const double* const src = out;
    for (const auto& g : cv.lane_groups()) {
        const node_id* nodes = cv.lane_nodes(g);
        const std::uint32_t n = g.count;
        switch (g.kind) {
            case gate_kind::input:
                for (std::uint32_t j = 0; j < n; ++j)
                    out[nodes[j]] = weights[cv.input_index(nodes[j])];
                continue;
            case gate_kind::const0:
                for (std::uint32_t j = 0; j < n; ++j) out[nodes[j]] = 0.0;
                continue;
            case gate_kind::const1:
                for (std::uint32_t j = 0; j < n; ++j) out[nodes[j]] = 1.0;
                continue;
            case gate_kind::buf: {
                const std::uint32_t* a = cv.lane_args(g);
                for (std::uint32_t j = 0; j < n; ++j)
                    out[nodes[j]] = src[a[j]];
                continue;
            }
            default:
                break;
        }
        const std::uint32_t* args = cv.lane_args(g);
        constexpr std::uint32_t L = V::lanes;
        const std::uint32_t vec_n = n - n % L;
        const typename V::reg one = V::set1(1.0);
        for (std::uint32_t j = 0; j < vec_n; j += L) {
            typename V::reg acc;
            switch (g.kind) {
                case gate_kind::not_:
                    acc = V::sub(one, V::gather(src, args + j));
                    break;
                case gate_kind::and_:
                case gate_kind::nand_:
                    acc = one;
                    for (std::uint32_t k = 0; k < g.arity; ++k)
                        acc = V::mul(acc, V::gather(src, args + k * n + j));
                    if (g.kind == gate_kind::nand_) acc = V::sub(one, acc);
                    break;
                case gate_kind::or_:
                case gate_kind::nor_:
                    acc = V::set1(0.0);
                    for (std::uint32_t k = 0; k < g.arity; ++k) {
                        const typename V::reg v =
                            V::gather(src, args + k * n + j);
                        acc = V::sub(V::add(acc, v), V::mul(acc, v));
                    }
                    if (g.kind == gate_kind::nor_) acc = V::sub(one, acc);
                    break;
                default:  // xor_/xnor_
                    acc = V::set1(0.0);
                    for (std::uint32_t k = 0; k < g.arity; ++k) {
                        const typename V::reg v =
                            V::gather(src, args + k * n + j);
                        acc = V::sub(V::add(acc, v),
                                     V::mul(V::mul(V::set1(2.0), acc), v));
                    }
                    if (g.kind == gate_kind::xnor_) acc = V::sub(one, acc);
                    break;
            }
            V::scatter(out, nodes + j, acc);
        }
        // Tail lanes (n % L) take the scalar reference rule.
        for (std::uint32_t j = vec_n; j < n; ++j)
            out[nodes[j]] = node_probability(cv, p, weights, nodes[j]);
    }
}

#endif  // WRPT_SIMD_SSE2 || WRPT_SIMD_NEON

#if defined(WRPT_SIMD_AVX2_DISPATCH)

// Runtime AVX2 step-up for baseline x86-64 builds. GCC's target
// attribute does not reliably propagate into template instantiations,
// so this is the one deliberate duplication of the sweep body: a plain
// function compiled for avx2, 4 lanes wide, same expressions.
__attribute__((target("avx2"))) void sweep_lane_groups_avx2(
    const circuit_view& cv, std::span<const double> weights,
    std::span<double> p) {
    double* const out = p.data();
    const double* const src = out;
    for (const auto& g : cv.lane_groups()) {
        const node_id* nodes = cv.lane_nodes(g);
        const std::uint32_t n = g.count;
        switch (g.kind) {
            case gate_kind::input:
                for (std::uint32_t j = 0; j < n; ++j)
                    out[nodes[j]] = weights[cv.input_index(nodes[j])];
                continue;
            case gate_kind::const0:
                for (std::uint32_t j = 0; j < n; ++j) out[nodes[j]] = 0.0;
                continue;
            case gate_kind::const1:
                for (std::uint32_t j = 0; j < n; ++j) out[nodes[j]] = 1.0;
                continue;
            case gate_kind::buf: {
                const std::uint32_t* a = cv.lane_args(g);
                for (std::uint32_t j = 0; j < n; ++j)
                    out[nodes[j]] = src[a[j]];
                continue;
            }
            default:
                break;
        }
        const std::uint32_t* args = cv.lane_args(g);
        constexpr std::uint32_t L = 4;
        const std::uint32_t vec_n = n - n % L;
        const __m256d one = _mm256_set1_pd(1.0);
// A lambda would not inherit the enclosing function's target("avx2"),
// so the gather is spelled as a macro.
#define WRPT_GATHER4(idx) \
    _mm256_set_pd(src[(idx)[3]], src[(idx)[2]], src[(idx)[1]], src[(idx)[0]])
        for (std::uint32_t j = 0; j < vec_n; j += L) {
            __m256d acc;
            switch (g.kind) {
                case gate_kind::not_:
                    acc = _mm256_sub_pd(one, WRPT_GATHER4(args + j));
                    break;
                case gate_kind::and_:
                case gate_kind::nand_:
                    acc = one;
                    for (std::uint32_t k = 0; k < g.arity; ++k)
                        acc = _mm256_mul_pd(acc, WRPT_GATHER4(args + k * n + j));
                    if (g.kind == gate_kind::nand_)
                        acc = _mm256_sub_pd(one, acc);
                    break;
                case gate_kind::or_:
                case gate_kind::nor_:
                    acc = _mm256_setzero_pd();
                    for (std::uint32_t k = 0; k < g.arity; ++k) {
                        const __m256d v = WRPT_GATHER4(args + k * n + j);
                        acc = _mm256_sub_pd(_mm256_add_pd(acc, v),
                                            _mm256_mul_pd(acc, v));
                    }
                    if (g.kind == gate_kind::nor_)
                        acc = _mm256_sub_pd(one, acc);
                    break;
                default:  // xor_/xnor_
                    acc = _mm256_setzero_pd();
                    for (std::uint32_t k = 0; k < g.arity; ++k) {
                        const __m256d v = WRPT_GATHER4(args + k * n + j);
                        acc = _mm256_sub_pd(
                            _mm256_add_pd(acc, v),
                            _mm256_mul_pd(
                                _mm256_mul_pd(_mm256_set1_pd(2.0), acc), v));
                    }
                    if (g.kind == gate_kind::xnor_)
                        acc = _mm256_sub_pd(one, acc);
                    break;
            }
            double tmp[L];
            _mm256_storeu_pd(tmp, acc);
            out[nodes[j]] = tmp[0];
            out[nodes[j + 1]] = tmp[1];
            out[nodes[j + 2]] = tmp[2];
            out[nodes[j + 3]] = tmp[3];
        }
#undef WRPT_GATHER4
        for (std::uint32_t j = vec_n; j < n; ++j)
            out[nodes[j]] = node_probability(cv, p, weights, nodes[j]);
    }
}

#endif  // WRPT_SIMD_AVX2_DISPATCH

}  // namespace

bool forward_sweep_vectorized(const circuit_view& cv,
                              std::span<const double> weights,
                              std::span<double> p) {
    if (!cv.has_lane_groups()) return false;
    if (simd::active_isa() == simd::isa::scalar) return false;
#if defined(WRPT_SIMD_AVX2)
    sweep_lane_groups<vec_avx2>(cv, weights, p);
    return true;
#elif defined(WRPT_SIMD_AVX2_DISPATCH)
    if (simd::active_isa() == simd::isa::avx2) {
        sweep_lane_groups_avx2(cv, weights, p);
        return true;
    }
    sweep_lane_groups<vec_sse2>(cv, weights, p);
    return true;
#elif defined(WRPT_SIMD_SSE2)
    sweep_lane_groups<vec_sse2>(cv, weights, p);
    return true;
#elif defined(WRPT_SIMD_NEON)
    sweep_lane_groups<vec_neon>(cv, weights, p);
    return true;
#else
    return false;
#endif
}

}  // namespace wrpt::cop
