#include "prob/detect.h"

#include <bit>

#include "bdd/bdd.h"
#include "prob/observability.h"
#include "prob/signal_prob.h"
#include "prob/stafan.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "util/error.h"

namespace wrpt {

std::vector<double> cop_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    const std::vector<double> p = cop_signal_probabilities(nl, weights);
    const observability_result obs = cop_observabilities(nl, p);

    std::vector<double> out;
    out.reserve(faults.size());
    for (const fault& f : faults) {
        const node_id site = fault_site_driver(nl, f);
        // Activation: the line must carry the opposite of the stuck value.
        const double act = stuck_value(f.value) ? 1.0 - p[site] : p[site];
        const double o =
            f.is_stem() ? obs.stem[f.where]
                        : obs.pin_obs(f.where, static_cast<std::size_t>(f.pin));
        out.push_back(act * o);
    }
    return out;
}

exact_detect_estimator::exact_detect_estimator(std::size_t node_limit)
    : node_limit_(node_limit) {}

exact_detect_estimator::~exact_detect_estimator() = default;

namespace {

std::uint64_t fault_cache_key(const fault& f) {
    return (static_cast<std::uint64_t>(f.where) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.pin + 1))
            << 1) |
           (stuck_value(f.value) ? 1u : 0u);
}

}  // namespace

std::vector<double> exact_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "exact estimator: weight count mismatch");
    bool cached = cached_nl_ == &nl;
    if (cached) {
        for (const fault& f : faults) {
            if (!ref_by_fault_.contains(fault_cache_key(f))) {
                cached = false;
                break;
            }
        }
    }
    if (!cached) rebuild(nl, faults);
    std::vector<double> out;
    out.reserve(faults.size());
    for (const fault& f : faults)
        out.push_back(
            mgr_->sat_probability(ref_by_fault_.at(fault_cache_key(f)), weights));
    return out;
}

void exact_detect_estimator::rebuild(const netlist& nl,
                                     const std::vector<fault>& faults) {
    mgr_ = std::make_unique<bdd_manager>(
        static_cast<std::uint32_t>(nl.input_count()), node_limit_);
    bdd_manager& mgr = *mgr_;
    const std::vector<bdd_manager::ref> good = build_node_bdds(mgr, nl);

    ref_by_fault_.clear();
    ref_by_fault_.reserve(faults.size() * 2);
    std::vector<bdd_manager::ref> fval(nl.node_count());
    std::vector<bool> changed(nl.node_count());

    for (const fault& f : faults) {
        // Rebuild the fanout cone of the fault with the line forced.
        std::fill(changed.begin(), changed.end(), false);
        const bdd_manager::ref forced =
            stuck_value(f.value) ? bdd_manager::one() : bdd_manager::zero();

        node_id start;
        if (f.is_stem()) {
            start = f.where;
            fval[start] = forced;
        } else {
            start = f.where;
            // Re-evaluate the gate with pin f.pin forced.
            const auto fi = nl.fanins(start);
            std::vector<bdd_manager::ref> args(fi.size());
            for (std::size_t k = 0; k < fi.size(); ++k) args[k] = good[fi[k]];
            args[static_cast<std::size_t>(f.pin)] = forced;
            fval[start] = [&] {
                bdd_manager::ref acc;
                switch (nl.kind(start)) {
                    case gate_kind::buf: return args[0];
                    case gate_kind::not_: return mgr.lnot(args[0]);
                    case gate_kind::and_:
                    case gate_kind::nand_:
                        acc = bdd_manager::one();
                        for (auto a : args) acc = mgr.land(acc, a);
                        return nl.kind(start) == gate_kind::nand_ ? mgr.lnot(acc)
                                                                  : acc;
                    case gate_kind::or_:
                    case gate_kind::nor_:
                        acc = bdd_manager::zero();
                        for (auto a : args) acc = mgr.lor(acc, a);
                        return nl.kind(start) == gate_kind::nor_ ? mgr.lnot(acc)
                                                                 : acc;
                    case gate_kind::xor_:
                    case gate_kind::xnor_:
                        acc = bdd_manager::zero();
                        for (auto a : args) acc = mgr.lxor(acc, a);
                        return nl.kind(start) == gate_kind::xnor_ ? mgr.lnot(acc)
                                                                  : acc;
                    default:
                        throw error("exact estimator: fault pin on pinless node");
                }
            }();
        }
        changed[start] = true;

        for (node_id n = start + 1; n < nl.node_count(); ++n) {
            const auto fi = nl.fanins(n);
            bool touched = false;
            for (node_id x : fi)
                if (changed[x]) {
                    touched = true;
                    break;
                }
            if (!touched) continue;
            auto arg = [&](node_id x) { return changed[x] ? fval[x] : good[x]; };
            bdd_manager::ref acc;
            switch (nl.kind(n)) {
                case gate_kind::buf: acc = arg(fi[0]); break;
                case gate_kind::not_: acc = mgr.lnot(arg(fi[0])); break;
                case gate_kind::and_:
                case gate_kind::nand_:
                    acc = bdd_manager::one();
                    for (node_id x : fi) acc = mgr.land(acc, arg(x));
                    if (nl.kind(n) == gate_kind::nand_) acc = mgr.lnot(acc);
                    break;
                case gate_kind::or_:
                case gate_kind::nor_:
                    acc = bdd_manager::zero();
                    for (node_id x : fi) acc = mgr.lor(acc, arg(x));
                    if (nl.kind(n) == gate_kind::nor_) acc = mgr.lnot(acc);
                    break;
                case gate_kind::xor_:
                case gate_kind::xnor_:
                    acc = bdd_manager::zero();
                    for (node_id x : fi) acc = mgr.lxor(acc, arg(x));
                    if (nl.kind(n) == gate_kind::xnor_) acc = mgr.lnot(acc);
                    break;
                default: continue;  // inputs/consts unaffected
            }
            if (acc != good[n]) {
                fval[n] = acc;
                changed[n] = true;
            }
        }

        bdd_manager::ref detect = bdd_manager::zero();
        for (node_id o : nl.outputs())
            if (changed[o]) detect = mgr.lor(detect, mgr.lxor(good[o], fval[o]));
        ref_by_fault_[fault_cache_key(f)] = detect;
    }
    cached_nl_ = &nl;
}

std::vector<double> mc_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "mc estimator: weight count mismatch");
    simulator sim(nl);
    weighted_random_source source(weights, seed_);
    std::vector<std::uint64_t> hits(faults.size(), 0);
    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < patterns_) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block =
            std::min<std::uint64_t>(64, patterns_ - applied);
        const std::uint64_t valid =
            block == 64 ? ~0ULL : ((1ULL << block) - 1);
        for (std::size_t i = 0; i < faults.size(); ++i)
            hits[i] += static_cast<std::uint64_t>(
                std::popcount(sim.detect_mask(faults[i]) & valid));
        applied += block;
    }
    std::vector<double> out(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i)
        out[i] = static_cast<double>(hits[i]) / static_cast<double>(applied);
    return out;
}

std::unique_ptr<detect_estimator> make_estimator(const std::string& name) {
    if (name == "cop") return std::make_unique<cop_detect_estimator>();
    if (name == "exact-bdd") return std::make_unique<exact_detect_estimator>();
    if (name == "monte-carlo") return std::make_unique<mc_detect_estimator>();
    if (name == "stafan") return std::make_unique<stafan_detect_estimator>();
    throw invalid_input("make_estimator: unknown estimator '" + name + "'");
}

}  // namespace wrpt
