#include "prob/detect.h"

#include <bit>
#include <thread>

#include "bdd/bdd.h"
#include "core/circuit_view.h"
#include "core/gate_eval.h"
#include "exec/engine_pool.h"
#include "exec/thread_pool.h"
#include "prob/cop_engine.h"
#include "prob/observability.h"
#include "prob/signal_prob.h"
#include "prob/stafan.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {

cop_detect_estimator::cop_detect_estimator() = default;
cop_detect_estimator::~cop_detect_estimator() = default;

void cop_detect_estimator::adopt_view(const circuit_view& cv) {
    require(cv.has_input_cones(),
            "cop estimator: adopted view compiled without input cones");
    adopted_view_ = &cv;
    own_pool_.reset();
    view_.reset();
    cached_revision_ = cv.source().revision();
}

void cop_detect_estimator::adopt_pool(engine_pool& pool) {
    adopt_view(pool.view());
    shared_pool_ = &pool;
}

const circuit_view& cop_detect_estimator::ensure_view(const netlist& nl,
                                                      bool engine_structures) {
    // An adopted view (batch_session: compile once, share across every
    // estimator working the circuit) short-circuits the cache, but only
    // for the circuit it was compiled from.
    if (adopted_view_ &&
        adopted_view_->source().revision() == nl.revision())
        return *adopted_view_;
    // Cache key is the netlist's structural revision stamp — exact under
    // address reuse and in-place mutation. The cone/transpose arrays only
    // exist for the incremental engine; the full-recompute path compiles
    // (and pays for) the plain view alone.
    const bool stale = !view_ || cached_revision_ != nl.revision() ||
                       (engine_structures && !view_->has_input_cones());
    if (stale) {
        // The pool borrows the view, so it dies before the view does.
        own_pool_.reset();
        circuit_view::compile_options co;
        co.input_cones = engine_structures;
        co.driven_pins = engine_structures;
        co.lane_groups = true;
        view_ = std::make_unique<circuit_view>(circuit_view::compile(nl, co));
        cached_revision_ = nl.revision();
    }
    return *view_;
}

engine_pool& cop_detect_estimator::ensure_pool(const netlist& nl) {
    const circuit_view& cv = ensure_view(nl, true);
    if (shared_pool_ && shared_pool_->revision() == nl.revision())
        return *shared_pool_;
    if (!own_pool_ || own_pool_->revision() != nl.revision())
        own_pool_ = std::make_unique<engine_pool>(cv);
    return *own_pool_;
}

bool cop_detect_estimator::engine_applies(const netlist& nl) {
    if (!incremental_) return false;
    return ensure_view(nl, true).mean_cone_fraction() <= engine_cone_limit_;
}

std::vector<double> cop_detect_estimator::read_faults(
    const cop_engine& engine, std::span<const fault> faults) const {
    std::vector<double> out;
    out.reserve(faults.size());
    for (const fault& f : faults) out.push_back(engine.fault_probability(f));
    return out;
}

std::vector<double> cop_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    return estimate_faults(nl, {faults.data(), faults.size()}, weights, 1);
}

std::vector<double> cop_detect_estimator::estimate_faults(
    const netlist& nl, std::span<const fault> faults,
    const weight_vector& weights, unsigned threads) {
    require(weights.size() == nl.input_count(),
            "cop estimator: weight count mismatch");
    threads = threads == 0
                  ? std::max(1u, std::thread::hardware_concurrency())
                  : threads;
    if (!engine_applies(nl)) {
        // Full-recompute path (the benchmark baseline, and the fast path
        // for circuits with near-global cones): both testability sweeps
        // re-run per call over the cached view; the per-fault read shards
        // over the pool (each fault's value is a pure function of the
        // shared sweeps, so the output is index-keyed and thread-count
        // independent).
        ++stats_.full_estimates;
        const circuit_view& cv = ensure_view(nl, false);
        const std::vector<double> p = cop_signal_probabilities(cv, weights);
        const observability_result obs = cop_observabilities(cv, p);
        std::vector<double> out(faults.size());
        const auto read_one = [&](std::size_t j) {
            const fault& f = faults[j];
            const node_id site = fault_site_driver(nl, f);
            const double act = stuck_value(f.value) ? 1.0 - p[site] : p[site];
            const double o =
                f.is_stem()
                    ? obs.stem[f.where]
                    : obs.pin_obs(f.where, static_cast<std::size_t>(f.pin));
            out[j] = act * o;
        };
        if (threads <= 1 || faults.size() < 2) {
            for (std::size_t j = 0; j < faults.size(); ++j) read_one(j);
        } else {
            shared_thread_pool().parallel_for(faults.size(), read_one);
        }
        return out;
    }

    engine_pool& pool = ensure_pool(nl);
    if (threads <= 1 || faults.size() < 2) {
        const engine_pool::lease lease = pool.checkout(weights);
        note_checkout(lease.fresh());
        return read_faults(lease.engine(), faults);
    }

    // Sharded ANALYSIS: contiguous fault chunks, one pool engine per
    // chunk, every engine synced to `weights`. The engines' states are
    // bit-identical (cop_engine invariant) and results are keyed by
    // fault index, so the output matches the sequential read exactly.
    std::vector<double> out(faults.size());
    const std::size_t chunk = (faults.size() + threads - 1) / threads;
    const std::size_t chunk_count = (faults.size() + chunk - 1) / chunk;
    std::vector<std::uint8_t> fresh(chunk_count, 0);
    shared_thread_pool().parallel_for(chunk_count, [&](std::size_t c) {
        const engine_pool::lease lease = pool.checkout(weights);
        fresh[c] = lease.fresh() ? 1 : 0;
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, faults.size());
        for (std::size_t j = begin; j < end; ++j)
            out[j] = lease.engine().fault_probability(faults[j]);
    });
    for (std::uint8_t f : fresh) note_checkout(f != 0);
    return out;
}

std::vector<std::vector<double>> cop_detect_estimator::estimate_probes(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& base, std::span<const probe> probes) {
    if (!engine_applies(nl)) {
        // The default loops over estimate(), whose full-recompute path
        // counts each call in stats_.full_estimates already.
        return detect_estimator::estimate_probes(nl, faults, base, probes);
    }
    std::vector<std::vector<double>> out(probes.size());
    unsigned threads = threads_ == 0
                           ? std::max(1u, std::thread::hardware_concurrency())
                           : threads_;
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, probes.size()));

    for (const probe& p : probes)
        if (p.size() > 1) ++stats_.batched_moves;
    stats_.engine_probes += probes.size();

    engine_pool& pool = ensure_pool(nl);
    if (threads <= 1) {
        // Sequential: every probe is a transaction on one pool engine —
        // apply the moves, read the faults, roll back. The engine goes
        // back warm, so the next call (or the next estimator adopting
        // the same shared pool) re-syncs instead of rebuilding.
        engine_pool::lease lease = pool.checkout(base);
        note_checkout(lease.fresh());
        cop_engine& engine = lease.engine();
        for (std::size_t k = 0; k < probes.size(); ++k) {
            const cop_engine::checkpoint ck = engine.mark();
            engine.set_inputs(probes[k]);
            out[k] = read_faults(engine, faults);
            engine.rollback(ck);
        }
        return out;
    }

    // Parallel: contiguous probe chunks, one pool engine per chunk over
    // the shared compiled view. Returned engines stay warm in the pool
    // and re-sync to the batch base by an incremental union-of-cones
    // move, so a sweep issued as many small batches builds each engine
    // once ever. An engine's state at `base` is bit-identical to the
    // sequential engine's (the cop_engine invariant), so results do not
    // depend on the thread count; they are keyed by probe index, so they
    // do not depend on scheduling either.
    const std::size_t chunk =
        (probes.size() + threads - 1) / threads;
    const std::size_t chunk_count = (probes.size() + chunk - 1) / chunk;
    std::vector<std::uint8_t> fresh(chunk_count, 0);
    shared_thread_pool().parallel_for(chunk_count, [&](std::size_t c) {
        engine_pool::lease lease = pool.checkout(base);
        fresh[c] = lease.fresh() ? 1 : 0;
        cop_engine& engine = lease.engine();
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, probes.size());
        for (std::size_t k = begin; k < end; ++k) {
            const cop_engine::checkpoint ck = engine.mark();
            engine.set_inputs(probes[k]);
            out[k] = read_faults(engine, faults);
            engine.rollback(ck);
        }
    });
    for (std::uint8_t f : fresh) note_checkout(f != 0);
    return out;
}

exact_detect_estimator::exact_detect_estimator(std::size_t node_limit)
    : node_limit_(node_limit) {}

exact_detect_estimator::~exact_detect_estimator() = default;

namespace {

std::uint64_t fault_cache_key(const fault& f) {
    return (static_cast<std::uint64_t>(f.where) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.pin + 1))
            << 1) |
           (stuck_value(f.value) ? 1u : 0u);
}

}  // namespace

std::vector<double> exact_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    require(weights.size() == nl.input_count(),
            "exact estimator: weight count mismatch");
    bool cached = cached_revision_ == nl.revision() && mgr_ != nullptr;
    if (cached) {
        for (const fault& f : faults) {
            if (!ref_by_fault_.contains(fault_cache_key(f))) {
                cached = false;
                break;
            }
        }
    }
    if (!cached) rebuild(nl, faults);
    std::vector<double> out;
    out.reserve(faults.size());
    for (const fault& f : faults)
        out.push_back(
            mgr_->sat_probability(ref_by_fault_.at(fault_cache_key(f)), weights));
    return out;
}

void exact_detect_estimator::rebuild(const netlist& nl,
                                     const std::vector<fault>& faults) {
    mgr_ = std::make_unique<bdd_manager>(
        static_cast<std::uint32_t>(nl.input_count()), node_limit_);
    bdd_manager& mgr = *mgr_;
    const bdd_algebra alg{&mgr};
    const std::vector<bdd_manager::ref> good = build_node_bdds(mgr, nl);

    ref_by_fault_.clear();
    ref_by_fault_.reserve(faults.size() * 2);
    std::vector<bdd_manager::ref> fval(nl.node_count());
    std::vector<bool> changed(nl.node_count());
    std::vector<bdd_manager::ref> args;

    for (const fault& f : faults) {
        // Rebuild the fanout cone of the fault with the line forced.
        std::fill(changed.begin(), changed.end(), false);
        const bdd_manager::ref forced =
            stuck_value(f.value) ? bdd_manager::one() : bdd_manager::zero();

        const node_id start = f.where;
        if (f.is_stem()) {
            fval[start] = forced;
        } else {
            // Re-evaluate the gate with pin f.pin forced.
            const auto fi = nl.fanins(start);
            args.resize(fi.size());
            for (std::size_t k = 0; k < fi.size(); ++k) args[k] = good[fi[k]];
            args[static_cast<std::size_t>(f.pin)] = forced;
            fval[start] =
                eval_gate(alg, nl.kind(start), args.data(), args.size());
        }
        changed[start] = true;

        for (node_id n = start + 1; n < nl.node_count(); ++n) {
            const auto fi = nl.fanins(n);
            if (fi.empty()) continue;  // inputs/consts unaffected
            bool touched = false;
            for (node_id x : fi)
                if (changed[x]) {
                    touched = true;
                    break;
                }
            if (!touched) continue;
            args.resize(fi.size());
            for (std::size_t k = 0; k < fi.size(); ++k) {
                const node_id x = fi[k];
                args[k] = changed[x] ? fval[x] : good[x];
            }
            const bdd_manager::ref acc =
                eval_gate(alg, nl.kind(n), args.data(), args.size());
            if (acc != good[n]) {
                fval[n] = acc;
                changed[n] = true;
            }
        }

        bdd_manager::ref detect = bdd_manager::zero();
        for (node_id o : nl.outputs())
            if (changed[o]) detect = mgr.lor(detect, mgr.lxor(good[o], fval[o]));
        ref_by_fault_[fault_cache_key(f)] = detect;
    }
    cached_revision_ = nl.revision();
}

std::vector<double> mc_detect_estimator::estimate(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights) {
    return estimate_seeded(nl, faults, weights, seed_);
}

std::vector<std::vector<double>> mc_detect_estimator::estimate_probes(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& base, std::span<const probe> probes) {
    std::vector<std::vector<double>> out(probes.size());
    for (std::size_t k = 0; k < probes.size(); ++k) {
        // Private stream per probe, derived from (seed, probe index):
        // answers are a pure function of the probe's position in the
        // batch, never of what other probes ran before it (or on which
        // thread).
        std::uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ULL * (k + 1));
        const std::uint64_t probe_seed = splitmix64_next(state);
        out[k] = estimate_seeded(nl, faults, apply_probe(base, probes[k]),
                                 probe_seed);
    }
    return out;
}

std::vector<double> mc_detect_estimator::estimate_seeded(
    const netlist& nl, const std::vector<fault>& faults,
    const weight_vector& weights, std::uint64_t seed) const {
    require(weights.size() == nl.input_count(),
            "mc estimator: weight count mismatch");
    simulator sim(nl);
    weighted_random_source source(weights, seed);
    std::vector<std::uint64_t> hits(faults.size(), 0);
    std::vector<std::uint64_t> words;
    std::uint64_t applied = 0;
    while (applied < patterns_) {
        source.next_block(words);
        sim.simulate(words);
        const std::uint64_t block =
            std::min<std::uint64_t>(64, patterns_ - applied);
        const std::uint64_t valid =
            block == 64 ? ~0ULL : ((1ULL << block) - 1);
        for (std::size_t i = 0; i < faults.size(); ++i)
            hits[i] += static_cast<std::uint64_t>(
                std::popcount(sim.detect_mask(faults[i]) & valid));
        applied += block;
    }
    std::vector<double> out(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i)
        out[i] = static_cast<double>(hits[i]) / static_cast<double>(applied);
    return out;
}

std::unique_ptr<detect_estimator> make_estimator(const std::string& name) {
    if (name == "cop") return std::make_unique<cop_detect_estimator>();
    if (name == "exact-bdd") return std::make_unique<exact_detect_estimator>();
    if (name == "monte-carlo") return std::make_unique<mc_detect_estimator>();
    if (name == "stafan") return std::make_unique<stafan_detect_estimator>();
    throw invalid_input("make_estimator: unknown estimator '" + name + "'");
}

}  // namespace wrpt
