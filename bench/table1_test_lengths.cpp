// Table 1: necessary test lengths for a conventional random test
// (all input probabilities 0.5), estimated by the analytic "PROTEST-like"
// engine + NORMALIZE at confidence 0.999.

#include <cstdio>
#include <iostream>

#include "gen/suite.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    text_table t(
        "Table 1: Necessary test lengths for a conventional random test\n"
        "(paper values from PROTEST; ours from the analytic estimator; "
        "* = random-pattern-resistant)");
    t.set_header({"Circuit", "N (paper)", "N (ours)", "hardest p_f", "gates",
                  "faults"});

    stopwatch total;
    for (const auto& entry : benchmark_suite()) {
        const netlist nl = entry.build();
        const auto faults = generate_full_faults(nl);
        cop_detect_estimator analysis;
        const test_length_report rep = required_test_length(
            nl, faults, analysis, uniform_weights(nl), 0.999);
        t.add_row({(entry.hard ? "* " : "  ") + entry.name,
                   format_sci(entry.paper_table1_length, 2),
                   rep.feasible ? format_sci(rep.test_length, 2) : "inf",
                   format_sci(rep.hardest_probability, 2),
                   std::to_string(nl.stats().gate_count),
                   std::to_string(faults.size())});
    }
    std::cout << t;
    std::printf(
        "\nShape check: the starred circuits need orders of magnitude more\n"
        "conventional patterns than the unstarred ones, as in the paper.\n"
        "(total %.2f s)\n\n",
        total.seconds());
    return 0;
}
