// Fig. 2: fault coverage vs pattern count for S1, optimized vs
// conventional random patterns. The paper's figure shows the optimized
// curve saturating near 100% within a few thousand patterns while the
// conventional one stalls around 80%.

#include <cstdio>
#include <iostream>

#include "gen/comparator.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    stopwatch total;
    const netlist nl = make_s1();
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator analysis;
    const optimize_result opt =
        optimize_weights(nl, faults, analysis, uniform_weights(nl));

    fault_sim_options fo;
    fo.max_patterns = 12288;
    fo.drop_detected = true;
    const auto conventional = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 0xf162, fo);
    const auto optimized =
        run_weighted_fault_simulation(nl, faults, opt.weights, 0xf162, fo);

    text_table t("Fig. 2: Fault coverage vs pattern count (S1)");
    t.set_header({"Patterns", "conventional %", "optimized %"});
    auto pct = [&](const fault_sim_result& r, std::uint64_t n) {
        return 100.0 * static_cast<double>(r.detected_within(n)) /
               static_cast<double>(faults.size());
    };
    for (std::uint64_t n = 16; n <= 12288; n *= 2) {
        t.add_row({format_count(n), format_fixed(pct(conventional, n), 1),
                   format_fixed(pct(optimized, n), 1)});
    }
    t.add_row({format_count(12288), format_fixed(pct(conventional, 12288), 1),
               format_fixed(pct(optimized, 12288), 1)});
    std::cout << t;

    // A coarse ASCII rendition of the figure.
    std::printf("\n  %%cov  conventional (.)  optimized (#)\n");
    for (std::uint64_t n = 16; n <= 12288; n *= 2) {
        const int c = static_cast<int>(pct(conventional, n) / 2.0);
        const int o = static_cast<int>(pct(optimized, n) / 2.0);
        std::printf("  %6llu |", static_cast<unsigned long long>(n));
        for (int i = 0; i < 50; ++i) {
            char ch = ' ';
            if (i == c) ch = '.';
            if (i == o) ch = (i == c) ? '*' : '#';
            std::putchar(ch);
        }
        std::printf("|\n");
    }
    std::printf(
        "\nShape check: the optimized curve dominates everywhere and\n"
        "saturates; the conventional curve plateaus far below 100%%\n"
        "(the paper's S1 plateau is ~80%% at 12,000 patterns).\n"
        "(total %.2f s)\n\n",
        total.seconds());
    return 0;
}
