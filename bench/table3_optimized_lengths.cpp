// Table 3: necessary test lengths for optimized random tests — the core
// result. OPTIMIZE computes one probability per primary input; NORMALIZE
// reports the resulting test length. Also prints the appendix-style
// optimized input probability listing for S1 and c7552.

#include <cstdio>
#include <iostream>

#include "gen/suite.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    text_table t("Table 3: Necessary test lengths for optimized random tests");
    t.set_header({"Circuit", "N conventional", "N optimized (paper)",
                  "N optimized (ours)", "reduction", "sweeps"});

    stopwatch total;
    for (const auto& entry : hard_suite()) {
        const netlist nl = entry.build();
        const auto faults = generate_full_faults(nl);
        cop_detect_estimator analysis;
        const optimize_result res =
            optimize_weights(nl, faults, analysis, uniform_weights(nl));
        const double reduction =
            res.final_test_length > 0.0
                ? res.initial_test_length / res.final_test_length
                : 0.0;
        t.add_row({entry.name, format_sci(res.initial_test_length, 2),
                   format_sci(entry.paper_optimized_length, 2),
                   format_sci(res.final_test_length, 2),
                   format_sci(reduction, 2) + "x",
                   std::to_string(res.history.size())});

        if (entry.name == "S1" || entry.name == "c7552") {
            std::printf(
                "\nAppendix-style listing: optimized input probabilities "
                "for %s\n",
                entry.name.c_str());
            for (std::size_t i = 0; i < res.weights.size(); ++i) {
                std::printf("  %-6s %.2f", nl.node_name(nl.inputs()[i]).c_str(),
                            res.weights[i]);
                if (i % 6 == 5) std::printf("\n");
            }
            std::printf("\n");
        }
    }
    std::cout << "\n" << t;
    std::printf(
        "\nShape check: optimization cuts the necessary test length by\n"
        "orders of magnitude on every random-pattern-resistant circuit,\n"
        "as in the paper (S1: 5.6e8 -> 3.5e4 there).\n(total %.2f s)\n\n",
        total.seconds());
    return 0;
}
