// Table 4: fault coverage by simulation of optimized random patterns at
// the same pattern counts as Table 2 — "the results of fault simulation
// prove that such optimized random patterns yield a higher fault coverage
// indeed".

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    using wrpt::bench::account_faults;

    text_table t("Table 4: Fault coverage of optimized random patterns");
    t.set_header({"Circuit", "Patterns", "Coverage% (paper)",
                  "Coverage% (ours)", "of all faults%", "conv% (ours)"});

    stopwatch total;
    for (const auto& entry : hard_suite()) {
        const netlist nl = entry.build();
        const auto acc = account_faults(nl);
        cop_detect_estimator analysis;
        const optimize_result opt =
            optimize_weights(nl, acc.faults, analysis, uniform_weights(nl));

        fault_sim_options fo;
        fo.max_patterns = entry.paper_sim_patterns;
        const auto conv = run_weighted_fault_simulation(
            nl, acc.faults, uniform_weights(nl), 0x7ab1e4, fo);
        const auto sim = run_weighted_fault_simulation(
            nl, acc.faults, opt.weights, 0x7ab1e4, fo);

        t.add_row({entry.name, format_count(entry.paper_sim_patterns),
                   format_fixed(entry.paper_optimized_coverage, 1),
                   format_fixed(acc.coverage_percent(sim), 1),
                   format_fixed(sim.coverage_percent(acc.faults.size()), 1),
                   format_fixed(acc.coverage_percent(conv), 1)});
    }
    std::cout << t;
    std::printf(
        "\nShape check: with the optimized input probabilities the same\n"
        "pattern budgets reach near-complete coverage of the detectable\n"
        "faults, far above the conventional coverage of Table 2.\n"
        "(total %.2f s)\n\n",
        total.seconds());
    return 0;
}
