// Connection-scale rows for BENCH_serve.json: request latency through a
// daemon that is simultaneously holding a crowd of idle connections.
//
// Each row opens `idle` connections that never send a byte (the parked
// fleet an event-driven daemon must carry for free), then runs `active`
// concurrent clients issuing cached optimize requests over persistent
// connections, and reports per-request p50/p99 latency alongside the
// daemon's own thread count — the direct evidence that the reactor holds
// 10k sessions without one thread per connection (threads stays at
// reactor + fixed workers however large `idle` grows; under the old
// session-per-connection model it would read 10k+).
//
// The custom main raises RLIM_NOFILE to the hard limit first: the 10k
// row needs ~2x idle fds (client + server side of every connection).
// Rows whose fd budget still does not fit are skipped, not failed, so
// constrained environments keep the 100/1k rows.

#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/socket.h"

namespace {

using namespace wrpt;

// The daemon's own thread count, from /proc/self/status (0 where the
// procfs field is unavailable). The server runs in-process, so this
// counts reactor + workers (+ the bench's own threads, a known constant).
double process_thread_count() {
#ifdef __linux__
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return 0.0;
    char line[256];
    double threads = 0.0;
    while (std::fgets(line, sizeof line, f)) {
        int value = 0;
        if (std::sscanf(line, "Threads: %d", &value) == 1) {
            threads = static_cast<double>(value);
            break;
        }
    }
    std::fclose(f);
    return threads;
#else
    return 0.0;
#endif
}

bool fd_budget_fits(std::size_t idle, std::size_t active) {
    rlimit rl{};
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
    // Client + server side per connection, plus slack for the service,
    // the poller, the wake channel and stdio.
    const rlim_t needed = static_cast<rlim_t>(2 * (idle + active) + 64);
    return rl.rlim_cur >= needed;
}

void bm_serve_conns(benchmark::State& state) {
    const std::size_t idle = static_cast<std::size_t>(state.range(0));
    const std::size_t active = static_cast<std::size_t>(state.range(1));
    if (!fd_budget_fits(idle, active)) {
        state.SkipWithError("RLIMIT_NOFILE too low for this row");
        return;
    }

    svc::service service;
    {
        svc::request load;
        svc::load_circuit_request lp;
        lp.suite = "S1";
        load.payload = std::move(lp);
        if (!service.handle(load).ok) {
            state.SkipWithError("load failed");
            return;
        }
    }
    svc::request q;
    svc::optimize_request op;
    op.options.max_sweeps = 3;
    q.payload = op;
    service.handle(q);  // the active clients measure the cache-hit path

    const svc::endpoint ep = svc::endpoint::unix_at(
        (std::filesystem::temp_directory_path() /
         ("wrpt_bm_conns_" + std::to_string(::getpid()) + ".sock"))
            .string());
    svc::server server(service, ep);

    // The parked fleet: connected, never sends, never read from. Opened
    // outside the timing loop — rows price the steady state, not the
    // connect storm.
    std::vector<svc::client> parked(idle);
    for (std::size_t i = 0; i < idle; ++i) {
        try {
            parked[i].connect(server.where(), 2000);
        } catch (const svc::socket_error& e) {
            state.SkipWithError(e.what());
            return;
        }
    }

    std::vector<svc::client> actives(active);
    for (std::size_t i = 0; i < active; ++i)
        actives[i].connect(server.where(), 2000);

    std::mutex latency_mutex;
    std::vector<double> latencies_us;
    for (auto _ : state) {
        std::vector<std::thread> threads;
        threads.reserve(active);
        for (std::size_t c = 0; c < active; ++c) {
            threads.emplace_back([&, c] {
                const auto t0 = std::chrono::steady_clock::now();
                const svc::response r = actives[c].roundtrip(q);
                const auto t1 = std::chrono::steady_clock::now();
                benchmark::DoNotOptimize(r.ok);
                const double us =
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count();
                std::scoped_lock lock(latency_mutex);
                latencies_us.push_back(us);
            });
        }
        for (std::thread& t : threads) t.join();
    }

    const double daemon_threads = process_thread_count();
    const svc::server::counters sc = server.stats();
    state.counters["idle_conns"] = static_cast<double>(idle);
    state.counters["active_conns"] = static_cast<double>(active);
    state.counters["held_conns"] = static_cast<double>(sc.active);
    state.counters["accepted"] = static_cast<double>(sc.accepted);
    state.counters["workers"] = static_cast<double>(sc.workers);
    state.counters["process_threads"] = daemon_threads;
    state.counters["p50_us"] = bench::percentile(latencies_us, 0.50);
    state.counters["p99_us"] = bench::percentile(latencies_us, 0.99);

    parked.clear();
    actives.clear();
    server.stop();
    server.wait();
}

BENCHMARK(bm_serve_conns)
    ->Args({100, 8})
    ->Args({1000, 8})
    ->Args({10000, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(50)
    ->UseRealTime();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the 10k-connection row only
// fits after raising the soft fd limit to the hard one.
int main(int argc, char** argv) {
    rlimit rl{};
    if (getrlimit(RLIMIT_NOFILE, &rl) == 0) {
        // With CAP_SYS_RESOURCE the hard limit itself can move — try
        // for a 10k-row-sized budget first, then settle for the hard
        // limit as found.
        const rlim_t want = 1 << 16;
        if (rl.rlim_max < want) {
            rlimit big{want, want};
            if (setrlimit(RLIMIT_NOFILE, &big) == 0) rl = big;
        }
        if (rl.rlim_cur < rl.rlim_max) {
            rl.rlim_cur = rl.rlim_max;
            setrlimit(RLIMIT_NOFILE, &rl);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
