// Table 5: CPU time of the optimizing procedure per circuit.
//
// The paper reports 300 s (S1) ... 2000 s (C7552) on a ~2.5 MIPS Siemens
// 7561. Absolute numbers on a modern CPU differ by orders of magnitude;
// the reproducible shape is the relative ordering across circuits and the
// near-independence of the per-input minimization from circuit size
// (paper section 4, observation 2).

#include <benchmark/benchmark.h>

#include "gen/suite.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"

namespace {

void run_optimize(benchmark::State& state, const std::string& name,
                  unsigned threads = 1) {
    using namespace wrpt;
    const netlist nl = build_suite_circuit(name);
    const auto faults = generate_full_faults(nl);
    for (auto _ : state) {
        cop_detect_estimator analysis;
        analysis.set_threads(threads);
        optimize_result res =
            optimize_weights(nl, faults, analysis, uniform_weights(nl));
        benchmark::DoNotOptimize(res.final_test_length);
    }
    state.counters["gates"] =
        static_cast<double>(nl.stats().gate_count);
    state.counters["faults"] = static_cast<double>(faults.size());
    state.counters["inputs"] = static_cast<double>(nl.input_count());
    state.counters["threads"] = static_cast<double>(threads);
}

}  // namespace

BENCHMARK_CAPTURE(run_optimize, S1, std::string("S1"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_optimize, S2, std::string("S2"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_optimize, c2670, std::string("c2670"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(run_optimize, c7552, std::string("c7552"))
    ->Unit(benchmark::kMillisecond);

// Threaded variants: the full OPTIMIZE procedure with the batched PREPARE
// path on per-thread engines — weights identical to the single-thread
// rows, wall clock is the point.
BENCHMARK_CAPTURE(run_optimize, c7552_t4, std::string("c7552"), 4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(run_optimize, c2670_t4, std::string("c2670"), 4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
