// Table 2: fault coverage by simulation of conventional random patterns
// on the four random-pattern-resistant circuits, at the paper's pattern
// counts. Coverage is reported with respect to faults not proven
// redundant (the paper's accounting) and, for reference, to all faults.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    using wrpt::bench::account_faults;

    text_table t(
        "Table 2: Fault coverage of conventional random patterns (p = 0.5)");
    t.set_header({"Circuit", "Patterns", "Coverage% (paper)",
                  "Coverage% (ours)", "of all faults%", "proven redundant",
                  "unclassified"});

    stopwatch total;
    for (const auto& entry : hard_suite()) {
        const netlist nl = entry.build();
        const auto acc = account_faults(nl);
        fault_sim_options fo;
        fo.max_patterns = entry.paper_sim_patterns;
        const auto sim = run_weighted_fault_simulation(
            nl, acc.faults, uniform_weights(nl), 0x7ab1e2, fo);
        t.add_row({entry.name, format_count(entry.paper_sim_patterns),
                   format_fixed(entry.paper_conventional_coverage, 1),
                   format_fixed(acc.coverage_percent(sim), 1),
                   format_fixed(sim.coverage_percent(acc.faults.size()), 1),
                   std::to_string(acc.redundant_count),
                   std::to_string(acc.aborted_count)});
    }
    std::cout << t;
    std::printf(
        "\nShape check: conventional random patterns leave a large fraction\n"
        "of faults undetected on every starred circuit. ('unclassified' are\n"
        "faults the bounded PODEM pass could neither test nor prove\n"
        "redundant; they remain in the coverage denominator.)\n"
        "(total %.2f s)\n\n",
        total.seconds());
    return 0;
}
