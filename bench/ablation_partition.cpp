// Ablation C: partitioned optimization (the paper's section 5.3 future
// work, implemented here). The pathological circuit pairs a wide AND with
// a wide NOR over the same inputs: one weight tuple cannot make both
// likely; two sessions with different tuples can.

#include <cstdio>
#include <iostream>

#include "gen/pathological.h"
#include "io/weights_io.h"
#include "opt/partition.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    stopwatch total;
    text_table t(
        "Ablation C: single weight tuple vs partitioned sessions\n"
        "(pathological circuit of paper section 5.3: AND(X) + NOR(X), "
        "width sweep)");
    t.set_header({"Width", "N single tuple", "N partitioned (sum)",
                  "sessions", "session means"});

    for (std::size_t width : {8, 12, 16, 20}) {
        const netlist nl = make_pathological(width);
        const auto faults = generate_full_faults(nl);
        cop_detect_estimator analysis;
        const partitioned_result res = optimize_partitioned(
            nl, faults, analysis, uniform_weights(nl));
        std::string means;
        for (const auto& s : res.sessions) {
            if (!means.empty()) means += " / ";
            means += format_fixed(mean_of(s.weights), 2);
        }
        t.add_row({std::to_string(width),
                   format_sci(res.single_session_length, 2),
                   format_sci(res.total_length, 2),
                   std::to_string(res.sessions.size()), means});
    }
    std::cout << t;

    // Verify by simulation on the 16-bit instance.
    const netlist nl = make_pathological(16);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator analysis;
    const partitioned_result res =
        optimize_partitioned(nl, faults, analysis, uniform_weights(nl));
    std::vector<bool> covered(faults.size(), false);
    std::uint64_t budget = 0;
    for (const auto& s : res.sessions) {
        fault_sim_options fo;
        fo.max_patterns =
            static_cast<std::uint64_t>(s.test_length) + 64;
        budget += fo.max_patterns;
        const auto sim =
            run_weighted_fault_simulation(nl, faults, s.weights, 0xc3, fo);
        for (std::size_t i = 0; i < faults.size(); ++i)
            if (sim.first_detected[i].has_value()) covered[i] = true;
    }
    std::size_t detected = 0;
    for (bool c : covered)
        if (c) ++detected;
    std::printf(
        "\nSimulation check (width 16): the partitioned schedule detects\n"
        "%zu/%zu faults within its %llu-pattern total budget.\n"
        "(total %.2f s)\n\n",
        detected, faults.size(), static_cast<unsigned long long>(budget),
        total.seconds());
    return 0;
}
