// Container and codec rows for BENCH_maps.json: the hot-path memory
// work this layer rests on, measured head-to-head.
//
//   maps   — util::dense_map vs std::unordered_map on the integer-keyed
//            access patterns the serving layer actually has: insert,
//            lookup and insert/erase churn at 1k and 100k keys, over
//            consecutive IDs (circuit handles, poller keys — the
//            direct-index array case) and splitmix-scattered 64-bit keys
//            (the adversarial all-hash case). The acceptance row is
//            consecutive-key lookup at 100k keys: the array region must
//            beat the unordered_map by >= 3x.
//   codec  — svc::wire encode on the reuse contract (encode_into into a
//            persistent scratch string, the server worker's path) vs a
//            fresh string per response, and string_view decode. Every
//            row reports allocs_per_op via the counting global operator
//            new below; the reuse row's figure of merit is exactly 0.
//
// The erase rows time a full insert-then-erase cycle per key ("churn"):
// steady-state erase alone cannot be measured without rebuilding the
// container inside the timed region, and churn is the shape the
// engine-pool free-slot table sees (give_back inserts, checkout erases).

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "svc/request.h"
#include "svc/wire.h"
#include "util/dense_map.h"

// --- counting allocator ------------------------------------------------------

// Per-thread allocation counter behind global operator new: benchmarks
// snapshot it around the timed loop and report the delta per iteration.
// thread_local keeps the count race-free without an atomic in the path.
namespace {
thread_local std::uint64_t g_allocs = 0;
}

// GCC's -Wmismatched-new-delete pairs the replaced operators lexically
// and flags free() against new[]; the replacement set below is matched
// by construction (every operator is malloc/free backed).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
    ++g_allocs;
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
    ++g_allocs;
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace wrpt;

// splitmix64: a bijection, so sparse key sets stay collision-free.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::vector<std::uint64_t> make_keys(std::int64_t n, bool sparse) {
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        keys[static_cast<std::size_t>(i)] =
            sparse ? mix(static_cast<std::uint64_t>(i))
                   : static_cast<std::uint64_t>(i);
    return keys;
}

void report_allocs(benchmark::State& state, std::uint64_t before) {
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(g_allocs - before) /
        static_cast<double>(state.iterations()));
}

// --- map rows ----------------------------------------------------------------

template <bool Sparse>
void bm_insert_dense(benchmark::State& state) {
    const auto keys = make_keys(state.range(0), Sparse);
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        util::dense_map<std::uint64_t> m;
        for (const std::uint64_t k : keys) m.try_emplace(k, k);
        benchmark::DoNotOptimize(m.size());
    }
    report_allocs(state, before);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <bool Sparse>
void bm_insert_umap(benchmark::State& state) {
    const auto keys = make_keys(state.range(0), Sparse);
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        std::unordered_map<std::uint64_t, std::uint64_t> m;
        for (const std::uint64_t k : keys) m.try_emplace(k, k);
        benchmark::DoNotOptimize(m.size());
    }
    report_allocs(state, before);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <bool Sparse>
void bm_lookup_dense(benchmark::State& state) {
    const auto keys = make_keys(state.range(0), Sparse);
    util::dense_map<std::uint64_t> m;
    for (const std::uint64_t k : keys) m.try_emplace(k, k);
    const auto& cm = m;  // const find: the count-free shared-read path
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        std::uint64_t sum = 0;
        for (const std::uint64_t k : keys) sum += *cm.find(k);
        benchmark::DoNotOptimize(sum);
    }
    report_allocs(state, before);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <bool Sparse>
void bm_lookup_umap(benchmark::State& state) {
    const auto keys = make_keys(state.range(0), Sparse);
    std::unordered_map<std::uint64_t, std::uint64_t> m;
    for (const std::uint64_t k : keys) m.try_emplace(k, k);
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        std::uint64_t sum = 0;
        for (const std::uint64_t k : keys) sum += m.find(k)->second;
        benchmark::DoNotOptimize(sum);
    }
    report_allocs(state, before);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <bool Sparse>
void bm_churn_dense(benchmark::State& state) {
    const auto keys = make_keys(state.range(0), Sparse);
    util::dense_map<std::uint64_t> m;  // reused: capacity reaches steady state
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        for (const std::uint64_t k : keys) m.try_emplace(k, k);
        for (const std::uint64_t k : keys) m.erase(k);
        benchmark::DoNotOptimize(m.size());
    }
    report_allocs(state, before);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

template <bool Sparse>
void bm_churn_umap(benchmark::State& state) {
    const auto keys = make_keys(state.range(0), Sparse);
    std::unordered_map<std::uint64_t, std::uint64_t> m;
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        for (const std::uint64_t k : keys) m.try_emplace(k, k);
        for (const std::uint64_t k : keys) m.erase(k);
        benchmark::DoNotOptimize(m.size());
    }
    report_allocs(state, before);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(bm_insert_dense<false>)->Name("maps/insert/dense/consecutive")->Arg(1000)->Arg(100000);
BENCHMARK(bm_insert_umap<false>)->Name("maps/insert/umap/consecutive")->Arg(1000)->Arg(100000);
BENCHMARK(bm_insert_dense<true>)->Name("maps/insert/dense/sparse")->Arg(1000)->Arg(100000);
BENCHMARK(bm_insert_umap<true>)->Name("maps/insert/umap/sparse")->Arg(1000)->Arg(100000);
BENCHMARK(bm_lookup_dense<false>)->Name("maps/lookup/dense/consecutive")->Arg(1000)->Arg(100000);
BENCHMARK(bm_lookup_umap<false>)->Name("maps/lookup/umap/consecutive")->Arg(1000)->Arg(100000);
BENCHMARK(bm_lookup_dense<true>)->Name("maps/lookup/dense/sparse")->Arg(1000)->Arg(100000);
BENCHMARK(bm_lookup_umap<true>)->Name("maps/lookup/umap/sparse")->Arg(1000)->Arg(100000);
BENCHMARK(bm_churn_dense<false>)->Name("maps/churn/dense/consecutive")->Arg(1000)->Arg(100000);
BENCHMARK(bm_churn_umap<false>)->Name("maps/churn/umap/consecutive")->Arg(1000)->Arg(100000);
BENCHMARK(bm_churn_dense<true>)->Name("maps/churn/dense/sparse")->Arg(1000)->Arg(100000);
BENCHMARK(bm_churn_umap<true>)->Name("maps/churn/umap/sparse")->Arg(1000)->Arg(100000);

// --- codec rows --------------------------------------------------------------

// A representative serve-path response: optimize result with a 48-input
// weight vector — the largest common payload the worker encodes.
svc::response sample_response() {
    svc::response r;
    r.id = 42;
    svc::optimize_response p;
    p.circuit = 0;
    p.revision = 7;
    p.feasible = true;
    p.initial_length = 7105095682.0;
    p.final_length = 52384.0;
    p.sweeps = 3;
    p.analysis_calls = 297;
    p.weights.resize(48, 0.95);
    p.length.feasible = true;
    p.length.test_length = 52384.0;
    p.length.relevant_faults = 31;
    p.length.hardest_probability = 1.5683898205950074e-4;
    r.payload = std::move(p);
    return r;
}

void bm_encode_fresh(benchmark::State& state) {
    const svc::response r = sample_response();
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        std::string out = svc::encode(r);
        benchmark::DoNotOptimize(out.data());
    }
    report_allocs(state, before);
}
BENCHMARK(bm_encode_fresh)->Name("codec/encode/fresh_string");

void bm_encode_reuse(benchmark::State& state) {
    const svc::response r = sample_response();
    std::string out;
    svc::encode_into(r, out);  // warm the scratch to working size
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        svc::encode_into(r, out);
        benchmark::DoNotOptimize(out.data());
    }
    report_allocs(state, before);  // the acceptance figure: exactly 0
}
BENCHMARK(bm_encode_reuse)->Name("codec/encode/reuse_scratch");

void bm_decode_view(benchmark::State& state) {
    svc::request q;
    q.id = 42;
    svc::test_length_request p;
    p.circuit = 3;
    p.weights.resize(48, 0.95);
    q.payload = std::move(p);
    const std::string line = svc::encode(q);
    const std::uint64_t before = g_allocs;
    for (auto _ : state) {
        const svc::request back =
            svc::decode_request(std::string_view(line));
        benchmark::DoNotOptimize(back.id);
    }
    report_allocs(state, before);
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(line.size()));
}
BENCHMARK(bm_decode_view)->Name("codec/decode/string_view");

}  // namespace

BENCHMARK_MAIN();
