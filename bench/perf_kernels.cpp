// Performance of the two kernels everything rests on: the PPSFP fault
// simulator (patterns/second with fault dropping) and the analytic
// testability analysis (the paper's efficiency argument is that one
// coordinate step costs less than two full analyses).

#include <benchmark/benchmark.h>

#include "fault/fault.h"
#include "gen/suite.h"
#include "io/weights_io.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"

namespace {

using namespace wrpt;

void bm_fault_sim(benchmark::State& state, const std::string& name,
                  std::uint64_t patterns) {
    const netlist nl = build_suite_circuit(name);
    const auto faults = generate_full_faults(nl);
    for (auto _ : state) {
        fault_sim_options fo;
        fo.max_patterns = patterns;
        auto res = run_weighted_fault_simulation(nl, faults,
                                                 uniform_weights(nl), 7, fo);
        benchmark::DoNotOptimize(res.detected_count);
    }
    state.counters["patterns/s"] = benchmark::Counter(
        static_cast<double>(patterns) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["faults"] = static_cast<double>(faults.size());
}

void bm_analysis(benchmark::State& state, const std::string& name) {
    const netlist nl = build_suite_circuit(name);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator analysis;
    const weight_vector w = uniform_weights(nl);
    for (auto _ : state) {
        auto probs = analysis.estimate(nl, faults, w);
        benchmark::DoNotOptimize(probs.data());
    }
    state.counters["faults/s"] = benchmark::Counter(
        static_cast<double>(faults.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(bm_fault_sim, S1_4k, std::string("S1"), 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, c6288_1k, std::string("c6288"), 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, c7552_1k, std::string("c7552"), 1024)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(bm_analysis, S1, std::string("S1"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_analysis, S2, std::string("S2"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_analysis, c7552, std::string("c7552"))
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
