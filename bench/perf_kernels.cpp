// Performance of the two kernels everything rests on: the PPSFP fault
// simulator (patterns/second with fault dropping) and the analytic
// testability analysis (the paper's efficiency argument is that one
// coordinate step costs less than two full analyses).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/simd.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "opt/normalize.h"
#include "prob/signal_prob.h"
#include "gen/sharded.h"
#include "gen/suite.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/socket.h"

namespace {

using namespace wrpt;

void bm_fault_sim(benchmark::State& state, const std::string& name,
                  std::uint64_t patterns, bool order_faults = true) {
    const netlist nl = build_suite_circuit(name);
    const auto faults = generate_full_faults(nl);
    for (auto _ : state) {
        fault_sim_options fo;
        fo.max_patterns = patterns;
        fo.order_faults = order_faults;
        auto res = run_weighted_fault_simulation(nl, faults,
                                                 uniform_weights(nl), 7, fo);
        benchmark::DoNotOptimize(res.detected_count);
    }
    state.counters["patterns/s"] = benchmark::Counter(
        static_cast<double>(patterns) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["faults"] = static_cast<double>(faults.size());
    // The cache-locality knob under measurement: 1 = faults simulated in
    // fault-site level order, 0 = caller list order.
    state.counters["ordered"] = order_faults ? 1.0 : 0.0;
}

void bm_analysis(benchmark::State& state, const std::string& name) {
    const netlist nl = build_suite_circuit(name);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator analysis;
    const weight_vector w = uniform_weights(nl);
    for (auto _ : state) {
        auto probs = analysis.estimate(nl, faults, w);
        benchmark::DoNotOptimize(probs.data());
    }
    state.counters["faults/s"] = benchmark::Counter(
        static_cast<double>(faults.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

/// Sharded ANALYSIS (the optimizer's per-sweep full fault read) on
/// `threads` pool engines — the speedup curve for BENCH_analysis.json.
/// Same probabilities for every thread count; only the wall clock moves.
void bm_analysis_sharded(benchmark::State& state, const std::string& name,
                         unsigned threads) {
    const netlist nl = name == "sharded" ? make_sharded_comparators(224, 8)
                                         : build_suite_circuit(name);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator analysis;
    analysis.set_engine_cone_limit(1.0);  // engine path (pool shards)
    const weight_vector w = uniform_weights(nl);
    for (auto _ : state) {
        auto probs = analysis.estimate_faults(
            nl, {faults.data(), faults.size()}, w, threads);
        benchmark::DoNotOptimize(probs.data());
    }
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["faults"] = static_cast<double>(faults.size());
    state.counters["faults/s"] = benchmark::Counter(
        static_cast<double>(faults.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

netlist build_sweep_circuit(const std::string& name) {
    // The sharded array is the largest circuit gen/ builds: wide, with
    // input fanout cones confined to a slice pair plus the compactor —
    // the shape where cone-restricted PREPARE beats full recomputation
    // asymptotically. The deep suite circuits (S2: near-global cones) are
    // benchmarked alongside as the unfavorable regime.
    if (name == "sharded") return make_sharded_comparators(224, 8);
    return build_suite_circuit(name);
}

/// One OPTIMIZE sweep (PREPARE + MINIMIZE over every input) with the COP
/// estimator. `incremental` selects the cone-restricted incremental
/// engine; the full-recompute baseline re-runs both testability analyses
/// per input — the paper's stated cost of one coordinate step.
void bm_optimize_sweep(benchmark::State& state, const std::string& name,
                       bool incremental) {
    const netlist nl = build_sweep_circuit(name);
    const auto faults = generate_full_faults(nl);
    for (auto _ : state) {
        cop_detect_estimator analysis;
        analysis.set_incremental(incremental);
        // Force the engine regardless of cone fraction so the benchmark
        // exposes both regimes (sharded: local cones, big win; S2:
        // near-global cones, the engine loses to the warm full sweep —
        // which is why the production default is adaptive).
        if (incremental) analysis.set_engine_cone_limit(1.0);
        optimize_options opt;
        opt.max_sweeps = 1;
        opt.saddle_escape = false;
        auto res = optimize_weights(nl, faults, analysis, uniform_weights(nl),
                                    opt);
        benchmark::DoNotOptimize(res.final_test_length);
    }
    state.counters["inputs"] = static_cast<double>(nl.input_count());
    state.counters["gates"] =
        static_cast<double>(nl.node_count() - nl.input_count());
}

/// One OPTIMIZE sweep with the batched PREPARE path on `threads`
/// per-thread engines — the speedup curve the exec refactor exists for.
/// Same optimized weights for every thread count; only the wall clock
/// moves.
void bm_optimize_sweep_threaded(benchmark::State& state,
                                const std::string& name, unsigned threads) {
    const netlist nl = build_sweep_circuit(name);
    const auto faults = generate_full_faults(nl);
    for (auto _ : state) {
        cop_detect_estimator analysis;
        analysis.set_engine_cone_limit(1.0);
        analysis.set_threads(threads);
        optimize_options opt;
        opt.max_sweeps = 1;
        opt.saddle_escape = false;
        auto res = optimize_weights(nl, faults, analysis, uniform_weights(nl),
                                    opt);
        benchmark::DoNotOptimize(res.final_test_length);
    }
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["inputs"] = static_cast<double>(nl.input_count());
    state.counters["gates"] =
        static_cast<double>(nl.node_count() - nl.input_count());
}

/// Repeat-optimize latency through the svc::service facade — the serving
/// path of BENCH_serve.json. `cached` true measures the steady state of
/// a daemon answering the same query again (result-cache hit: key lookup
/// + response materialization, no pipeline work); false forces a
/// recompute each iteration by evicting the entry first. The cache-hit
/// row should be orders of magnitude below the uncached row.
void bm_serve_optimize(benchmark::State& state, const std::string& name,
                       bool cached) {
    svc::service::options so;
    so.threads = 1;
    svc::service service(so);
    {
        svc::request load;
        svc::load_circuit_request lp;
        lp.suite = name;
        load.payload = std::move(lp);
        if (!service.handle(load).ok) {
            state.SkipWithError("load failed");
            return;
        }
    }
    svc::request q;
    svc::optimize_request op;
    op.options.max_sweeps = 3;
    q.payload = op;
    service.handle(q);  // populate the cache once
    svc::request evict;
    // Drop only the result-cache entry, keeping every warm pooled engine:
    // the uncached row measures the daemon's steady-state recompute, not
    // a cold engine rebuild.
    evict.payload = svc::evict_request{true, 0, SIZE_MAX};
    std::vector<double> latencies_us;
    for (auto _ : state) {
        if (!cached) {
            state.PauseTiming();
            service.handle(evict);
            state.ResumeTiming();
        }
        const auto t0 = std::chrono::steady_clock::now();
        svc::response r = service.handle(q);
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(r.ok);
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    const svc::service::cache_counters cc = service.cache_stats();
    state.counters["cached"] = cached ? 1.0 : 0.0;
    state.counters["cache_hits"] = static_cast<double>(cc.hits);
    state.counters["cache_misses"] = static_cast<double>(cc.misses);
    state.counters["p50_us"] = bench::percentile(latencies_us, 0.50);
    state.counters["p99_us"] = bench::percentile(latencies_us, 0.99);
}

// Full-transport repeat-optimize latency: N concurrent clients, each one
// connection to a unix-socket daemon, each sending one optimize request
// per iteration — the remaining BENCH_serve.json rows. Relative to
// bm_serve_optimize the cached rows price the wire (connect + codec +
// one round trip per client); the uncached 8-client row is the
// contended steady state, where every client recomputes the evicted
// entry concurrently against one shared service.
void bm_serve_socket(benchmark::State& state, const std::string& name,
                     std::size_t clients, bool cached) {
    svc::service service;
    {
        svc::request load;
        svc::load_circuit_request lp;
        lp.suite = name;
        load.payload = std::move(lp);
        if (!service.handle(load).ok) {
            state.SkipWithError("load failed");
            return;
        }
    }
    svc::request q;
    svc::optimize_request op;
    op.options.max_sweeps = 3;
    q.payload = op;
    service.handle(q);  // populate the cache once
    svc::request evict;
    // As in bm_serve_optimize: drop the result-cache entry only, keep
    // warm pooled engines.
    evict.payload = svc::evict_request{true, 0, SIZE_MAX};

    const svc::endpoint ep = svc::endpoint::unix_at(
        (std::filesystem::temp_directory_path() /
         ("wrpt_bm_" + std::to_string(::getpid()) + ".sock"))
            .string());
    svc::server server(service, ep);

    for (auto _ : state) {
        if (!cached) {
            state.PauseTiming();
            service.handle(evict);
            state.ResumeTiming();
        }
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (std::size_t c = 0; c < clients; ++c) {
            threads.emplace_back([&] {
                svc::client client(server.where());
                const svc::response r = client.roundtrip(q);
                benchmark::DoNotOptimize(r.ok);
            });
        }
        for (std::thread& t : threads) t.join();
    }
    server.stop();
    server.wait();
    const svc::service::cache_counters cc = service.cache_stats();
    state.counters["clients"] = static_cast<double>(clients);
    state.counters["cached"] = cached ? 1.0 : 0.0;
    state.counters["cache_hits"] = static_cast<double>(cc.hits);
    state.counters["cache_misses"] = static_cast<double>(cc.misses);
}

// --- vectorized-kernel rows (BENCH_kernels.json) ----------------------------
//
// Each row measures one kernel in its production configuration and
// carries a speedup counter against its in-process reference — scalar
// dispatch for the SIMD kernels, one-word / one-thread for the blocked
// and parallel ones. The reference is timed inline (fixed reps, steady
// clock), so the ratio lands in the JSON even where the hardware caps
// the win; results are bit-identical between the variants by the
// test_simd equivalence suite, only the wall clock may move.

template <class F>
double seconds_for(F&& fn, int reps) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/// Full COP forward sweep (signal probabilities) over a lane-grouped
/// view: vector dispatch vs forced-scalar reference.
void bm_cop_sweep_simd(benchmark::State& state, const std::string& name) {
    const netlist nl = build_sweep_circuit(name);
    circuit_view::compile_options co;
    co.lane_groups = true;
    const circuit_view cv = circuit_view::compile(nl, co);
    const weight_vector w = uniform_weights(nl);
    for (auto _ : state) {
        auto p = cop_signal_probabilities(cv, w);
        benchmark::DoNotOptimize(p.data());
    }
    const int reps = 20;
    simd::set_force_scalar(true);
    const double t_scalar =
        seconds_for([&] { cop_signal_probabilities(cv, w); }, reps);
    simd::set_force_scalar(false);
    const double t_vec =
        seconds_for([&] { cop_signal_probabilities(cv, w); }, reps);
    const simd::isa active = simd::active_isa();
    state.SetLabel(simd::isa_name(active));
    state.counters["lanes"] = static_cast<double>(simd::lane_width(active));
    state.counters["gates"] =
        static_cast<double>(nl.node_count() - nl.input_count());
    state.counters["speedup_vs_scalar"] = t_vec > 0.0 ? t_scalar / t_vec : 0.0;
}

/// Batched objective terms exp(-p_i * N): the NORMALIZE inner kernel on
/// a synthetic sorted probability vector, vs forced-scalar reference.
void bm_normalize_exp_simd(benchmark::State& state, std::size_t terms) {
    std::vector<double> probs(terms);
    for (std::size_t i = 0; i < terms; ++i)
        probs[i] = 1e-6 + 1e-3 * static_cast<double>(i + 1) /
                              static_cast<double>(terms);
    std::vector<double> out(terms);
    const double m = 52384.0;
    for (auto _ : state) {
        simd::exp_neg_scale(probs.data(), m, out.data(), terms);
        benchmark::DoNotOptimize(out.data());
    }
    const int reps = 50;
    simd::set_force_scalar(true);
    const double t_scalar = seconds_for(
        [&] { simd::exp_neg_scale(probs.data(), m, out.data(), terms); },
        reps);
    simd::set_force_scalar(false);
    const double t_vec = seconds_for(
        [&] { simd::exp_neg_scale(probs.data(), m, out.data(), terms); },
        reps);
    const simd::isa active = simd::active_isa();
    state.SetLabel(simd::isa_name(active));
    state.counters["lanes"] = static_cast<double>(simd::lane_width(active));
    state.counters["terms"] = static_cast<double>(terms);
    state.counters["speedup_vs_scalar"] = t_vec > 0.0 ? t_scalar / t_vec : 0.0;
}

/// Blocked PPSFP at `block_words` words per pass vs the one-word
/// reference path — the traversal-amortization win.
void bm_fault_sim_blocked(benchmark::State& state, const std::string& name,
                          std::uint64_t patterns, unsigned block_words) {
    const netlist nl = build_sweep_circuit(name);
    const auto faults = generate_full_faults(nl);
    fault_sim_options fo;
    fo.max_patterns = patterns;
    fo.threads = 1;
    fo.block_words = block_words;
    for (auto _ : state) {
        auto res = run_weighted_fault_simulation(nl, faults,
                                                 uniform_weights(nl), 7, fo);
        benchmark::DoNotOptimize(res.detected_count);
    }
    const int reps = 2;
    fault_sim_options ref = fo;
    ref.block_words = 1;
    const double t_one = seconds_for(
        [&] {
            run_weighted_fault_simulation(nl, faults, uniform_weights(nl), 7,
                                          ref);
        },
        reps);
    const double t_blocked = seconds_for(
        [&] {
            run_weighted_fault_simulation(nl, faults, uniform_weights(nl), 7,
                                          fo);
        },
        reps);
    state.counters["block_words"] = static_cast<double>(block_words);
    state.counters["faults"] = static_cast<double>(faults.size());
    state.counters["patterns/s"] = benchmark::Counter(
        static_cast<double>(patterns) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["speedup_vs_1word"] =
        t_blocked > 0.0 ? t_one / t_blocked : 0.0;
}

/// Deterministic parallel fault SORT on `threads` pool workers vs the
/// single-thread run — identical order either way (index tie-break).
void bm_sort_faults_parallel(benchmark::State& state, std::size_t faults,
                             unsigned threads) {
    std::vector<double> probs(faults);
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;  // deterministic fill
    for (std::size_t i = 0; i < faults; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // ~3% undetectable (p == 0) to exercise the exclusion scan.
        probs[i] = (x % 32 == 0) ? 0.0
                                 : static_cast<double>(x % 1000000) * 1e-9;
    }
    normalize_exec exec;
    exec.pool = &shared_thread_pool();
    exec.threads = threads;
    for (auto _ : state) {
        auto order = sort_faults(probs, exec);
        benchmark::DoNotOptimize(order.data());
    }
    const int reps = 5;
    normalize_exec seq;
    const double t_one =
        seconds_for([&] { sort_faults(probs, seq); }, reps);
    const double t_par =
        seconds_for([&] { sort_faults(probs, exec); }, reps);
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["faults"] = static_cast<double>(faults);
    state.counters["speedup_vs_1t"] = t_par > 0.0 ? t_one / t_par : 0.0;
}

}  // namespace

BENCHMARK_CAPTURE(bm_optimize_sweep, sharded_incremental,
                  std::string("sharded"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_optimize_sweep, sharded_full, std::string("sharded"),
                  false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_optimize_sweep, S2_incremental, std::string("S2"), true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_optimize_sweep, S2_full, std::string("S2"), false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_optimize_sweep, c7552_incremental, std::string("c7552"),
                  true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_optimize_sweep, c7552_full, std::string("c7552"), false)
    ->Unit(benchmark::kMillisecond);

// The speedup curve for BENCH JSON: one batched sweep on the sharded
// array at 1/2/4/8 threads (the acceptance shape: >= 3x at 8 threads on
// hardware with >= 8 cores).
BENCHMARK_CAPTURE(bm_optimize_sweep_threaded, sharded_t1,
                  std::string("sharded"), 1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_optimize_sweep_threaded, sharded_t2,
                  std::string("sharded"), 2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_optimize_sweep_threaded, sharded_t4,
                  std::string("sharded"), 4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_optimize_sweep_threaded, sharded_t8,
                  std::string("sharded"), 8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_CAPTURE(bm_fault_sim, S1_4k, std::string("S1"), 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, S1_4k_unordered, std::string("S1"), 4096,
                  false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, c6288_1k, std::string("c6288"), 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, c6288_1k_unordered, std::string("c6288"),
                  1024, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, c7552_1k, std::string("c7552"), 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim, c7552_1k_unordered, std::string("c7552"),
                  1024, false)
    ->Unit(benchmark::kMillisecond);

// The sharded-ANALYSIS speedup curve for BENCH JSON: the full fault-list
// read of the big sharded array at 1/2/4/8 threads.
BENCHMARK_CAPTURE(bm_analysis_sharded, sharded_t1, std::string("sharded"), 1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_analysis_sharded, sharded_t2, std::string("sharded"), 2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_analysis_sharded, sharded_t4, std::string("sharded"), 4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_analysis_sharded, sharded_t8, std::string("sharded"), 8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Cached vs uncached repeat-optimize through the service facade — the
// BENCH_serve.json rows. The cached row is the daemon's steady state on
// repeated identical queries and should be ~free.
BENCHMARK_CAPTURE(bm_serve_optimize, S1_cached, std::string("S1"), true)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bm_serve_optimize, S1_uncached, std::string("S1"), false)
    ->Unit(benchmark::kMicrosecond);

// The socket-transport rows: 1 vs 8 concurrent clients, cached vs
// uncached, against one unix-socket daemon. Real time — the clients are
// threads, the cost is a round trip, not CPU in this process's loop.
BENCHMARK_CAPTURE(bm_serve_socket, S1_c1_cached, std::string("S1"), 1, true)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_serve_socket, S1_c1_uncached, std::string("S1"), 1,
                  false)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_serve_socket, S1_c8_cached, std::string("S1"), 8, true)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_serve_socket, S1_c8_uncached, std::string("S1"), 8,
                  false)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// The vectorized-kernel rows for BENCH_kernels.json: vector vs scalar
// on the largest gen/ circuit (sharded) plus a deep ISCAS shape, the
// NORMALIZE exp kernel at optimizer-scale term counts, blocked PPSFP at
// 4 and 8 words, and the parallel SORT at 1/2/8 threads.
BENCHMARK_CAPTURE(bm_cop_sweep_simd, sharded, std::string("sharded"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_cop_sweep_simd, c7552, std::string("c7552"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_normalize_exp_simd, t64k, std::size_t{1} << 16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bm_fault_sim_blocked, sharded_1k_b4, std::string("sharded"),
                  1024, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fault_sim_blocked, sharded_1k_b8, std::string("sharded"),
                  1024, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_sort_faults_parallel, f1m_t1, std::size_t{1} << 20, 1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_sort_faults_parallel, f1m_t2, std::size_t{1} << 20, 2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(bm_sort_faults_parallel, f1m_t8, std::size_t{1} << 20, 8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_CAPTURE(bm_analysis, S1, std::string("S1"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_analysis, S2, std::string("S2"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_analysis, c7552, std::string("c7552"))
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
