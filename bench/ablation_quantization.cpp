// Ablation A: weight quantization. The optimizer works on a 0.05 grid
// (the paper's appendix granularity); hardware weighted-LFSR generators
// realize only 2^-k / 1-2^-k. How much test length does each grid cost?

#include <cstdio>
#include <iostream>

#include "gen/suite.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "opt/quantize.h"
#include "prob/detect.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    text_table t(
        "Ablation A: optimized test length vs weight quantization grid");
    t.set_header({"Circuit", "continuous", "grid 0.05 (paper)",
                  "LFSR 5-stage", "LFSR 3-stage", "conventional"});

    stopwatch total;
    for (const auto& entry : hard_suite()) {
        const netlist nl = entry.build();
        const auto faults = generate_full_faults(nl);
        cop_detect_estimator analysis;

        optimize_options continuous;
        continuous.grid = 0.0;
        const optimize_result cont = optimize_weights(
            nl, faults, analysis, uniform_weights(nl), continuous);
        const optimize_result grid =
            optimize_weights(nl, faults, analysis, uniform_weights(nl));

        auto length_at = [&](const weight_vector& w) {
            return required_test_length(nl, faults, analysis, w).test_length;
        };
        const double lfsr5 = length_at(quantize_lfsr(grid.weights, 5));
        const double lfsr3 = length_at(quantize_lfsr(grid.weights, 3));

        t.add_row({entry.name, format_sci(cont.final_test_length, 2),
                   format_sci(grid.final_test_length, 2),
                   format_sci(lfsr5, 2), format_sci(lfsr3, 2),
                   format_sci(grid.initial_test_length, 2)});
    }
    std::cout << t;
    std::printf(
        "\nReading: coarser grids cost test length, but even 3-stage LFSR\n"
        "weights stay orders of magnitude below the conventional test,\n"
        "which is why the on-chip weighted generator of [Wu87] is viable.\n"
        "(total %.2f s)\n\n",
        total.seconds());
    return 0;
}
