// Shared helpers for the experiment benches.

#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "atpg/podem.h"
#include "fault/fault.h"
#include "gen/suite.h"
#include "io/weights_io.h"
#include "netlist/netlist.h"
#include "sim/fault_sim.h"

namespace wrpt::bench {

/// Nearest-rank percentile of a sample set: the smallest sample with at
/// least q of the distribution at or below it (q in [0, 1], so q = 0.5
/// is the median and q = 0.99 the tail the serve benches report). Sorts
/// a copy; an empty sample set reports 0.
inline double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    if (q <= 0.0) return samples.front();
    if (q >= 1.0) return samples.back();
    const double rank = q * static_cast<double>(samples.size());
    std::size_t index = static_cast<std::size_t>(rank);
    if (static_cast<double>(index) < rank) ++index;  // ceil
    if (index == 0) index = 1;
    return samples[index - 1];
}

/// Fault universe for coverage accounting: the full single-stuck-at list
/// minus faults *proven* redundant (the paper's Table 2 accounting). The
/// proof is a bounded PODEM pass over the faults a quick random-pattern
/// prefilter could not detect; aborted faults stay in the universe.
struct accounted_faults {
    std::vector<fault> faults;       ///< full fault list
    std::vector<bool> redundant;     ///< proven-undetectable flags
    std::size_t redundant_count = 0;
    std::size_t aborted_count = 0;

    std::size_t universe() const { return faults.size() - redundant_count; }

    /// Coverage in percent of the non-redundant universe, given the
    /// fault-sim result over the full list.
    double coverage_percent(const fault_sim_result& sim) const {
        std::size_t detected = 0;
        for (std::size_t i = 0; i < faults.size(); ++i)
            if (sim.first_detected[i].has_value() && !redundant[i]) ++detected;
        return universe() == 0 ? 100.0
                               : 100.0 * static_cast<double>(detected) /
                                     static_cast<double>(universe());
    }
};

inline accounted_faults account_faults(const netlist& nl,
                                       std::size_t backtrack_limit = 64) {
    accounted_faults out;
    out.faults = generate_full_faults(nl);
    out.redundant.assign(out.faults.size(), false);

    // Random prefilter: anything detected is certainly not redundant.
    fault_sim_options fo;
    fo.max_patterns = 2048;
    const fault_sim_result pre = run_weighted_fault_simulation(
        nl, out.faults, uniform_weights(nl), 0xacc0, fo);

    std::vector<fault> open;
    std::vector<std::size_t> open_index;
    for (std::size_t i = 0; i < out.faults.size(); ++i) {
        if (!pre.first_detected[i].has_value()) {
            open.push_back(out.faults[i]);
            open_index.push_back(i);
        }
    }
    podem_options po;
    po.backtrack_limit = backtrack_limit;
    const fault_classification cls = classify_faults(nl, open, po);
    for (std::size_t k = 0; k < open.size(); ++k) {
        if (cls.status[k] == podem_status::redundant) {
            out.redundant[open_index[k]] = true;
            ++out.redundant_count;
        } else if (cls.status[k] == podem_status::aborted) {
            ++out.aborted_count;
        }
    }
    return out;
}

}  // namespace wrpt::bench
