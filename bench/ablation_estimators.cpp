// Ablation B: the optimizer against different ANALYSIS engines. The paper
// assumes only "a tool available computing or estimating fault detection
// probabilities" (PROTEST there) and remarks that "with slight
// modifications PREDICT or STAFAN will presumably work as well". We drive
// OPTIMIZE with all four engines on a 12-bit comparator and score every
// resulting weight tuple with the exact BDD engine.

#include <cstdio>
#include <iostream>

#include "gen/comparator.h"
#include "io/weights_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "prob/stafan.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
    using namespace wrpt;
    const netlist nl = make_cascaded_comparator(3, "cmp12");
    const auto faults = generate_full_faults(nl);

    exact_detect_estimator judge;
    const auto judge_length = [&](const weight_vector& w) {
        return required_test_length(nl, faults, judge, w).test_length;
    };
    const double conventional = judge_length(uniform_weights(nl));

    text_table t(
        "Ablation B: OPTIMIZE driven by different detection-probability\n"
        "estimators (12-bit comparator; all tuples scored by the exact "
        "BDD engine)");
    t.set_header({"ANALYSIS engine", "N (self-estimate)", "N (exact score)",
                  "improvement vs conv.", "time s"});

    for (const char* name : {"cop", "exact-bdd", "stafan", "monte-carlo"}) {
        auto engine = make_estimator(name);
        stopwatch sw;
        const optimize_result res =
            optimize_weights(nl, faults, *engine, uniform_weights(nl));
        const double secs = sw.seconds();
        const double exact_n = judge_length(res.weights);
        t.add_row({name, format_sci(res.final_test_length, 2),
                   format_sci(exact_n, 2),
                   format_sci(conventional / exact_n, 2) + "x",
                   format_fixed(secs, 2)});
    }
    std::printf("conventional (p=0.5) exact N = %s\n\n",
                format_sci(conventional, 2).c_str());
    std::cout << t;
    std::printf(
        "\nReading: every engine steers the optimizer to a large\n"
        "improvement — the procedure is robust to the choice of ANALYSIS\n"
        "tool, as the paper claims; the analytic engine is the cheapest.\n\n");
    return 0;
}
