// Tests for the multi-tenant circuit registry: named registration and
// resolution, typed refusal codes, atomic hot reload (revision re-stamp,
// cache orphaning, in-flight safety under a concurrent reloader), the
// bounded-residency view LRU (1000 registrations under --max-views 32),
// per-tenant quotas, and the registry section of the stats response.

#include "svc/registry.h"

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/batch_session.h"
#include "exec/engine_pool.h"
#include "gen/comparator.h"
#include "io/bench_io.h"
#include "svc/service.h"
#include "svc/wire.h"

namespace wrpt {
namespace {

using namespace wrpt::svc;

// TSan multiplies runtimes; the race suite trims its iteration counts
// under it but keeps the same thread shapes.
#if defined(__SANITIZE_THREAD__)
#define WRPT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WRPT_TSAN 1
#endif
#endif
#ifndef WRPT_TSAN
#define WRPT_TSAN 0
#endif

request make_register(const std::string& tenant, const std::string& name,
                      const std::string& bench) {
    request q;
    register_circuit_request p;
    p.tenant = tenant;
    p.name = name;
    p.bench = bench;
    q.payload = std::move(p);
    return q;
}

request make_reload(const std::string& tenant, const std::string& name,
                    const std::string& bench) {
    request q;
    reload_circuit_request p;
    p.tenant = tenant;
    p.name = name;
    p.bench = bench;
    q.payload = std::move(p);
    return q;
}

request make_named_length(const std::string& address) {
    request q;
    test_length_request p;
    p.name = address;
    q.payload = std::move(p);
    return q;
}

request make_named_sim(const std::string& address) {
    request q;
    fault_sim_request p;
    p.name = address;
    p.patterns = 256;
    p.seed = 7;
    q.payload = std::move(p);
    return q;
}

const std::string& error_code(const response& r) {
    return std::get<error_response>(r.payload).code;
}

// Strip the per-run fields (revision stamps are process-unique, cached
// and elapsed_ms depend on timing) so two responses computed from the
// same netlist text compare bit-identical through the canonical encoder.
std::string normalized(const response& r) {
    response c = r;
    c.id = 0;
    if (auto* p = std::get_if<test_length_response>(&c.payload)) {
        p->revision = 0;
        p->cached = false;
        p->elapsed_ms = 0.0;
    } else if (auto* p = std::get_if<fault_sim_response>(&c.payload)) {
        p->revision = 0;
        p->cached = false;
        p->elapsed_ms = 0.0;
    }
    return encode(c);
}

std::string tiny_bench(unsigned width, const std::string& name) {
    return write_bench_string(make_cascaded_comparator(width, name));
}

// --- direct registry API ----------------------------------------------------

TEST(registry, direct_register_resolve_and_lazy_residency) {
    batch_session session;
    registry reg;

    const auto made = reg.register_circuit(session, "t", "a",
                                           make_cascaded_comparator(2, "a"));
    // Lazy: a handle is reserved but nothing is compiled yet.
    EXPECT_FALSE(session.has_circuit(made.handle));
    EXPECT_TRUE(reg.needs_compile("t/a"));

    const registry::resolution res = reg.resolve("t/a");
    EXPECT_TRUE(res.found);
    EXPECT_FALSE(res.resident);
    EXPECT_EQ(res.handle, made.handle);
    EXPECT_FALSE(reg.resolve("t/missing").found);

    reg.ensure_resident(session, "t/a");
    EXPECT_TRUE(session.has_circuit(made.handle));
    EXPECT_FALSE(reg.needs_compile("t/a"));
    EXPECT_EQ(session.circuit(made.handle).revision(), made.revision);

    const auto rows = reg.list("");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].tenant, "t");
    EXPECT_EQ(rows[0].name, "a");
    EXPECT_TRUE(rows[0].resident);

    const registry::counters c = reg.stats();
    EXPECT_EQ(c.circuits, 1u);
    EXPECT_EQ(c.resident, 1u);
    EXPECT_EQ(c.view_rebuilds, 1u);
    EXPECT_EQ(c.view_evictions, 0u);
}

TEST(registry, refusals_carry_typed_codes) {
    batch_session session;
    registry reg;
    reg.register_circuit(session, "t", "a", make_cascaded_comparator(2, "a"));

    try {
        reg.register_circuit(session, "t", "a",
                             make_cascaded_comparator(2, "a"));
        FAIL() << "duplicate registration must throw";
    } catch (const registry_error& e) {
        EXPECT_EQ(e.code(), "exists");
    }
    try {
        reg.register_circuit(session, "bad/tenant", "x",
                             make_cascaded_comparator(2, "x"));
        FAIL() << "a '/' in the tenant must throw";
    } catch (const registry_error& e) {
        EXPECT_EQ(e.code(), "invalid");
    }
    try {
        reg.reload_circuit(session, "t", "missing",
                           make_cascaded_comparator(2, "m"));
        FAIL() << "reloading an unknown name must throw";
    } catch (const registry_error& e) {
        EXPECT_EQ(e.code(), "not-found");
    }
}

// --- served named jobs ------------------------------------------------------

TEST(registry, named_jobs_resolve_and_share_the_cache_with_handles) {
    service s;
    const response reg = s.handle(make_register("t", "cmp", tiny_bench(2, "cmp")));
    ASSERT_TRUE(reg.ok);
    const auto& rr = std::get<register_circuit_response>(reg.payload);
    EXPECT_GT(rr.inputs, 0u);
    EXPECT_GT(rr.gates, 0u);

    const response by_name = s.handle(make_named_length("t/cmp"));
    ASSERT_TRUE(by_name.ok);
    const auto& rn = std::get<test_length_response>(by_name.payload);
    EXPECT_FALSE(rn.cached);
    EXPECT_EQ(rn.circuit, rr.circuit);  // the response reports the handle

    // The same query spelled with the raw handle must hit the same cache
    // entry: resolve_named rewrites names away before fingerprinting.
    request by_handle;
    test_length_request p;
    p.circuit = rr.circuit;
    by_handle.payload = p;
    const response rh = s.handle(by_handle);
    ASSERT_TRUE(rh.ok);
    EXPECT_TRUE(std::get<test_length_response>(rh.payload).cached);
    EXPECT_EQ(std::get<test_length_response>(rh.payload).length.test_length,
              rn.length.test_length);

    // Unknown names get typed envelopes, not exceptions.
    const response missing = s.handle(make_named_length("t/nope"));
    ASSERT_FALSE(missing.ok);
    EXPECT_EQ(error_code(missing), "not-found");
    const response dup = s.handle(make_register("t", "cmp", tiny_bench(2, "cmp")));
    ASSERT_FALSE(dup.ok);
    EXPECT_EQ(error_code(dup), "exists");
}

TEST(registry, catalog_lists_sorted_rows_with_tenant_filter) {
    service s;
    ASSERT_TRUE(s.handle(make_register("u", "b", tiny_bench(1, "ub"))).ok);
    ASSERT_TRUE(s.handle(make_register("t", "b", tiny_bench(1, "tb"))).ok);
    ASSERT_TRUE(s.handle(make_register("t", "a", tiny_bench(1, "ta"))).ok);

    request all;
    all.payload = list_circuits_request{};
    const response ra = s.handle(all);
    ASSERT_TRUE(ra.ok);
    const auto& rows = std::get<list_circuits_response>(ra.payload).entries;
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].tenant + "/" + rows[0].name, "t/a");
    EXPECT_EQ(rows[1].tenant + "/" + rows[1].name, "t/b");
    EXPECT_EQ(rows[2].tenant + "/" + rows[2].name, "u/b");
    EXPECT_FALSE(rows[0].resident);  // nothing compiled yet

    request only_u;
    only_u.payload = list_circuits_request{"u"};
    const response ru = s.handle(only_u);
    const auto& urows = std::get<list_circuits_response>(ru.payload).entries;
    ASSERT_EQ(urows.size(), 1u);
    EXPECT_EQ(urows[0].tenant, "u");
}

// --- hot reload -------------------------------------------------------------

TEST(registry, reload_restamps_the_revision_and_orphans_the_cache) {
    service s;
    ASSERT_TRUE(s.handle(make_register("t", "x", tiny_bench(2, "x"))).ok);

    const response first = s.handle(make_named_length("t/x"));
    ASSERT_TRUE(first.ok);
    const auto& r1 = std::get<test_length_response>(first.payload);
    EXPECT_FALSE(r1.cached);
    EXPECT_TRUE(
        std::get<test_length_response>(s.handle(make_named_length("t/x")).payload)
            .cached);

    // Reload with a structurally different netlist under the same name.
    const response rel = s.handle(make_reload("t", "x", tiny_bench(3, "x")));
    ASSERT_TRUE(rel.ok);
    const auto& rr = std::get<reload_circuit_response>(rel.payload);
    EXPECT_EQ(rr.old_revision, r1.revision);
    EXPECT_NE(rr.revision, rr.old_revision);
    EXPECT_EQ(rr.reloads, 1u);

    // Same name, new circuit: the old cache bucket is orphaned (a miss)
    // and the answer changes with the structure.
    const response second = s.handle(make_named_length("t/x"));
    ASSERT_TRUE(second.ok);
    const auto& r2 = std::get<test_length_response>(second.payload);
    EXPECT_FALSE(r2.cached);
    EXPECT_EQ(r2.revision, rr.revision);
    EXPECT_EQ(r2.circuit, rr.circuit);  // the handle survived the reload
    EXPECT_NE(r2.length.test_length, r1.length.test_length);
}

// --- view LRU ---------------------------------------------------------------

TEST(registry, evicted_views_rebuild_and_revalidate_cached_results) {
    service::options so;
    so.max_views = 1;
    service s(so);
    ASSERT_TRUE(s.handle(make_register("t", "a", tiny_bench(2, "a"))).ok);
    ASSERT_TRUE(s.handle(make_register("t", "b", tiny_bench(2, "b"))).ok);

    ASSERT_TRUE(s.handle(make_named_length("t/a")).ok);
    ASSERT_TRUE(s.handle(make_named_length("t/b")).ok);  // evicts a's view

    registry::counters c = s.catalog().stats();
    EXPECT_EQ(c.resident, 1u);
    EXPECT_EQ(c.view_rebuilds, 2u);
    EXPECT_EQ(c.view_evictions, 1u);

    // a's view rebuilds from the master copy, which shares the master's
    // revision stamp — so the result cached before the eviction is STILL
    // VALID and must hit.
    const response again = s.handle(make_named_length("t/a"));
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(std::get<test_length_response>(again.payload).cached);
    c = s.catalog().stats();
    EXPECT_EQ(c.resident, 1u);
    EXPECT_EQ(c.view_rebuilds, 3u);
    EXPECT_EQ(c.view_evictions, 2u);
}

TEST(registry, thousand_registrations_stay_within_max_views) {
    service::options so;
    so.max_views = 32;
    service s(so);

    const std::string bench = tiny_bench(1, "bulk");
    for (int i = 0; i < 1000; ++i) {
        std::string name = "c";
        name += std::to_string(i);
        ASSERT_TRUE(s.handle(make_register("t", name, bench)).ok);
    }

    // Touch a spread of 64 names: every one compiles (lazy residency) and
    // the LRU keeps at most 32 views in memory.
    for (int i = 0; i < 64; ++i) {
        std::string address = "t/c";
        address += std::to_string(i * 15);
        ASSERT_TRUE(s.handle(make_named_length(address)).ok);
    }

    const registry::counters c = s.catalog().stats();
    EXPECT_EQ(c.circuits, 1000u);
    EXPECT_EQ(c.resident, 32u);
    EXPECT_EQ(c.view_rebuilds, 64u);
    EXPECT_EQ(c.view_evictions, 32u);
    // The session holds exactly the resident views.
    EXPECT_EQ(s.session().circuit_count(), 32u);

    // The same bound is observable over the wire in the stats section.
    request sq;
    sq.payload = stats_request{};
    const auto st = std::get<stats_response>(s.handle(sq).payload);
    ASSERT_TRUE(st.registry.present);
    EXPECT_EQ(st.registry.circuits, 1000u);
    EXPECT_EQ(st.registry.resident, 32u);
    EXPECT_EQ(st.registry.max_views, 32u);
    EXPECT_EQ(st.registry.view_evictions, 32u);
    EXPECT_EQ(st.registry.view_rebuilds, 64u);
}

// --- per-tenant quotas ------------------------------------------------------

TEST(registry, circuit_quota_refuses_with_a_typed_envelope) {
    service::options so;
    so.tenant_quota.max_circuits = 2;
    service s(so);
    ASSERT_TRUE(s.handle(make_register("t", "a", tiny_bench(1, "a"))).ok);
    ASSERT_TRUE(s.handle(make_register("t", "b", tiny_bench(1, "b"))).ok);

    const response refused = s.handle(make_register("t", "c", tiny_bench(1, "c")));
    ASSERT_FALSE(refused.ok);
    EXPECT_EQ(error_code(refused), "quota");

    // The quota is per tenant: another tenant still registers.
    ASSERT_TRUE(s.handle(make_register("u", "c", tiny_bench(1, "c"))).ok);

    request sq;
    sq.payload = stats_request{};
    const auto st = std::get<stats_response>(s.handle(sq).payload);
    ASSERT_TRUE(st.registry.present);
    ASSERT_EQ(st.registry.tenants.size(), 2u);
    EXPECT_EQ(st.registry.tenants[0].tenant, "t");
    EXPECT_EQ(st.registry.tenants[0].circuits, 2u);
    EXPECT_EQ(st.registry.tenants[0].rejections, 1u);
    EXPECT_EQ(st.registry.tenants[0].max_circuits, 2u);
    EXPECT_EQ(st.registry.tenants[1].tenant, "u");
    EXPECT_EQ(st.registry.tenants[1].rejections, 0u);
}

TEST(registry, engine_quota_clamps_the_view_pool_capacity) {
    service::options so;
    so.tenant_quota.max_engines = 1;
    service s(so);
    const response reg = s.handle(make_register("t", "a", tiny_bench(2, "a")));
    ASSERT_TRUE(reg.ok);
    const std::size_t handle =
        std::get<register_circuit_response>(reg.payload).circuit;

    ASSERT_TRUE(s.handle(make_named_length("t/a")).ok);  // compiles the view
    EXPECT_EQ(s.session().pool(handle).capacity(), 1u);
}

TEST(registry, cache_byte_quota_evicts_the_tenants_entries) {
    service::options so;
    so.tenant_quota.max_cache_bytes = 1;  // nothing fits
    service s(so);
    ASSERT_TRUE(s.handle(make_register("t", "a", tiny_bench(2, "a"))).ok);

    ASSERT_TRUE(s.handle(make_named_length("t/a")).ok);
    // The entry was evicted right after insertion, so the repeat query
    // recomputes instead of hitting.
    const response again = s.handle(make_named_length("t/a"));
    ASSERT_TRUE(again.ok);
    EXPECT_FALSE(std::get<test_length_response>(again.payload).cached);

    request sq;
    sq.payload = stats_request{};
    const auto st = std::get<stats_response>(s.handle(sq).payload);
    EXPECT_GE(st.cache_evictions, 2u);
    ASSERT_TRUE(st.registry.present);
    ASSERT_EQ(st.registry.tenants.size(), 1u);
    EXPECT_EQ(st.registry.tenants[0].cache_bytes, 0u);
    EXPECT_EQ(st.registry.tenants[0].max_cache_bytes, 1u);
    // Every probe is still accounted as exactly one hit or miss.
    EXPECT_EQ(st.cache_probes, st.cache_hits + st.cache_misses);
}

// --- the hot-reload race suite ----------------------------------------------

// N workers hammer test_length and fault_sim jobs by name while a
// reloader keeps swapping the circuit between two structurally different
// netlists. Every successful response must be bit-identical (after
// revision/time normalization) to one of the two single-threaded
// reference answers — a torn view would produce a third value — and the
// only acceptable failures are typed registry envelopes. Run under TSan
// in CI, this is also the data-race proof for the registry lock order.
TEST(registry, hot_reload_race_yields_only_whole_revision_answers) {
    const std::string bench_a = tiny_bench(2, "race");
    const std::string bench_b = tiny_bench(3, "race");

    // Reference answers, computed alone on private services.
    auto reference = [](const std::string& bench, bool sim) {
        service ref;
        EXPECT_TRUE(ref.handle(make_register("t", "race", bench)).ok);
        const response r = ref.handle(sim ? make_named_sim("t/race")
                                          : make_named_length("t/race"));
        EXPECT_TRUE(r.ok);
        return normalized(r);
    };
    const std::set<std::string> valid = {
        reference(bench_a, false), reference(bench_b, false),
        reference(bench_a, true), reference(bench_b, true)};
    ASSERT_EQ(valid.size(), 4u);  // A and B really do answer differently

    service::options so;
    so.threads = 2;
    service s(so);
    ASSERT_TRUE(s.handle(make_register("t", "race", bench_a)).ok);

    // Two hammering workers, not more: every extra shared-lock holder
    // stretches the reloader's wait for the exclusive lock and the test
    // proves the same interleavings with far less wall time.
    constexpr int kWorkers = 2;
    const int reloads = WRPT_TSAN ? 6 : 16;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> answers{0};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> bad_errors{0};

    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            int i = 0;
            while (!done.load(std::memory_order_relaxed)) {
                const bool sim = ((w + i++) & 1) != 0;
                const response r = s.handle(sim ? make_named_sim("t/race")
                                                : make_named_length("t/race"));
                if (r.ok) {
                    answers.fetch_add(1, std::memory_order_relaxed);
                    if (valid.count(normalized(r)) == 0)
                        torn.fetch_add(1, std::memory_order_relaxed);
                } else {
                    const std::string& code = error_code(r);
                    if (code != "not-found" && code != "quota")
                        bad_errors.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    // Pace the reloader on the workers' progress: swapping revisions is
    // far cheaper than computing a job, so an unpaced loop can finish
    // every reload before the first answer lands and nothing actually
    // interleaves. Requiring one fresh answer per swap keeps every
    // reload racing live jobs (bounded by a deadline so a wedged worker
    // fails the assertions below instead of hanging the test).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    std::uint64_t seen = answers.load(std::memory_order_relaxed);
    for (int i = 0; i < reloads; ++i) {
        const response r = s.handle(
            make_reload("t", "race", (i & 1) != 0 ? bench_b : bench_a));
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(std::get<reload_circuit_response>(r.payload).reloads,
                  static_cast<std::uint64_t>(i + 1));
        while (answers.load(std::memory_order_relaxed) <= seen &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
        seen = answers.load(std::memory_order_relaxed);
    }
    done.store(true, std::memory_order_relaxed);
    for (std::thread& t : workers) t.join();

    EXPECT_GT(answers.load(), 0u);
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(bad_errors.load(), 0u);

    // The catalog survived with one entry, its reload count intact.
    const auto rows = s.catalog().list("t");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].reloads, static_cast<std::uint64_t>(reloads));
}

}  // namespace
}  // namespace wrpt
