// Tests for SORT and NORMALIZE (paper section 4): minimal test length
// against brute-force search, bound validity, relevant fault counts.

#include "opt/normalize.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "opt/objective.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

/// Brute-force minimal integer N with J_N <= q (linear scan).
double brute_force_n(const std::vector<double>& probs, double q) {
    for (double n = 0;; n += 1.0) {
        if (objective_jn(probs, n) <= q) return n;
        if (n > 1e7) return -1.0;
    }
}

TEST(sort_faults, ascending_and_excludes_zeros) {
    const std::vector<double> probs{0.5, 0.0, 0.1, 0.9, 0.0, 0.1};
    const auto order = sort_faults(probs);
    ASSERT_EQ(order.size(), 4u);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(probs[order[i - 1]], probs[order[i]]);
    EXPECT_EQ(order.front(), 2u);  // stable: first of the two 0.1 entries
}

class normalize_random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(normalize_random, matches_brute_force) {
    rng r(GetParam());
    std::vector<double> probs;
    const std::size_t count = 3 + r.next_below(20);
    for (std::size_t i = 0; i < count; ++i)
        probs.push_back(std::pow(10.0, -1.0 - 3.0 * r.next_double()));
    std::sort(probs.begin(), probs.end());
    for (double q : {0.05, 0.01, 0.001}) {
        const auto res = normalize_sorted(probs, q);
        ASSERT_TRUE(res.feasible);
        const double ref = brute_force_n(probs, q);
        ASSERT_GE(ref, 0.0) << "brute force overflow";
        EXPECT_NEAR(res.test_length, ref, 1.0)
            << "q=" << q << " seed=" << GetParam();
        // N satisfies the target; N-2 must not (allowing the 1-off slack).
        EXPECT_LE(objective_jn(probs, res.test_length), q * (1.0 + 1e-9));
        if (res.test_length >= 2.0) {
            EXPECT_GT(objective_jn(probs, res.test_length - 2.0), q);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, normalize_random,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(normalize, relevant_faults_dominated_by_hard_tail) {
    // One very hard fault and many easy ones: nf should stay small — the
    // paper's efficiency observation (1).
    std::vector<double> probs{1e-6};
    for (int i = 0; i < 500; ++i) probs.push_back(0.4);
    const auto res = normalize_detection_probs(probs, 0.001);
    ASSERT_TRUE(res.feasible);
    EXPECT_LT(res.relevant_faults, 5u);
    // N is governed by the hard fault: N ~ ln(1/q)/1e-6.
    EXPECT_NEAR(res.test_length, std::log(1000.0) / 1e-6,
                0.05 * res.test_length);
}

TEST(normalize, zero_probabilities_reported) {
    const std::vector<double> probs{0.0, 0.5, 0.0, 0.2};
    const auto res = normalize_detection_probs(probs, 0.01);
    EXPECT_TRUE(res.feasible);
    EXPECT_EQ(res.zero_prob_faults, 2u);
}

TEST(normalize, infeasible_when_zero_prob_in_sorted_list) {
    const std::vector<double> probs{0.0, 0.5};
    const auto res = normalize_sorted(probs, 0.01);
    EXPECT_FALSE(res.feasible);
}

TEST(normalize, empty_list_needs_no_patterns) {
    const auto res = normalize_sorted(std::vector<double>{}, 0.01);
    EXPECT_TRUE(res.feasible);
    EXPECT_DOUBLE_EQ(res.test_length, 0.0);
}

TEST(normalize, degenerate_large_q) {
    // q above the fault count: J_0 = n <= q already.
    const std::vector<double> probs{0.1, 0.2};
    const auto res = normalize_sorted(probs, 5.0);
    EXPECT_TRUE(res.feasible);
    EXPECT_DOUBLE_EQ(res.test_length, 0.0);
}

TEST(normalize, rejects_unsorted_input) {
    const std::vector<double> probs{0.5, 0.1};
    EXPECT_THROW(normalize_sorted(probs, 0.01), invalid_input);
}

TEST(normalize, rejects_nonpositive_q) {
    const std::vector<double> probs{0.5};
    EXPECT_THROW(normalize_sorted(probs, 0.0), invalid_input);
}

TEST(normalize, table1_scale_magnitudes) {
    // A hardest fault at 2^-24 (the S1 equality chain) pushes N to the
    // 10^8 scale the paper reports in Table 1.
    std::vector<double> probs;
    probs.push_back(std::ldexp(1.0, -24));
    for (int i = 0; i < 1000; ++i) probs.push_back(0.2);
    const auto res = normalize_detection_probs(probs, confidence_to_q(0.999));
    ASSERT_TRUE(res.feasible);
    EXPECT_GT(res.test_length, 5e7);
    EXPECT_LT(res.test_length, 5e9);
}

}  // namespace
}  // namespace wrpt
