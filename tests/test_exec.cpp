// Tests for the exec layer (thread_pool, batch_session) and for the
// batched probe path's core guarantee: parallel PREPARE is bit-identical
// to the sequential path for every thread count.

#include "exec/batch_session.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "exec/engine_pool.h"
#include "exec/thread_pool.h"
#include "gen/comparator.h"
#include "gen/ecc.h"
#include "gen/random_circuit.h"
#include "gen/sharded.h"
#include "io/bench_io.h"
#include "opt/optimizer.h"
#include "prob/detect.h"
#include "sim/fault_sim.h"
#include "util/rng.h"

namespace wrpt {
namespace {

netlist make_test_circuit(std::uint64_t seed, std::size_t inputs = 10,
                          std::size_t gates = 120) {
    random_circuit_spec spec;
    spec.inputs = inputs;
    spec.gates = gates;
    spec.seed = seed;
    return make_random_circuit(spec);
}

// --- thread_pool ---------------------------------------------------------

TEST(thread_pool, parallel_for_covers_every_index_exactly_once) {
    thread_pool pool(4);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(thread_pool, parallel_for_propagates_exceptions) {
    thread_pool pool(3);
    EXPECT_THROW(pool.parallel_for(64,
                                   [](std::size_t i) {
                                       if (i == 17)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(thread_pool, nested_parallel_for_does_not_deadlock) {
    // An inner parallel_for issued from inside a pool task must complete
    // even when every worker is busy with outer tasks (the inner caller
    // drains its own items). This is the batch_session-over-batched-
    // probes shape.
    thread_pool pool(2);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(8, [&](std::size_t) {
        pool.parallel_for(16, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(thread_pool, submit_and_wait_idle) {
    thread_pool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) pool.submit([&] { ++ran; });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 32);
}

// --- multi-input probes / parallel PREPARE -------------------------------

TEST(batched_probes, estimate_probes_matches_single_probe_queries) {
    const netlist nl = make_test_circuit(41);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    cop.set_engine_cone_limit(1.0);  // force the engine path
    const weight_vector base = uniform_weights(nl);

    std::vector<probe> probes;
    rng r(7);
    for (int k = 0; k < 12; ++k) {
        probe p;
        const std::size_t moves = 1 + r.next_below(nl.input_count());
        std::set<std::size_t> used;
        for (std::size_t m = 0; m < moves; ++m) {
            const std::size_t i = r.next_below(nl.input_count());
            if (!used.insert(i).second) continue;
            p.push_back({i, 0.05 + 0.9 * r.next_double()});
        }
        probes.push_back(std::move(p));
    }

    const auto batched = cop.estimate_probes(nl, faults, base, probes);

    // Reference: a fresh full-recompute estimator per probe.
    for (std::size_t k = 0; k < probes.size(); ++k) {
        cop_detect_estimator full;
        full.set_incremental(false);
        const auto expected =
            full.estimate(nl, faults, apply_probe(base, probes[k]));
        ASSERT_EQ(batched[k].size(), expected.size());
        for (std::size_t j = 0; j < expected.size(); ++j)
            ASSERT_DOUBLE_EQ(batched[k][j], expected[j])
                << "probe " << k << " fault " << j;
    }
}

TEST(batched_probes, thread_counts_are_bit_identical) {
    const netlist nl = make_sharded_comparators(8, 4);
    const auto faults = generate_full_faults(nl);
    const weight_vector base = uniform_weights(nl);

    std::vector<probe> probes;
    for (std::size_t i = 0; i < nl.input_count(); ++i) {
        probes.push_back({{i, 0.05}});
        probes.push_back({{i, 0.95}});
    }

    std::vector<std::vector<std::vector<double>>> results;
    for (unsigned threads : {1u, 2u, 8u}) {
        cop_detect_estimator cop;
        cop.set_engine_cone_limit(1.0);
        cop.set_threads(threads);
        results.push_back(cop.estimate_probes(nl, faults, base, probes));
    }
    for (std::size_t t = 1; t < results.size(); ++t) {
        ASSERT_EQ(results[t].size(), results[0].size());
        for (std::size_t k = 0; k < results[0].size(); ++k)
            for (std::size_t j = 0; j < results[0][k].size(); ++j)
                ASSERT_EQ(results[t][k][j], results[0][k][j])
                    << "thread variant " << t << " probe " << k;
    }
}

TEST(batched_probes, optimize_weights_bit_identical_across_thread_counts) {
    const netlist nl = make_sharded_comparators(6, 4);
    const auto faults = generate_full_faults(nl);

    std::vector<optimize_result> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        cop_detect_estimator cop;
        cop.set_engine_cone_limit(1.0);
        cop.set_threads(threads);
        runs.push_back(
            optimize_weights(nl, faults, cop, uniform_weights(nl)));
    }
    for (std::size_t t = 1; t < runs.size(); ++t) {
        EXPECT_EQ(runs[t].weights, runs[0].weights) << "threads variant " << t;
        EXPECT_EQ(runs[t].final_test_length, runs[0].final_test_length);
        EXPECT_EQ(runs[t].analysis_calls, runs[0].analysis_calls);
    }
}

TEST(batched_probes, mc_probe_streams_are_position_derived) {
    const netlist nl = make_test_circuit(9, 8, 60);
    const auto faults = generate_full_faults(nl);
    mc_detect_estimator mc(512, 0xabc);
    const weight_vector base = uniform_weights(nl);

    const probe a{{0, 0.25}};
    const probe b{{1, 0.75}};
    const std::vector<probe> ab{a, b};
    const std::vector<probe> ba{b, a};
    const auto r_ab = mc.estimate_probes(nl, faults, base, ab);
    const auto r_ba = mc.estimate_probes(nl, faults, base, ba);
    // Probe index k keeps its private stream: running probe `a` first or
    // the batch in reverse order must not change what stream position k
    // sees — so a's answers from slot 0 equal b's answers from slot 0
    // only if the streams were shared. With per-(seed, index) streams,
    // slot 0 of the reversed batch equals what b would get at slot 0.
    const std::vector<probe> only_b{b};
    const auto r_b0 = mc.estimate_probes(nl, faults, base, only_b);
    for (std::size_t j = 0; j < faults.size(); ++j) {
        ASSERT_EQ(r_ba[0][j], r_b0[0][j]) << j;  // position determines stream
    }
    // And the same probe at the same position is reproducible.
    const auto r_ab2 = mc.estimate_probes(nl, faults, base, ab);
    for (std::size_t k = 0; k < ab.size(); ++k)
        for (std::size_t j = 0; j < faults.size(); ++j)
            ASSERT_EQ(r_ab[k][j], r_ab2[k][j]);
}

// --- engine counters: saddle probes ride the engine ----------------------

TEST(engine_counters, saddle_escape_does_not_rebuild_the_engine) {
    // The cascaded comparator stalls at the uniform starting vector, so
    // OPTIMIZE runs the saddle escape: five wholesale perturbations. Each
    // must execute as one multi-input incremental transaction on the
    // existing engine — never as a fresh full analysis.
    const netlist nl = make_cascaded_comparator(3, "cmp12sad");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    cop.set_engine_cone_limit(1.0);  // force the engine everywhere

    const auto res = optimize_weights(nl, faults, cop, uniform_weights(nl));
    ASSERT_TRUE(res.feasible);
    const auto& st = cop.stats();
    // Sequential probe path: exactly one full analysis ever, everything
    // else incremental.
    EXPECT_EQ(st.engine_builds, 1u);
    EXPECT_EQ(st.full_estimates, 0u);
    // The saddle escape contributed multi-input transactions (5 probes
    // plus the wholesale base move to the winning candidate).
    EXPECT_GE(st.batched_moves, 5u);
    EXPECT_GT(st.engine_probes, 0u);
}

// --- batch_session -------------------------------------------------------

std::vector<netlist> session_suite() {
    std::vector<netlist> circuits;
    circuits.push_back(make_cascaded_comparator(2, "cmp8s"));
    circuits.push_back(make_sharded_comparators(6, 3));
    circuits.push_back(make_c499_like());
    circuits.push_back(make_test_circuit(17, 12, 150));
    return circuits;
}

TEST(batch_session, matches_per_circuit_sequential_runs) {
    batch_session::options so;
    so.threads = 4;
    batch_session session(so);
    std::vector<netlist> reference = session_suite();
    for (auto& nl : session_suite()) session.add_circuit(std::move(nl));
    ASSERT_EQ(session.circuit_count(), reference.size());

    std::vector<svc::job_request> jobs;
    for (std::size_t c = 0; c < session.circuit_count(); ++c) {
        svc::test_length_request tl;
        tl.circuit = c;
        jobs.push_back(tl);

        svc::optimize_request opt;
        opt.circuit = c;
        jobs.push_back(opt);

        svc::fault_sim_request fs;
        fs.circuit = c;
        fs.patterns = 1024;
        fs.seed = 0x5eed + c;
        jobs.push_back(fs);
    }
    const auto results = session.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());

    for (std::size_t c = 0; c < reference.size(); ++c) {
        const netlist& nl = reference[c];
        const auto faults = generate_full_faults(nl);
        // Sequential reference, fresh estimator per circuit.
        cop_detect_estimator cop;
        const auto tl =
            required_test_length(nl, faults, cop, uniform_weights(nl));
        const auto& rt = results[3 * c];
        EXPECT_EQ(rt.revision, session.circuit(c).revision());
        EXPECT_EQ(rt.length.feasible, tl.feasible);
        EXPECT_EQ(rt.length.test_length, tl.test_length);

        cop_detect_estimator cop2;
        const auto opt =
            optimize_weights(nl, faults, cop2, uniform_weights(nl));
        const auto& ro = results[3 * c + 1];
        EXPECT_EQ(ro.optimized.weights, opt.weights);
        EXPECT_EQ(ro.optimized.final_test_length, opt.final_test_length);

        fault_sim_options fo;
        fo.max_patterns = 1024;
        fo.threads = 1;
        const auto sim = run_weighted_fault_simulation(
            nl, faults, uniform_weights(nl), 0x5eed + c, fo);
        const auto& rs = results[3 * c + 2];
        EXPECT_EQ(rs.detected, sim.detected_count);
        EXPECT_EQ(rs.patterns_applied, sim.patterns_applied);
        EXPECT_EQ(rs.fault_count, faults.size());
    }
}

TEST(batch_session, matrix_runs_every_pair_in_row_major_order) {
    batch_session session;
    session.add_circuit(make_cascaded_comparator(1, "cmp4m"));
    session.add_circuit(make_test_circuit(23, 6, 50));

    // Weight vectors must match each circuit; expand_matrix passes them
    // as-is, so with different input counts per circuit use the empty
    // vector (= uniform) twice.
    svc::matrix_request m;
    m.kind = batch_session::job_kind::test_length;
    m.weight_sets.push_back({});
    m.weight_sets.push_back({});

    const auto results = session.run(session.expand_matrix(m));
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].circuit, 0u);
    EXPECT_EQ(results[1].circuit, 0u);
    EXPECT_EQ(results[2].circuit, 1u);
    EXPECT_EQ(results[3].circuit, 1u);
    // Same circuit + same weights -> same answer, whatever the job slot.
    EXPECT_EQ(results[0].length.test_length, results[1].length.test_length);
    EXPECT_EQ(results[2].length.test_length, results[3].length.test_length);
    for (const auto& r : results) EXPECT_TRUE(r.length.feasible);
}

TEST(batch_session, keeps_engine_pools_warm_across_run_calls) {
    // The cross-request reuse contract: engines built by one run() call
    // serve the next run() after an incremental re-sync instead of being
    // rebuilt. Asserted through the per-circuit pool counters.
    batch_session::options so;
    so.threads = 1;
    batch_session session(so);
    const std::size_t h = session.add_circuit(make_sharded_comparators(6, 3));
    EXPECT_EQ(session.pool(h).size(), 0u);  // engines build lazily

    svc::optimize_request j;
    j.circuit = h;

    const auto first = session.run({j});
    const engine_pool::counters after_first = session.pool(h).stats();
    EXPECT_GE(after_first.misses, 1u);  // the first run built the engines

    const auto second = session.run({j});
    const engine_pool::counters after_second = session.pool(h).stats();
    // Warm reuse: the second run checked out without building anything.
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_EQ(after_second.misses, after_first.misses);
    // And reuse does not change answers.
    EXPECT_EQ(second[0].optimized.weights, first[0].optimized.weights);
    EXPECT_EQ(second[0].optimized.final_test_length,
              first[0].optimized.final_test_length);
    EXPECT_EQ(second[0].length.test_length, first[0].length.test_length);
}

TEST(batch_session, add_circuit_file_round_trip) {
    const netlist nl = make_cascaded_comparator(1, "cmp4f");
    const auto dir = std::filesystem::temp_directory_path() / "wrpt_batch";
    std::filesystem::create_directories(dir);
    const auto path = dir / "cmp4f.bench";
    write_bench_file(path.string(), nl);

    batch_session session;
    const std::size_t h = session.add_circuit_file(path.string());
    EXPECT_EQ(session.circuit(h).input_count(), nl.input_count());
    // The .bench round trip may insert output buffers, so compare the
    // fault universe against the re-read netlist, not the original.
    EXPECT_EQ(session.faults(h).size(),
              generate_full_faults(read_bench_file(path.string())).size());

    svc::fault_sim_request j;
    j.circuit = h;
    j.patterns = 512;
    const auto results = session.run({j});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].coverage_percent, 90.0);
    std::filesystem::remove_all(dir);
}

// --- fault ordering ------------------------------------------------------

TEST(fault_ordering, ordered_and_unordered_runs_agree) {
    const netlist nl = make_test_circuit(31, 12, 160);
    const auto faults = generate_full_faults(nl);
    for (const bool drop : {true, false}) {
        fault_sim_options a;
        a.max_patterns = 700;
        a.threads = 1;
        a.drop_detected = drop;
        a.order_faults = false;
        fault_sim_options b = a;
        b.order_faults = true;
        const auto ra = run_weighted_fault_simulation(
            nl, faults, uniform_weights(nl), 0xfeed, a);
        const auto rb = run_weighted_fault_simulation(
            nl, faults, uniform_weights(nl), 0xfeed, b);
        EXPECT_EQ(ra.detected_count, rb.detected_count);
        EXPECT_EQ(ra.patterns_applied, rb.patterns_applied);
        ASSERT_EQ(ra.first_detected.size(), rb.first_detected.size());
        for (std::size_t i = 0; i < ra.first_detected.size(); ++i)
            EXPECT_EQ(ra.first_detected[i], rb.first_detected[i])
                << to_string(nl, faults[i]) << " drop " << drop;
    }
}

}  // namespace
}  // namespace wrpt
