// End-to-end integration tests: the paper's full flow on scaled-down
// circuits — analysis, optimization, fault simulation, BIST — plus suite
// smoke tests.

#include <cmath>

#include <gtest/gtest.h>

#include "bist/session.h"
#include "gen/comparator.h"
#include "gen/ecc.h"
#include "gen/suite.h"
#include "helpers.h"
#include "io/bench_io.h"
#include "opt/optimizer.h"
#include "prob/redundancy.h"
#include "sim/fault_sim.h"

namespace wrpt {
namespace {

TEST(integration, optimized_patterns_beat_conventional_on_comparator) {
    // The Fig. 2 effect on a 12-bit comparator with a 512-pattern budget:
    // conventional random patterns miss the equality-chain faults
    // (p = 2^-12), optimized ones detect them.
    const netlist nl = make_cascaded_comparator(3, "cmp12i");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;

    const auto opt = optimize_weights(nl, faults, cop, uniform_weights(nl));
    ASSERT_TRUE(opt.feasible);

    fault_sim_options fopt;
    fopt.max_patterns = 512;
    const auto conventional = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 0xfeed, fopt);
    const auto optimized = run_weighted_fault_simulation(
        nl, faults, opt.weights, 0xfeed, fopt);

    const double cc = conventional.coverage_percent(faults.size());
    const double oc = optimized.coverage_percent(faults.size());
    EXPECT_LT(cc, 97.0);
    EXPECT_GT(oc, cc + 2.0);
    EXPECT_GT(oc, 98.0);
}

TEST(integration, estimated_length_consistent_with_simulation) {
    // If NORMALIZE says N patterns give 99.9% confidence, simulating N
    // patterns should detect (nearly) everything.
    const netlist nl = make_cascaded_comparator(2, "cmp8i");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    const auto opt = optimize_weights(nl, faults, cop, uniform_weights(nl));
    ASSERT_TRUE(opt.feasible);
    ASSERT_LT(opt.final_test_length, 20000.0);

    // The estimator is a heuristic, so allow a 2x safety factor on N
    // (still far below the conventional length).
    fault_sim_options fopt;
    fopt.max_patterns =
        2 * static_cast<std::uint64_t>(std::ceil(opt.final_test_length));
    const auto sim = run_weighted_fault_simulation(nl, faults, opt.weights,
                                                   0xabc, fopt);
    EXPECT_EQ(sim.detected_count, faults.size());
}

TEST(integration, collapsed_and_full_coverage_agree_on_detection) {
    // Representative faults detected <=> their whole class is detected.
    const netlist nl = make_cascaded_comparator(2, "cmp8c");
    const collapsed_faults cf = collapse_faults(nl);
    fault_sim_options fopt;
    fopt.max_patterns = 2048;
    const auto full = run_weighted_fault_simulation(
        nl, cf.all, uniform_weights(nl), 0x77, fopt);
    for (std::size_t i = 0; i < cf.all.size(); ++i) {
        const std::size_t rep = cf.representative[cf.class_of[i]];
        EXPECT_EQ(full.first_detected[i].has_value(),
                  full.first_detected[rep].has_value())
            << to_string(nl, cf.all[i]);
    }
}

TEST(integration, ecc_circuit_is_easily_random_testable) {
    // c499-like: Table 1 reports ~1.9e3 — parity-dominated circuits are
    // random-friendly. Verify both the estimate and the simulation.
    const netlist nl = make_c499_like();
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    const auto rep = required_test_length(nl, faults, cop, uniform_weights(nl));
    ASSERT_TRUE(rep.feasible);
    EXPECT_LT(rep.test_length, 1e5);

    fault_sim_options fopt;
    fopt.max_patterns = 4096;
    const auto sim = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 0x123, fopt);
    EXPECT_GT(sim.coverage_percent(faults.size()), 99.5);
}

TEST(integration, redundancy_aware_coverage_accounting) {
    // Table 2 footnote: coverage is computed w.r.t. faults not proven
    // redundant. On our generated circuits the fold keeps the proven set
    // empty or tiny; the accounting still has to hold.
    const netlist nl = make_c499_like();
    const auto faults = generate_full_faults(nl);
    redundancy_options ropt;
    ropt.use_bdd_proof = false;
    const auto red = prove_redundant(nl, faults, ropt);
    std::size_t redundant = 0;
    for (bool b : red)
        if (b) ++redundant;
    EXPECT_EQ(redundant, 0u);  // constant folding removed structural ones
}

TEST(integration, bist_session_with_optimized_weights_full_flow) {
    const netlist nl = make_cascaded_comparator(2, "cmp8b");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    const auto opt = optimize_weights(nl, faults, cop, uniform_weights(nl));

    bist_session_options bopt;
    bopt.patterns = 4096;
    bopt.max_weight_stages = 4;
    const auto session = run_bist_session(nl, faults, opt.weights, bopt);
    EXPECT_GT(session.coverage_percent(), 99.0);
    EXPECT_NE(session.golden_signature, 0u);

    // Session is reproducible end to end.
    const auto again = run_bist_session(nl, faults, opt.weights, bopt);
    EXPECT_EQ(session.golden_signature, again.golden_signature);
    EXPECT_EQ(session.faults_detected, again.faults_detected);
}

TEST(integration, suite_circuits_round_trip_through_bench_format) {
    for (const char* name : {"S1", "c432", "c499", "c880"}) {
        const netlist nl = build_suite_circuit(name);
        const netlist back = read_bench_string(write_bench_string(nl), name);
        ::wrpt::testing::expect_equivalent(nl, back, 4);
    }
}

TEST(integration, suite_fault_populations_are_substantial) {
    for (const auto& entry : benchmark_suite()) {
        const netlist nl = entry.build();
        const auto faults = generate_full_faults(nl);
        EXPECT_GT(faults.size(), 200u) << entry.name;
        const collapsed_faults cf = collapse_faults(nl);
        EXPECT_LT(cf.class_count(), cf.all.size()) << entry.name;
    }
}

}  // namespace
}  // namespace wrpt
