// Tests for the netlist container: construction invariants, levels,
// fanouts, cones, statistics, gate evaluation.

#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "helpers.h"

#include "util/error.h"

namespace wrpt {
namespace {

netlist small_example() {
    // y = (a & b) | ~c ; z = a ^ c
    netlist nl("small");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id c = nl.add_input("c");
    const node_id g1 = nl.add_binary(gate_kind::and_, a, b, "g1");
    const node_id g2 = nl.add_unary(gate_kind::not_, c, "g2");
    const node_id y = nl.add_binary(gate_kind::or_, g1, g2, "y");
    const node_id z = nl.add_binary(gate_kind::xor_, a, c, "z");
    nl.mark_output(y, "y");
    nl.mark_output(z, "z");
    return nl;
}

TEST(netlist, construction_and_accessors) {
    const netlist nl = small_example();
    EXPECT_EQ(nl.node_count(), 7u);
    EXPECT_EQ(nl.input_count(), 3u);
    EXPECT_EQ(nl.output_count(), 2u);
    EXPECT_EQ(nl.kind(nl.find("g1")), gate_kind::and_);
    EXPECT_EQ(nl.fanin_count(nl.find("y")), 2u);
    EXPECT_EQ(nl.find("nonexistent"), null_node);
    EXPECT_NO_THROW(nl.validate());
}

TEST(netlist, input_index_round_trip) {
    const netlist nl = small_example();
    for (std::size_t i = 0; i < nl.input_count(); ++i)
        EXPECT_EQ(nl.input_index(nl.inputs()[i]), i);
    EXPECT_EQ(nl.input_index(nl.find("y")), static_cast<std::size_t>(-1));
}

TEST(netlist, levels_monotone_along_edges) {
    const netlist nl = small_example();
    for (node_id n = 0; n < nl.node_count(); ++n)
        for (node_id f : nl.fanins(n)) EXPECT_LT(nl.level(f), nl.level(n));
    EXPECT_EQ(nl.level(nl.find("a")), 0u);
    EXPECT_EQ(nl.level(nl.find("y")), 2u);
    EXPECT_EQ(nl.depth(), 2u);
}

TEST(netlist, fanouts_are_inverse_of_fanins) {
    const netlist nl = small_example();
    const node_id a = nl.find("a");
    // a feeds g1 and z.
    const auto fo = nl.fanouts(a);
    EXPECT_EQ(fo.size(), 2u);
    std::size_t total_fanins = 0, total_fanouts = 0;
    for (node_id n = 0; n < nl.node_count(); ++n) {
        total_fanins += nl.fanin_count(n);
        total_fanouts += nl.fanout_count(n);
    }
    EXPECT_EQ(total_fanins, total_fanouts);
}

TEST(netlist, cones) {
    const netlist nl = small_example();
    const auto cone_y = nl.fanin_cone(nl.find("y"));
    // y depends on a, b, c, g1, g2, y.
    EXPECT_EQ(cone_y.size(), 6u);
    const auto cone_a = nl.fanout_cone(nl.find("a"));
    // a reaches g1, y, z (+ itself).
    EXPECT_EQ(cone_a.size(), 4u);
}

TEST(netlist, stats_count_lines) {
    const netlist nl = small_example();
    const netlist_stats st = nl.stats();
    EXPECT_EQ(st.node_count, 7u);
    EXPECT_EQ(st.gate_count, 4u);
    EXPECT_EQ(st.depth, 2u);
    // Branch lines exist for a (fanout 2) and c (fanout 2).
    EXPECT_EQ(st.line_count, 7u + 2u + 2u);
    EXPECT_EQ(st.per_kind[static_cast<std::size_t>(gate_kind::input)], 3u);
    EXPECT_EQ(st.per_kind[static_cast<std::size_t>(gate_kind::and_)], 1u);
}

TEST(netlist, rejects_forward_references) {
    netlist nl;
    const node_id a = nl.add_input("a");
    (void)a;
    // Fanin id beyond current node count.
    EXPECT_THROW(nl.add_gate(gate_kind::not_, {node_id{5}}), invalid_input);
}

TEST(netlist, rejects_duplicate_names) {
    netlist nl;
    nl.add_input("a");
    EXPECT_THROW(nl.add_input("a"), invalid_input);
    const node_id b = nl.add_input("b");
    EXPECT_THROW(nl.add_unary(gate_kind::buf, b, "a"), invalid_input);
}

TEST(netlist, rejects_bad_arity) {
    netlist nl;
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    EXPECT_THROW(nl.add_gate(gate_kind::not_, {a, b}), invalid_input);
    EXPECT_THROW(nl.add_gate(gate_kind::and_, {}), invalid_input);
    EXPECT_THROW(nl.add_gate(gate_kind::const0, {a}), invalid_input);
    EXPECT_THROW(nl.add_gate(gate_kind::input, {a}), invalid_input);
}

TEST(netlist, rejects_duplicate_outputs) {
    netlist nl;
    const node_id a = nl.add_input("a");
    const node_id g = nl.add_unary(gate_kind::buf, a);
    nl.mark_output(g, "y");
    EXPECT_THROW(nl.mark_output(g, "y2"), invalid_input);  // node reused
    const node_id h = nl.add_unary(gate_kind::not_, a);
    EXPECT_THROW(nl.mark_output(h, "y"), invalid_input);  // name reused
}

TEST(netlist, validate_requires_io) {
    netlist nl;
    nl.add_input("a");
    EXPECT_THROW(nl.validate(), invalid_input);  // no outputs
}

TEST(add_tree, single_leaf_semantics) {
    netlist nl;
    const node_id a = nl.add_input("a");
    std::vector<node_id> leaves{a};
    EXPECT_EQ(nl.add_tree(gate_kind::and_, leaves), a);
    const node_id inv = nl.add_tree(gate_kind::nand_, leaves);
    EXPECT_EQ(nl.kind(inv), gate_kind::not_);
}

TEST(add_tree, wide_tree_depth_is_logarithmic) {
    netlist nl;
    std::vector<node_id> leaves;
    for (int i = 0; i < 64; ++i)
        leaves.push_back(nl.add_input(testing::label_x(i)));
    const node_id root = nl.add_tree(gate_kind::and_, leaves);
    EXPECT_EQ(nl.level(root), 6u);  // log2(64)
}

TEST(eval_gate_words, truth_tables) {
    const std::uint64_t a = 0b1100, b = 0b1010;
    const std::uint64_t fa[2] = {a, b};
    EXPECT_EQ(eval_gate_words(gate_kind::and_, fa, 2) & 0xf, 0b1000u);
    EXPECT_EQ(eval_gate_words(gate_kind::or_, fa, 2) & 0xf, 0b1110u);
    EXPECT_EQ(eval_gate_words(gate_kind::xor_, fa, 2) & 0xf, 0b0110u);
    EXPECT_EQ(eval_gate_words(gate_kind::nand_, fa, 2) & 0xf, 0b0111u);
    EXPECT_EQ(eval_gate_words(gate_kind::nor_, fa, 2) & 0xf, 0b0001u);
    EXPECT_EQ(eval_gate_words(gate_kind::xnor_, fa, 2) & 0xf, 0b1001u);
    EXPECT_EQ(eval_gate_words(gate_kind::not_, fa, 1) & 0xf, 0b0011u);
    EXPECT_EQ(eval_gate_words(gate_kind::buf, fa, 1) & 0xf, 0b1100u);
    EXPECT_EQ(eval_gate_words(gate_kind::const0, nullptr, 0), 0u);
    EXPECT_EQ(eval_gate_words(gate_kind::const1, nullptr, 0), ~0ULL);
    EXPECT_THROW(eval_gate_words(gate_kind::input, nullptr, 0), error);
}

TEST(eval_gate_bool, matches_word_semantics) {
    const bool vals[3] = {true, false, true};
    EXPECT_FALSE(eval_gate_bool(gate_kind::and_, vals, 3));
    EXPECT_TRUE(eval_gate_bool(gate_kind::or_, vals, 3));
    EXPECT_FALSE(eval_gate_bool(gate_kind::xor_, vals, 3));
    EXPECT_TRUE(eval_gate_bool(gate_kind::xnor_, vals, 3));
}

TEST(gate_kind_strings, round_trip) {
    for (gate_kind k :
         {gate_kind::input, gate_kind::buf, gate_kind::not_, gate_kind::and_,
          gate_kind::nand_, gate_kind::or_, gate_kind::nor_, gate_kind::xor_,
          gate_kind::xnor_, gate_kind::const0, gate_kind::const1}) {
        gate_kind back{};
        EXPECT_TRUE(gate_kind_from_string(to_string(k), back));
        EXPECT_EQ(back, k);
    }
    gate_kind out{};
    EXPECT_TRUE(gate_kind_from_string("buff", out));  // bench alias
    EXPECT_EQ(out, gate_kind::buf);
    EXPECT_FALSE(gate_kind_from_string("frobnicate", out));
}

}  // namespace
}  // namespace wrpt
