// Tests for the staged OPTIMIZE pipeline: stage sequence/contract
// introspection, the sharded ANALYSIS surface, the sharded NORMALIZE
// reduction, and the headline guarantee — optimized weights, sweep
// history, and test-length reports bit-identical across thread counts
// {1, 2, 8}.

#include "opt/pipeline.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "gen/comparator.h"
#include "gen/random_circuit.h"
#include "gen/sharded.h"
#include "opt/normalize.h"
#include "prob/detect.h"
#include "util/rng.h"

namespace wrpt {
namespace {

netlist make_test_circuit(std::uint64_t seed, std::size_t inputs = 10,
                          std::size_t gates = 120) {
    random_circuit_spec spec;
    spec.inputs = inputs;
    spec.gates = gates;
    spec.seed = seed;
    return make_random_circuit(spec);
}

// --- stage contract ------------------------------------------------------

TEST(pipeline, stage_sequence_matches_the_paper) {
    const netlist nl = make_cascaded_comparator(1, "cmp4pipe");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    optimize_pipeline pipe(nl, faults, cop, uniform_weights(nl), {});

    const char* expected[] = {"ANALYSIS", "SORT",     "NORMALIZE",
                              "PREPARE",  "MINIMIZE", "SADDLE_ESCAPE"};
    const auto stages = pipe.stages();
    ASSERT_EQ(stages.size(), 6u);
    for (std::size_t s = 0; s < stages.size(); ++s) {
        EXPECT_STREQ(stages[s]->name(), expected[s]);
        // Every stage declares its context contract.
        EXPECT_GT(std::strlen(stages[s]->reads()), 0u) << expected[s];
        EXPECT_GT(std::strlen(stages[s]->writes()), 0u) << expected[s];
    }
}

TEST(pipeline, pipeline_run_equals_optimize_weights) {
    const netlist nl = make_cascaded_comparator(2, "cmp8pipe");
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator a;
    const optimize_result via_wrapper =
        optimize_weights(nl, faults, a, uniform_weights(nl));
    cop_detect_estimator b;
    optimize_pipeline pipe(nl, faults, b, uniform_weights(nl), {});
    const optimize_result via_pipeline = pipe.run();
    EXPECT_EQ(via_wrapper.weights, via_pipeline.weights);
    EXPECT_EQ(via_wrapper.final_test_length, via_pipeline.final_test_length);
    EXPECT_EQ(via_wrapper.analysis_calls, via_pipeline.analysis_calls);
}

// --- sharded ANALYSIS ----------------------------------------------------

TEST(sharded_analysis, estimate_faults_matches_estimate_on_engine_path) {
    const netlist nl = make_sharded_comparators(8, 4);
    const auto faults = generate_full_faults(nl);
    const weight_vector w = uniform_weights(nl);

    cop_detect_estimator seq;
    seq.set_engine_cone_limit(1.0);
    const std::vector<double> reference = seq.estimate(nl, faults, w);

    for (unsigned threads : {1u, 2u, 8u}) {
        cop_detect_estimator cop;
        cop.set_engine_cone_limit(1.0);
        const std::vector<double> sharded = cop.estimate_faults(
            nl, {faults.data(), faults.size()}, w, threads);
        ASSERT_EQ(sharded.size(), reference.size());
        for (std::size_t j = 0; j < reference.size(); ++j)
            ASSERT_EQ(sharded[j], reference[j])
                << "threads " << threads << " fault " << j;
    }
}

TEST(sharded_analysis, estimate_faults_matches_on_full_recompute_path) {
    // Circuits above the cone limit take the full-recompute path, whose
    // per-fault read shards too.
    const netlist nl = make_test_circuit(51, 10, 140);
    const auto faults = generate_full_faults(nl);
    const weight_vector w = uniform_weights(nl);

    cop_detect_estimator seq;
    seq.set_incremental(false);
    const std::vector<double> reference = seq.estimate(nl, faults, w);

    for (unsigned threads : {2u, 8u}) {
        cop_detect_estimator cop;
        cop.set_incremental(false);
        const std::vector<double> sharded = cop.estimate_faults(
            nl, {faults.data(), faults.size()}, w, threads);
        ASSERT_EQ(sharded.size(), reference.size());
        for (std::size_t j = 0; j < reference.size(); ++j)
            ASSERT_EQ(sharded[j], reference[j])
                << "threads " << threads << " fault " << j;
    }
}

TEST(sharded_analysis, fault_shard_spans_answer_subqueries) {
    // The span surface works on shards, not just the full list — the
    // contract the ANALYSIS stage's partitioning rests on.
    const netlist nl = make_sharded_comparators(6, 3);
    const auto faults = generate_full_faults(nl);
    const weight_vector w = uniform_weights(nl);
    cop_detect_estimator cop;
    cop.set_engine_cone_limit(1.0);
    const std::vector<double> full =
        cop.estimate_faults(nl, {faults.data(), faults.size()}, w, 1);
    const std::size_t half = faults.size() / 2;
    const std::vector<double> lo =
        cop.estimate_faults(nl, {faults.data(), half}, w, 2);
    const std::vector<double> hi = cop.estimate_faults(
        nl, {faults.data() + half, faults.size() - half}, w, 2);
    for (std::size_t j = 0; j < half; ++j) ASSERT_EQ(lo[j], full[j]);
    for (std::size_t j = half; j < faults.size(); ++j)
        ASSERT_EQ(hi[j - half], full[j]);
}

TEST(sharded_analysis, estimator_pool_counters_track_warm_reuse) {
    const netlist nl = make_sharded_comparators(6, 3);
    const auto faults = generate_full_faults(nl);
    cop_detect_estimator cop;
    cop.set_engine_cone_limit(1.0);

    weight_vector w = uniform_weights(nl);
    (void)cop.estimate(nl, faults, w);
    EXPECT_EQ(cop.stats().pool_misses, 1u);
    EXPECT_EQ(cop.stats().pool_hits, 0u);

    w[0] = 0.9;  // base move: the warm engine re-syncs, no rebuild
    (void)cop.estimate(nl, faults, w);
    EXPECT_EQ(cop.stats().pool_misses, 1u);
    EXPECT_EQ(cop.stats().pool_hits, 1u);
    EXPECT_EQ(cop.stats().engine_builds, 1u);
}

// --- sharded NORMALIZE ---------------------------------------------------

TEST(sharded_normalize, matches_sequential_for_every_thread_count) {
    // Large sorted lists (forcing several window extensions) with many
    // near-equal hard faults, so the scan inspects thousands of terms.
    rng r(99);
    std::vector<double> sorted;
    for (std::size_t i = 0; i < 20000; ++i)
        sorted.push_back(1e-4 * (1.0 + 1e-6 * static_cast<double>(i)) +
                         1e-9 * r.next_double());
    std::sort(sorted.begin(), sorted.end());

    const double q = 0.001;
    const normalize_result reference = normalize_sorted(sorted, q);
    ASSERT_TRUE(reference.feasible);
    EXPECT_GT(reference.relevant_faults, 1000u);  // the scan went deep

    for (unsigned threads : {1u, 2u, 8u}) {
        normalize_exec exec;
        exec.pool = &shared_thread_pool();
        exec.threads = threads;
        exec.shard = 512;
        const normalize_result sharded = normalize_sorted(sorted, q, exec);
        EXPECT_EQ(sharded.feasible, reference.feasible);
        EXPECT_EQ(sharded.test_length, reference.test_length);
        EXPECT_EQ(sharded.relevant_faults, reference.relevant_faults);
    }
}

TEST(sharded_normalize, small_lists_and_edge_cases_unchanged) {
    normalize_exec exec;
    exec.pool = &shared_thread_pool();
    exec.threads = 8;
    exec.shard = 4;

    const std::vector<double> empty;
    EXPECT_TRUE(normalize_sorted(empty, 0.01, exec).feasible);
    EXPECT_EQ(normalize_sorted(empty, 0.01, exec).test_length, 0.0);

    const std::vector<double> undetectable{0.0, 0.5};
    EXPECT_FALSE(normalize_sorted(undetectable, 0.01, exec).feasible);

    const std::vector<double> simple{0.01, 0.2, 0.9};
    const normalize_result a = normalize_sorted(simple, 0.001);
    const normalize_result b = normalize_sorted(simple, 0.001, exec);
    EXPECT_EQ(a.test_length, b.test_length);
    EXPECT_EQ(a.relevant_faults, b.relevant_faults);
}

// --- the headline guarantee ---------------------------------------------

TEST(sharded_pipeline, optimize_bit_identical_across_thread_counts) {
    const netlist nl = make_sharded_comparators(6, 4);
    const auto faults = generate_full_faults(nl);

    std::vector<optimize_result> runs;
    for (unsigned threads : {1u, 2u, 8u}) {
        cop_detect_estimator cop;
        cop.set_engine_cone_limit(1.0);
        cop.set_threads(threads);  // PREPARE probe sharding
        optimize_options opt;
        opt.threads = threads;     // ANALYSIS/NORMALIZE stage sharding
        runs.push_back(
            optimize_weights(nl, faults, cop, uniform_weights(nl), opt));
    }
    for (std::size_t t = 1; t < runs.size(); ++t) {
        EXPECT_EQ(runs[t].weights, runs[0].weights) << "threads variant " << t;
        EXPECT_EQ(runs[t].initial_test_length, runs[0].initial_test_length);
        EXPECT_EQ(runs[t].final_test_length, runs[0].final_test_length);
        EXPECT_EQ(runs[t].analysis_calls, runs[0].analysis_calls);
        ASSERT_EQ(runs[t].history.size(), runs[0].history.size());
        for (std::size_t s = 0; s < runs[0].history.size(); ++s) {
            EXPECT_EQ(runs[t].history[s].test_length,
                      runs[0].history[s].test_length)
                << "sweep " << s;
            EXPECT_EQ(runs[t].history[s].relevant_faults,
                      runs[0].history[s].relevant_faults);
        }
    }
}

TEST(sharded_pipeline, test_length_report_bit_identical_across_threads) {
    const netlist nl = make_sharded_comparators(8, 4);
    const auto faults = generate_full_faults(nl);
    const weight_vector w = uniform_weights(nl);

    std::vector<test_length_report> reports;
    for (unsigned threads : {1u, 2u, 8u}) {
        cop_detect_estimator cop;
        cop.set_engine_cone_limit(1.0);
        reports.push_back(
            required_test_length(nl, faults, cop, w, 0.999, threads));
    }
    for (std::size_t t = 1; t < reports.size(); ++t) {
        EXPECT_EQ(reports[t].feasible, reports[0].feasible);
        EXPECT_EQ(reports[t].test_length, reports[0].test_length);
        EXPECT_EQ(reports[t].relevant_faults, reports[0].relevant_faults);
        EXPECT_EQ(reports[t].zero_prob_faults, reports[0].zero_prob_faults);
        EXPECT_EQ(reports[t].hardest_probability,
                  reports[0].hardest_probability);
    }
}

}  // namespace
}  // namespace wrpt
