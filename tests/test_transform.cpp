// Tests for netlist transformations: xor expansion, arity limiting,
// constant propagation, dead sweep — all must preserve function.

#include "netlist/transform.h"

#include <gtest/gtest.h>

#include "gen/random_circuit.h"
#include "gen/wordlib.h"
#include "helpers.h"

namespace wrpt {
namespace {

using ::wrpt::testing::expect_equivalent;

class transform_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(transform_seeds, expand_xor_preserves_function) {
    random_circuit_spec spec;
    spec.inputs = 8;
    spec.gates = 80;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    const netlist expanded = expand_xor(nl);
    expect_equivalent(nl, expanded);
    // No xor/xnor gates remain.
    for (node_id n = 0; n < expanded.node_count(); ++n) {
        EXPECT_NE(expanded.kind(n), gate_kind::xor_);
        EXPECT_NE(expanded.kind(n), gate_kind::xnor_);
    }
}

TEST_P(transform_seeds, limit_arity_preserves_function) {
    random_circuit_spec spec;
    spec.inputs = 8;
    spec.gates = 60;
    spec.max_arity = 6;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    const netlist limited = limit_arity(nl, 2);
    expect_equivalent(nl, limited);
    for (node_id n = 0; n < limited.node_count(); ++n) {
        if (limited.kind(n) == gate_kind::input) continue;
        EXPECT_LE(limited.fanin_count(n), 2u);
    }
}

TEST_P(transform_seeds, propagate_constants_preserves_function) {
    random_circuit_spec spec;
    spec.inputs = 6;
    spec.gates = 50;
    spec.seed = GetParam();
    netlist nl = make_random_circuit(spec);
    const netlist folded = propagate_constants(nl);
    expect_equivalent(nl, folded);
}

INSTANTIATE_TEST_SUITE_P(seeds, transform_seeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(propagate_constants, folds_constant_logic) {
    netlist nl("consts");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id zero = nl.add_const(false);
    const node_id one = nl.add_const(true);
    // and(a, 1) = a;  or(b, 1) = 1;  xor(a, 1) = ~a;  and(a, 0) = 0.
    const node_id t1 = nl.add_binary(gate_kind::and_, a, one);
    const node_id t2 = nl.add_binary(gate_kind::or_, b, one);
    const node_id t3 = nl.add_binary(gate_kind::xor_, a, one);
    const node_id t4 = nl.add_binary(gate_kind::and_, a, zero);
    const node_id y = nl.add_gate(gate_kind::or_, {t1, t4});
    const node_id z = nl.add_gate(gate_kind::and_, {t2, t3});
    nl.mark_output(y, "y");
    nl.mark_output(z, "z");

    const netlist folded = propagate_constants(nl);
    expect_equivalent(nl, folded);
    // y == a and z == ~a: the fold should shrink the circuit to inputs
    // plus at most a couple of gates.
    EXPECT_LE(folded.node_count(), nl.node_count() - 4);
    for (node_id n = 0; n < folded.node_count(); ++n) {
        EXPECT_NE(folded.kind(n), gate_kind::const0);
        EXPECT_NE(folded.kind(n), gate_kind::const1);
    }
}

TEST(propagate_constants, constant_output_is_materialized) {
    netlist nl("c");
    const node_id a = nl.add_input("a");
    const node_id na = nl.add_unary(gate_kind::not_, a);
    const node_id y = nl.add_binary(gate_kind::and_, a, na);  // constant 0? no!
    // a & ~a is logically 0 but NOT structurally constant; the fold must
    // keep it (constant propagation is structural, not logical).
    nl.mark_output(y, "y");
    const netlist folded = propagate_constants(nl);
    expect_equivalent(nl, folded);
    EXPECT_GE(folded.node_count(), 3u);

    // A structurally constant output, in contrast, becomes a const node.
    netlist nl2("c2");
    const node_id x = nl2.add_input("x");
    (void)x;
    const node_id k = nl2.add_const(true);
    const node_id g = nl2.add_unary(gate_kind::not_, k);
    nl2.mark_output(g, "y");
    const netlist folded2 = propagate_constants(nl2);
    EXPECT_EQ(folded2.kind(folded2.outputs()[0]), gate_kind::const0);
}

TEST(sweep_dead, removes_unreachable_logic_keeps_inputs) {
    netlist nl("dead");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id used = nl.add_binary(gate_kind::and_, a, b);
    const node_id dead1 = nl.add_binary(gate_kind::or_, a, b);
    const node_id dead2 = nl.add_unary(gate_kind::not_, dead1);
    (void)dead2;
    nl.mark_output(used, "y");
    const netlist swept = sweep_dead(nl);
    EXPECT_EQ(swept.node_count(), 3u);  // a, b, and
    EXPECT_EQ(swept.input_count(), 2u);
    expect_equivalent(nl, swept);
}

TEST(transforms, compose_on_structured_circuit) {
    // Build a circuit with wide gates, xors and constants; apply all
    // transforms in sequence and verify equivalence end to end.
    netlist nl("composed");
    const bus x = add_input_bus(nl, "x", 10);
    const node_id all = nl.add_tree(gate_kind::and_, x);
    const node_id par = nl.add_tree(gate_kind::xor_, x);
    const node_id one = nl.add_const(true);
    const node_id mix = nl.add_gate(gate_kind::or_, {all, par, one});
    const node_id useful = nl.add_binary(gate_kind::xnor_, all, par);
    nl.mark_output(mix, "m");
    nl.mark_output(useful, "u");

    const netlist a = expand_xor(nl);
    const netlist b = limit_arity(a, 2);
    const netlist c = propagate_constants(b);
    expect_equivalent(nl, c);
}

}  // namespace
}  // namespace wrpt
