// Tests for the parallel-pattern logic simulator and the PPSFP fault
// simulator: cross-checks against naive single-pattern reference paths.

#include "sim/logic_sim.h"

#include <bit>

#include <gtest/gtest.h>

#include "helpers.h"

#include "fault/fault.h"
#include "gen/comparator.h"
#include "gen/random_circuit.h"
#include "sim/fault_sim.h"
#include "sim/patterns.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

/// Naive reference: evaluate every node with scalar gate semantics.
std::vector<bool> naive_eval_all(const netlist& nl,
                                 const std::vector<bool>& inputs) {
    std::vector<bool> value(nl.node_count());
    for (node_id n = 0; n < nl.node_count(); ++n) {
        if (nl.kind(n) == gate_kind::input) {
            value[n] = inputs[nl.input_index(n)];
            continue;
        }
        bool fi[64];
        std::size_t count = 0;
        for (node_id f : nl.fanins(n)) fi[count++] = value[f];
        value[n] = eval_gate_bool(nl.kind(n), fi, count);
    }
    return value;
}

/// Naive faulty evaluation: force the line, recompute everything.
std::vector<bool> naive_faulty_outputs(const netlist& nl,
                                       const std::vector<bool>& inputs,
                                       const fault& f) {
    std::vector<bool> value(nl.node_count());
    for (node_id n = 0; n < nl.node_count(); ++n) {
        bool fi[64];
        const auto fanins = nl.fanins(n);
        for (std::size_t k = 0; k < fanins.size(); ++k) {
            bool v = value[fanins[k]];
            if (!f.is_stem() && f.where == n &&
                static_cast<std::int32_t>(k) == f.pin)
                v = stuck_value(f.value);
            fi[k] = v;
        }
        if (nl.kind(n) == gate_kind::input)
            value[n] = inputs[nl.input_index(n)];
        else
            value[n] = eval_gate_bool(nl.kind(n), fi, fanins.size());
        if (f.is_stem() && f.where == n) value[n] = stuck_value(f.value);
    }
    std::vector<bool> out;
    for (node_id o : nl.outputs()) out.push_back(value[o]);
    return out;
}

class sim_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(sim_seeds, block_simulation_matches_naive) {
    random_circuit_spec spec;
    spec.inputs = 9;
    spec.gates = 70;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    simulator sim(nl);
    rng r(spec.seed * 7 + 1);
    std::vector<std::uint64_t> words(nl.input_count());
    for (auto& w : words) w = r.next_word();
    sim.simulate(words);
    for (int b = 0; b < 64; b += 13) {
        std::vector<bool> in(nl.input_count());
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = ((words[i] >> b) & 1ULL) != 0;
        const auto naive = naive_eval_all(nl, in);
        for (node_id n = 0; n < nl.node_count(); ++n)
            ASSERT_EQ(((sim.value(n) >> b) & 1ULL) != 0, naive[n])
                << "node " << n << " bit " << b;
    }
}

TEST_P(sim_seeds, detect_mask_matches_naive_fault_injection) {
    random_circuit_spec spec;
    spec.inputs = 8;
    spec.gates = 50;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    const auto faults = generate_full_faults(nl);
    simulator sim(nl);
    rng r(spec.seed + 99);
    std::vector<std::uint64_t> words(nl.input_count());
    for (auto& w : words) w = r.next_word();
    sim.simulate(words);

    // Reference outputs per pattern.
    std::vector<std::vector<bool>> patterns(8);
    for (int b = 0; b < 8; ++b) {
        patterns[b].resize(nl.input_count());
        for (std::size_t i = 0; i < nl.input_count(); ++i)
            patterns[b][i] = ((words[i] >> b) & 1ULL) != 0;
    }

    for (const fault& f : faults) {
        const std::uint64_t mask = sim.detect_mask(f);
        for (int b = 0; b < 8; ++b) {
            const auto good = evaluate(nl, patterns[b]);
            const auto bad = naive_faulty_outputs(nl, patterns[b], f);
            const bool detected = good != bad;
            ASSERT_EQ(((mask >> b) & 1ULL) != 0, detected)
                << to_string(nl, f) << " pattern " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, sim_seeds, ::testing::Values(2, 4, 6, 8, 10));

TEST(simulator, rejects_wrong_word_count) {
    const netlist nl = make_cascaded_comparator(1);
    simulator sim(nl);
    std::vector<std::uint64_t> words(3);
    EXPECT_THROW(sim.simulate(words), invalid_input);
}

TEST(fault_sim, detects_and_drops) {
    const netlist nl = make_cascaded_comparator(1);
    const auto faults = generate_full_faults(nl);
    fault_sim_options opt;
    opt.max_patterns = 1024;
    const auto res = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 0x5eed, opt);
    // The simulator stops early once the live list drains (fault dropping).
    EXPECT_LE(res.patterns_applied, 1024u);
    // An 8-input comparator is fully random testable at 1024 patterns.
    EXPECT_EQ(res.detected_count, faults.size());
    for (const auto& fd : res.first_detected) {
        ASSERT_TRUE(fd.has_value());
        EXPECT_LT(*fd, res.patterns_applied);
    }
}

TEST(fault_sim, first_detection_consistent_with_no_dropping) {
    const netlist nl = make_cascaded_comparator(1);
    const auto faults = generate_full_faults(nl);
    fault_sim_options drop, keep;
    drop.max_patterns = keep.max_patterns = 256;
    keep.drop_detected = false;
    const auto a = run_weighted_fault_simulation(nl, faults,
                                                 uniform_weights(nl), 7, drop);
    const auto b = run_weighted_fault_simulation(nl, faults,
                                                 uniform_weights(nl), 7, keep);
    ASSERT_EQ(a.first_detected.size(), b.first_detected.size());
    for (std::size_t i = 0; i < a.first_detected.size(); ++i)
        EXPECT_EQ(a.first_detected[i], b.first_detected[i]);
}

TEST(fault_sim, respects_non_multiple_of_64_budget) {
    const netlist nl = make_cascaded_comparator(1);
    const auto faults = generate_full_faults(nl);
    fault_sim_options opt;
    opt.max_patterns = 100;
    opt.drop_detected = false;  // keep simulating: the budget must bind
    const auto res = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 3, opt);
    EXPECT_EQ(res.patterns_applied, 100u);
    for (const auto& fd : res.first_detected) {
        if (fd.has_value()) {
            EXPECT_LT(*fd, 100u);
        }
    }
}

TEST(fault_sim, coverage_counts_monotone_in_pattern_count) {
    const netlist nl = make_cascaded_comparator(2);
    const auto faults = generate_full_faults(nl);
    fault_sim_options opt;
    opt.max_patterns = 2048;
    const auto res = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 9, opt);
    std::size_t prev = 0;
    for (std::uint64_t n = 16; n <= 2048; n *= 2) {
        const std::size_t now = res.detected_within(n);
        EXPECT_GE(now, prev);
        prev = now;
    }
    const auto curve = coverage_curve(res, faults.size());
    ASSERT_FALSE(curve.empty());
    EXPECT_EQ(curve.back().first, res.patterns_applied);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].second, curve[i - 1].second);
}

TEST(fault_sim, weighted_patterns_hit_rare_faults) {
    // The AND-tree output stuck-at-0 of a 12-input conjunction needs the
    // all-ones pattern: p = 2^-12 conventionally, (0.9)^12 ~ 0.28 with
    // weights 0.9. 512 weighted patterns find it; 512 conventional ones
    // almost surely do not.
    netlist nl("andtree");
    std::vector<node_id> xs;
    for (int i = 0; i < 12; ++i) xs.push_back(nl.add_input(testing::label_x(i)));
    const node_id root = nl.add_tree(gate_kind::and_, xs);
    nl.mark_output(root, "y");
    const std::vector<fault> faults{{root, -1, stuck_at::zero}};

    fault_sim_options opt;
    opt.max_patterns = 512;
    const auto conventional = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl, 0.5), 1234, opt);
    const auto weighted = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl, 0.9), 1234, opt);
    EXPECT_EQ(conventional.detected_count, 0u);
    EXPECT_EQ(weighted.detected_count, 1u);
}

TEST(patterns, explicit_source_padding_and_order) {
    std::vector<std::vector<bool>> pats{{true, false}, {false, true},
                                        {true, true}};
    explicit_pattern_source src(pats);
    std::vector<std::uint64_t> words;
    src.next_block(words);
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[0] & 0x7, 0b101u);
    EXPECT_EQ(words[1] & 0x7, 0b110u);
    EXPECT_EQ(words[0] >> 3, 0u);  // zero padding
}

TEST(patterns, weighted_source_respects_weights) {
    weight_vector w{0.1, 0.9, 0.5};
    weighted_random_source src(w, 42);
    std::vector<std::uint64_t> words;
    std::uint64_t ones[3] = {0, 0, 0};
    const int blocks = 2000;
    for (int b = 0; b < blocks; ++b) {
        src.next_block(words);
        for (int i = 0; i < 3; ++i)
            ones[i] += static_cast<std::uint64_t>(std::popcount(words[i]));
    }
    for (int i = 0; i < 3; ++i) {
        const double freq = static_cast<double>(ones[i]) / (64.0 * blocks);
        EXPECT_NEAR(freq, w[i], 0.01) << "input " << i;
    }
}

TEST(patterns, draw_pattern_dimension) {
    rng r(5);
    const auto p = draw_pattern(r, {0.0, 1.0, 0.5});
    ASSERT_EQ(p.size(), 3u);
    EXPECT_FALSE(p[0]);
    EXPECT_TRUE(p[1]);
}

}  // namespace
}  // namespace wrpt
