// Tests for util/stats.

#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace wrpt {
namespace {

TEST(running_stats, empty) {
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(running_stats, known_values) {
    running_stats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic example set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(running_stats, single_sample_variance_zero) {
    running_stats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(wilson, brackets_proportion) {
    const auto iv = wilson_interval(80, 100);
    EXPECT_LT(iv.low, 0.8);
    EXPECT_GT(iv.high, 0.8);
    EXPECT_GT(iv.low, 0.70);
    EXPECT_LT(iv.high, 0.88);
}

TEST(wilson, extreme_counts) {
    const auto zero = wilson_interval(0, 50);
    EXPECT_DOUBLE_EQ(zero.low, 0.0);
    EXPECT_GT(zero.high, 0.0);
    const auto all = wilson_interval(50, 50);
    EXPECT_LT(all.low, 1.0);
    EXPECT_DOUBLE_EQ(all.high, 1.0);
}

TEST(wilson, higher_z_widens) {
    const auto narrow = wilson_interval(30, 60, 1.96);
    const auto wide = wilson_interval(30, 60, 3.29);
    EXPECT_LT(wide.low, narrow.low);
    EXPECT_GT(wide.high, narrow.high);
}

TEST(wilson, invalid_inputs_throw) {
    EXPECT_THROW(wilson_interval(1, 0), invalid_input);
    EXPECT_THROW(wilson_interval(5, 4), invalid_input);
}

TEST(mean_of, basic) {
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(max_abs_diff, basic) {
    EXPECT_DOUBLE_EQ(max_abs_diff({1.0, 2.0}, {1.5, 1.0}), 1.0);
    EXPECT_THROW(max_abs_diff({1.0}, {1.0, 2.0}), invalid_input);
}

}  // namespace
}  // namespace wrpt
