// Functional tests of the arithmetic generators against reference models:
// wordlib blocks, the SN7485-style comparator (S1), the restoring array
// divider (S2) and the array multiplier (c6288-like).

#include <bit>

#include <gtest/gtest.h>

#include "gen/comparator.h"
#include "gen/divider.h"
#include "gen/multiplier.h"
#include "gen/wordlib.h"
#include "helpers.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace wrpt {
namespace {

using ::wrpt::testing::get_bit;
using ::wrpt::testing::get_bus;
using ::wrpt::testing::set_bus;

// --- wordlib blocks ----------------------------------------------------------

TEST(wordlib, ripple_add_exhaustive_4bit) {
    netlist nl("add4");
    const bus a = add_input_bus(nl, "A", 4);
    const bus b = add_input_bus(nl, "B", 4);
    const add_result r = ripple_add(nl, a, b);
    mark_output_bus(nl, r.sum, "S");
    nl.mark_output(r.carry_out, "CO");
    nl.validate();
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t y = 0; y < 16; ++y) {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "A", x, 4);
            set_bus(nl, in, "B", y, 4);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "S", 4), (x + y) & 0xf);
            EXPECT_EQ(get_bit(nl, out, "CO"), ((x + y) >> 4) != 0);
        }
    }
}

TEST(wordlib, ripple_add_mixed_width_and_cin) {
    netlist nl("addmix");
    const bus a = add_input_bus(nl, "A", 6);
    const bus b = add_input_bus(nl, "B", 3);
    const node_id cin = nl.add_input("CIN");
    const add_result r = ripple_add(nl, a, b, cin);
    mark_output_bus(nl, r.sum, "S");
    nl.mark_output(r.carry_out, "CO");
    nl.validate();
    rng rg(17);
    for (int t = 0; t < 200; ++t) {
        const std::uint64_t x = rg.next_below(64), y = rg.next_below(8);
        const bool c = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", x, 6);
        set_bus(nl, in, "B", y, 3);
        ::wrpt::testing::set_bit(nl, in, "CIN", c);
        const auto out = evaluate(nl, in);
        const std::uint64_t total = x + y + (c ? 1 : 0);
        EXPECT_EQ(get_bus(nl, out, "S", 6), total & 0x3f);
        EXPECT_EQ(get_bit(nl, out, "CO"), (total >> 6) != 0);
    }
}

TEST(wordlib, ripple_sub_exhaustive_4bit) {
    netlist nl("sub4");
    const bus a = add_input_bus(nl, "A", 4);
    const bus b = add_input_bus(nl, "B", 4);
    const sub_result r = ripple_sub(nl, a, b);
    mark_output_bus(nl, r.diff, "D");
    nl.mark_output(r.borrow_out, "BO");
    nl.validate();
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t y = 0; y < 16; ++y) {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "A", x, 4);
            set_bus(nl, in, "B", y, 4);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "D", 4), (x - y) & 0xf);
            EXPECT_EQ(get_bit(nl, out, "BO"), x < y);
        }
    }
}

TEST(wordlib, compare_and_equality_random) {
    netlist nl("cmp6");
    const bus a = add_input_bus(nl, "A", 6);
    const bus b = add_input_bus(nl, "B", 6);
    const compare_result c = magnitude_compare(nl, a, b);
    nl.mark_output(c.eq, "EQ");
    nl.mark_output(c.gt, "GT");
    nl.mark_output(c.lt, "LT");
    nl.mark_output(equality(nl, a, b), "EQ2");
    nl.validate();
    rng rg(23);
    for (int t = 0; t < 300; ++t) {
        // Half the trials force equality, which is rare otherwise.
        const std::uint64_t x = rg.next_below(64);
        const std::uint64_t y = (t % 2 == 0) ? x : rg.next_below(64);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", x, 6);
        set_bus(nl, in, "B", y, 6);
        const auto out = evaluate(nl, in);
        EXPECT_EQ(get_bit(nl, out, "EQ"), x == y);
        EXPECT_EQ(get_bit(nl, out, "GT"), x > y);
        EXPECT_EQ(get_bit(nl, out, "LT"), x < y);
        EXPECT_EQ(get_bit(nl, out, "EQ2"), x == y);
    }
}

TEST(wordlib, parity_mux_invert) {
    netlist nl("misc");
    const bus a = add_input_bus(nl, "A", 5);
    const node_id sel = nl.add_input("SEL");
    nl.mark_output(parity(nl, a), "P");
    const bus inv = invert_bus(nl, a);
    nl.mark_output(mux2(nl, sel, a[0], inv[0]), "M");
    nl.mark_output(any_set(nl, a), "ANY");
    nl.mark_output(all_set(nl, a), "ALL");
    nl.validate();
    rng rg(31);
    for (int t = 0; t < 200; ++t) {
        const std::uint64_t x = rg.next_below(32);
        const bool s = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", x, 5);
        ::wrpt::testing::set_bit(nl, in, "SEL", s);
        const auto out = evaluate(nl, in);
        EXPECT_EQ(get_bit(nl, out, "P"), (std::popcount(x) & 1) != 0);
        const bool a0 = (x & 1) != 0;
        EXPECT_EQ(get_bit(nl, out, "M"), s ? !a0 : a0);
        EXPECT_EQ(get_bit(nl, out, "ANY"), x != 0);
        EXPECT_EQ(get_bit(nl, out, "ALL"), x == 31);
    }
}

TEST(wordlib, ref_bit_helpers) {
    const auto bits = ref::to_bits(0b1011, 6);
    EXPECT_EQ(bits.size(), 6u);
    EXPECT_TRUE(bits[0]);
    EXPECT_FALSE(bits[2]);
    EXPECT_EQ(ref::from_bits(bits), 0b1011u);
}

// --- comparator (S1) ---------------------------------------------------------

class comparator_widths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(comparator_widths, matches_reference) {
    const std::size_t slices = GetParam();
    const std::size_t width = slices * 4;
    const netlist nl = make_cascaded_comparator(slices);
    rng rg(41 + slices);
    for (int t = 0; t < 300; ++t) {
        const std::uint64_t mask = (1ULL << width) - 1;
        std::uint64_t x = rg.next_word() & mask;
        std::uint64_t y = rg.next_word() & mask;
        if (t % 3 == 0) y = x;                     // equality path
        if (t % 7 == 0) y = x ^ 1;                 // adjacent values
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", x, width);
        set_bus(nl, in, "B", y, width);
        const auto out = evaluate(nl, in);
        const comparator_verdict v = compare_reference(x, y);
        EXPECT_EQ(get_bit(nl, out, "AgtB"), v.gt) << x << " vs " << y;
        EXPECT_EQ(get_bit(nl, out, "AeqB"), v.eq);
        EXPECT_EQ(get_bit(nl, out, "AltB"), v.lt);
    }
}

INSTANTIATE_TEST_SUITE_P(slices, comparator_widths,
                         ::testing::Values(1, 2, 3, 6));

TEST(comparator, s1_shape) {
    const netlist s1 = make_s1();
    EXPECT_EQ(s1.name(), "S1");
    EXPECT_EQ(s1.input_count(), 48u);
    EXPECT_EQ(s1.output_count(), 3u);
    const auto st = s1.stats();
    EXPECT_GT(st.gate_count, 100u);  // six gate-level slices
}

TEST(comparator, exhaustive_one_slice) {
    const netlist nl = make_cascaded_comparator(1);
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t y = 0; y < 16; ++y) {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "A", x, 4);
            set_bus(nl, in, "B", y, 4);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bit(nl, out, "AgtB"), x > y);
            EXPECT_EQ(get_bit(nl, out, "AeqB"), x == y);
            EXPECT_EQ(get_bit(nl, out, "AltB"), x < y);
        }
    }
}

// --- divider (S2) ------------------------------------------------------------

struct divider_case {
    std::size_t dividend_width;
    std::size_t divisor_width;
};

class divider_widths : public ::testing::TestWithParam<divider_case> {};

TEST_P(divider_widths, matches_reference_and_integer_division) {
    const auto [dw, vw] = GetParam();
    const netlist nl = make_divider(dw, vw, "div");
    rng rg(1000 + dw * 10 + vw);
    for (int t = 0; t < 150; ++t) {
        const std::uint64_t d = rg.next_word() & ((1ULL << dw) - 1);
        std::uint64_t v = rg.next_word() & ((1ULL << vw) - 1);
        if (t % 11 == 0) v = 0;  // division by zero convention
        if (t % 5 == 0) v = 1;
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "D", d, dw);
        set_bus(nl, in, "V", v, vw);
        const auto out = evaluate(nl, in);
        const divider_verdict ref = divide_reference(d, v, dw, vw);
        EXPECT_EQ(get_bus(nl, out, "Q", dw), ref.quotient) << d << "/" << v;
        EXPECT_EQ(get_bus(nl, out, "R", vw), ref.remainder) << d << "%" << v;
        EXPECT_EQ(get_bit(nl, out, "DIVBY0"), v == 0);
        if (v != 0) {
            // The reference itself must agree with integer division.
            EXPECT_EQ(ref.quotient, d / v);
            EXPECT_EQ(ref.remainder, d % v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(widths, divider_widths,
                         ::testing::Values(divider_case{4, 4},
                                           divider_case{8, 4},
                                           divider_case{12, 6},
                                           divider_case{16, 8}));

TEST(divider, s2_shape) {
    const netlist s2 = make_s2();
    EXPECT_EQ(s2.name(), "S2");
    EXPECT_EQ(s2.input_count(), 48u);   // 32-bit dividend + 16-bit divisor
    EXPECT_EQ(s2.output_count(), 49u);  // Q32 + R16 + DIVBY0
    EXPECT_GT(s2.stats().gate_count, 2000u);
}

TEST(divider, exhaustive_small) {
    const netlist nl = make_divider(5, 3, "div53");
    for (std::uint64_t d = 0; d < 32; ++d) {
        for (std::uint64_t v = 1; v < 8; ++v) {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "D", d, 5);
            set_bus(nl, in, "V", v, 3);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "Q", 5), d / v);
            EXPECT_EQ(get_bus(nl, out, "R", 3), d % v);
        }
    }
}

// --- multiplier (c6288-like) -------------------------------------------------

struct mult_case {
    std::size_t wa;
    std::size_t wb;
};

class multiplier_widths : public ::testing::TestWithParam<mult_case> {};

TEST_P(multiplier_widths, matches_reference) {
    const auto [wa, wb] = GetParam();
    const netlist nl = make_multiplier(wa, wb, "mul");
    rng rg(77 + wa + wb);
    for (int t = 0; t < 150; ++t) {
        const std::uint64_t x = rg.next_word() & ((1ULL << wa) - 1);
        const std::uint64_t y = rg.next_word() & ((1ULL << wb) - 1);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", x, wa);
        set_bus(nl, in, "B", y, wb);
        const auto out = evaluate(nl, in);
        EXPECT_EQ(get_bus(nl, out, "P", wa + wb),
                  multiply_reference(x, y, wa, wb))
            << x << "*" << y;
    }
}

INSTANTIATE_TEST_SUITE_P(widths, multiplier_widths,
                         ::testing::Values(mult_case{2, 2}, mult_case{3, 5},
                                           mult_case{4, 4}, mult_case{8, 8},
                                           mult_case{16, 16}));

TEST(multiplier, exhaustive_4x4) {
    const netlist nl = make_multiplier(4, 4, "mul44");
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t y = 0; y < 16; ++y) {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "A", x, 4);
            set_bus(nl, in, "B", y, 4);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "P", 8), x * y);
        }
    }
}

TEST(multiplier, c6288_like_shape) {
    const netlist nl = make_c6288_like();
    EXPECT_EQ(nl.input_count(), 32u);
    EXPECT_EQ(nl.output_count(), 32u);
    const auto st = nl.stats();
    EXPECT_GT(st.gate_count, 1000u);
    EXPECT_LT(st.gate_count, 4000u);  // c6288 is 2406 gates
}

}  // namespace
}  // namespace wrpt
