// Functional tests for the ECC, interrupt controller, datapath and
// pathological generators, plus the suite registry.

#include <bit>

#include <gtest/gtest.h>

#include "gen/datapath.h"
#include "gen/ecc.h"
#include "gen/interrupt.h"
#include "gen/pathological.h"
#include "gen/suite.h"
#include "helpers.h"
#include "sim/logic_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

using ::wrpt::testing::get_bit;
using ::wrpt::testing::get_bus;
using ::wrpt::testing::set_bit;
using ::wrpt::testing::set_bus;

// --- Hamming SEC / SECDED ----------------------------------------------------

class sec_widths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(sec_widths, corrects_all_single_data_bit_errors) {
    const std::size_t d = GetParam();
    const std::size_t c = hamming_check_bits(d);
    const netlist nl = make_sec_corrector(d, "sec");
    rng rg(5 + d);
    for (int t = 0; t < 40; ++t) {
        const std::uint64_t data = rg.next_word() & ((d == 64) ? ~0ULL : ((1ULL << d) - 1));
        const std::uint64_t check = hamming_encode(data, d);
        for (std::size_t e = 0; e <= d; ++e) {
            // e == d: no error; else flip data bit e.
            const std::uint64_t received =
                (e == d) ? data : (data ^ (1ULL << e));
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "D", received, d);
            set_bus(nl, in, "C", check, c);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "O", d), data)
                << "data=" << data << " flipped bit " << e;
            EXPECT_EQ(get_bit(nl, out, "ERR"), e != d);
        }
    }
}

TEST_P(sec_widths, check_bit_errors_leave_data_intact) {
    const std::size_t d = GetParam();
    const std::size_t c = hamming_check_bits(d);
    const netlist nl = make_sec_corrector(d, "sec");
    rng rg(7 + d);
    for (int t = 0; t < 40; ++t) {
        const std::uint64_t data = rg.next_word() & ((1ULL << d) - 1);
        const std::uint64_t check = hamming_encode(data, d);
        for (std::size_t e = 0; e < c; ++e) {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "D", data, d);
            set_bus(nl, in, "C", check ^ (1ULL << e), c);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "O", d), data);
            EXPECT_TRUE(get_bit(nl, out, "ERR"));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(widths, sec_widths, ::testing::Values(4, 8, 16, 32));

TEST(secded, flags_double_errors) {
    const std::size_t d = 16;
    const std::size_t c = hamming_check_bits(d);
    const netlist nl = make_secded_corrector(d, "secded");
    rng rg(11);
    for (int t = 0; t < 60; ++t) {
        const std::uint64_t data = rg.next_word() & 0xffff;
        const std::uint64_t check = hamming_encode(data, d);
        // Overall parity bit: even parity over data+check+OP.
        bool op = false;
        for (std::size_t i = 0; i < d; ++i)
            if ((data >> i) & 1ULL) op = !op;
        for (std::size_t j = 0; j < c; ++j)
            if ((check >> j) & 1ULL) op = !op;

        // No error.
        {
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "D", data, d);
            set_bus(nl, in, "C", check, c);
            set_bit(nl, in, "OP", op);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "O", d), data);
            EXPECT_FALSE(get_bit(nl, out, "ERR"));
            EXPECT_FALSE(get_bit(nl, out, "DERR"));
        }
        // Single data error: corrected, not flagged double.
        {
            const std::size_t e = rg.next_below(d);
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "D", data ^ (1ULL << e), d);
            set_bus(nl, in, "C", check, c);
            set_bit(nl, in, "OP", op);
            const auto out = evaluate(nl, in);
            EXPECT_EQ(get_bus(nl, out, "O", d), data);
            EXPECT_TRUE(get_bit(nl, out, "ERR"));
            EXPECT_FALSE(get_bit(nl, out, "DERR"));
        }
        // Double data error: flagged.
        {
            const std::size_t e1 = rg.next_below(d);
            std::size_t e2 = rg.next_below(d);
            while (e2 == e1) e2 = rg.next_below(d);
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "D", data ^ (1ULL << e1) ^ (1ULL << e2), d);
            set_bus(nl, in, "C", check, c);
            set_bit(nl, in, "OP", op);
            const auto out = evaluate(nl, in);
            EXPECT_TRUE(get_bit(nl, out, "ERR"));
            EXPECT_TRUE(get_bit(nl, out, "DERR"));
        }
    }
}

TEST(secded, reference_decode_agrees_with_circuit_semantics) {
    const std::size_t d = 16;
    rng rg(13);
    for (int t = 0; t < 50; ++t) {
        const std::uint64_t data = rg.next_word() & 0xffff;
        const std::uint64_t check = hamming_encode(data, d);
        const sec_verdict v = hamming_decode(data, check, d, true, false);
        // Without the overall-parity bit correction the no-error word must
        // decode cleanly.
        EXPECT_EQ(v.corrected, data);
        EXPECT_FALSE(v.error);
    }
}

TEST(ecc, c499_c1355_same_function_different_structure) {
    const netlist a = make_c499_like();
    const netlist b = make_c1355_like();
    EXPECT_EQ(a.input_count(), b.input_count());
    EXPECT_EQ(a.output_count(), b.output_count());
    // c1355-like has no xors and is larger.
    for (node_id n = 0; n < b.node_count(); ++n)
        EXPECT_NE(b.kind(n), gate_kind::xor_);
    EXPECT_GT(b.stats().gate_count, a.stats().gate_count);
    ::wrpt::testing::expect_equivalent(a, b);
}

// --- interrupt controller ----------------------------------------------------

TEST(interrupt, matches_reference_random) {
    const netlist nl = make_interrupt_controller();
    EXPECT_EQ(nl.input_count(), 36u);
    EXPECT_EQ(nl.output_count(), 7u);
    rng rg(17);
    for (int t = 0; t < 500; ++t) {
        const unsigned e = static_cast<unsigned>(rg.next_below(512));
        const unsigned a = static_cast<unsigned>(rg.next_below(512));
        const unsigned b = static_cast<unsigned>(rg.next_below(512));
        const unsigned c = static_cast<unsigned>(rg.next_below(512));
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "E", e, 9);
        set_bus(nl, in, "A", a, 9);
        set_bus(nl, in, "B", b, 9);
        set_bus(nl, in, "C", c, 9);
        const auto out = evaluate(nl, in);
        const interrupt_verdict v = interrupt_reference(e, a, b, c);
        EXPECT_EQ(get_bit(nl, out, "PA"), v.grant_a);
        EXPECT_EQ(get_bit(nl, out, "PB"), v.grant_b);
        EXPECT_EQ(get_bit(nl, out, "PC"), v.grant_c);
        EXPECT_EQ(get_bus(nl, out, "CH", 4), v.channel);
    }
}

TEST(interrupt, priority_order) {
    // A bank always beats B and C; highest channel wins within a bank.
    const netlist nl = make_interrupt_controller();
    std::vector<bool> in(nl.input_count());
    set_bus(nl, in, "E", 0x1ff, 9);
    set_bus(nl, in, "A", 0b000010010, 9);
    set_bus(nl, in, "B", 0x1ff, 9);
    set_bus(nl, in, "C", 0, 9);
    const auto out = evaluate(nl, in);
    EXPECT_TRUE(get_bit(nl, out, "PA"));
    EXPECT_FALSE(get_bit(nl, out, "PB"));
    EXPECT_EQ(get_bus(nl, out, "CH", 4), 4u);  // highest set bit of A
}

// --- datapath circuits -------------------------------------------------------

TEST(datapath, c880_matches_reference) {
    const netlist nl = make_c880_like();
    rng rg(19);
    for (int t = 0; t < 300; ++t) {
        const std::uint64_t a = rg.next_word() & 0xff;
        const std::uint64_t b = rg.next_word() & 0xff;
        const std::uint64_t c = rg.next_word() & 0xff;
        const std::uint64_t d = rg.next_word() & 0xff;
        const unsigned s = static_cast<unsigned>(rg.next_below(4));
        const bool m = rg.next_bool(0.5), cin = rg.next_bool(0.5),
                   tt = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, 8);
        set_bus(nl, in, "B", b, 8);
        set_bus(nl, in, "C", c, 8);
        set_bus(nl, in, "D", d, 8);
        set_bit(nl, in, "S0", (s & 1) != 0);
        set_bit(nl, in, "S1", (s & 2) != 0);
        set_bit(nl, in, "M", m);
        set_bit(nl, in, "CIN", cin);
        set_bit(nl, in, "T", tt);
        const auto out = evaluate(nl, in);
        const c880_verdict v = c880_reference(a, b, c, d, s, m, cin, tt);
        EXPECT_EQ(get_bus(nl, out, "W", 8), v.w);
        EXPECT_EQ(get_bit(nl, out, "WCOUT"), v.carry);
        EXPECT_EQ(get_bit(nl, out, "PY"), v.parity_y);
        EXPECT_EQ(get_bit(nl, out, "ZZERO"), v.zero_z);
    }
}

TEST(datapath, c2670_matches_reference_incl_equality_path) {
    const netlist nl = make_c2670_like();
    rng rg(23);
    for (int t = 0; t < 300; ++t) {
        const std::uint64_t a = rg.next_word() & 0xfff;
        const std::uint64_t b = rg.next_word() & 0xfff;
        const std::uint64_t d = rg.next_word() & 0xfff;
        const std::uint64_t e = rg.next_word() & 0xffff;
        // Force the rare equality path half the time.
        const std::uint64_t f = (t % 2 == 0) ? e : (rg.next_word() & 0xffff);
        const unsigned s = static_cast<unsigned>(rg.next_below(4));
        const bool m = rg.next_bool(0.5), cin = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, 12);
        set_bus(nl, in, "B", b, 12);
        set_bus(nl, in, "D", d, 12);
        set_bus(nl, in, "E", e, 16);
        set_bus(nl, in, "F", f, 16);
        set_bit(nl, in, "S0", (s & 1) != 0);
        set_bit(nl, in, "S1", (s & 2) != 0);
        set_bit(nl, in, "M", m);
        set_bit(nl, in, "CIN", cin);
        const auto out = evaluate(nl, in);
        const c2670_verdict v = c2670_reference(a, b, s, m, cin, e, f, d);
        EXPECT_EQ(get_bus(nl, out, "OUT", 12), v.out);
        EXPECT_EQ(get_bit(nl, out, "EQ"), v.eq);
        EXPECT_EQ(get_bit(nl, out, "PE"), v.parity_e);
        EXPECT_EQ(get_bit(nl, out, "PF"), v.parity_f);
        EXPECT_EQ(get_bit(nl, out, "ZERO"), v.zero);
    }
}

TEST(datapath, c3540_matches_reference) {
    const netlist nl = make_c3540_like();
    rng rg(29);
    for (int t = 0; t < 400; ++t) {
        const std::uint64_t a = rg.next_word() & 0xff;
        const std::uint64_t b = rg.next_word() & 0xff;
        const std::uint64_t u = rg.next_word() & 0xff;
        const std::uint64_t tt = (t % 2 == 0) ? a : (rg.next_word() & 0xff);
        const bool op = rg.next_bool(0.5), mode = rg.next_bool(0.5),
                   cin = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, 8);
        set_bus(nl, in, "B", b, 8);
        set_bus(nl, in, "T", tt, 8);
        set_bus(nl, in, "U", u, 8);
        set_bit(nl, in, "OP", op);
        set_bit(nl, in, "MODE", mode);
        set_bit(nl, in, "CIN", cin);
        const auto out = evaluate(nl, in);
        const c3540_verdict v = c3540_reference(a, b, op, mode, cin);
        EXPECT_EQ(get_bus(nl, out, "F", 8), v.f)
            << a << (op ? "-" : "+") << b << " mode=" << mode;
        EXPECT_EQ(get_bit(nl, out, "CARRY"), v.carry);
        EXPECT_EQ(get_bit(nl, out, "ZERO"), v.zero);
        EXPECT_EQ(get_bit(nl, out, "EQ16"), a == tt && b == u);
    }
}

TEST(datapath, c3540_bcd_addition_is_correct_decimal) {
    // For valid BCD operands in add mode, the result is the BCD sum.
    const netlist nl = make_c3540_like();
    for (unsigned x = 0; x <= 99; x += 7) {
        for (unsigned y = 0; y <= 99; y += 9) {
            const std::uint64_t a = ((x / 10) << 4) | (x % 10);
            const std::uint64_t b = ((y / 10) << 4) | (y % 10);
            std::vector<bool> in(nl.input_count());
            set_bus(nl, in, "A", a, 8);
            set_bus(nl, in, "B", b, 8);
            set_bus(nl, in, "T", 0, 8);
            set_bus(nl, in, "U", 0, 8);
            set_bit(nl, in, "OP", false);
            set_bit(nl, in, "MODE", true);
            set_bit(nl, in, "CIN", false);
            const auto out = evaluate(nl, in);
            const unsigned sum = x + y;
            const std::uint64_t expect_bcd =
                (((sum / 10) % 10) << 4) | (sum % 10);
            EXPECT_EQ(get_bus(nl, out, "F", 8), expect_bcd)
                << x << "+" << y;
            EXPECT_EQ(get_bit(nl, out, "CARRY"), sum > 99);
        }
    }
}

TEST(datapath, c5315_matches_reference) {
    const netlist nl = make_c5315_like();
    rng rg(31);
    for (int t = 0; t < 300; ++t) {
        const std::uint64_t a = rg.next_word() & 0x1ff;
        const std::uint64_t b = rg.next_word() & 0x1ff;
        const std::uint64_t c = rg.next_word() & 0x1ff;
        const std::uint64_t d = rg.next_word() & 0x1ff;
        const unsigned s1 = static_cast<unsigned>(rg.next_below(4));
        const unsigned s2 = static_cast<unsigned>(rg.next_below(4));
        const bool m1 = rg.next_bool(0.5), m2 = rg.next_bool(0.5);
        const bool cin1 = rg.next_bool(0.5), cin2 = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, 9);
        set_bus(nl, in, "B", b, 9);
        set_bus(nl, in, "C", c, 9);
        set_bus(nl, in, "D", d, 9);
        set_bit(nl, in, "S10", (s1 & 1) != 0);
        set_bit(nl, in, "S11", (s1 & 2) != 0);
        set_bit(nl, in, "M1", m1);
        set_bit(nl, in, "CIN1", cin1);
        set_bit(nl, in, "S20", (s2 & 1) != 0);
        set_bit(nl, in, "S21", (s2 & 2) != 0);
        set_bit(nl, in, "M2", m2);
        set_bit(nl, in, "CIN2", cin2);
        const auto out = evaluate(nl, in);
        const c5315_verdict v =
            c5315_reference(a, b, c, d, s1, m1, cin1, s2, m2, cin2);
        EXPECT_EQ(get_bus(nl, out, "F1_", 9), v.f1);
        EXPECT_EQ(get_bus(nl, out, "F2_", 9), v.f2);
        EXPECT_EQ(get_bit(nl, out, "GT"), v.gt);
        EXPECT_EQ(get_bit(nl, out, "EQ"), v.eq);
        EXPECT_EQ(get_bit(nl, out, "LT"), v.lt);
        EXPECT_EQ(get_bit(nl, out, "P1"), v.parity1);
        EXPECT_EQ(get_bit(nl, out, "P2"), v.parity2);
    }
}

TEST(datapath, c7552_matches_reference) {
    const netlist nl = make_c7552_like();
    rng rg(37);
    const std::uint64_t mask = (1ULL << 34) - 1;
    for (int t = 0; t < 200; ++t) {
        const std::uint64_t a = rg.next_word() & mask;
        const std::uint64_t b = (t % 2 == 0) ? a : (rg.next_word() & mask);
        const std::uint64_t c = rg.next_word() & mask;
        const bool cin = rg.next_bool(0.5);
        std::vector<bool> in(nl.input_count());
        set_bus(nl, in, "A", a, 34);
        set_bus(nl, in, "B", b, 34);
        set_bus(nl, in, "C", c, 34);
        set_bit(nl, in, "CIN", cin);
        const auto out = evaluate(nl, in);
        const c7552_verdict v = c7552_reference(a, b, c, cin);
        EXPECT_EQ(get_bus(nl, out, "S", 34), v.sum);
        EXPECT_EQ(get_bit(nl, out, "COUT"), v.carry);
        EXPECT_EQ(get_bus(nl, out, "X", 34), v.out);
        EXPECT_EQ(get_bit(nl, out, "EQ1"), v.eq);
        EXPECT_EQ(get_bit(nl, out, "GT1"), v.gt);
        EXPECT_EQ(get_bit(nl, out, "PA"), v.parity_a);
        EXPECT_EQ(get_bit(nl, out, "PB"), v.parity_b);
    }
}

// --- pathological + suite ----------------------------------------------------

TEST(pathological, outputs_behave) {
    const netlist nl = make_pathological(8);
    std::vector<bool> all_ones(8, true), all_zero(8, false);
    auto o1 = evaluate(nl, all_ones);
    EXPECT_TRUE(::wrpt::testing::get_bit(nl, o1, "ALLONE"));
    EXPECT_FALSE(::wrpt::testing::get_bit(nl, o1, "ALLZERO"));
    auto o0 = evaluate(nl, all_zero);
    EXPECT_FALSE(::wrpt::testing::get_bit(nl, o0, "ALLONE"));
    EXPECT_TRUE(::wrpt::testing::get_bit(nl, o0, "ALLZERO"));
}

TEST(suite, all_twelve_circuits_build_and_validate) {
    const auto& suite = benchmark_suite();
    ASSERT_EQ(suite.size(), 12u);
    for (const auto& entry : suite) {
        const netlist nl = entry.build();
        EXPECT_NO_THROW(nl.validate()) << entry.name;
        EXPECT_EQ(nl.name().substr(0, 2), entry.name.substr(0, 2));
        EXPECT_GT(nl.stats().gate_count, 50u) << entry.name;
    }
}

TEST(suite, hard_suite_is_the_four_starred_circuits) {
    const auto hard = hard_suite();
    ASSERT_EQ(hard.size(), 4u);
    EXPECT_EQ(hard[0].name, "S1");
    EXPECT_EQ(hard[1].name, "S2");
    EXPECT_EQ(hard[2].name, "c2670");
    EXPECT_EQ(hard[3].name, "c7552");
    for (const auto& e : hard) {
        EXPECT_GT(e.paper_optimized_length, 0.0);
        EXPECT_GT(e.paper_conventional_coverage, 0.0);
    }
}

TEST(suite, lookup_by_name) {
    EXPECT_NO_THROW(build_suite_circuit("c432"));
    EXPECT_THROW(build_suite_circuit("c9999"), invalid_input);
}

}  // namespace
}  // namespace wrpt
