// Shared test helpers: random-vector equivalence checking between netlists.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "sim/logic_sim.h"
#include "util/rng.h"
#include "util/label.h"

namespace wrpt::testing {

/// Synthesized input label "x<i>" (see util/label.h for why not "x" +).
inline std::string label_x(int i) {
    return label("x", static_cast<std::size_t>(i));
}

/// Simulate `nl` on one 64-pattern random block; returns output words keyed
/// by output name.
inline std::map<std::string, std::uint64_t> random_block_outputs(
    const netlist& nl, rng& r) {
    simulator sim(nl);
    std::vector<std::uint64_t> words(nl.input_count());
    for (auto& w : words) w = r.next_word();
    sim.simulate(words);
    std::map<std::string, std::uint64_t> out;
    for (node_id o : nl.outputs()) out[nl.output_name(o)] = sim.value(o);
    return out;
}

/// Check functional equivalence of two netlists with identical input names
/// (same order) and identical output names, over `blocks` random blocks.
inline void expect_equivalent(const netlist& a, const netlist& b,
                              int blocks = 8, std::uint64_t seed = 0xe9123) {
    ASSERT_EQ(a.input_count(), b.input_count());
    ASSERT_EQ(a.output_count(), b.output_count());
    for (std::size_t i = 0; i < a.input_count(); ++i)
        ASSERT_EQ(a.node_name(a.inputs()[i]), b.node_name(b.inputs()[i]));
    rng ra(seed), rb(seed);
    for (int t = 0; t < blocks; ++t) {
        const auto oa = random_block_outputs(a, ra);
        const auto ob = random_block_outputs(b, rb);
        ASSERT_EQ(oa.size(), ob.size());
        for (const auto& [name, word] : oa) {
            auto it = ob.find(name);
            ASSERT_NE(it, ob.end()) << "missing output " << name;
            EXPECT_EQ(word, it->second) << "output " << name << " differs";
        }
    }
}

/// Drive a circuit with integer-encoded buses: helper building one pattern.
/// Bus inputs must be named <prefix>0..<prefix><n-1>.
inline void set_bus(const netlist& nl, std::vector<bool>& pattern,
                    const std::string& prefix, std::uint64_t value,
                    std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
        const node_id n = nl.find(prefix + std::to_string(i));
        ASSERT_NE(n, null_node) << prefix << i;
        pattern[nl.input_index(n)] = ((value >> i) & 1ULL) != 0;
    }
}

inline void set_bit(const netlist& nl, std::vector<bool>& pattern,
                    const std::string& name, bool value) {
    const node_id n = nl.find(name);
    ASSERT_NE(n, null_node) << name;
    pattern[nl.input_index(n)] = value;
}

/// Read an integer off named outputs <prefix>0..<prefix><n-1>.
inline std::uint64_t get_bus(const netlist& nl, const std::vector<bool>& outs,
                             const std::string& prefix, std::size_t width) {
    // Build output name -> position map once per call (tests only).
    std::map<std::string, std::size_t> pos;
    for (std::size_t o = 0; o < nl.output_count(); ++o)
        pos[nl.output_name(nl.outputs()[o])] = o;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
        const auto it = pos.find(prefix + std::to_string(i));
        EXPECT_NE(it, pos.end()) << prefix << i;
        if (it != pos.end() && outs[it->second]) v |= (1ULL << i);
    }
    return v;
}

inline bool get_bit(const netlist& nl, const std::vector<bool>& outs,
                    const std::string& name) {
    for (std::size_t o = 0; o < nl.output_count(); ++o)
        if (nl.output_name(nl.outputs()[o]) == name) return outs[o];
    ADD_FAILURE() << "no output named " << name;
    return false;
}

}  // namespace wrpt::testing
