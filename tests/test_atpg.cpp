// Tests for the PODEM engine: generated tests must detect their faults
// (the engine self-verifies), redundancy verdicts must agree with exact
// (enumeration / BDD) ground truth.

#include "atpg/compact.h"
#include "atpg/podem.h"

#include <gtest/gtest.h>

#include "helpers.h"

#include "gen/comparator.h"
#include "gen/divider.h"
#include "gen/random_circuit.h"
#include "io/weights_io.h"
#include "prob/redundancy.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"
#include "sim/patterns.h"
#include "util/error.h"
#include "util/rng.h"

namespace wrpt {
namespace {

/// Exhaustive detectability oracle for small circuits.
bool detectable_by_enumeration(const netlist& nl, const fault& f) {
    const std::size_t ins = nl.input_count();
    for (std::uint64_t v = 0; v < (1ULL << ins); ++v) {
        std::vector<bool> in(ins);
        for (std::size_t i = 0; i < ins; ++i) in[i] = ((v >> i) & 1ULL) != 0;
        if (evaluate_with_fault(nl, in, f) != evaluate(nl, in)) return true;
    }
    return false;
}

TEST(podem, generates_tests_for_simple_gate) {
    netlist nl("g");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id g = nl.add_binary(gate_kind::and_, a, b, "g");
    nl.mark_output(g, "y");
    podem_engine engine(nl);
    // and-output sa0 needs a=b=1.
    const podem_result r = engine.generate({g, -1, stuck_at::zero});
    ASSERT_EQ(r.status, podem_status::detected);
    EXPECT_TRUE(r.pattern[0]);
    EXPECT_TRUE(r.pattern[1]);
}

TEST(podem, proves_classic_redundancy) {
    // y = or(a, and(a, b)): the and-gate sa0 is undetectable (absorption).
    netlist nl("red");
    const node_id a = nl.add_input("a");
    const node_id b = nl.add_input("b");
    const node_id g = nl.add_binary(gate_kind::and_, a, b, "g");
    const node_id y = nl.add_binary(gate_kind::or_, a, g, "y");
    nl.mark_output(y, "y");
    podem_engine engine(nl);
    EXPECT_EQ(engine.generate({g, -1, stuck_at::zero}).status,
              podem_status::redundant);
    EXPECT_EQ(engine.generate({g, -1, stuck_at::one}).status,
              podem_status::detected);
}

TEST(podem, hard_conjunction_found_deterministically) {
    // The 2^-16 fault random patterns struggle with is a one-shot for PODEM.
    netlist nl("and16");
    std::vector<node_id> xs;
    for (int i = 0; i < 16; ++i)
        xs.push_back(nl.add_input(testing::label_x(i)));
    const node_id root = nl.add_tree(gate_kind::and_, xs);
    nl.mark_output(root, "y");
    podem_engine engine(nl);
    const podem_result r = engine.generate({root, -1, stuck_at::zero});
    ASSERT_EQ(r.status, podem_status::detected);
    for (bool bit : r.pattern) EXPECT_TRUE(bit);
    EXPECT_LT(r.backtracks, 4u);
}

class podem_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(podem_seeds, verdicts_match_enumeration_oracle) {
    random_circuit_spec spec;
    spec.inputs = 8;
    spec.gates = 40;
    spec.seed = GetParam();
    const netlist nl = make_random_circuit(spec);
    const auto faults = generate_full_faults(nl);
    podem_options opt;
    opt.backtrack_limit = 1u << 14;  // generous: no aborts on 8 inputs
    podem_engine engine(nl, opt);
    for (const fault& f : faults) {
        const podem_result r = engine.generate(f);
        const bool truth = detectable_by_enumeration(nl, f);
        ASSERT_NE(r.status, podem_status::aborted) << to_string(nl, f);
        EXPECT_EQ(r.status == podem_status::detected, truth)
            << to_string(nl, f) << " seed " << spec.seed;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, podem_seeds, ::testing::Values(3, 6, 9, 12, 15));

TEST(podem, agrees_with_bdd_redundancy_proof) {
    random_circuit_spec spec;
    spec.inputs = 7;
    spec.gates = 35;
    spec.seed = 42;
    const netlist nl = make_random_circuit(spec);
    const auto faults = generate_full_faults(nl);
    const auto red = prove_redundant(nl, faults);  // BDD-complete
    podem_options opt;
    opt.backtrack_limit = 1u << 14;
    podem_engine engine(nl, opt);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const podem_result r = engine.generate(faults[i]);
        ASSERT_NE(r.status, podem_status::aborted);
        EXPECT_EQ(r.status == podem_status::redundant, static_cast<bool>(red[i]))
            << to_string(nl, faults[i]);
    }
}

TEST(podem, classify_faults_counts) {
    const netlist nl = make_cascaded_comparator(2, "cmp8a");
    const auto faults = generate_full_faults(nl);
    const fault_classification cls = classify_faults(nl, faults);
    EXPECT_EQ(cls.status.size(), faults.size());
    EXPECT_EQ(cls.detected + cls.redundant + cls.aborted, faults.size());
    // The comparator is fully testable.
    EXPECT_EQ(cls.detected, faults.size());
    EXPECT_EQ(cls.tests.size(), cls.detected);
}

TEST(podem, accelerated_flow_random_then_deterministic) {
    // Section 5.2 flow: random patterns with fault dropping first, PODEM
    // only for the remainder; the union classifies every fault.
    const netlist nl = make_divider(8, 4, "div84");
    const auto faults = generate_full_faults(nl);
    fault_sim_options fo;
    fo.max_patterns = 256;
    const auto sim = run_weighted_fault_simulation(
        nl, faults, uniform_weights(nl), 0xacce1, fo);
    std::vector<fault> open;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (!sim.first_detected[i].has_value()) open.push_back(faults[i]);
    EXPECT_LT(open.size(), faults.size() / 4);  // random did the bulk

    podem_options po;
    po.backtrack_limit = 1u << 12;
    const auto cls = classify_faults(nl, open, po);
    EXPECT_EQ(cls.aborted, 0u);
    // Everything left is either deterministically testable or redundant;
    // the array divider does contain true redundancies.
    EXPECT_EQ(cls.detected + cls.redundant, open.size());
    EXPECT_GT(cls.redundant, 0u);
}

TEST(compaction, preserves_coverage_and_shrinks) {
    const netlist nl = make_cascaded_comparator(2, "cmp8x");
    const auto faults = generate_full_faults(nl);

    // Build a deliberately redundant test set: 512 random + PODEM tests.
    rng r(0xc0);
    std::vector<std::vector<bool>> patterns;
    for (int i = 0; i < 512; ++i)
        patterns.push_back(draw_pattern(r, uniform_weights(nl)));
    const auto cls = classify_faults(nl, faults);
    for (const auto& t : cls.tests) patterns.push_back(t);

    const compaction_result res = compact_test_set(nl, faults, patterns);
    EXPECT_EQ(res.original_size, patterns.size());
    EXPECT_LT(res.patterns.size(), patterns.size() / 2);
    EXPECT_EQ(res.detected, faults.size());

    // The compacted set really covers everything.
    explicit_pattern_source src(res.patterns);
    fault_sim_options fo;
    fo.max_patterns = res.patterns.size();
    const auto sim = run_fault_simulation(nl, faults, src, fo);
    EXPECT_EQ(sim.detected_count, faults.size());
}

TEST(compaction, empty_and_width_checks) {
    const netlist nl = make_cascaded_comparator(1, "cmp4x");
    const auto faults = generate_full_faults(nl);
    const auto empty = compact_test_set(nl, faults, {});
    EXPECT_TRUE(empty.patterns.empty());
    std::vector<std::vector<bool>> bad{std::vector<bool>(3, false)};
    EXPECT_THROW(compact_test_set(nl, faults, bad), invalid_input);
}

}  // namespace
}  // namespace wrpt
