// Randomized mixed-operation equivalence suite for util/dense_map.h, in
// the CorrectnessTests style of stgatilov/ArrayWithHash: a weighted
// stream of insert/find/erase/iterate/clear operations is replayed
// simultaneously against the dense_map under test and a
// std::unordered_map oracle, with full-content cross-checks along the
// way. Every randomized case logs its seed on failure so a divergence is
// replayable. Adversarial key generators cover the container's regime
// boundaries: consecutive IDs (pure array region), strided keys (array
// growth heuristics), random 64-bit keys (pure hash region, backward-
// shift erase under churn) and duplicate-heavy narrow ranges (hit/erase/
// reinsert cycling).

#include "util/dense_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace wrpt {
namespace {

using util::dense_map;

// --- directed basics --------------------------------------------------------

TEST(dense_map, insert_find_erase_roundtrip) {
    dense_map<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_TRUE(m.insert_or_assign(0, 10));
    EXPECT_TRUE(m.insert_or_assign(1, 11));
    EXPECT_TRUE(m.insert_or_assign(2, 12));
    EXPECT_FALSE(m.insert_or_assign(1, 21));  // overwrite, not fresh
    EXPECT_EQ(m.size(), 3u);
    ASSERT_NE(m.find(1), nullptr);
    EXPECT_EQ(*m.find(1), 21);
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_TRUE(m.erase(1));
    EXPECT_FALSE(m.erase(1));
    EXPECT_EQ(m.size(), 2u);
    EXPECT_FALSE(m.contains(1));
    EXPECT_TRUE(m.contains(0));
}

TEST(dense_map, consecutive_keys_stay_in_the_array_region) {
    dense_map<std::size_t> m;
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.insert_or_assign(k, static_cast<std::size_t>(k * 3));
    EXPECT_EQ(m.size(), 1000u);
    EXPECT_EQ(m.hash_size(), 0u) << "consecutive IDs must not spill to hash";
    EXPECT_GE(m.array_limit(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_EQ(*m.find(k), k * 3);
    EXPECT_EQ(m.stats().hash_hits, 0u);
    EXPECT_GE(m.stats().array_hits, 1000u);
}

TEST(dense_map, sparse_keys_live_in_the_hash_region) {
    dense_map<std::uint64_t> m;
    rng r(0x5eed);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t k = r.next_word() | (1ull << 62);  // far away
        keys.push_back(k);
        m.insert_or_assign(k, k ^ 0xff);
    }
    EXPECT_GT(m.hash_size(), 0u);
    for (const std::uint64_t k : keys) ASSERT_EQ(*m.find(k), k ^ 0xff);
}

TEST(dense_map, array_growth_migrates_hash_entries_and_counts_relocations) {
    dense_map<int> m;
    // Key 40 against an empty map fails the 4x-size heuristic -> hash.
    m.insert_or_assign(40, 1);
    EXPECT_EQ(m.hash_size(), 1u);
    // Filling 0..39 makes 40 array-worthy; the growth that captures it
    // must migrate the hash resident into the array region.
    for (std::uint64_t k = 0; k < 40; ++k)
        m.insert_or_assign(k, static_cast<int>(k));
    EXPECT_EQ(m.hash_size(), 0u);
    EXPECT_EQ(*m.find(40), 1);
    EXPECT_GE(m.stats().relocations, 1u);
}

TEST(dense_map, for_each_visits_in_ascending_key_order) {
    dense_map<int> m;
    // Mix of array-resident (small) and hash-resident (huge) keys.
    const std::uint64_t keys[] = {5,         2,          9,
                                  1ull << 40, 1ull << 33, (1ull << 40) + 7};
    for (const std::uint64_t k : keys)
        m.insert_or_assign(k, static_cast<int>(k & 0xffff));
    std::vector<std::uint64_t> seen;
    m.for_each([&](std::uint64_t k, int&) { seen.push_back(k); });
    std::vector<std::uint64_t> expected(std::begin(keys), std::end(keys));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(seen, expected);
}

TEST(dense_map, move_only_values_and_operator_brackets) {
    dense_map<std::unique_ptr<int>> m;
    m[3] = std::make_unique<int>(33);
    m.try_emplace(4, std::make_unique<int>(44));
    const auto [slot, fresh] = m.try_emplace(3);  // existing: no overwrite
    EXPECT_FALSE(fresh);
    ASSERT_NE(*slot, nullptr);
    EXPECT_EQ(**slot, 33);
    EXPECT_EQ(**m.find(4), 44);
    EXPECT_TRUE(m.erase(4));
    EXPECT_EQ(m.size(), 1u);
}

TEST(dense_map, clear_retains_capacity_and_resets_contents) {
    dense_map<int> m;
    for (std::uint64_t k = 0; k < 100; ++k) m.insert_or_assign(k, 1);
    m.insert_or_assign(0xdeadbeefcafeull, 2);
    const std::uint64_t limit = m.array_limit();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.hash_size(), 0u);
    EXPECT_EQ(m.array_limit(), limit);  // capacity retained for reuse
    EXPECT_EQ(m.find(5), nullptr);
    m.insert_or_assign(5, 7);
    EXPECT_EQ(*m.find(5), 7);
}

TEST(dense_map, reserve_array_pins_the_direct_index_path) {
    dense_map<int> m;
    m.reserve_array(4096);
    m.insert_or_assign(4000, 1);  // would have gone to hash unreserved
    EXPECT_EQ(m.hash_size(), 0u);
    EXPECT_EQ(*m.find(4000), 1);
}

// --- randomized mixed-operation equivalence vs std::unordered_map -----------

// Key generators for the adversarial patterns.
struct key_pattern {
    const char* name;
    std::uint64_t (*draw)(rng&, std::uint64_t op);
};

const key_pattern kPatterns[] = {
    {"consecutive", [](rng& r, std::uint64_t) { return r.next_word() % 2048; }},
    {"strided",
     [](rng& r, std::uint64_t) { return (r.next_word() % 1024) * 3; }},
    {"random64", [](rng& r, std::uint64_t) { return r.next_word(); }},
    {"duplicate_heavy",
     [](rng& r, std::uint64_t) { return r.next_word() % 17; }},
    {"mixed_regimes",
     [](rng& r, std::uint64_t) -> std::uint64_t {
         // Half dense small IDs, half sparse far keys: exercises the
         // array/hash boundary and growth-time migration.
         const std::uint64_t w = r.next_word();
         return (w & 1) ? (w >> 1) % 512 : (w | (1ull << 50));
     }},
};

void check_equal(const dense_map<std::uint64_t>& dut,
                 const std::unordered_map<std::uint64_t, std::uint64_t>& oracle,
                 std::uint64_t seed, std::uint64_t op) {
    ASSERT_EQ(dut.size(), oracle.size())
        << "seed=" << seed << " op=" << op;
    std::size_t visited = 0;
    std::uint64_t last_key = 0;
    bool first = true;
    dut.for_each([&](std::uint64_t k, const std::uint64_t& v) {
        if (!first) {
            EXPECT_LT(last_key, k)
                << "iteration out of key order, seed=" << seed << " op=" << op;
        }
        first = false;
        last_key = k;
        ++visited;
        const auto it = oracle.find(k);
        ASSERT_NE(it, oracle.end())
            << "phantom key " << k << ", seed=" << seed << " op=" << op;
        ASSERT_EQ(v, it->second)
            << "value mismatch at key " << k << ", seed=" << seed
            << " op=" << op;
    });
    ASSERT_EQ(visited, oracle.size()) << "seed=" << seed << " op=" << op;
}

/// Weighted op mix replayed against the oracle. Weights: find-heavy with
/// steady insert/erase churn, occasional full iteration, rare clear —
/// the serve-path shape.
void run_equivalence(const key_pattern& pattern, std::uint64_t seed,
                     int operations) {
    SCOPED_TRACE(std::string("pattern=") + pattern.name);
    rng r(seed);
    dense_map<std::uint64_t> dut;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;

    for (int op = 0; op < operations; ++op) {
        const std::uint64_t key = pattern.draw(r, op);
        const std::uint64_t roll = r.next_word() % 100;
        if (roll < 35) {  // insert_or_assign
            const std::uint64_t value = r.next_word();
            const bool fresh = dut.insert_or_assign(key, value);
            const bool oracle_fresh = oracle.insert_or_assign(key, value).second;
            ASSERT_EQ(fresh, oracle_fresh)
                << "insert freshness diverged, seed=" << seed << " op=" << op;
        } else if (roll < 45) {  // try_emplace (no overwrite)
            const std::uint64_t value = r.next_word();
            const auto [slot, fresh] = dut.try_emplace(key, value);
            const auto [it, oracle_fresh] = oracle.try_emplace(key, value);
            ASSERT_EQ(fresh, oracle_fresh)
                << "emplace freshness diverged, seed=" << seed << " op=" << op;
            ASSERT_EQ(*slot, it->second)
                << "emplace value diverged, seed=" << seed << " op=" << op;
        } else if (roll < 75) {  // find
            const std::uint64_t* v = dut.find(key);
            const auto it = oracle.find(key);
            ASSERT_EQ(v != nullptr, it != oracle.end())
                << "find presence diverged at key " << key << ", seed=" << seed
                << " op=" << op;
            if (v) {
                ASSERT_EQ(*v, it->second) << "seed=" << seed << " op=" << op;
            }
        } else if (roll < 95) {  // erase
            const bool erased = dut.erase(key);
            const bool oracle_erased = oracle.erase(key) > 0;
            ASSERT_EQ(erased, oracle_erased)
                << "erase diverged at key " << key << ", seed=" << seed
                << " op=" << op;
        } else if (roll < 99) {  // iterate + full cross-check
            check_equal(dut, oracle, seed, op);
        } else {  // clear
            dut.clear();
            oracle.clear();
        }
    }
    check_equal(dut, oracle, seed, operations);
}

TEST(dense_map, randomized_equivalence_against_unordered_map_oracle) {
    for (const key_pattern& pattern : kPatterns)
        for (const std::uint64_t seed : {0x1234ull, 0xfeedull, 0xabc99ull})
            run_equivalence(pattern, seed, 4000);
}

TEST(dense_map, erase_heavy_churn_stays_tombstone_free) {
    // Sustained insert/erase cycling over random 64-bit keys: a
    // tombstone-based table would rot its probe chains; the backward-
    // shift table must answer every lookup correctly forever.
    rng r(0xc0ffee);
    dense_map<std::uint64_t> dut;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    std::vector<std::uint64_t> live;
    for (int round = 0; round < 20000; ++round) {
        if (!live.empty() && (r.next_word() & 1)) {
            const std::size_t at = r.next_word() % live.size();
            const std::uint64_t key = live[at];
            live[at] = live.back();
            live.pop_back();
            ASSERT_TRUE(dut.erase(key)) << "round=" << round;
            oracle.erase(key);
        } else {
            const std::uint64_t key = r.next_word();
            if (dut.insert_or_assign(key, round)) live.push_back(key);
            oracle.insert_or_assign(key, round);
        }
    }
    ASSERT_EQ(dut.size(), oracle.size());
    for (const auto& [k, v] : oracle) {
        const std::uint64_t* got = dut.find(k);
        ASSERT_NE(got, nullptr) << "lost key " << k;
        ASSERT_EQ(*got, v);
    }
}

// --- stats surface -----------------------------------------------------------

TEST(dense_map, stats_attribute_hits_to_the_right_region) {
    dense_map<int> m;
    for (std::uint64_t k = 0; k < 64; ++k) m.insert_or_assign(k, 1);
    m.insert_or_assign(1ull << 40, 2);
    m.reset_stats();
    for (std::uint64_t k = 0; k < 64; ++k) ASSERT_NE(m.find(k), nullptr);
    ASSERT_NE(m.find(1ull << 40), nullptr);
    EXPECT_EQ(m.stats().array_hits, 64u);
    EXPECT_EQ(m.stats().hash_hits, 1u);
    // Misses count nowhere: a failed probe is not a hit.
    EXPECT_EQ(m.find(999), nullptr);
    EXPECT_EQ(m.stats().array_hits, 64u);
    EXPECT_EQ(m.stats().hash_hits, 1u);
}

// --- concurrent const readers (TSan smoke) ----------------------------------

TEST(dense_map, concurrent_const_readers_are_race_free) {
    dense_map<std::uint64_t> m;
    for (std::uint64_t k = 0; k < 512; ++k) m.insert_or_assign(k, k * 7);
    m.insert_or_assign(1ull << 45, 99);
    const dense_map<std::uint64_t>& shared = m;  // const view: count-free

    std::vector<std::thread> readers;
    std::vector<std::uint64_t> sums(4, 0);
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&shared, &sums, t] {
            std::uint64_t sum = 0;
            for (int round = 0; round < 200; ++round) {
                for (std::uint64_t k = 0; k < 512; ++k)
                    sum += *shared.find(k);
                shared.for_each(
                    [&](std::uint64_t, const std::uint64_t& v) { sum += v; });
            }
            sums[static_cast<std::size_t>(t)] = sum;
        });
    }
    for (std::thread& t : readers) t.join();
    for (int t = 1; t < 4; ++t) EXPECT_EQ(sums[0], sums[static_cast<std::size_t>(t)]);
}

}  // namespace
}  // namespace wrpt
